// Software-defined-radio receiver chain on a Zynq SoC — the second
// domain scenario: a burst-mode OFDM receiver whose per-burst DSP stages
// (channelizer, synchronizer, FFT, equalizer, demapper, decoder) each ship
// as HLS variants with different parallelization factors. DSP48 and BRAM
// pressure is much higher than in the image pipeline, which stresses the
// scarce-resource weighting of Eq. (4) and the floorplanner's column
// heterogeneity handling.
//
// The example contrasts PA's schedule with the metrics module's quality
// breakdown and shows the effect of the module-reuse extension (two
// correlator stages share one bitstream).
#include <iostream>

#include "arch/zynq.hpp"
#include "core/pa_scheduler.hpp"
#include "sched/gantt.hpp"
#include "sched/metrics.hpp"
#include "sched/validator.hpp"
#include "util/string_util.hpp"

using namespace resched;

namespace {

Implementation Sw(TimeT us) {
  Implementation impl;
  impl.kind = ImplKind::kSoftware;
  impl.name = "sw";
  impl.exec_time = us;
  return impl;
}

Implementation Hw(const char* name, TimeT us, std::int64_t clb,
                  std::int64_t bram, std::int64_t dsp,
                  std::int32_t module = -1) {
  Implementation impl;
  impl.kind = ImplKind::kHardware;
  impl.name = name;
  impl.exec_time = us;
  impl.res = ResourceVec({clb, bram, dsp});
  impl.module_id = module;
  return impl;
}

Instance MakeSdrReceiver() {
  TaskGraph g;
  const TaskId rx_dma = g.AddTask("rx_dma");
  const TaskId ddc = g.AddTask("ddc");          // digital down-conversion
  const TaskId chan = g.AddTask("channelizer");
  const TaskId sync_c = g.AddTask("coarse_sync");  // correlator (module 100)
  const TaskId sync_f = g.AddTask("fine_sync");    // correlator (module 100)
  const TaskId fft = g.AddTask("fft");
  const TaskId chest = g.AddTask("chan_est");
  const TaskId eq = g.AddTask("equalizer");
  const TaskId demap = g.AddTask("demapper");
  const TaskId deint = g.AddTask("deinterleave");
  const TaskId viterbi = g.AddTask("viterbi");
  const TaskId crc = g.AddTask("crc");
  const TaskId mac = g.AddTask("mac_out");

  g.AddEdge(rx_dma, ddc);
  g.AddEdge(ddc, chan);
  g.AddEdge(chan, sync_c);
  g.AddEdge(sync_c, sync_f);
  g.AddEdge(sync_f, fft);
  g.AddEdge(fft, chest);
  g.AddEdge(fft, eq);
  g.AddEdge(chest, eq);
  g.AddEdge(eq, demap);
  g.AddEdge(demap, deint);
  g.AddEdge(deint, viterbi);
  g.AddEdge(viterbi, crc);
  g.AddEdge(crc, mac);

  g.AddImpl(rx_dma, Sw(900));
  g.AddImpl(mac, Sw(700));

  g.AddImpl(ddc, Sw(14000));
  g.AddImpl(ddc, Hw("cic4", 1800, 900, 4, 24));
  g.AddImpl(ddc, Hw("cic2", 3200, 500, 2, 12));

  g.AddImpl(chan, Sw(19000));
  g.AddImpl(chan, Hw("pfb8", 2400, 1400, 16, 36));
  g.AddImpl(chan, Hw("pfb4", 4300, 800, 10, 18));

  // The two synchronizers share the correlator bitstream (module 100).
  g.AddImpl(sync_c, Sw(9000));
  g.AddImpl(sync_c, Hw("xcorr", 1500, 700, 6, 20, 100));
  g.AddImpl(sync_f, Sw(11000));
  g.AddImpl(sync_f, Hw("xcorr", 1900, 700, 6, 20, 100));

  g.AddImpl(fft, Sw(16000));
  g.AddImpl(fft, Hw("r4_pipe", 1200, 1100, 20, 32));
  g.AddImpl(fft, Hw("r2_iter", 3600, 450, 8, 10));

  g.AddImpl(chest, Sw(7000));
  g.AddImpl(chest, Hw("ls_est", 1400, 520, 6, 14));

  g.AddImpl(eq, Sw(12000));
  g.AddImpl(eq, Hw("mmse", 1700, 950, 8, 28));
  g.AddImpl(eq, Hw("zf", 2900, 420, 4, 12));

  g.AddImpl(demap, Sw(6000));
  g.AddImpl(demap, Hw("llr", 1000, 380, 2, 8));

  g.AddImpl(deint, Sw(4200));
  g.AddImpl(deint, Hw("bank", 900, 260, 10, 0));

  g.AddImpl(viterbi, Sw(28000));
  g.AddImpl(viterbi, Hw("k7_par", 3400, 2100, 18, 0));
  g.AddImpl(viterbi, Hw("k7_ser", 7800, 800, 8, 0));

  g.AddImpl(crc, Sw(1500));
  g.AddImpl(crc, Hw("crc32", 400, 150, 0, 0));

  return Instance{"sdr_receiver", MakeZedBoard(), std::move(g)};
}

void Report(const Instance& inst, const Schedule& s) {
  std::cout << ScheduleSummary(inst, s) << "\n";
  std::cout << "metrics: " << ComputeMetrics(inst, s).ToString() << "\n";
  const ValidationResult check = ValidateSchedule(inst, s);
  std::cout << "validator: " << check.Summary() << "\n\n";
}

}  // namespace

int main() {
  const Instance inst = MakeSdrReceiver();
  std::cout << "SDR receiver: " << inst.graph.NumTasks() << " stages on "
            << inst.platform.Name() << "\n\n";

  std::cout << "--- PA (paper model: no module reuse) ---\n";
  const Schedule base = SchedulePa(inst);
  Report(inst, base);

  std::cout << "--- PA + module-reuse extension ---\n";
  PaOptions reuse;
  reuse.module_reuse = true;
  const Schedule with_reuse = SchedulePa(inst, reuse);
  Report(inst, with_reuse);

  std::cout << "Gantt (" << base.algorithm << ", base model):\n"
            << GanttChart(inst, base, 88) << "\n";
  if (with_reuse.makespan < base.makespan) {
    std::cout << "module reuse saved "
              << FormatTicks(base.makespan - with_reuse.makespan) << "\n";
  }
  return 0;
}
