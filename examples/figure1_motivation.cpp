// Reproduces the motivating example of the paper's Figure 1: selecting the
// locally-fastest hardware implementation of t1 creates one large
// reconfigurable region, serializes t2/t3 behind reconfigurations and
// worsens the overall schedule, while the resource-efficient (slower but
// smaller) implementation lets three regions coexist and t2/t3 run in
// parallel.
//
// IS-1 (greedy local optimization) falls into the trap; PA avoids it via
// the efficiency index.
#include <iostream>

#include "arch/device.hpp"
#include "baseline/isk_scheduler.hpp"
#include "core/pa_scheduler.hpp"
#include "sched/gantt.hpp"
#include "sched/validator.hpp"
#include "util/string_util.hpp"

using namespace resched;

namespace {

Instance MakeFigure1Instance() {
  // Small single-clock-region-style fabric with 1000 CLB-equivalents.
  const ResourceModel model = MakeClbBramDspModel();
  FabricGeometry geom = BuildInterleavedFabric(
      model, ResourceVec({1000, 10, 20}), {50, 5, 10}, /*rows=*/2);
  FpgaDevice device("fig1-device", model, std::move(geom));
  Platform platform("fig1-platform", /*num_processors=*/1, std::move(device),
                    /*recfreq_bits_per_sec=*/1.024e9);

  TaskGraph graph;
  const TaskId t1 = graph.AddTask("t1");
  const TaskId t2 = graph.AddTask("t2");
  const TaskId t3 = graph.AddTask("t3");
  graph.AddEdge(t1, t2);
  graph.AddEdge(t1, t3);

  auto hw = [&](TimeT time, std::int64_t clb) {
    Implementation impl;
    impl.kind = ImplKind::kHardware;
    impl.name = StrFormat("hw_%lldclb", static_cast<long long>(clb));
    impl.exec_time = time;
    impl.res = ResourceVec({clb, 0, 0});
    return impl;
  };
  auto sw = [&](TimeT time) {
    Implementation impl;
    impl.kind = ImplKind::kSoftware;
    impl.name = "sw";
    impl.exec_time = time;
    return impl;
  };

  // t1 has the Figure-1 trade-off: t1_1 fast/large, t1_2 slower/small.
  graph.AddImpl(t1, sw(50000));
  graph.AddImpl(t1, hw(2000, 800));  // t1_1
  graph.AddImpl(t1, hw(4000, 300));  // t1_2
  // t2, t3: single hardware implementation each.
  graph.AddImpl(t2, sw(50000));
  graph.AddImpl(t2, hw(5000, 350));
  graph.AddImpl(t3, sw(50000));
  graph.AddImpl(t3, hw(5000, 330));

  return Instance{"figure1", std::move(platform), std::move(graph)};
}

void Report(const Instance& instance, const Schedule& schedule) {
  std::cout << ScheduleSummary(instance, schedule) << "\n";
  std::cout << "validator: "
            << ValidateSchedule(instance, schedule).Summary() << "\n";
  std::cout << GanttChart(instance, schedule, 72) << "\n";
}

}  // namespace

int main() {
  const Instance instance = MakeFigure1Instance();

  std::cout << "=== PA (resource-efficient implementation selection) ===\n";
  const Schedule pa = SchedulePa(instance);
  Report(instance, pa);

  std::cout << "=== IS-1 (greedy locally-fastest selection) ===\n";
  IskOptions is1;
  is1.k = 1;
  const Schedule isk = ScheduleIsk(instance, is1);
  Report(instance, isk);

  std::cout << "PA makespan " << FormatTicks(pa.makespan) << " vs IS-1 "
            << FormatTicks(isk.makespan) << "\n";
  if (pa.makespan < isk.makespan) {
    std::cout << "-> resource-efficient selection wins, as in Figure 1\n";
  }
  return 0;
}
