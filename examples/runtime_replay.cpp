// Runtime replay: what happens to a static schedule when real execution
// times deviate from their estimates? Schedules an application with PA,
// replays it through the discrete-event simulator across a jitter sweep,
// and prints the makespan distribution plus per-resource utilization —
// the analysis a deployment team runs before trusting an offline schedule.
//
// Usage: runtime_replay [num_tasks] [seed] [trials]
#include <cstdlib>
#include <iostream>

#include "arch/zynq.hpp"
#include "core/pa_scheduler.hpp"
#include "sim/executor.hpp"
#include "taskgraph/generator.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

using namespace resched;

int main(int argc, char** argv) {
  const std::size_t num_tasks =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 30;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 5;
  const std::size_t trials =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 200;

  GeneratorOptions gen;
  gen.num_tasks = num_tasks;
  const Instance instance =
      GenerateInstance(MakeZedBoard(), gen, seed, "replay");
  const Schedule schedule = SchedulePa(instance);
  std::cout << "Static PA schedule: " << FormatTicks(schedule.makespan)
            << " (" << schedule.NumHardwareTasks() << " HW tasks, "
            << schedule.regions.size() << " regions)\n\n";

  // ---- jitter sweep.
  std::cout << StrFormat("%8s %12s %12s %12s %12s\n", "jitter", "mean[ms]",
                         "min[ms]", "max[ms]", "p95 stretch");
  for (const double jitter : {0.0, 0.1, 0.2, 0.3, 0.5}) {
    RunningStat makespan_ms;
    std::vector<double> stretches;
    for (std::size_t i = 0; i < trials; ++i) {
      sim::SimOptions opt;
      opt.task_jitter = jitter;
      opt.reconf_jitter = jitter;
      opt.seed = DeriveSeed(kJitterSeedStream ^ seed, i);
      const sim::SimResult r = sim::Simulate(instance, schedule, opt);
      makespan_ms.Add(static_cast<double>(r.makespan) / 1e3);
      stretches.push_back(r.stretch);
    }
    std::cout << StrFormat("%7.0f%% %12.2f %12.2f %12.2f %12.3f\n",
                           jitter * 100.0, makespan_ms.Mean(),
                           makespan_ms.Min(), makespan_ms.Max(),
                           Percentile(stretches, 95.0));
  }

  // ---- utilization at nominal times.
  std::cout << "\nResource utilization (nominal replay):\n";
  const sim::SimResult nominal = sim::Simulate(instance, schedule);
  for (const sim::ResourceUsage& usage : nominal.usage) {
    const auto bar_len = static_cast<std::size_t>(usage.utilization * 40.0);
    std::cout << StrFormat("%-8s %5.1f%% |%s%s|\n", usage.name.c_str(),
                           usage.utilization * 100.0,
                           std::string(bar_len, '#').c_str(),
                           std::string(40 - bar_len, '.').c_str());
  }
  return 0;
}
