// Throughput scheduling of a streaming application: unroll K frames of a
// pipeline into one DAG (software-pipelining style) and let the scheduler
// overlap frames across regions and cores. Shows the per-frame initiation
// interval shrinking with deeper unrolling, and the effect of reusing the
// same stage's bitstream across consecutive frames (module reuse).
//
// Usage: periodic_pipeline [num_tasks] [seed] [max_frames]
#include <cstdlib>
#include <iostream>

#include "arch/zynq.hpp"
#include "core/pa_scheduler.hpp"
#include "sched/metrics.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "taskgraph/replicate.hpp"
#include "util/string_util.hpp"

using namespace resched;

int main(int argc, char** argv) {
  const std::size_t num_tasks =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 5;
  const std::size_t max_frames =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 5;

  GeneratorOptions gen;
  gen.num_tasks = num_tasks;
  const Instance base =
      GenerateInstance(MakeZedBoard(), gen, seed, "stream");
  const Schedule single = SchedulePa(base);
  std::cout << "Single-frame latency: " << FormatTicks(single.makespan)
            << "\n\n";
  std::cout << StrFormat("%8s %14s %16s %16s %10s\n", "frames",
                         "makespan", "interval/frame", "interval (reuse)",
                         "#reconf");

  for (std::size_t frames = 1; frames <= max_frames; ++frames) {
    UnrollOptions unroll;
    unroll.frames = frames;
    const Instance inst = UnrollPeriodic(base, unroll);

    const Schedule plain = SchedulePa(inst);
    PaOptions reuse_opt;
    reuse_opt.module_reuse = true;
    const Schedule reuse = SchedulePa(inst, reuse_opt);
    RESCHED_CHECK(ValidateSchedule(inst, plain).ok());
    RESCHED_CHECK(ValidateSchedule(inst, reuse).ok());

    std::cout << StrFormat(
        "%8zu %14s %16s %16s %10zu\n", frames,
        FormatTicks(plain.makespan).c_str(),
        FormatTicks(static_cast<TimeT>(
                        ThroughputInterval(plain.makespan, frames)))
            .c_str(),
        FormatTicks(static_cast<TimeT>(
                        ThroughputInterval(reuse.makespan, frames)))
            .c_str(),
        reuse.reconfigurations.size());
  }

  // Quality breakdown at the deepest unroll.
  UnrollOptions unroll;
  unroll.frames = max_frames;
  const Instance inst = UnrollPeriodic(base, unroll);
  PaOptions reuse_opt;
  reuse_opt.module_reuse = true;
  const Schedule s = SchedulePa(inst, reuse_opt);
  std::cout << "\nAt " << max_frames
            << " frames: " << ComputeMetrics(inst, s).ToString() << "\n";
  return 0;
}
