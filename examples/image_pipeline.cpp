// A realistic domain scenario: an image-processing pipeline (the kind of
// hardware/software co-designed application the paper's introduction
// motivates) scheduled on the ZedBoard.
//
// The pipeline: capture -> demosaic -> {denoise, resize} -> Sobel X/Y ->
// gradient magnitude -> {Harris corners, histogram} -> feature overlay ->
// encode -> transmit. Per-frame execution times and HLS-style
// time/resource Pareto implementations are modelled after typical HD
// (1080p) figures. The example compares PA, PA-R and IS-1 and saves the
// instance as JSON so it can be re-loaded with io/instance_io.hpp.
#include <iostream>

#include "arch/zynq.hpp"
#include "baseline/isk_scheduler.hpp"
#include "core/pa_scheduler.hpp"
#include "core/randomized.hpp"
#include "io/instance_io.hpp"
#include "sched/gantt.hpp"
#include "sched/validator.hpp"
#include "util/string_util.hpp"

using namespace resched;

namespace {

Implementation Sw(TimeT us) {
  Implementation impl;
  impl.kind = ImplKind::kSoftware;
  impl.name = "sw";
  impl.exec_time = us;
  return impl;
}

Implementation Hw(const char* name, TimeT us, std::int64_t clb,
                  std::int64_t bram, std::int64_t dsp) {
  Implementation impl;
  impl.kind = ImplKind::kHardware;
  impl.name = name;
  impl.exec_time = us;
  impl.res = ResourceVec({clb, bram, dsp});
  return impl;
}

Instance MakeImagePipeline() {
  TaskGraph g;
  const TaskId capture = g.AddTask("capture");
  const TaskId demosaic = g.AddTask("demosaic");
  const TaskId denoise = g.AddTask("denoise");
  const TaskId resize = g.AddTask("resize");
  const TaskId sobel_x = g.AddTask("sobel_x");
  const TaskId sobel_y = g.AddTask("sobel_y");
  const TaskId grad_mag = g.AddTask("grad_mag");
  const TaskId harris = g.AddTask("harris");
  const TaskId histogram = g.AddTask("histogram");
  const TaskId overlay = g.AddTask("overlay");
  const TaskId encode = g.AddTask("encode");
  const TaskId transmit = g.AddTask("transmit");

  g.AddEdge(capture, demosaic);
  g.AddEdge(demosaic, denoise);
  g.AddEdge(demosaic, resize);
  g.AddEdge(denoise, sobel_x);
  g.AddEdge(denoise, sobel_y);
  g.AddEdge(sobel_x, grad_mag);
  g.AddEdge(sobel_y, grad_mag);
  g.AddEdge(grad_mag, harris);
  g.AddEdge(resize, histogram);
  g.AddEdge(harris, overlay);
  g.AddEdge(histogram, overlay);
  g.AddEdge(overlay, encode);
  g.AddEdge(encode, transmit);

  // I/O-bound endpoints stay in software.
  g.AddImpl(capture, Sw(1500));
  g.AddImpl(transmit, Sw(1800));

  // Compute stages: software plus unrolling-factor HW variants.
  g.AddImpl(demosaic, Sw(21000));
  g.AddImpl(demosaic, Hw("x4", 2600, 2400, 16, 12));
  g.AddImpl(demosaic, Hw("x2", 4400, 1300, 10, 6));
  g.AddImpl(demosaic, Hw("x1", 8100, 700, 6, 3));

  g.AddImpl(denoise, Sw(30000));
  g.AddImpl(denoise, Hw("nlm", 3600, 3100, 24, 20));
  g.AddImpl(denoise, Hw("bilateral", 6200, 1500, 12, 10));
  g.AddImpl(denoise, Hw("gauss", 10500, 650, 6, 4));

  g.AddImpl(resize, Sw(9000));
  g.AddImpl(resize, Hw("bicubic", 1900, 1100, 8, 14));
  g.AddImpl(resize, Hw("bilinear", 3300, 450, 4, 6));

  g.AddImpl(sobel_x, Sw(12500));
  g.AddImpl(sobel_x, Hw("wide", 1400, 1200, 6, 0));
  g.AddImpl(sobel_x, Hw("narrow", 3100, 420, 3, 0));

  g.AddImpl(sobel_y, Sw(12500));
  g.AddImpl(sobel_y, Hw("wide", 1400, 1200, 6, 0));
  g.AddImpl(sobel_y, Hw("narrow", 3100, 420, 3, 0));

  g.AddImpl(grad_mag, Sw(8000));
  g.AddImpl(grad_mag, Hw("cordic", 1100, 800, 2, 8));
  g.AddImpl(grad_mag, Hw("lut", 2300, 350, 4, 0));

  g.AddImpl(harris, Sw(26000));
  g.AddImpl(harris, Hw("x4", 3200, 2800, 18, 24));
  g.AddImpl(harris, Hw("x1", 9800, 900, 8, 8));

  g.AddImpl(histogram, Sw(5200));
  g.AddImpl(histogram, Hw("hist", 1300, 380, 8, 0));

  g.AddImpl(overlay, Sw(6400));
  g.AddImpl(overlay, Hw("blend", 1600, 520, 4, 2));

  g.AddImpl(encode, Sw(34000));
  g.AddImpl(encode, Hw("mjpeg", 5200, 3300, 30, 26));
  g.AddImpl(encode, Hw("mjpeg_lite", 11800, 1400, 14, 10));

  return Instance{"image_pipeline", MakeZedBoard(), std::move(g)};
}

}  // namespace

int main() {
  const Instance instance = MakeImagePipeline();
  std::cout << "Image pipeline: " << instance.graph.NumTasks()
            << " stages on " << instance.platform.Name() << "\n\n";

  const Schedule pa = SchedulePa(instance);
  std::cout << ScheduleSummary(instance, pa) << "\n"
            << "validator: " << ValidateSchedule(instance, pa).Summary()
            << "\n\n";

  PaROptions par_options;
  par_options.time_budget_seconds = 0.5;
  par_options.seed = 7;
  const PaRResult par = SchedulePaR(instance, par_options);
  if (par.found) {
    std::cout << ScheduleSummary(instance, par.best) << " ("
              << par.iterations << " iterations)\n"
              << "validator: "
              << ValidateSchedule(instance, par.best).Summary() << "\n\n";
  }

  IskOptions is1;
  is1.k = 1;
  const Schedule isk = ScheduleIsk(instance, is1);
  std::cout << ScheduleSummary(instance, isk) << "\n"
            << "validator: " << ValidateSchedule(instance, isk).Summary()
            << "\n\n";

  const Schedule& best =
      par.found && par.best.makespan < pa.makespan ? par.best : pa;
  std::cout << "Schedule detail (" << best.algorithm << "):\n"
            << ScheduleTable(instance, best) << "\n"
            << GanttChart(instance, best) << "\n";

  // Persist the instance for reuse from other tools.
  SaveInstance(instance, "image_pipeline.instance.json");
  std::cout << "instance saved to image_pipeline.instance.json\n";
  return 0;
}
