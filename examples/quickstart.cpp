// Quickstart: generate a pseudo-random application, schedule it with the
// deterministic PA scheduler and with PA-R, validate both results, and
// print schedule summaries plus an ASCII Gantt chart.
//
// Usage: quickstart [num_tasks] [seed]
#include <cstdlib>
#include <iostream>

#include "arch/zynq.hpp"
#include "baseline/reference.hpp"
#include "core/pa_scheduler.hpp"
#include "core/randomized.hpp"
#include "sched/gantt.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace resched;

  const std::size_t num_tasks =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  // 1. Target platform: the paper's ZedBoard (XC7Z020 + 2 ARM cores).
  const Platform platform = MakeZedBoard();

  // 2. Application: a synthetic task graph in the style of the paper's
  //    benchmark suite (1 SW + 3 Pareto HW implementations per task).
  GeneratorOptions gen;
  gen.num_tasks = num_tasks;
  const Instance instance =
      GenerateInstance(platform, gen, seed, "quickstart");
  std::cout << "Instance: " << instance.graph.NumTasks() << " tasks, "
            << instance.graph.NumEdges() << " edges on "
            << platform.Name() << "\n";
  std::cout << "Critical-path lower bound: "
            << FormatTicks(CriticalPathLowerBound(instance)) << "\n";
  std::cout << "All-software reference:    "
            << FormatTicks(ScheduleAllSoftware(instance).makespan) << "\n\n";

  // 3. Deterministic PA run (fast, one shot).
  const Schedule pa = SchedulePa(instance);
  std::cout << ScheduleSummary(instance, pa) << "\n";
  const ValidationResult pa_check = ValidateSchedule(instance, pa);
  std::cout << "validator: " << pa_check.Summary() << "\n\n";

  // 4. Randomized PA-R run with a 0.5 s budget.
  PaROptions par_options;
  par_options.time_budget_seconds = 0.5;
  par_options.seed = seed;
  const PaRResult par = SchedulePaR(instance, par_options);
  if (par.found) {
    std::cout << ScheduleSummary(instance, par.best) << " ("
              << par.iterations << " iterations)\n";
    const ValidationResult par_check = ValidateSchedule(instance, par.best);
    std::cout << "validator: " << par_check.Summary() << "\n\n";
  } else {
    std::cout << "PA-R found no floorplan-feasible schedule in budget\n\n";
  }

  // 5. Gantt chart of the better schedule.
  const Schedule& best =
      par.found && par.best.makespan < pa.makespan ? par.best : pa;
  std::cout << "Gantt (" << best.algorithm << "):\n"
            << GanttChart(instance, best) << "\n";

  return pa_check.ok() ? 0 : 1;
}
