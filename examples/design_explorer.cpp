// Design-space exploration: how do core count and reconfiguration
// throughput affect the achievable makespan? This drives the library the
// way a system designer would during platform sizing, and also shows the
// PA-R convergence trace API (the data behind the paper's Figure 6).
//
// Usage: design_explorer [num_tasks] [seed] [par_budget_seconds]
#include <cstdlib>
#include <iostream>

#include "arch/zynq.hpp"
#include "core/pa_scheduler.hpp"
#include "core/randomized.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "util/string_util.hpp"

using namespace resched;

int main(int argc, char** argv) {
  const std::size_t num_tasks =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 40;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 99;
  const double budget = argc > 3 ? std::atof(argv[3]) : 1.0;

  GeneratorOptions gen;
  gen.num_tasks = num_tasks;

  // ---- sweep 1: processor count (FPGA fixed at XC7Z020).
  std::cout << "== Core-count sweep (PA, XC7Z020) ==\n";
  std::cout << StrFormat("%8s %14s %8s %12s\n", "cores", "makespan", "#HW",
                         "#regions");
  for (std::size_t cores = 1; cores <= 4; ++cores) {
    const Platform platform =
        Platform("sweep", cores, MakeXc7z020(), 1.024e9);
    const Instance instance =
        GenerateInstance(platform, gen, seed, "sweep_cores");
    const Schedule s = SchedulePa(instance);
    RESCHED_CHECK(ValidateSchedule(instance, s).ok());
    std::cout << StrFormat("%8zu %14s %8zu %12zu\n", cores,
                           FormatTicks(s.makespan).c_str(),
                           s.NumHardwareTasks(), s.regions.size());
  }

  // ---- sweep 2: reconfiguration throughput.
  std::cout << "\n== Reconfiguration-throughput sweep (PA, 2 cores) ==\n";
  std::cout << StrFormat("%12s %14s %14s\n", "recFreq MB/s", "makespan",
                         "reconf total");
  for (const double mbps : {16.0, 32.0, 64.0, 128.0, 256.0, 400.0}) {
    const Platform platform = MakeZedBoard(mbps * 8e6);
    const Instance instance =
        GenerateInstance(platform, gen, seed, "sweep_icap");
    const Schedule s = SchedulePa(instance);
    RESCHED_CHECK(ValidateSchedule(instance, s).ok());
    std::cout << StrFormat("%12.0f %14s %14s\n", mbps,
                           FormatTicks(s.makespan).c_str(),
                           FormatTicks(s.TotalReconfigurationTime()).c_str());
  }

  // ---- PA-R convergence trace on the default platform.
  std::cout << "\n== PA-R convergence (budget " << budget << " s) ==\n";
  const Instance instance =
      GenerateInstance(MakeZedBoard(), gen, seed, "par_trace");
  PaROptions par;
  par.time_budget_seconds = budget;
  par.seed = seed;
  par.record_trace = true;
  const PaRResult result = SchedulePaR(instance, par);
  std::cout << StrFormat("%12s %14s %10s\n", "seconds", "makespan", "iter");
  for (const TracePoint& p : result.trace) {
    std::cout << StrFormat("%12.4f %14s %10zu\n", p.seconds,
                           FormatTicks(p.makespan).c_str(), p.iteration);
  }
  std::cout << result.iterations << " iterations total; best "
            << (result.found ? FormatTicks(result.best.makespan) : "n/a")
            << "\n";
  return 0;
}
