"""AST-grade rules for resched_lint, backed by libclang.

The token rules in resched_lint.py see lines; these rules see scopes,
types and loop structure, which is what the four concurrency/lifetime
properties below actually live in. They are driven by the same
compile_commands.json the build exports (falling back to `-std=c++20
-I src` for standalone headers), and honor the same inline suppression
syntax, `// resched-lint: allow(<rule-id>)`, on the reported line.

Rules:
  arena-escape
      Arena-backed storage must not outlive its arena epoch. Flags
      (a) a class holding ArenaVec/ArenaAllocator-backed fields (by
      value or pointer; reference fields are constructor-bound borrows)
      without owning the MonotonicArena (a field of that type) or
      binding one by contract (a constructor taking MonotonicArena&),
      and (b) a
      function returning a pointer/reference whose return expression
      reaches into an arena (Allocate/arena_) from a scope that does
      not own the arena.
  cancel-poll-coverage
      In cancellation-aware code (a CancelToken parameter, or a body
      that names `cancel`/`CancelToken`), every loop that can run
      unbounded — while/do loops and condition-less for(;;) loops —
      must poll (Cancelled/ThrowIfCancelled) or hand the token to a
      callee, either in its own subtree or in an enclosing loop of the
      same function. Counted for-loops and range-for loops are exempt:
      their trip count bounds them.
  lock-held-over-blocking-call
      A MutexLock/lock_guard/unique_lock in scope must not cover a
      blocking call (socket send/recv, accept, stream flush, getline,
      a scheduler solve, sleep, join...). CondVar::Wait is deliberately
      not blocking here: waiting on a condition *is* the sanctioned way
      to block under a lock. Lambda bodies reset the lock set — a
      lambda runs at an unknown time. The three sanctioned exceptions
      in this repo carry inline allows (see DESIGN.md §11 ledger).
  unannotated-mutex
      Raw std::mutex / std::shared_mutex / std::condition_variable
      declarations outside util/mutex.hpp are invisible to Clang's
      thread-safety analysis; use resched::Mutex / resched::CondVar so
      RESCHED_GUARDED_BY actually proves something.

Availability: requires the libclang python bindings plus the libclang
shared library (the C API — libclang-cpp does not work). When either is
missing, run_ast() reports a skip reason instead of findings; the
driver turns that into a clean exit unless --ast-required is given.
Point RESCHED_LIBCLANG at a specific libclang .so to override probing.
"""

import glob
import os

AST_RULES = (
    "arena-escape",
    "cancel-poll-coverage",
    "lock-held-over-blocking-call",
    "unannotated-mutex",
)

DEFAULT_ARGS = ("-x", "c++", "-std=c++20")

# Lock-guard types whose scope must not cover a blocking call.
LOCK_TYPES = (
    "resched::MutexLock",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
)

# Raw standard-library synchronization types (unannotated-mutex).
RAW_SYNC_TYPES = (
    "std::mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::condition_variable",
)

# Callee spellings that block (or can block for a scheduler-shaped amount
# of time). Holding a lock across any of these stalls every thread behind
# the lock for the duration. CondVar Wait/NotifyOne/NotifyAll are absent
# by design; so is BoundedQueue::Push (bounded-reject, never blocks).
BLOCKING_CALLS = frozenset({
    # socket / fd layer
    "SendAll", "RecvSome", "Accept", "Connect", "SendLine",
    "send", "recv", "accept", "connect", "write", "read", "fsync",
    # stream layer
    "flush", "getline",
    # transport / queue operations that block on a peer
    "ReadLine", "WriteLine", "Receive", "Pop",
    # scheduler entry points: a full solve under a lock serializes the pool
    "Query", "Solve", "SchedulePa", "SchedulePaR", "SchedulePaWarm",
    "FindFirstFit",
    # time / thread
    "sleep_for", "sleep_until", "wait_for", "wait_until", "join",
})

# Tokens that count as polling or forwarding cancellation inside a loop.
CANCEL_COVER_TOKENS = frozenset({"Cancelled", "ThrowIfCancelled", "cancel"})
# Tokens that pull a function into cancel-poll-coverage scope.
CANCEL_SCOPE_TOKENS = frozenset({"cancel", "CancelToken"})

ARENA_CONTAINER_TOKENS = frozenset({"ArenaVec", "ArenaAllocator"})
ARENA_REACH_TOKENS = frozenset({"Allocate", "arena_"})
ARENA_EXEMPT_FILES = ("src/util/arena.hpp",)
MUTEX_EXEMPT_FILES = ("src/util/mutex.hpp", "src/util/annotations.hpp")


def load_cindex():
    """Returns (cindex module, None) or (None, human-readable skip reason).

    Probes RESCHED_LIBCLANG first, then the versioned libclang install
    locations Debian/Ubuntu use. libclang-cpp (the C++ API) is filtered
    out: dlopen succeeds on it but the clang_* C entry points are absent.
    """
    try:
        from clang import cindex
    except Exception as e:  # ImportError, or a broken binding package
        return None, f"python clang bindings unavailable ({e})"

    def try_create(library_file):
        if library_file is not None:
            try:
                cindex.Config.set_library_file(library_file)
            except Exception:
                # A previous probe already loaded something; force the
                # attribute rather than failing the whole AST pass.
                cindex.Config.library_file = library_file
        cindex.Index.create()
        return cindex

    candidates = []
    override = os.environ.get("RESCHED_LIBCLANG")
    if override:
        candidates.append(override)
    else:
        candidates.append(None)  # wherever the bindings look by default
        for pattern in (
                "/usr/lib/llvm-*/lib/libclang.so*",
                "/usr/lib/llvm-*/lib/libclang-*.so*",
                "/usr/lib/*/libclang.so*",
                "/usr/lib/*/libclang-*.so*",
        ):
            candidates.extend(sorted(glob.glob(pattern)))
    candidates = [
        c for c in candidates
        if c is None or not os.path.basename(c).startswith("libclang-cpp")
    ]

    last_error = "no libclang shared library found"
    for candidate in candidates:
        try:
            return try_create(candidate), None
        except Exception as e:
            last_error = str(e) or e.__class__.__name__
    return None, f"libclang shared library unavailable ({last_error})"


def ast_source_files(root, limit_to=None):
    """All src/ translation units + standalone headers, sorted. When
    limit_to (absolute paths) is given, restricts to that set."""
    wanted = None
    if limit_to:
        wanted = {os.path.realpath(p) for p in limit_to}
    out = []
    src = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
        for name in sorted(filenames):
            if not name.endswith((".cpp", ".cc", ".hpp", ".h")):
                continue
            path = os.path.join(dirpath, name)
            if wanted is not None and os.path.realpath(path) not in wanted:
                continue
            out.append(path)
    return out


def _filter_compile_args(argv):
    """Keeps only the flags that affect parsing (-I/-D/-std/-isystem/
    -include) from a compile command; drops the compiler, -c/-o, and the
    source path itself."""
    out = ["-x", "c++"]
    it = iter(list(argv)[1:])
    for arg in it:
        if arg in ("-I", "-isystem", "-include", "-D"):
            value = next(it, None)
            if value is not None:
                out.extend([arg, value])
        elif arg.startswith(("-I", "-D", "-std=", "-isystem", "-include")):
            out.append(arg)
        elif arg in ("-o", "-MF", "-MT", "-MQ"):
            next(it, None)
        # everything else (warnings, optimization, -c, the file) is
        # irrelevant to the AST and dropped
    return out


def _load_compile_db(cindex, root, explicit_path):
    """Opens compile_commands.json (explicit path, else build*/ probe).
    Returns a CompilationDatabase or None; never raises."""
    candidates = []
    if explicit_path:
        candidates.append(explicit_path)
    else:
        for name in ("build", "build-debug", "build-asan", "build-tsan",
                     "build-thread-safety"):
            candidates.append(os.path.join(root, name,
                                           "compile_commands.json"))
    for path in candidates:
        if not os.path.isfile(path):
            continue
        try:
            return cindex.CompilationDatabase.fromDirectory(
                os.path.dirname(path))
        except Exception:
            continue
    return None


def _args_for(root, path, ccdb):
    if ccdb is not None and path.endswith((".cpp", ".cc")):
        try:
            commands = ccdb.getCompileCommands(path)
        except Exception:
            commands = None
        if commands:
            return _filter_compile_args(commands[0].arguments)
    return list(DEFAULT_ARGS) + ["-I", os.path.join(root, "src")]


def _tokens(cursor):
    return [t.spelling for t in cursor.get_tokens()]


def _token_set(cursor):
    return {t.spelling for t in cursor.get_tokens()}


def _canonical(cursor):
    try:
        return cursor.type.get_canonical().spelling or ""
    except Exception:
        return ""


class _FileScope:
    """Cursor filter: only report on cursors spelled in the parsed file
    itself, never in anything it includes."""

    def __init__(self, path):
        self._real = os.path.realpath(path)
        self._cache = {path: True, self._real: True}

    def __call__(self, cursor):
        f = cursor.location.file
        if f is None:
            return False
        name = f.name
        hit = self._cache.get(name)
        if hit is None:
            hit = os.path.realpath(name) == self._real
            self._cache[name] = hit
        return hit


def _function_definitions(ck, tu_cursor, in_file, include_lambdas=False):
    kinds = {ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
             ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE, ck.CONVERSION_FUNCTION}
    if include_lambdas:
        kinds.add(ck.LAMBDA_EXPR)
    for cursor in tu_cursor.walk_preorder():
        if cursor.kind in kinds and in_file(cursor) and cursor.is_definition():
            yield cursor


def _body_of(ck, fn):
    body = None
    for child in fn.get_children():
        if child.kind == ck.COMPOUND_STMT:
            body = child  # the body is the last compound child
    return body


def _class_binds_arena(ck, cls):
    """A class 'owns' its arena storage when it holds the MonotonicArena
    itself, or documents the binding with a MonotonicArena& constructor
    parameter (the PaScratch scratch-family contract)."""
    for child in cls.get_children():
        if child.kind == ck.FIELD_DECL and \
                "MonotonicArena" in _canonical(child):
            return True
        if child.kind == ck.CONSTRUCTOR:
            for param in child.get_children():
                if param.kind == ck.PARM_DECL and \
                        "MonotonicArena" in _canonical(param):
                    return True
    return False


def _enclosing_class_binds_arena(ck, cursor):
    parent = cursor.semantic_parent
    class_kinds = (ck.CLASS_DECL, ck.STRUCT_DECL, ck.CLASS_TEMPLATE,
                   ck.CLASS_TEMPLATE_PARTIAL_SPECIALIZATION)
    while parent is not None and parent.kind in class_kinds:
        if _class_binds_arena(ck, parent):
            return True
        parent = parent.semantic_parent
    return False


# ------------------------------------------------------------ rules --


def _rule_unannotated_mutex(cindex, tu, relpath, in_file, add):
    if relpath in MUTEX_EXEMPT_FILES:
        return
    ck = cindex.CursorKind
    for cursor in tu.cursor.walk_preorder():
        if cursor.kind not in (ck.FIELD_DECL, ck.VAR_DECL):
            continue
        if not in_file(cursor):
            continue
        canonical = _canonical(cursor)
        if any(lock in canonical for lock in LOCK_TYPES):
            continue  # a lock over a std::mutex is the wrapper's business
        if any(raw in canonical for raw in RAW_SYNC_TYPES):
            add(relpath, cursor.location.line, "unannotated-mutex",
                f"raw `{canonical}` declaration `{cursor.spelling}` is "
                "invisible to thread-safety analysis; use resched::Mutex/"
                "CondVar (util/mutex.hpp) with RESCHED_GUARDED_BY")


def _rule_lock_blocking(cindex, tu, relpath, in_file, add):
    ck = cindex.CursorKind

    def declares_lock(decl_stmt):
        for child in decl_stmt.get_children():
            if child.kind == ck.VAR_DECL and \
                    any(lock in _canonical(child) for lock in LOCK_TYPES):
                return True
        return False

    def walk(cursor, active):
        kind = cursor.kind
        if kind == ck.LAMBDA_EXPR:
            # A lambda body runs at an unknown time; it does not inherit
            # the lexical lock set.
            for child in cursor.get_children():
                walk(child, 0)
            return
        if kind == ck.COMPOUND_STMT:
            held = active
            for stmt in cursor.get_children():
                if stmt.kind == ck.DECL_STMT and declares_lock(stmt):
                    held += 1  # guard lives to the end of this compound
                else:
                    walk(stmt, held)
            return
        if kind == ck.CALL_EXPR and active > 0 and \
                cursor.spelling in BLOCKING_CALLS and in_file(cursor):
            add(relpath, cursor.location.line,
                "lock-held-over-blocking-call",
                f"`{cursor.spelling}()` can block while a lock is held; "
                "snapshot under the lock and do the blocking work outside "
                "it (or justify with an inline allow + DESIGN.md ledger "
                "entry)")
        for child in cursor.get_children():
            walk(child, active)

    for fn in _function_definitions(ck, tu.cursor, in_file):
        body = _body_of(ck, fn)
        if body is not None:
            walk(body, 0)


def _rule_cancel_poll(cindex, tu, relpath, in_file, add):
    ck = cindex.CursorKind
    loop_kinds = (ck.WHILE_STMT, ck.DO_STMT, ck.FOR_STMT,
                  ck.CXX_FOR_RANGE_STMT)

    def is_infinite_for(cursor):
        """True for `for (...; ; ...)` — no condition bounds the loop."""
        toks = _tokens(cursor)
        depth = 0
        separators = []
        for i, tok in enumerate(toks):
            if tok in ("(", "[", "{"):
                depth += 1
            elif tok in (")", "]", "}"):
                depth -= 1
                if depth == 0:
                    break
            elif tok == ";" and depth == 1:
                separators.append(i)
                if len(separators) == 2:
                    break
        if len(separators) < 2:
            return False
        cond = toks[separators[0] + 1:separators[1]]
        return not cond or cond == ["true"]

    def in_scope(fn):
        for child in fn.get_children():
            if child.kind == ck.PARM_DECL and \
                    "CancelToken" in _canonical(child):
                return True
        body = _body_of(ck, fn)
        return body is not None and \
            bool(_token_set(body) & CANCEL_SCOPE_TOKENS)

    def walk(cursor, covered):
        if cursor.kind in loop_kinds:
            here = bool(_token_set(cursor) & CANCEL_COVER_TOKENS)
            unbounded = cursor.kind in (ck.WHILE_STMT, ck.DO_STMT) or (
                cursor.kind == ck.FOR_STMT and is_infinite_for(cursor))
            if unbounded and not here and not covered and in_file(cursor):
                add(relpath, cursor.location.line, "cancel-poll-coverage",
                    "unbounded loop in cancellation-aware code never polls "
                    "the CancelToken; poll Cancelled()/ThrowIfCancelled() "
                    "or pass the token to the work it runs")
            covered = covered or here
        for child in cursor.get_children():
            walk(child, covered)

    for fn in _function_definitions(ck, tu.cursor, in_file):
        body = _body_of(ck, fn)
        if body is not None and in_scope(fn):
            walk(body, False)


def _rule_arena_escape(cindex, tu, relpath, in_file, add):
    if relpath in ARENA_EXEMPT_FILES:
        return
    ck = cindex.CursorKind
    tk = cindex.TypeKind
    class_kinds = (ck.CLASS_DECL, ck.STRUCT_DECL, ck.CLASS_TEMPLATE)

    # (a) arena-backed fields in a class that neither owns nor binds the
    # arena: the storage dies with someone else's Reset().
    for cursor in tu.cursor.walk_preorder():
        if cursor.kind not in class_kinds or not in_file(cursor) or \
                not cursor.is_definition():
            continue
        if _class_binds_arena(ck, cursor) or \
                _enclosing_class_binds_arena(ck, cursor):
            continue
        for field in cursor.get_children():
            if field.kind != ck.FIELD_DECL:
                continue
            try:
                # Reference fields are borrows, bound explicitly at
                # construction (the view-class idiom); only value and
                # pointer fields can cache storage past the epoch.
                if field.type.get_canonical().kind == tk.LVALUEREFERENCE:
                    continue
            except Exception:
                pass
            mentions = _token_set(field) | {_canonical(field)}
            if any(t in ARENA_CONTAINER_TOKENS for t in mentions) or \
                    "ArenaAllocator" in _canonical(field):
                add(relpath, field.location.line, "arena-escape",
                    f"arena-backed field `{field.spelling}` in a class "
                    "that neither owns a MonotonicArena nor binds one in "
                    "its constructor; the storage dies with someone "
                    "else's arena Reset()")

    # (b) pointer/reference returns that reach into an arena from a
    # non-owning scope.
    for fn in _function_definitions(ck, tu.cursor, in_file):
        try:
            result_kind = fn.result_type.get_canonical().kind
        except Exception:
            continue
        if result_kind not in (tk.POINTER, tk.LVALUEREFERENCE,
                               tk.RVALUEREFERENCE):
            continue
        if _enclosing_class_binds_arena(ck, fn):
            continue  # the owner's accessors are the sanctioned API
        body = _body_of(ck, fn)
        if body is None:
            continue
        for cursor in body.walk_preorder():
            if cursor.kind == ck.RETURN_STMT and in_file(cursor) and \
                    _token_set(cursor) & ARENA_REACH_TOKENS:
                add(relpath, cursor.location.line, "arena-escape",
                    "returns a pointer/reference into arena storage from "
                    "a scope that does not own the arena; the caller "
                    "outlives the arena epoch")


# ----------------------------------------------------------- driver --


def run_ast(root, limit_to=None, compile_commands=None):
    """Runs the four AST rules over src/.

    Returns (findings, skip_reason, parsed_count) where findings is a
    list of (relpath, line, rule, message) tuples. skip_reason is set —
    and findings empty — when libclang cannot be loaded. Parse problems
    surface as `ast-parse-error` findings so CI cannot silently analyze
    nothing.
    """
    cindex, reason = load_cindex()
    if cindex is None:
        return [], reason, 0

    index = cindex.Index.create()
    ccdb = _load_compile_db(cindex, root, compile_commands)
    fatal = cindex.Diagnostic.Fatal

    findings = []
    seen = set()

    def add(relpath, line, rule, message):
        key = (relpath, line, rule)
        if key not in seen:
            seen.add(key)
            findings.append((relpath, line, rule, message))

    parsed = 0
    for path in ast_source_files(root, limit_to):
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        try:
            tu = index.parse(path, args=_args_for(root, path, ccdb))
        except Exception as e:
            add(relpath, 1, "ast-parse-error", f"libclang failed: {e}")
            continue
        bad = [d for d in tu.diagnostics if d.severity >= fatal]
        if bad:
            add(relpath, bad[0].location.line, "ast-parse-error",
                f"fatal parse diagnostic: {bad[0].spelling} (fix the "
                "include paths in compile_commands.json / -I)")
            continue
        parsed += 1
        in_file = _FileScope(path)
        _rule_unannotated_mutex(cindex, tu, relpath, in_file, add)
        _rule_lock_blocking(cindex, tu, relpath, in_file, add)
        _rule_cancel_poll(cindex, tu, relpath, in_file, add)
        _rule_arena_escape(cindex, tu, relpath, in_file, add)
    return findings, None, parsed
