#!/usr/bin/env python3
"""resched_lint: repo-specific correctness lint for the resched codebase.

The compiler cannot see two properties this project depends on:

 * Determinism — every scheduler run with the same seed must produce
   bit-for-bit identical output (the CLI regression test diffs two runs).
   Wall-clock seeds, the global C PRNG and hardware entropy sources break
   that silently, as does emitting anything in the iteration order of an
   unordered container.
 * Include/ownership hygiene — header cycles and naked new/delete outside
   src/util/ tend to creep in through refactors and only hurt much later.

Rules:
  no-std-rand               std::rand/srand use hidden global state and are
                            not reproducible across libcs; use util/rng.hpp.
  no-wall-clock-seed        time(nullptr)/time(NULL)/time(0) as a seed makes
                            runs unreproducible; take seeds from options.
  no-argless-random-device  a default-constructed std::random_device pulls
                            hardware entropy; seeds must come from flags.
  no-unordered-in-output    IO/report paths must not touch unordered
                            containers: iteration order is unspecified, so
                            emitted files stop being diffable.
  pragma-once               every header must carry #pragma once.
  include-cycle             the repo-relative include graph must be acyclic.
  no-naked-new              naked new/delete outside src/util/; use
                            containers or smart pointers.
  no-silent-catch           a `catch (...)` that neither rethrows nor logs
                            swallows failures the fault-injection layer is
                            supposed to surface; rethrow, log, or narrow
                            the handler.
  no-adhoc-seed-derivation  HashCombine on seed values outside src/util/
                            recreates the per-trial seeding scheme ad hoc;
                            use DeriveSeed(stream, index) with a named
                            stream tag (util/rng.hpp) so stream separation
                            stays auditable. (Found the hard way: PA-R
                            seeded workers with HashCombine(seed, w), tying
                            results to the thread count.)
  no-unchecked-syscall-return
                            in the service/transport layer (src/service/,
                            src/util/socket.*) a POSIX call whose result is
                            discarded at statement position hides partial
                            writes and failed closes from the daemon; check
                            the return or cast to (void) deliberately.
  no-unchecked-stream-write
                            in src/service/ an iostream that is written
                            (<< or .write()) but whose state is never
                            checked (!stream / good() / fail() / bad())
                            turns disk-full and short-write failures into
                            silently dropped journal records; check the
                            stream, or use the fd-based journal writer
                            which reports JournalError.
  no-vector-bool-hot        std::vector<bool> in the scheduling hot path
                            (src/core/, src/floorplan/): the proxy-reference
                            bit representation defeats byte indexing and
                            vectorization; use std::vector<char> or a
                            word-packed timeline (util/timeline.hpp).
  reserve-before-push-hot   per-element push_back/emplace_back inside a loop
                            in src/core/ / src/floorplan/ on a container the
                            file never reserve()s, resize()s, assign()s or
                            clear()s reallocates on the hot path; size it
                            up front, or clear-and-refill a reused buffer
                            so capacity persists.
  no-raw-intrinsics-outside-simd
                            raw SIMD intrinsics (_mm*/vld1q*/vst1q*/
                            __builtin_ia32_*/__m128-style vector types)
                            anywhere but src/util/simd.hpp: the dispatch
                            layer there is the single place allowed to
                            touch ISA-specific code, so every variant stays
                            behind the runtime-selected kernel table and
                            the scalar oracle keeps its differential-test
                            coverage. Route new vector code through
                            simd::KernelTable.

AST rules (--ast; libclang-backed, see resched_lint_ast.py for the full
rule prose; they skip with a notice when libclang is unavailable, and
--ast-required turns that skip into a failure for CI):
  arena-escape              arena-backed storage held or returned by a
                            scope that does not own the arena.
  cancel-poll-coverage      unbounded loops in cancellation-aware code
                            that never poll the CancelToken.
  lock-held-over-blocking-call
                            a lock scope covering a blocking call
                            (socket I/O, flush, a full solve, join...).
  unannotated-mutex         raw std::mutex/std::condition_variable
                            outside util/mutex.hpp, invisible to Clang
                            thread-safety analysis.

Suppress a finding by appending to the offending line:
    // resched-lint: allow(<rule-id>)

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
"""

import argparse
import os
import re
import sys

SOURCE_DIRS = ("src", "tools", "tests", "bench", "examples")
SOURCE_EXTS = (".cpp", ".hpp", ".cc", ".h")

# Paths (relative, '/'-separated) whose job is emitting human- or
# machine-readable output; iteration order leaks straight into files here.
OUTPUT_PATH_PREFIXES = ("src/io/", "tools/")
OUTPUT_PATH_FILES = (
    "src/sched/gantt.cpp",
    "src/sched/gantt.hpp",
    "src/sched/svg.cpp",
    "src/sched/svg.hpp",
    "src/sched/metrics.cpp",
    "src/sched/metrics.hpp",
    "src/util/csv.cpp",
    "src/util/csv.hpp",
    "src/util/json.cpp",
    "src/util/json.hpp",
)

SUPPRESS_RE = re.compile(r"//\s*resched-lint:\s*allow\(([a-zA-Z0-9_,\s-]+)\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Replaces comments, string and char literals with spaces, preserving
    line structure, so token rules cannot fire inside prose or literals."""
    out = []
    i = 0
    n = len(text)
    state = "code"
    raw_delim = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"' and re.search(r'R"[^(]*\($', text[max(0, i - 16):i + 1]):
                m = re.search(r'R"([^(]*)\($', text[max(0, i - 16):i + 1])
                raw_delim = ')' + m.group(1) + '"'
                state = "raw_string"
                out.append('"')
                i += 1
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append('"')
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                out.append('"' + " " * (len(raw_delim) - 1))
                i += len(raw_delim)
                state = "code"
                raw_delim = None
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


# (rule, compiled regex, message). Applied per stripped line.
TOKEN_RULES = [
    (
        "no-std-rand",
        re.compile(r"\bstd\s*::\s*rand\b|(?<![\w:])srand\s*\("),
        "std::rand/srand break seeded reproducibility; use resched::Rng "
        "(util/rng.hpp)",
    ),
    (
        "no-wall-clock-seed",
        re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)"),
        "wall-clock seeding makes runs unreproducible; thread the seed "
        "through options/flags",
    ),
    (
        "no-argless-random-device",
        re.compile(r"\bstd\s*::\s*random_device\b(?!\s*[({]\s*\")"),
        "default-constructed std::random_device draws hardware entropy; "
        "seeds must be explicit",
    ),
]

UNORDERED_RE = re.compile(
    r"\bunordered_(map|set|multimap|multiset)\b")

NAKED_NEW_RE = re.compile(r"(?<![\w.:])new\b(?!\s*\()")
NAKED_DELETE_RE = re.compile(r"(?<![\w.:])delete\b(?!\s*[;)\]],?)")
DELETED_FN_RE = re.compile(r"=\s*delete\b")

# Ad-hoc seed derivation: HashCombine applied to something seed-like. The
# sanctioned derivation lives in src/util/rng.* (DeriveSeed + stream tags),
# so the rule skips src/util/.
ADHOC_SEED_RE = re.compile(r"\bHashCombine\s*\(")
SEEDISH_RE = re.compile(r"seed", re.IGNORECASE)

# POSIX calls in statement position (preceded by ; { or } modulo
# whitespace) discard their return value. `(void)::close(fd)` and
# `if (::bind(...) != 0)` do not match; a continuation line of an
# assignment does not match either (the preceding char is not a
# statement delimiter). Scoped to the service/transport layer.
SYSCALL_STMT_RE = re.compile(
    r"(?<=[;{}])\s*(::\s*)?"
    r"(close|write|read|unlink|bind|listen|accept|connect|send|recv"
    r"|setsockopt|fsync|ftruncate|chmod)\s*\(")
SYSCALL_SCOPE_PREFIXES = ("src/service/", "src/util/socket")

# File-stream writes in the service layer must check stream state: an
# ofstream swallows write failures (disk full, quota) until someone asks.
# Matches `ofstream out` / `fstream out` declarations; `ifstream` (reads)
# is exempt — a failed read is visible to the parser consuming it.
STREAM_DECL_RE = re.compile(r"\bo?fstream\s+([A-Za-z_]\w*)")
STREAM_SCOPE_PREFIXES = ("src/service/",)

# TCP payloads must go through the RSF framing layer (service/framing.hpp):
# one raw send on a framed connection desynchronizes the peer's frame
# parser for the rest of the connection. Scoped to the router and the TCP
# server transport; the unix-socket transport's newline protocol carries an
# explicit per-line allow.
UNFRAMED_WRITE_RE = re.compile(
    r"(?:\.|->)\s*(?:SendAll|RecvSome)\s*\(|::\s*(?:send|recv)\s*\(")
UNFRAMED_SCOPE_PREFIXES = ("src/router/",)
UNFRAMED_SCOPE_FILES = ("src/service/transport.cpp",)

# Hot-path scheduling code: per-restart cost here is multiplied by the
# restart count, so representation and allocation discipline are linted.
HOT_PATH_PREFIXES = ("src/core/", "src/floorplan/")

# Raw SIMD intrinsics and ISA vector types. Only the dispatch layer may
# contain them; everything else goes through simd::KernelTable.
INTRINSIC_RE = re.compile(
    r"(?<![\w])(_mm\d*_\w+|vld[1-4]q?_\w+|vst[1-4]q?_\w+"
    r"|v(?:orr|and|eor|dup|get|set|ceq|min|max|add|sub)q?\w*_[usf]\d+\b"
    r"|__builtin_ia32_\w+|__m(?:64|128|256|512)[id]?\b"
    r"|(?:uint|int|float)(?:8|16|32|64)x\d+_t\b)")
SIMD_LAYER_FILE = "src/util/simd.hpp"

VECTOR_BOOL_RE = re.compile(r"\bvector\s*<\s*bool\s*>")

LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
PUSH_RE = re.compile(
    r"([A-Za-z_][A-Za-z0-9_]*(?:(?:\.|->)[A-Za-z_][A-Za-z0-9_]*"
    r"|\[[^][]*\])*)\s*(?:\.|->)\s*(?:push_back|emplace_back)\s*\(")
# Evidence that the container's capacity is managed deliberately: an
# up-front reserve/resize/assign, or clear() (the reuse pattern — capacity
# persists across Reset, so steady-state push_back never reallocates).
CAPACITY_FNS = r"(?:reserve|resize|assign|clear)"

CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
# Tokens that make a catch-all handler acceptable: it propagates the
# failure (throw / rethrow_exception), captures it for someone else
# (current_exception), reports it (cerr / Log* / fprintf / printf), or
# dies loudly (abort).
CATCH_HANDLED_RE = re.compile(
    r"\bthrow\b|\brethrow_exception\b|\bcurrent_exception\b|\bcerr\b"
    r"|\bLog\w*\s*\(|\bfprintf\s*\(|\bprintf\s*\(|\babort\s*\(")


def _matching(text, pos, open_ch, close_ch):
    """Index just past the delimiter closing text[pos] (== open_ch), or -1."""
    depth = 0
    for i in range(pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def lint_unreserved_push(stripped, report):
    """Flags loop-body push_back/emplace_back on containers whose capacity
    the file never manages (no reserve/resize/assign/clear on the same
    expression). Operates on stripped text; nested loops dedupe by line."""
    seen = set()
    for m in LOOP_RE.finditer(stripped):
        paren_open = stripped.find("(", m.start())
        after_cond = _matching(stripped, paren_open, "(", ")")
        if after_cond < 0:
            continue
        body_start = after_cond
        while body_start < len(stripped) and stripped[body_start].isspace():
            body_start += 1
        if body_start >= len(stripped):
            continue
        if stripped[body_start] == "{":
            body_end = _matching(stripped, body_start, "{", "}")
        else:  # single-statement loop body
            body_end = stripped.find(";", body_start) + 1
        if body_end <= 0:
            continue
        body = stripped[body_start:body_end]
        for pm in PUSH_RE.finditer(body):
            name = pm.group(1)
            lineno = stripped.count("\n", 0, body_start + pm.start(1)) + 1
            if (lineno, name) in seen:
                continue
            seen.add((lineno, name))
            evidence = re.compile(
                re.escape(name) + r"\s*(?:\.|->)\s*" + CAPACITY_FNS +
                r"\s*\(")
            if not evidence.search(stripped):
                report(
                    lineno, "reserve-before-push-hot",
                    f"loop-body push_back on `{name}` with no reserve/"
                    "resize/assign/clear in this file reallocates on the "
                    "hot path; size it up front or reuse a cleared buffer")


def lint_unchecked_syscalls(stripped, report):
    """Flags POSIX calls whose return value is discarded at statement
    position. Works on the full stripped text so multi-line statements
    (continuation lines of an assignment) cannot false-positive."""
    for m in SYSCALL_STMT_RE.finditer(stripped):
        lineno = stripped.count("\n", 0, m.start(2)) + 1
        report(
            lineno, "no-unchecked-syscall-return",
            f"return value of {m.group(2)}() is discarded; handle the "
            "failure or cast to (void) deliberately")


def lint_unchecked_stream_writes(stripped, report):
    """Flags file streams that are written but never state-checked. For
    every `ofstream`/`fstream` declaration, a `<<` or `.write()` on that
    name with no `!name` / `name.good()` / `name.fail()` / `name.bad()`
    anywhere in the file means write failures (ENOSPC, quota) vanish —
    fatal for anything journal-shaped. Works on stripped text, so names in
    strings or comments cannot trigger or satisfy the rule."""
    seen = set()
    for m in STREAM_DECL_RE.finditer(stripped):
        name = m.group(1)
        if name in seen:
            continue
        seen.add(name)
        escaped = re.escape(name)
        write_re = re.compile(
            rf"\b{escaped}\s*(?:<<|\.\s*write\s*\()")
        evidence_re = re.compile(
            rf"!\s*{escaped}\b"
            rf"|\b{escaped}\s*\.\s*(?:good|fail|bad)\s*\(")
        first = write_re.search(stripped, m.end())
        if first and not evidence_re.search(stripped):
            lineno = stripped.count("\n", 0, first.start()) + 1
            report(
                lineno, "no-unchecked-stream-write",
                f"`{name}` is written but its stream state is never "
                "checked; a full disk silently drops records — test "
                f"!{name} or {name}.good() after writing")


def lint_silent_catches(relpath, stripped, report):
    """Flags `catch (...)` blocks whose body neither rethrows, captures,
    logs, nor aborts. Operates on comment/string-stripped text so literals
    cannot satisfy (or trigger) the rule."""
    for m in CATCH_ALL_RE.finditer(stripped):
        open_brace = stripped.find("{", m.end())
        if open_brace < 0:
            continue
        # Nothing but whitespace may sit between the ) and the {.
        if stripped[m.end():open_brace].strip():
            continue
        depth = 0
        pos = open_brace
        while pos < len(stripped):
            if stripped[pos] == "{":
                depth += 1
            elif stripped[pos] == "}":
                depth -= 1
                if depth == 0:
                    break
            pos += 1
        body = stripped[open_brace:pos + 1]
        if not CATCH_HANDLED_RE.search(body):
            lineno = stripped.count("\n", 0, m.start()) + 1
            report(
                lineno, "no-silent-catch",
                "catch (...) that neither rethrows nor logs swallows "
                "failures silently; rethrow, log, or narrow the handler")


def rel(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


def iter_source_files(root):
    for top in SOURCE_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def suppressions(raw_lines):
    """Maps line number (1-based) -> set of allowed rule ids."""
    allowed = {}
    for i, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            allowed[i] = {r.strip() for r in m.group(1).split(",")}
    return allowed


def is_output_path(relpath):
    return relpath.startswith(OUTPUT_PATH_PREFIXES) or \
        relpath in OUTPUT_PATH_FILES


def lint_file(path, root, findings):
    relpath = rel(path, root)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        findings.append(Finding(relpath, 0, "io-error", str(e)))
        return
    raw_lines = raw.splitlines()
    allowed = suppressions(raw_lines)
    stripped = strip_comments_and_strings(raw)
    stripped_lines = stripped.splitlines()

    def report(lineno, rule, message):
        if rule not in allowed.get(lineno, ()):  # suppressed?
            findings.append(Finding(relpath, lineno, rule, message))

    for lineno, line in enumerate(stripped_lines, start=1):
        for rule, regex, message in TOKEN_RULES:
            if regex.search(line):
                report(lineno, rule, message)
        if is_output_path(relpath) and UNORDERED_RE.search(line):
            report(
                lineno, "no-unordered-in-output",
                "unordered containers have unspecified iteration order; "
                "output paths must use std::map/std::set or sort first")
        if not relpath.startswith("src/util/") and \
                ADHOC_SEED_RE.search(line) and SEEDISH_RE.search(line):
            report(
                lineno, "no-adhoc-seed-derivation",
                "ad-hoc HashCombine seed derivation; use "
                "DeriveSeed(stream, index) with a named stream tag "
                "(util/rng.hpp)")
        if relpath != SIMD_LAYER_FILE and INTRINSIC_RE.search(line):
            report(
                lineno, "no-raw-intrinsics-outside-simd",
                "raw SIMD intrinsic outside src/util/simd.hpp; add a "
                "kernel to simd::KernelTable so it stays behind runtime "
                "dispatch and the scalar differential tests")
        if relpath.startswith(HOT_PATH_PREFIXES) and \
                VECTOR_BOOL_RE.search(line):
            report(
                lineno, "no-vector-bool-hot",
                "std::vector<bool> in hot-path code; use std::vector<char> "
                "or a word-packed timeline (util/timeline.hpp)")
        if relpath.startswith("src/") and \
                not relpath.startswith("src/util/"):
            if NAKED_NEW_RE.search(line):
                report(
                    lineno, "no-naked-new",
                    "naked `new` outside src/util/; use containers or "
                    "std::make_unique")
            if NAKED_DELETE_RE.search(line) and \
                    not DELETED_FN_RE.search(line):
                report(
                    lineno, "no-naked-new",
                    "naked `delete` outside src/util/; use RAII owners")
        if (relpath.startswith(UNFRAMED_SCOPE_PREFIXES) or
                relpath in UNFRAMED_SCOPE_FILES) and \
                UNFRAMED_WRITE_RE.search(line):
            report(
                lineno, "no-unframed-tcp-write",
                "raw socket send/recv in framed-TCP code; go through "
                "WriteFrame/FrameReader (service/framing.hpp) so the "
                "peer's frame parser stays in sync")

    lint_silent_catches(relpath, stripped, report)
    if relpath.startswith(SYSCALL_SCOPE_PREFIXES):
        lint_unchecked_syscalls(stripped, report)
    if relpath.startswith(STREAM_SCOPE_PREFIXES):
        lint_unchecked_stream_writes(stripped, report)
    if relpath.startswith(HOT_PATH_PREFIXES):
        lint_unreserved_push(stripped, report)

    if relpath.endswith((".hpp", ".h")):
        if not any(PRAGMA_ONCE_RE.match(l) for l in raw_lines):
            report(1, "pragma-once", "header is missing #pragma once")


def lint_include_cycles(root, findings):
    """Builds the repo-relative include graph over src/ (includes are written
    relative to src/, e.g. "core/options.hpp") and rejects cycles."""
    src = os.path.join(root, "src")
    graph = {}
    if not os.path.isdir(src):
        return
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTS):
                continue
            path = os.path.join(dirpath, name)
            node = rel(path, src)
            edges = []
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    for line in f:
                        m = INCLUDE_RE.match(line)
                        if m and os.path.isfile(os.path.join(src, m.group(1))):
                            edges.append(m.group(1))
            except OSError:
                continue
            graph[node] = edges

    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack = []

    def dfs(node):
        color[node] = GREY
        stack.append(node)
        for dep in graph.get(node, ()):
            if color.get(dep, WHITE) == GREY:
                cycle = stack[stack.index(dep):] + [dep]
                findings.append(Finding(
                    "src/" + dep, 1, "include-cycle",
                    "include cycle: " + " -> ".join(cycle)))
            elif color.get(dep, WHITE) == WHITE and dep in graph:
                dfs(dep)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)


def main(argv):
    parser = argparse.ArgumentParser(
        prog="resched_lint",
        description="repo-specific determinism and hygiene lint")
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root to scan (default: this script's repo)")
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit")
    parser.add_argument(
        "--ast", action="store_true",
        help="also run the libclang AST rules over src/ (skips with a "
        "notice when libclang is unavailable)")
    parser.add_argument(
        "--ast-required", action="store_true",
        help="with --ast: fail instead of skipping when libclang is "
        "unavailable (CI uses this)")
    parser.add_argument(
        "--compile-commands", default=None, metavar="PATH",
        help="compile_commands.json for the AST rules (default: probe "
        "build*/ under --root)")
    parser.add_argument(
        "files", nargs="*",
        help="limit the per-file rules to these files (include-cycle still "
        "scans the whole graph)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, _, _ in TOKEN_RULES:
            print(rule)
        for rule in ("no-unordered-in-output", "pragma-once",
                     "include-cycle", "no-naked-new", "no-silent-catch",
                     "no-adhoc-seed-derivation",
                     "no-unchecked-syscall-return",
                     "no-unchecked-stream-write", "no-vector-bool-hot",
                     "reserve-before-push-hot",
                     "no-raw-intrinsics-outside-simd",
                     "no-unframed-tcp-write"):
            print(rule)
        from resched_lint_ast import AST_RULES
        for rule in AST_RULES:
            print(rule)
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"resched_lint: no such directory: {root}", file=sys.stderr)
        return 2

    findings = []
    files = [os.path.abspath(f) for f in args.files] or \
        list(iter_source_files(root))
    for path in files:
        lint_file(path, root, findings)
    lint_include_cycles(root, findings)

    if args.ast:
        from resched_lint_ast import run_ast
        limit = [os.path.abspath(f) for f in args.files] or None
        ast_findings, skip_reason, parsed = run_ast(
            root, limit_to=limit, compile_commands=args.compile_commands)
        if skip_reason is not None:
            print(f"resched_lint: AST rules skipped ({skip_reason}); "
                  "token rules unaffected", file=sys.stderr)
            if args.ast_required:
                print("resched_lint: --ast-required set: treating the "
                      "skip as a failure", file=sys.stderr)
                return 2
        else:
            print(f"resched_lint: AST rules ran over {parsed} "
                  "translation unit(s)", file=sys.stderr)
            suppression_cache = {}
            for relpath, lineno, rule, message in ast_findings:
                allowed = suppression_cache.get(relpath)
                if allowed is None:
                    try:
                        with open(os.path.join(root, relpath),
                                  encoding="utf-8", errors="replace") as f:
                            allowed = suppressions(f.read().splitlines())
                    except OSError:
                        allowed = {}
                    suppression_cache[relpath] = allowed
                if rule not in allowed.get(lineno, ()):
                    findings.append(Finding(relpath, lineno, rule, message))

    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(finding)
    if findings:
        print(f"resched_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
