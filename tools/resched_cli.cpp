// resched_cli — command-line front end for the whole library.
//
//   resched_cli gen      --tasks N [--seed S] [--cores C] [--recfreq-mbps M]
//                        [--share-prob P] [--out instance.json]
//   resched_cli schedule --instance f.json
//                        --algo pa|par|pals|is1|is5|grid|allsw
//                        [--budget SECONDS] [--threads T] [--seed S]
//                        [--frames K] [--slots N (grid)] [--module-reuse]
//                        [--no-balancing]
//                        [--no-floorplan] [--metrics]
//                        [--format summary|table|gantt|json|svg]
//                        [--out schedule.json] [--svg-out chart.svg]
//                        [--floorplan-svg-out fp.svg]
//   resched_cli import-stg --stg f.stg [--cores C] [--recfreq-mbps M]
//                        [--speedup S] [--hw-impls K] [--out instance.json]
//   resched_cli validate --instance f.json --schedule s.json
//   resched_cli simulate --instance f.json --schedule s.json
//                        [--faults fs.json | --fault-rate R]
//                        [--trials N] [--policy retry|swfallback|suffix]
//                        [--seed S] [--jitter J] [--scenario-out fs.json]
//   resched_cli info     --instance f.json
//   resched_cli dot      --instance f.json
//   resched_cli serve    (--socket PATH | --port N | --stdio) [--workers N]
//                        [--queue N] [--no-result-cache]
//                        [--no-floorplan-cache] [--journal f.jsonl]
//                        [--tenant-weights a=4,b=1] [--tenant-inflight N]
//                        [--metrics-out f.prom] [--metrics-interval-ms MS]
//   resched_cli submit   (--print | --socket PATH | --tcp HOST:PORT)
//                        [--verb V] [--id ID] [--tenant NAME]
//                        [--instance f.json] [--algo A] [--seed S]
//                        [--iterations N] [--budget SEC] [--deadline-ms MS]
//                        [--no-cache] [--trials N] [--fault-rate R]
//                        [--policy P] [--jitter J] [--target ID]
//   resched_cli route    (--socket PATH | --port N | --stdio)
//                        --backends host:port[:weight],...
//                        [--attempts N] [--probe-interval-ms MS]
//                        [--route-queue N] [--vnodes N]
//                        [--metrics-out f.prom] [--metrics-interval-ms MS]
//   resched_cli replay   --journal f.jsonl
//   resched_cli --version
//
// Exit status: 0 on success (and, for validate, a valid schedule; for
// simulate, all trials surviving with valid executed schedules; for
// submit, an ok response; for replay, zero mismatches), 1 on a
// validation failure, 2 on usage errors.
#include <fstream>
#include <iostream>

#include "arch/zynq.hpp"
#include "baseline/fixed_grid.hpp"
#include "baseline/isk_scheduler.hpp"
#include "baseline/reference.hpp"
#include "core/local_search.hpp"
#include "core/pa_scheduler.hpp"
#include "core/randomized.hpp"
#include "io/fault_io.hpp"
#include "io/instance_io.hpp"
#include "io/schedule_io.hpp"
#include "io/stg_io.hpp"
#include "sched/gantt.hpp"
#include "sched/svg.hpp"
#include "sched/metrics.hpp"
#include "router/router.hpp"
#include "sched/validator.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "sim/executor.hpp"
#include "taskgraph/analysis.hpp"
#include "taskgraph/dot.hpp"
#include "taskgraph/replicate.hpp"
#include "taskgraph/generator.hpp"
#include "util/build_info.hpp"
#include "util/flags.hpp"
#include "util/socket.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

namespace resched::cli {
namespace {

int Usage() {
  std::cerr <<
      "usage:\n"
      "  resched_cli gen      --tasks N [--seed S] [--cores C]\n"
      "                       [--recfreq-mbps M] [--share-prob P]\n"
      "                       [--out instance.json]\n"
      "  resched_cli schedule --instance f.json --algo "
      "pa|par|pals|is1|is5|grid|allsw\n"
      "                       [--frames K] [--metrics]\n"
      "                       [--budget SEC] [--threads T] [--seed S]\n"
      "                       [--module-reuse] [--no-balancing]\n"
      "                       [--no-floorplan] [--fp-order enum|learned]\n"
      "                       [--format summary|table|gantt|json|svg]\n"
      "                       [--out schedule.json] [--svg-out f.svg]\n"
      "                       [--floorplan-svg-out f.svg]\n"
      "  resched_cli import-stg --stg f.stg [--cores C]\n"
      "                       [--recfreq-mbps M] [--speedup S]\n"
      "                       [--hw-impls K] [--out instance.json]\n"
      "  resched_cli validate --instance f.json --schedule s.json\n"
      "  resched_cli simulate --instance f.json --schedule s.json\n"
      "                       [--faults fs.json | --fault-rate R]\n"
      "                       [--trials N] [--policy retry|swfallback|suffix]\n"
      "                       [--seed S] [--jitter J]\n"
      "                       [--scenario-out fs.json]\n"
      "  resched_cli info     --instance f.json\n"
      "  resched_cli dot      --instance f.json\n"
      "  resched_cli serve    (--socket PATH | --port N | --stdio)\n"
      "                       [--host H] [--workers N]\n"
      "                       [--queue N] [--no-result-cache]\n"
      "                       [--no-floorplan-cache] [--journal f.jsonl]\n"
      "                       [--journal-sync none|batch|always]\n"
      "                       [--warm-start f.jsonl]\n"
      "                       [--tenant-weights a=4,b=1]\n"
      "                       [--tenant-inflight N]\n"
      "                       [--metrics-out f.prom]\n"
      "                       [--metrics-interval-ms MS]\n"
      "  resched_cli submit   (--print | --socket PATH | --tcp HOST:PORT)\n"
      "                       [--verb V] [--id ID] [--tenant NAME]\n"
      "                       [--instance f.json] [--algo A] [--seed S]\n"
      "                       [--iterations N] [--budget SEC]\n"
      "                       [--deadline-ms MS] [--no-cache] [--trials N]\n"
      "                       [--fault-rate R] [--policy P] [--jitter J]\n"
      "                       [--target ID] [--retries N] [--backoff-ms MS]\n"
      "  resched_cli route    (--socket PATH | --port N | --stdio)\n"
      "                       --backends host:port[:weight],...\n"
      "                       [--host H] [--attempts N]\n"
      "                       [--probe-interval-ms MS] [--route-queue N]\n"
      "                       [--vnodes N] [--metrics-out f.prom]\n"
      "                       [--metrics-interval-ms MS]\n"
      "  resched_cli replay   --journal f.jsonl\n"
      "  resched_cli --version\n";
  return 2;
}

Instance LoadInstanceFlag(const Flags& flags) {
  const std::string path = flags.GetString("instance", "");
  if (path.empty()) throw FlagError("--instance is required");
  return LoadInstance(path);
}

int CmdGen(const Flags& flags) {
  GeneratorOptions gen;
  gen.num_tasks = static_cast<std::size_t>(flags.GetInt("tasks", 20));
  gen.share_prob = flags.GetDouble("share-prob", gen.share_prob);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const auto cores = static_cast<std::size_t>(flags.GetInt("cores", 2));
  const double mbps = flags.GetDouble("recfreq-mbps", 32.0);

  const Platform platform =
      MakeZedBoard(mbps * 8e6).WithProcessors(cores);
  const Instance instance = GenerateInstance(
      platform, gen, seed, StrFormat("gen_n%zu_s%llu", gen.num_tasks,
                                     static_cast<unsigned long long>(seed)));

  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::cout << InstanceToString(instance) << "\n";
  } else {
    SaveInstance(instance, out);
    std::cout << "wrote " << out << " (" << instance.graph.NumTasks()
              << " tasks, " << instance.graph.NumEdges() << " edges)\n";
  }
  return 0;
}

int CmdSchedule(const Flags& flags) {
  Instance instance = LoadInstanceFlag(flags);
  const auto frames =
      static_cast<std::size_t>(flags.GetInt("frames", 1));
  if (frames > 1) {
    UnrollOptions unroll;
    unroll.frames = frames;
    instance = UnrollPeriodic(instance, unroll);
    std::cerr << "unrolled to " << frames << " frames ("
              << instance.graph.NumTasks() << " tasks)\n";
  }
  const std::string algo = flags.GetString("algo", "pa");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  PaOptions pa_options;
  pa_options.module_reuse = flags.GetBool("module-reuse", false);
  pa_options.sw_balancing = !flags.GetBool("no-balancing", false);
  pa_options.run_floorplan = !flags.GetBool("no-floorplan", false);
  pa_options.seed = seed;
  const std::string fp_order = flags.GetString("fp-order", "enum");
  if (fp_order == "learned") {
    pa_options.floorplan.value_order = FpValueOrder::kLearned;
  } else if (fp_order != "enum") {
    std::cerr << "unknown --fp-order " << fp_order
              << " (expected enum|learned)\n";
    return 2;
  }

  Schedule schedule;
  if (algo == "pa") {
    schedule = SchedulePa(instance, pa_options);
  } else if (algo == "par") {
    PaROptions par_options;
    par_options.base = pa_options;
    par_options.time_budget_seconds = flags.GetDouble("budget", 1.0);
    par_options.threads =
        static_cast<std::size_t>(flags.GetInt("threads", 1));
    par_options.seed = seed;
    const PaRResult result = SchedulePaR(instance, par_options);
    schedule = result.best;
    std::cerr << "PA-R: " << result.iterations << " iterations in "
              << StrFormat("%.3f", result.seconds) << " s\n";
  } else if (algo == "pals") {
    PaLsOptions ls_options;
    ls_options.base = pa_options;
    ls_options.time_budget_seconds = flags.GetDouble("budget", 1.0);
    ls_options.seed = seed;
    const PaRResult result = SchedulePaLs(instance, ls_options);
    schedule = result.best;
    std::cerr << "PA-LS: " << result.iterations << " iterations in "
              << StrFormat("%.3f", result.seconds) << " s\n";
  } else if (algo == "grid") {
    FixedGridOptions grid;
    grid.num_slots = static_cast<std::size_t>(flags.GetInt("slots", 0));
    grid.run_floorplan = !flags.GetBool("no-floorplan", false);
    schedule = ScheduleFixedGrid(instance, grid);
  } else if (algo == "is1" || algo == "is5") {
    IskOptions isk;
    isk.k = algo == "is1" ? 1 : 5;
    isk.module_reuse = flags.GetBool("module-reuse", true);
    isk.run_floorplan = !flags.GetBool("no-floorplan", false);
    isk.time_budget_seconds = flags.GetDouble("budget", 0.0);
    schedule = ScheduleIsk(instance, isk);
  } else if (algo == "allsw") {
    schedule = ScheduleAllSoftware(instance);
  } else {
    throw FlagError("unknown --algo: " + algo);
  }

  const ValidationResult check = ValidateSchedule(instance, schedule);
  if (!check.ok()) {
    std::cerr << "INTERNAL ERROR — scheduler emitted an invalid schedule:\n"
              << check.Summary() << "\n";
    return 1;
  }

  if (flags.GetBool("metrics", false)) {
    std::cerr << ComputeMetrics(instance, schedule).ToString() << "\n";
  }
  if (frames > 1) {
    std::cerr << StrFormat(
        "throughput: %.1f us/frame over %zu frames\n",
        ThroughputInterval(schedule.makespan, frames), frames);
  }

  const std::string format = flags.GetString("format", "summary");
  if (format == "summary") {
    std::cout << ScheduleSummary(instance, schedule) << "\n";
  } else if (format == "table") {
    std::cout << ScheduleTable(instance, schedule);
  } else if (format == "gantt") {
    std::cout << ScheduleSummary(instance, schedule) << "\n"
              << GanttChart(instance, schedule);
  } else if (format == "json") {
    std::cout << ScheduleToString(instance, schedule) << "\n";
  } else if (format == "svg") {
    std::cout << GanttSvg(instance, schedule);
  } else {
    throw FlagError("unknown --format: " + format);
  }

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    SaveSchedule(instance, schedule, out);
    std::cerr << "wrote " << out << "\n";
  }
  const std::string svg_out = flags.GetString("svg-out", "");
  if (!svg_out.empty()) {
    std::ofstream f(svg_out);
    f << GanttSvg(instance, schedule);
    std::cerr << "wrote " << svg_out << "\n";
  }
  const std::string fp_out = flags.GetString("floorplan-svg-out", "");
  if (!fp_out.empty()) {
    std::ofstream f(fp_out);
    f << FloorplanSvg(instance, schedule);
    std::cerr << "wrote " << fp_out << "\n";
  }
  return 0;
}

int CmdValidate(const Flags& flags) {
  const Instance instance = LoadInstanceFlag(flags);
  const std::string path = flags.GetString("schedule", "");
  if (path.empty()) throw FlagError("--schedule is required");
  const Schedule schedule = LoadSchedule(instance, path);
  const ValidationResult check = ValidateSchedule(instance, schedule);
  std::cout << check.Summary() << "\n";
  return check.ok() ? 0 : 1;
}

int CmdSimulate(const Flags& flags) {
  const Instance instance = LoadInstanceFlag(flags);
  const std::string schedule_path = flags.GetString("schedule", "");
  if (schedule_path.empty()) throw FlagError("--schedule is required");
  const Schedule schedule = LoadSchedule(instance, schedule_path);

  const std::string faults_path = flags.GetString("faults", "");
  const double fault_rate = flags.GetDouble("fault-rate", -1.0);
  if (!faults_path.empty() && fault_rate >= 0.0) {
    throw FlagError("--faults and --fault-rate are mutually exclusive");
  }
  const auto trials =
      static_cast<std::size_t>(flags.GetInt("trials", 1));
  if (trials == 0) throw FlagError("--trials must be positive");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const double jitter = flags.GetDouble("jitter", 0.0);

  sim::SimOptions options;
  options.task_jitter = jitter;
  options.reconf_jitter = jitter;
  options.recovery.policy =
      ParseRecoveryPolicy(flags.GetString("policy", "retry"));

  sim::FaultScenario fixed_scenario;
  if (!faults_path.empty()) fixed_scenario = LoadFaultScenario(faults_path);

  std::size_t survived = 0;
  std::size_t invalid = 0;
  std::vector<double> stretches;
  sim::RecoveryStats totals;
  const std::string scenario_out = flags.GetString("scenario-out", "");
  for (std::size_t i = 0; i < trials; ++i) {
    sim::FaultScenario scenario = fixed_scenario;
    if (fault_rate >= 0.0) {
      scenario = sim::GenerateFaultScenario(
          schedule, sim::UniformFaultRates(fault_rate),
          DeriveSeed(kFaultSeedStream ^ seed, i));
    }
    if (i == 0 && !scenario_out.empty()) {
      SaveFaultScenario(scenario, scenario_out);
      std::cerr << "wrote " << scenario_out << "\n";
    }
    options.faults = scenario;
    options.seed = DeriveSeed(kJitterSeedStream ^ seed, i);
    try {
      const sim::SimResult r = sim::Simulate(instance, schedule, options);
      ValidationOptions vopt;
      vopt.executed = true;
      vopt.outages = sim::OutagesFromScenario(scenario);
      const ValidationResult check =
          ValidateSchedule(instance, r.executed, vopt);
      if (!check.ok()) {
        ++invalid;
        std::cerr << "trial " << i << ": executed schedule invalid:\n"
                  << check.Summary() << "\n";
        continue;
      }
      ++survived;
      stretches.push_back(r.stretch);
      totals.reconf_retries += r.recovery.reconf_retries;
      totals.task_restarts += r.recovery.task_restarts;
      totals.migrations += r.recovery.migrations;
      totals.rescheduled_tasks += r.recovery.rescheduled_tasks;
      totals.abandoned_regions += r.recovery.abandoned_regions;
    } catch (const InstanceError& e) {
      // Recovery deadlock (no software fallback left) — the trial is lost.
      std::cerr << "trial " << i << ": " << e.what() << "\n";
    }
  }

  std::cout << StrFormat(
      "simulate: %s schedule, %zu trial(s), policy %s, jitter %.2f\n",
      schedule.algorithm.c_str(), trials,
      ToString(options.recovery.policy), jitter);
  std::cout << StrFormat("survival: %.1f%% (%zu/%zu)\n",
                         100.0 * static_cast<double>(survived) /
                             static_cast<double>(trials),
                         survived, trials);
  if (!stretches.empty()) {
    double sum = 0.0;
    for (const double s : stretches) sum += s;
    std::cout << StrFormat(
        "stretch:  mean %.3f  p95 %.3f\n",
        sum / static_cast<double>(stretches.size()),
        Percentile(stretches, 95.0));
  }
  std::cout << StrFormat(
      "recovery: retries %zu  restarts %zu  migrations %zu  "
      "rescheduled %zu  regions-lost %zu\n",
      totals.reconf_retries, totals.task_restarts, totals.migrations,
      totals.rescheduled_tasks, totals.abandoned_regions);
  return survived == trials && invalid == 0 ? 0 : 1;
}

int CmdImportStg(const Flags& flags) {
  const std::string path = flags.GetString("stg", "");
  if (path.empty()) throw FlagError("--stg is required");
  const auto cores = static_cast<std::size_t>(flags.GetInt("cores", 2));
  const double mbps = flags.GetDouble("recfreq-mbps", 32.0);
  const Platform platform =
      MakeZedBoard(mbps * 8e6).WithProcessors(cores);
  StgOptions stg;
  stg.speedup = flags.GetDouble("speedup", stg.speedup);
  stg.num_hw_impls =
      static_cast<std::size_t>(flags.GetInt("hw-impls",
                                            static_cast<std::int64_t>(
                                                stg.num_hw_impls)));
  const Instance instance = LoadStgInstance(path, platform, stg);
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::cout << InstanceToString(instance) << "\n";
  } else {
    SaveInstance(instance, out);
    std::cout << "wrote " << out << " (" << instance.graph.NumTasks()
              << " tasks, " << instance.graph.NumEdges() << " edges)\n";
  }
  return 0;
}

int CmdInfo(const Flags& flags) {
  const Instance instance = LoadInstanceFlag(flags);
  const Platform& p = instance.platform;
  std::cout << "instance: " << instance.name << "\n";
  std::cout << "platform: " << p.Name() << " — " << p.NumProcessors()
            << " cores, " << p.NumReconfigurators()
            << " reconfigurator(s), recFreq "
            << StrFormat("%.0f", p.RecFreqBitsPerSec() / 8e6) << " MB/s";
  if (p.HwSwBandwidthBytesPerSec() > 0) {
    std::cout << ", HW<->SW "
              << StrFormat("%.0f", p.HwSwBandwidthBytesPerSec() / 1e6)
              << " MB/s";
  }
  std::cout << "\n";
  std::cout << "device:   " << p.Device().Name() << " capacity "
            << p.Device().Capacity().ToString() << " over "
            << p.Device().Geometry().rows << "x"
            << p.Device().Geometry().NumColumns() << " grid\n";
  std::cout << "graph:    " << AnalyzeGraph(instance.graph).ToString()
            << "\n";
  return 0;
}

int CmdDot(const Flags& flags) {
  const Instance instance = LoadInstanceFlag(flags);
  std::cout << ToDot(instance.graph, "tg");
  return 0;
}

/// One-line warm-start summary on stderr (only when --warm-start was given),
/// so operators see what a restarted daemon recovered before it serves.
void PrintRecovery(const service::RescheddServer& server) {
  const service::RecoveryInfo& r = server.Recovery();
  if (!r.enabled) return;
  std::cerr << "reschedd: warm start: " << r.records_scanned
            << " record(s) scanned, " << r.torn_bytes << " torn byte(s), "
            << r.cache_restored << " cache entr(ies) restored, "
            << r.dedup_restored << " dedup entr(ies) restored\n";
}

/// Parses `--tenant-weights a=4,b=1` into the per-tenant weight map.
std::map<std::string, std::uint32_t> ParseTenantWeights(
    const std::string& spec) {
  std::map<std::string, std::uint32_t> weights;
  if (spec.empty()) return weights;
  for (const std::string& entry : Split(spec, ',')) {
    const std::vector<std::string> kv = Split(entry, '=');
    if (kv.size() != 2 || kv[0].empty()) {
      throw FlagError("bad --tenant-weights entry: " + entry);
    }
    const long weight = std::stol(kv[1]);
    if (weight <= 0) {
      throw FlagError("tenant weight must be positive: " + entry);
    }
    weights[kv[0]] = static_cast<std::uint32_t>(weight);
  }
  return weights;
}

/// Parses `--backends host:port[:weight],...` into the router fleet.
std::vector<router::RouterBackend> ParseBackends(const std::string& spec) {
  std::vector<router::RouterBackend> backends;
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    const std::vector<std::string> parts = Split(entry, ':');
    if (parts.size() < 2 || parts.size() > 3 || parts[0].empty()) {
      throw FlagError("bad --backends entry (want host:port[:weight]): " +
                      entry);
    }
    router::RouterBackend backend;
    backend.host = parts[0];
    const long port = std::stol(parts[1]);
    if (port <= 0 || port > 65535) {
      throw FlagError("bad backend port in: " + entry);
    }
    backend.port = static_cast<std::uint16_t>(port);
    if (parts.size() == 3) {
      const long weight = std::stol(parts[2]);
      if (weight <= 0) throw FlagError("bad backend weight in: " + entry);
      backend.weight = static_cast<std::uint32_t>(weight);
    }
    backends.push_back(std::move(backend));
  }
  if (backends.empty()) {
    throw FlagError("--backends needs at least one host:port entry");
  }
  return backends;
}

void PrintServeCounters(const service::RescheddServer& server) {
  const service::ServiceCounters c = server.Counters();
  std::cerr << "reschedd: " << c.received << " request(s), " << c.accepted
            << " accepted, " << c.rejected_overloaded << " overloaded, "
            << c.cache_hits << " cache hit(s)\n";
}

int CmdServe(const Flags& flags) {
  service::ServerOptions options;
  options.workers = static_cast<std::size_t>(flags.GetInt("workers", 2));
  options.queue_capacity =
      static_cast<std::size_t>(flags.GetInt("queue", 64));
  options.result_cache = !flags.GetBool("no-result-cache", false);
  options.floorplan_cache = !flags.GetBool("no-floorplan-cache", false);
  options.journal_path = flags.GetString("journal", "");
  options.journal_sync =
      service::ParseJournalSync(flags.GetString("journal-sync", "batch"));
  options.warm_start_path = flags.GetString("warm-start", "");
  options.tenant_weights = ParseTenantWeights(
      flags.GetString("tenant-weights", ""));
  options.per_tenant_inflight =
      static_cast<std::size_t>(flags.GetInt("tenant-inflight", 0));
  options.metrics_out_path = flags.GetString("metrics-out", "");
  options.metrics_interval_ms =
      flags.GetDouble("metrics-interval-ms", 1000.0);

  const std::string socket_path = flags.GetString("socket", "");
  const bool stdio = flags.GetBool("stdio", false);
  const bool tcp = flags.Has("port");
  if ((socket_path.empty() ? 0 : 1) + (stdio ? 1 : 0) + (tcp ? 1 : 0) != 1) {
    throw FlagError(
        "serve needs exactly one of --socket PATH, --port N or --stdio");
  }

  if (stdio) {
    service::StdioTransport transport;
    service::RescheddServer server(transport, options);
    PrintRecovery(server);
    server.Serve();
    PrintServeCounters(server);
    return 0;
  }
  if (tcp) {
    service::TcpServerTransport transport(
        flags.GetString("host", "127.0.0.1"),
        static_cast<std::uint16_t>(flags.GetInt("port", 0)));
    // Harvested by the fleet test harnesses when --port 0 picked an
    // ephemeral port — keep the format stable.
    std::cerr << "reschedd: listening on " << transport.Host() << ":"
              << transport.Port() << "\n";
    service::RescheddServer server(transport, options);
    PrintRecovery(server);
    server.Serve();
    PrintServeCounters(server);
    return 0;
  }
  service::UnixSocketServerTransport transport(socket_path);
  std::cerr << "reschedd: listening on " << transport.Path() << "\n";
  service::RescheddServer server(transport, options);
  PrintRecovery(server);
  server.Serve();
  PrintServeCounters(server);
  return 0;
}

int CmdRoute(const Flags& flags) {
  router::RouterOptions options;
  options.backends = ParseBackends(flags.GetString("backends", ""));
  options.attempts_per_backend =
      static_cast<std::size_t>(flags.GetInt("attempts", 2));
  options.probe_interval_ms = flags.GetDouble("probe-interval-ms", 200.0);
  options.queue_capacity_per_backend =
      static_cast<std::size_t>(flags.GetInt("route-queue", 256));
  options.vnodes_per_weight =
      static_cast<std::size_t>(flags.GetInt("vnodes", 64));
  options.metrics_out_path = flags.GetString("metrics-out", "");
  options.metrics_interval_ms =
      flags.GetDouble("metrics-interval-ms", 1000.0);

  const std::string socket_path = flags.GetString("socket", "");
  const bool stdio = flags.GetBool("stdio", false);
  const bool tcp = flags.Has("port");
  if ((socket_path.empty() ? 0 : 1) + (stdio ? 1 : 0) + (tcp ? 1 : 0) != 1) {
    throw FlagError(
        "route needs exactly one of --socket PATH, --port N or --stdio");
  }

  if (stdio) {
    service::StdioTransport transport;
    router::RescheddRouter router(transport, options);
    router.Serve();
    return 0;
  }
  if (tcp) {
    service::TcpServerTransport transport(
        flags.GetString("host", "127.0.0.1"),
        static_cast<std::uint16_t>(flags.GetInt("port", 0)));
    std::cerr << "reschedd-router: listening on " << transport.Host() << ":"
              << transport.Port() << "\n";
    router::RescheddRouter router(transport, options);
    router.Serve();
    return 0;
  }
  service::UnixSocketServerTransport transport(socket_path);
  std::cerr << "reschedd-router: listening on " << transport.Path() << "\n";
  router::RescheddRouter router(transport, options);
  router.Serve();
  return 0;
}

/// Builds one protocol request line from flags (shared by --print and the
/// socket client path).
std::string BuildRequestLine(const Flags& flags) {
  const std::string verb = flags.GetString("verb", "schedule");
  JsonObject request;
  request["verb"] = verb;
  const std::string id = flags.GetString("id", "");
  if (!id.empty()) request["id"] = id;
  const double deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  if (deadline_ms > 0.0) request["deadline_ms"] = deadline_ms;
  const std::string tenant = flags.GetString("tenant", "");
  if (!tenant.empty()) request["tenant"] = tenant;

  if (verb == "schedule" || verb == "simulate") {
    const Instance instance = LoadInstanceFlag(flags);
    request["instance"] = InstanceToJson(instance);
    request["algo"] = flags.GetString("algo", "pa");
    request["seed"] = flags.GetInt("seed", 1);
    if (flags.Has("iterations")) {
      request["iterations"] = flags.GetInt("iterations", 32);
    }
    if (flags.Has("budget")) {
      request["budget"] = flags.GetDouble("budget", 0.0);
    }
    if (flags.GetBool("module-reuse", false)) request["module_reuse"] = true;
    if (flags.GetBool("no-balancing", false)) request["no_balancing"] = true;
    if (flags.GetBool("no-floorplan", false)) request["no_floorplan"] = true;
    if (flags.GetBool("no-cache", false)) request["cache"] = false;
    if (verb == "simulate") {
      request["trials"] = flags.GetInt("trials", 1);
      request["fault_rate"] = flags.GetDouble("fault-rate", 0.0);
      request["policy"] = flags.GetString("policy", "retry");
      if (flags.Has("jitter")) {
        request["jitter"] = flags.GetDouble("jitter", 0.0);
      }
    }
  } else if (verb == "cancel") {
    request["target"] = flags.GetString("target", "");
  } else if (verb != "stats" && verb != "shutdown") {
    throw FlagError("unknown --verb: " + verb);
  }
  return JsonValue(std::move(request)).Dump(-1);
}

int CmdSubmit(const Flags& flags) {
  const std::string line = BuildRequestLine(flags);
  if (flags.GetBool("print", false)) {
    std::cout << line << "\n";
    return 0;
  }
  const std::string socket_path = flags.GetString("socket", "");
  const std::string tcp = flags.GetString("tcp", "");
  if (socket_path.empty() == tcp.empty()) {
    throw FlagError("submit needs --print, --socket PATH or --tcp HOST:PORT");
  }
  service::ClientEndpoint endpoint;
  if (!tcp.empty()) {
    const std::vector<std::string> parts = Split(tcp, ':');
    if (parts.size() != 2 || parts[0].empty()) {
      throw FlagError("bad --tcp (want HOST:PORT): " + tcp);
    }
    const long port = std::stol(parts[1]);
    if (port <= 0 || port > 65535) throw FlagError("bad --tcp port: " + tcp);
    endpoint = service::ClientEndpoint::Tcp(
        parts[0], static_cast<std::uint16_t>(port));
  } else {
    endpoint = service::ClientEndpoint::Unix(socket_path);
  }

  service::ClientOptions copts;
  copts.max_attempts =
      static_cast<std::size_t>(flags.GetInt("retries", 5));
  copts.backoff_initial_ms = flags.GetDouble("backoff-ms", 20.0);
  service::RescheddClient client(endpoint, copts);
  service::RescheddClient::Result result;
  try {
    result = client.Submit(line);
  } catch (const SocketError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << result.handshake << "\n";
  if (result.reconnects > 0) {
    std::cerr << "reschedd client: " << result.attempts << " attempt(s), "
              << result.reconnects << " reconnect(s)\n";
  }
  std::cout << result.response << "\n";
  return JsonValue::Parse(result.response).GetBool("ok", false) ? 0 : 1;
}

int CmdReplay(const Flags& flags) {
  const std::string journal = flags.GetString("journal", "");
  if (journal.empty()) throw FlagError("--journal is required");
  const service::ReplayOutcome outcome = service::ReplayJournal(journal);
  std::cout << "replay: " << outcome.requests << " request(s), "
            << outcome.replayed << " replayed, " << outcome.matched
            << " matched, " << outcome.mismatched << " mismatched, "
            << outcome.skipped << " skipped\n";
  for (const std::string& id : outcome.mismatched_ids) {
    std::cerr << "mismatch: " << id << "\n";
  }
  return outcome.ok() ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "-V") {
    std::cout << BuildInfoLine() << "\n";
    return 0;
  }
  const Flags flags = Flags::Parse(argc - 1, argv + 1);
  if (command == "gen") return CmdGen(flags);
  if (command == "schedule") return CmdSchedule(flags);
  if (command == "import-stg") return CmdImportStg(flags);
  if (command == "validate") return CmdValidate(flags);
  if (command == "simulate") return CmdSimulate(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "dot") return CmdDot(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "route") return CmdRoute(flags);
  if (command == "submit") return CmdSubmit(flags);
  if (command == "replay") return CmdReplay(flags);
  return Usage();
}

}  // namespace
}  // namespace resched::cli

int main(int argc, char** argv) {
  try {
    return resched::cli::Main(argc, argv);
  } catch (const resched::FlagError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
