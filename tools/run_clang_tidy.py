#!/usr/bin/env python3
"""Baseline-aware clang-tidy driver for the resched repo.

Runs clang-tidy (configuration from the checked-in .clang-tidy) over the
first-party translation units in a compile database and compares the
findings against tools/clang_tidy_baseline.txt. The build fails only on
NEW findings — a check regressing on a file it was previously clean on —
so a clang-tidy upgrade that invents findings in untouched code can be
absorbed by re-baselining instead of blocking every PR, while any
regression a PR introduces is still a hard failure.

Baseline format: one `<relpath> <check> <count>` triple per line,
'#'-prefixed comments ignored. An empty baseline (the current state)
means "the repo is tidy-clean" and any finding fails.

Usage:
  tools/run_clang_tidy.py --build-dir build            # gate (CI)
  tools/run_clang_tidy.py --build-dir build --update-baseline

Exit status: 0 clean (or covered by baseline), nonzero on new findings
or an unusable environment (no clang-tidy, no compile database).
"""

import argparse
import collections
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

# First-party TUs: everything the repo compiles from these roots.
SCOPE_PREFIXES = ("src/", "tools/", "tests/", "bench/", "examples/")

DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<message>.*?) \[(?P<check>[^\]]+)\]$")


def rel(path, root):
    return os.path.relpath(os.path.realpath(path),
                           os.path.realpath(root)).replace(os.sep, "/")


def load_compile_db(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        sys.exit(f"run_clang_tidy: no compile database at {path}; "
                 "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON "
                 "(every preset does)")
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def scoped_sources(db, root):
    seen = set()
    out = []
    for entry in db:
        path = os.path.join(entry.get("directory", ""), entry["file"])
        relpath = rel(path, root)
        if relpath.startswith(SCOPE_PREFIXES) and relpath not in seen:
            seen.add(relpath)
            out.append(os.path.realpath(path))
    return sorted(out)


def run_one(clang_tidy, build_dir, source):
    proc = subprocess.run(
        [clang_tidy, "-quiet", "-p", build_dir, source],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, check=False)
    return proc.stdout


def collect_findings(clang_tidy, build_dir, sources, root, jobs):
    """Returns ({(relpath, check): count}, [diagnostic lines]).

    Diagnostics are deduplicated on (file, line, col, check) first: a
    header finding surfaces once, not once per including TU.
    """
    unique = {}
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for output in pool.map(
                lambda s: run_one(clang_tidy, build_dir, s), sources):
            for line in output.splitlines():
                m = DIAG_RE.match(line)
                if not m:
                    continue
                relpath = rel(m.group("file"), root)
                if not relpath.startswith(SCOPE_PREFIXES):
                    continue  # system / third-party header
                key = (relpath, m.group("line"), m.group("col"),
                       m.group("check"))
                unique.setdefault(
                    key,
                    f"{relpath}:{m.group('line')}:{m.group('col')}: "
                    f"{m.group('message')} [{m.group('check')}]")
    counts = collections.Counter(
        (relpath, check) for (relpath, _, _, check) in unique)
    return counts, sorted(unique.values())


def load_baseline(path):
    counts = collections.Counter()
    if not os.path.isfile(path):
        return counts
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or not parts[2].isdigit():
                sys.exit(f"run_clang_tidy: malformed baseline line "
                         f"{path}:{lineno}: {line}")
            counts[(parts[0], parts[1])] = int(parts[2])
    return counts


def write_baseline(path, counts):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# clang-tidy baseline: `<relpath> <check> <count>` per "
                "line.\n"
                "# Regenerate with tools/run_clang_tidy.py "
                "--update-baseline.\n"
                "# CI fails only on findings beyond these counts; keep "
                "this file empty\n"
                "# unless a toolchain upgrade strands findings in "
                "untouched code.\n")
        for (relpath, check), count in sorted(counts.items()):
            f.write(f"{relpath} {check} {count}\n")


def main(argv):
    parser = argparse.ArgumentParser(
        prog="run_clang_tidy",
        description="baseline-aware clang-tidy gate")
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: this script's repo)")
    parser.add_argument(
        "--build-dir", default=None,
        help="build directory holding compile_commands.json "
        "(default: probe build*/ under the root)")
    parser.add_argument(
        "--baseline", default=None,
        help="baseline file (default: tools/clang_tidy_baseline.txt)")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to the current findings and exit 0")
    parser.add_argument(
        "--clang-tidy", default="clang-tidy",
        help="clang-tidy executable (default: clang-tidy on PATH)")
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 2,
        help="parallel clang-tidy processes")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if shutil.which(args.clang_tidy) is None:
        sys.exit(f"run_clang_tidy: {args.clang_tidy} not found on PATH")

    build_dir = args.build_dir
    if build_dir is None:
        for name in ("build", "build-tidy", "build-debug",
                     "build-thread-safety"):
            candidate = os.path.join(root, name)
            if os.path.isfile(os.path.join(candidate,
                                           "compile_commands.json")):
                build_dir = candidate
                break
        if build_dir is None:
            sys.exit("run_clang_tidy: no compile database found; pass "
                     "--build-dir")
    build_dir = os.path.abspath(build_dir)

    baseline_path = args.baseline or os.path.join(
        root, "tools", "clang_tidy_baseline.txt")

    db = load_compile_db(build_dir)
    sources = scoped_sources(db, root)
    if not sources:
        sys.exit("run_clang_tidy: compile database has no first-party "
                 "sources")
    print(f"run_clang_tidy: {len(sources)} translation unit(s), "
          f"{args.jobs} job(s)", file=sys.stderr)

    counts, diagnostics = collect_findings(
        args.clang_tidy, build_dir, sources, root, args.jobs)

    if args.update_baseline:
        write_baseline(baseline_path, counts)
        print(f"run_clang_tidy: baseline updated "
              f"({sum(counts.values())} finding(s) across "
              f"{len(counts)} file/check pair(s))", file=sys.stderr)
        return 0

    baseline = load_baseline(baseline_path)
    regressions = {
        key: (count, baseline.get(key, 0))
        for key, count in counts.items() if count > baseline.get(key, 0)
    }
    fixed = {key for key in baseline if counts.get(key, 0) < baseline[key]}

    if fixed:
        print(f"run_clang_tidy: {len(fixed)} baseline entr(ies) improved "
              "— consider --update-baseline to ratchet down",
              file=sys.stderr)
    if not regressions:
        print(f"run_clang_tidy: clean ({sum(counts.values())} finding(s), "
              "all covered by baseline)", file=sys.stderr)
        return 0

    print("run_clang_tidy: NEW findings vs baseline:", file=sys.stderr)
    for (relpath, check), (now, base) in sorted(regressions.items()):
        print(f"  {relpath} {check}: {now} (baseline {base})",
              file=sys.stderr)
    # Stored diagnostics are already relpath-prefixed `path:line:col:
    # message [check]` lines; surface the ones behind a regressed key.
    for diag in diagnostics:
        path_part = diag.split(":", 1)[0]
        check_part = diag.rsplit("[", 1)[-1].rstrip("]")
        if (path_part, check_part) in regressions:
            print(diag)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
