// Canonical content hashing of problem instances (and other canonical
// JSON texts) for the reschedd result cache and journal.
//
// Canonicalization rides on the existing serialization invariants:
// InstanceToJson emits objects through std::map (deterministic key order)
// and Dump(-1) is a pure function of the value, so two semantically
// identical instances — however their source documents were formatted —
// produce the same compact text and hence the same digest. The digest is
// 128 bits (two independent 64-bit FNV-1a streams), wide enough that the
// result cache can treat digest equality as instance equality.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "taskgraph/taskgraph.hpp"

namespace resched {

struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex characters (hi then lo).
  std::string ToHex() const;

  friend bool operator==(const Digest128& a, const Digest128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Digest128& a, const Digest128& b) {
    return !(a == b);
  }
};

/// FNV-1a over `text` with a caller-chosen offset basis (64-bit stream).
std::uint64_t Fnv1a64(std::string_view text, std::uint64_t basis);

/// 128-bit digest of an arbitrary canonical text.
Digest128 HashCanonicalText(std::string_view text);

/// Canonical compact single-line JSON form of an instance — the text the
/// digest is defined over (also the journal's instance representation).
std::string CanonicalInstanceText(const Instance& instance);

/// Digest of CanonicalInstanceText(instance).
Digest128 HashInstance(const Instance& instance);

}  // namespace resched
