#include "io/stg_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace resched {

namespace {

struct StgTask {
  std::int64_t exec = 0;
  std::vector<std::size_t> preds;
};

/// Tokenizes the file into whitespace-separated numbers, skipping
/// everything from '#' to end of line.
std::vector<std::int64_t> Tokenize(const std::string& text) {
  std::vector<std::int64_t> tokens;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::int64_t v = 0;
    while (ls >> v) tokens.push_back(v);
  }
  return tokens;
}

}  // namespace

TaskGraph LoadStgText(const std::string& text, const ResourceModel& model,
                      const StgOptions& options) {
  const std::vector<std::int64_t> tok = Tokenize(text);
  if (tok.empty()) throw InstanceError("empty STG document");
  std::size_t pos = 0;
  auto next = [&tok, &pos](const char* what) {
    if (pos >= tok.size()) {
      throw InstanceError(std::string("truncated STG document: expected ") +
                          what);
    }
    return tok[pos++];
  };

  const std::int64_t declared = next("task count");
  if (declared < 0) throw InstanceError("negative STG task count");
  // STG counts exclude the dummy source/sink; files list n + 2 records.
  const std::size_t total = static_cast<std::size_t>(declared) + 2;

  std::vector<StgTask> tasks(total);
  for (std::size_t i = 0; i < total; ++i) {
    const std::int64_t id = next("task id");
    if (id < 0 || static_cast<std::size_t>(id) != i) {
      throw InstanceError(StrFormat("STG task ids must be dense: got %lld, "
                                    "expected %zu",
                                    static_cast<long long>(id), i));
    }
    tasks[i].exec = next("exec time");
    if (tasks[i].exec < 0) throw InstanceError("negative STG exec time");
    const std::int64_t preds = next("pred count");
    if (preds < 0) throw InstanceError("negative STG predecessor count");
    for (std::int64_t p = 0; p < preds; ++p) {
      const std::int64_t pred = next("pred id");
      if (pred < 0 || static_cast<std::size_t>(pred) >= i) {
        throw InstanceError("STG predecessor ids must precede the task");
      }
      tasks[i].preds.push_back(static_cast<std::size_t>(pred));
    }
  }

  // Mapping to kept task indices (dummies stripped or not).
  const std::size_t first = options.strip_dummies ? 1 : 0;
  const std::size_t last = options.strip_dummies ? total - 1 : total;
  std::vector<int> kept(total, -1);

  Rng rng(options.hw_seed == 0 ? 1 : options.hw_seed);
  TaskGraph graph;
  for (std::size_t i = first; i < last; ++i) {
    const TaskId id = graph.AddTask(StrFormat("stg%zu", i));
    kept[i] = id;

    // Dummy nodes inside the kept range (exec 0) still need a positive
    // time; clamp to one tick.
    const TimeT sw_time = std::max<TimeT>(
        1, static_cast<TimeT>(std::llround(
               static_cast<double>(tasks[i].exec) * options.time_scale)));
    Implementation sw;
    sw.kind = ImplKind::kSoftware;
    sw.name = "sw";
    sw.exec_time = sw_time;
    graph.AddImpl(id, std::move(sw));

    double time_factor = 1.0;
    double area_factor = 1.0;
    for (std::size_t v = 0; v < options.num_hw_impls; ++v) {
      Implementation hw;
      hw.kind = ImplKind::kHardware;
      hw.name = StrFormat("hw%zu", v);
      hw.exec_time = std::max<TimeT>(
          1, static_cast<TimeT>(std::llround(static_cast<double>(sw_time) /
                                             options.speedup *
                                             time_factor)));
      hw.res = model.ZeroVec();
      hw.res[model.KindIndex("CLB")] = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(
                 std::ceil(static_cast<double>(options.area_base) *
                           area_factor)));
      if (options.hw_seed != 0) {
        if (model.HasKind("BRAM") && rng.Bernoulli(0.4)) {
          hw.res[model.KindIndex("BRAM")] = rng.UniformInt(2, 16);
        }
        if (model.HasKind("DSP") && rng.Bernoulli(0.4)) {
          hw.res[model.KindIndex("DSP")] = rng.UniformInt(4, 24);
        }
      }
      graph.AddImpl(id, std::move(hw));
      time_factor *= options.time_step;
      area_factor *= options.area_step;
    }
  }

  for (std::size_t i = first; i < last; ++i) {
    for (const std::size_t p : tasks[i].preds) {
      if (kept[p] < 0) continue;  // edge from a stripped dummy
      graph.AddEdge(static_cast<TaskId>(kept[p]),
                    static_cast<TaskId>(kept[i]));
    }
  }
  return graph;
}

Instance LoadStgInstance(const std::string& path, const Platform& platform,
                         const StgOptions& options) {
  std::ifstream in(path);
  if (!in) throw InstanceError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  Instance instance;
  instance.name = path;
  instance.platform = platform;
  instance.graph =
      LoadStgText(buf.str(), platform.Device().Model(), options);
  instance.graph.Validate(platform.Device());
  return instance;
}

}  // namespace resched
