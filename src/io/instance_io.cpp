#include "io/instance_io.hpp"

#include <fstream>
#include <sstream>

namespace resched {

namespace {

JsonValue DeviceToJson(const FpgaDevice& device) {
  JsonArray kinds;
  for (std::size_t k = 0; k < device.Model().NumKinds(); ++k) {
    const auto& info = device.Model().Kind(k);
    kinds.push_back(JsonObject{{"name", info.name},
                               {"bits_per_unit", info.bits_per_unit}});
  }
  JsonArray columns;
  for (const ColumnSpec& col : device.Geometry().columns) {
    columns.push_back(
        JsonObject{{"kind", device.Model().Kind(col.kind).name},
                   {"units", col.units_per_cell}});
  }
  return JsonObject{
      {"name", device.Name()},
      {"resource_kinds", std::move(kinds)},
      {"fabric", JsonObject{{"rows", device.Geometry().rows},
                            {"columns", std::move(columns)}}}};
}

FpgaDevice DeviceFromJson(const JsonValue& json) {
  std::vector<ResourceModel::KindInfo> kinds;
  for (const JsonValue& k : json.At("resource_kinds").AsArray()) {
    kinds.push_back(ResourceModel::KindInfo{
        k.At("name").AsString(), k.At("bits_per_unit").AsDouble()});
  }
  ResourceModel model(std::move(kinds));

  const JsonValue& fabric = json.At("fabric");
  FabricGeometry geom;
  geom.rows = static_cast<std::size_t>(fabric.At("rows").AsInt());
  for (const JsonValue& c : fabric.At("columns").AsArray()) {
    geom.columns.push_back(
        ColumnSpec{model.KindIndex(c.At("kind").AsString()),
                   c.At("units").AsInt()});
  }
  return FpgaDevice(json.GetString("name", "device"), std::move(model),
                    std::move(geom));
}

JsonValue ImplToJson(const Implementation& impl, const ResourceModel& model) {
  JsonObject obj{{"name", impl.name},
                 {"kind", impl.IsHardware() ? "hw" : "sw"},
                 {"time", impl.exec_time}};
  if (impl.IsHardware()) {
    JsonObject res;
    for (std::size_t k = 0; k < impl.res.size(); ++k) {
      if (impl.res[k] != 0) res.emplace(model.Kind(k).name, impl.res[k]);
    }
    obj.emplace("res", std::move(res));
    if (impl.module_id >= 0) {
      obj.emplace("module", static_cast<std::int64_t>(impl.module_id));
    }
  }
  return JsonValue(std::move(obj));
}

Implementation ImplFromJson(const JsonValue& json, const ResourceModel& model) {
  Implementation impl;
  impl.name = json.GetString("name", "impl");
  const std::string kind = json.At("kind").AsString();
  if (kind == "hw") {
    impl.kind = ImplKind::kHardware;
  } else if (kind == "sw") {
    impl.kind = ImplKind::kSoftware;
  } else {
    throw InstanceError("unknown implementation kind: " + kind);
  }
  impl.exec_time = json.At("time").AsInt();
  if (impl.IsHardware()) {
    impl.res = model.ZeroVec();
    for (const auto& [name, value] : json.At("res").AsObject()) {
      impl.res[model.KindIndex(name)] = value.AsInt();
    }
    impl.module_id = static_cast<std::int32_t>(json.GetInt("module", -1));
  }
  return impl;
}

}  // namespace

JsonValue InstanceToJson(const Instance& instance) {
  const ResourceModel& model = instance.platform.Device().Model();

  JsonArray tasks;
  for (std::size_t t = 0; t < instance.graph.NumTasks(); ++t) {
    const Task& task = instance.graph.GetTask(static_cast<TaskId>(t));
    JsonArray impls;
    for (const Implementation& impl : task.impls) {
      impls.push_back(ImplToJson(impl, model));
    }
    tasks.push_back(JsonObject{{"name", task.name}, {"impls", std::move(impls)}});
  }

  JsonArray edges;
  for (std::size_t t = 0; t < instance.graph.NumTasks(); ++t) {
    for (const TaskId s : instance.graph.Successors(static_cast<TaskId>(t))) {
      const std::int64_t bytes =
          instance.graph.EdgeData(static_cast<TaskId>(t), s);
      JsonArray edge{JsonValue(static_cast<std::int64_t>(t)),
                     JsonValue(static_cast<std::int64_t>(s))};
      if (bytes > 0) edge.push_back(JsonValue(bytes));
      edges.push_back(std::move(edge));
    }
  }

  return JsonObject{
      {"format", "resched-instance"},
      {"version", 1},
      {"name", instance.name},
      {"platform",
       JsonObject{{"name", instance.platform.Name()},
                  {"processors", instance.platform.NumProcessors()},
                  {"reconfigurators", instance.platform.NumReconfigurators()},
                  {"hw_sw_bandwidth_bytes_per_sec",
                   instance.platform.HwSwBandwidthBytesPerSec()},
                  {"recfreq_bits_per_sec", instance.platform.RecFreqBitsPerSec()},
                  {"device", DeviceToJson(instance.platform.Device())}}},
      {"tasks", std::move(tasks)},
      {"edges", std::move(edges)}};
}

Instance InstanceFromJson(const JsonValue& json) {
  if (json.GetString("format", "") != "resched-instance") {
    throw InstanceError("not a resched-instance document");
  }
  if (json.GetInt("version", 0) != 1) {
    throw InstanceError("unsupported instance format version");
  }

  const JsonValue& pj = json.At("platform");
  FpgaDevice device = DeviceFromJson(pj.At("device"));
  const ResourceModel model = device.Model();
  Platform platform(pj.GetString("name", "platform"),
                    static_cast<std::size_t>(pj.At("processors").AsInt()),
                    std::move(device),
                    pj.At("recfreq_bits_per_sec").AsDouble(),
                    static_cast<std::size_t>(pj.GetInt("reconfigurators", 1)));
  platform = platform.WithHwSwBandwidth(
      pj.GetDouble("hw_sw_bandwidth_bytes_per_sec", 0.0));

  TaskGraph graph;
  for (const JsonValue& tj : json.At("tasks").AsArray()) {
    const TaskId id = graph.AddTask(tj.GetString("name", "task"));
    for (const JsonValue& ij : tj.At("impls").AsArray()) {
      graph.AddImpl(id, ImplFromJson(ij, model));
    }
  }
  for (const JsonValue& ej : json.At("edges").AsArray()) {
    const JsonArray& tuple = ej.AsArray();
    if (tuple.size() != 2 && tuple.size() != 3) {
      throw InstanceError("edge must be [from, to] or [from, to, bytes]");
    }
    const auto from = static_cast<TaskId>(tuple[0].AsInt());
    const auto to = static_cast<TaskId>(tuple[1].AsInt());
    graph.AddEdge(from, to);
    if (tuple.size() == 3) graph.SetEdgeData(from, to, tuple[2].AsInt());
  }

  Instance instance{json.GetString("name", "instance"), std::move(platform),
                    std::move(graph)};
  instance.graph.Validate(instance.platform.Device());
  return instance;
}

std::string InstanceToString(const Instance& instance) {
  return InstanceToJson(instance).Dump(2);
}

Instance InstanceFromString(const std::string& text) {
  return InstanceFromJson(JsonValue::Parse(text));
}

void SaveInstance(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw InstanceError("cannot open for writing: " + path);
  out << InstanceToString(instance) << '\n';
  if (!out) throw InstanceError("write failed: " + path);
}

Instance LoadInstance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InstanceError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return InstanceFromString(buf.str());
}

}  // namespace resched
