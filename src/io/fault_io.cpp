#include "io/fault_io.hpp"

#include <fstream>
#include <sstream>

namespace resched {

namespace {

sim::FaultKind KindFromName(const std::string& name) {
  using sim::FaultKind;
  for (const FaultKind kind :
       {FaultKind::kReconfFailure, FaultKind::kTransientRegionFault,
        FaultKind::kPermanentRegionLoss, FaultKind::kTaskCrash,
        FaultKind::kTaskOverrun}) {
    if (name == sim::ToString(kind)) return kind;
  }
  throw InstanceError("unknown fault kind: " + name);
}

}  // namespace

JsonValue FaultScenarioToJson(const sim::FaultScenario& scenario) {
  JsonArray events;
  for (const sim::FaultEvent& event : scenario.events) {
    const char* kind = sim::ToString(event.kind);
    switch (event.kind) {
      case sim::FaultKind::kReconfFailure:
      case sim::FaultKind::kTaskCrash:
        events.push_back(JsonObject{
            {"kind", kind}, {"index", event.index}, {"count", event.count}});
        break;
      case sim::FaultKind::kTransientRegionFault:
        events.push_back(JsonObject{{"kind", kind},
                                    {"index", event.index},
                                    {"at", event.at},
                                    {"window", event.window}});
        break;
      case sim::FaultKind::kPermanentRegionLoss:
        events.push_back(JsonObject{
            {"kind", kind}, {"index", event.index}, {"at", event.at}});
        break;
      case sim::FaultKind::kTaskOverrun:
        events.push_back(JsonObject{
            {"kind", kind}, {"index", event.index}, {"factor", event.factor}});
        break;
    }
  }
  return JsonValue(JsonObject{{"format", "resched-faults"},
                              {"version", 1},
                              {"events", std::move(events)}});
}

sim::FaultScenario FaultScenarioFromJson(const JsonValue& json) {
  if (json.GetString("format", "") != "resched-faults") {
    throw InstanceError("not a resched-faults document");
  }
  if (json.GetInt("version", 0) != 1) {
    throw InstanceError("unsupported fault-scenario format version");
  }
  sim::FaultScenario scenario;
  for (const JsonValue& ej : json.At("events").AsArray()) {
    sim::FaultEvent event;
    event.kind = KindFromName(ej.At("kind").AsString());
    event.index = static_cast<std::size_t>(ej.At("index").AsInt());
    event.at = ej.GetInt("at", 0);
    event.window = ej.GetInt("window", 0);
    event.count = static_cast<std::size_t>(ej.GetInt("count", 1));
    event.factor = ej.GetDouble("factor", 1.0);
    scenario.events.push_back(event);
  }
  return scenario;
}

std::string FaultScenarioToString(const sim::FaultScenario& scenario) {
  return FaultScenarioToJson(scenario).Dump(2);
}

sim::FaultScenario FaultScenarioFromString(const std::string& text) {
  return FaultScenarioFromJson(JsonValue::Parse(text));
}

void SaveFaultScenario(const sim::FaultScenario& scenario,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) throw InstanceError("cannot open for writing: " + path);
  out << FaultScenarioToString(scenario) << '\n';
  if (!out) throw InstanceError("write failed: " + path);
}

sim::FaultScenario LoadFaultScenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InstanceError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FaultScenarioFromString(buf.str());
}

}  // namespace resched
