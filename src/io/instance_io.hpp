// JSON (de)serialization of problem instances.
//
// The on-disk format is self-describing and versioned:
//
// {
//   "format": "resched-instance", "version": 1,
//   "name": "...",
//   "platform": {
//     "name": "...", "processors": 2, "recfreq_bits_per_sec": 1.024e9,
//     "device": {
//       "name": "...",
//       "resource_kinds": [{"name": "CLB", "bits_per_unit": 2327.0}, ...],
//       "fabric": {"rows": 4, "columns": [{"kind": "CLB", "units": 100}, ...]}
//     }
//   },
//   "tasks": [{"name": "...", "impls": [
//       {"name": "sw", "kind": "sw", "time": 12345},
//       {"name": "hw0", "kind": "hw", "time": 2000,
//        "res": {"CLB": 1200, "DSP": 8}, "module": 17}]}, ...],
//   "edges": [[0, 1], [0, 2], ...]
// }
#pragma once

#include <string>

#include "taskgraph/taskgraph.hpp"
#include "util/json.hpp"

namespace resched {

JsonValue InstanceToJson(const Instance& instance);
Instance InstanceFromJson(const JsonValue& json);

std::string InstanceToString(const Instance& instance);
Instance InstanceFromString(const std::string& text);

/// File helpers; throw InstanceError on I/O failure.
void SaveInstance(const Instance& instance, const std::string& path);
Instance LoadInstance(const std::string& path);

}  // namespace resched
