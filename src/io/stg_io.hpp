// Import of the Standard Task Graph Set (STG) format (Kasahara Lab) —
// the benchmark suite most scheduling papers in this area draw on.
//
// An STG file is:
//
//     <num_tasks>            (excluding the two dummy entry/exit nodes)
//     <id> <exec_time> <num_preds> <pred ids...>     (one line per task)
//     ...
//     # comments / trailer
//
// Task 0 is a dummy source and task n+1 a dummy sink (both zero-time);
// they are stripped by default. STG carries only software execution
// times, so hardware implementations are *synthesized* from a
// configurable acceleration model (speedup and area per HLS variant),
// the way the paper builds its own suite (1 SW + k Pareto HW variants).
#pragma once

#include <string>

#include "taskgraph/generator.hpp"
#include "taskgraph/taskgraph.hpp"

namespace resched {

struct StgOptions {
  /// Drop the zero-time dummy entry/exit tasks (STG convention).
  bool strip_dummies = true;
  /// Scale applied to STG's abstract time units to produce ticks (µs).
  double time_scale = 100.0;
  /// Hardware synthesis model: variant v (0-based) runs
  /// `speedup / time_step^v` times faster than software and needs
  /// `area_base * area_step^v` CLBs (rounded up, plus optional BRAM/DSP
  /// noise drawn from `hw_seed`).
  std::size_t num_hw_impls = 3;
  double speedup = 4.0;
  double time_step = 1.35;
  std::int64_t area_base = 1600;
  double area_step = 0.5;
  /// Seed for the synthesized heterogeneous BRAM/DSP demands (0 disables
  /// them: CLB-only implementations).
  std::uint64_t hw_seed = 1;
};

/// Parses STG text; throws InstanceError on malformed input.
TaskGraph LoadStgText(const std::string& text, const ResourceModel& model,
                      const StgOptions& options = {});

/// Loads an .stg file and wraps it into an instance on `platform`.
Instance LoadStgInstance(const std::string& path, const Platform& platform,
                         const StgOptions& options = {});

}  // namespace resched
