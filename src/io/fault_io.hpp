// JSON (de)serialization of fault scenarios (sim/faults.hpp).
//
// A scenario file is meaningful only next to the schedule it was written
// against: event indices reference that schedule's reconfiguration /
// region / task numbering.
//
// Format:
// {
//   "format": "resched-faults", "version": 1,
//   "events": [{"kind": "reconf_failure", "index": 2, "count": 1},
//              {"kind": "transient_region_fault", "index": 0,
//               "at": 120, "window": 40},
//              {"kind": "permanent_region_loss", "index": 1, "at": 300},
//              {"kind": "task_crash", "index": 7, "count": 2},
//              {"kind": "task_overrun", "index": 9, "factor": 2.0}, ...]
// }
#pragma once

#include "sim/faults.hpp"
#include "util/json.hpp"

namespace resched {

JsonValue FaultScenarioToJson(const sim::FaultScenario& scenario);
sim::FaultScenario FaultScenarioFromJson(const JsonValue& json);

std::string FaultScenarioToString(const sim::FaultScenario& scenario);
sim::FaultScenario FaultScenarioFromString(const std::string& text);

void SaveFaultScenario(const sim::FaultScenario& scenario,
                       const std::string& path);
sim::FaultScenario LoadFaultScenario(const std::string& path);

}  // namespace resched
