#include "io/instance_hash.hpp"

#include <cstdio>

#include "io/instance_io.hpp"

namespace resched {

std::string Digest128::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

std::uint64_t Fnv1a64(std::string_view text, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;  // FNV-1a 64-bit prime
  }
  return h;
}

Digest128 HashCanonicalText(std::string_view text) {
  Digest128 d;
  // Two decorrelated streams: the standard FNV offset basis and a second
  // basis derived from it by the splitmix64 constant. A collision now needs
  // to defeat both streams simultaneously.
  d.lo = Fnv1a64(text, 0xCBF29CE484222325ULL);
  d.hi = Fnv1a64(text, 0xCBF29CE484222325ULL ^ 0x9E3779B97F4A7C15ULL);
  return d;
}

std::string CanonicalInstanceText(const Instance& instance) {
  return InstanceToJson(instance).Dump(-1);
}

Digest128 HashInstance(const Instance& instance) {
  return HashCanonicalText(CanonicalInstanceText(instance));
}

}  // namespace resched
