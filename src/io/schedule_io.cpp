#include "io/schedule_io.hpp"

#include <fstream>
#include <sstream>

namespace resched {

namespace {

JsonValue ResToJson(const ResourceVec& res, const ResourceModel& model) {
  JsonObject obj;
  for (std::size_t k = 0; k < res.size(); ++k) {
    if (res[k] != 0) obj.emplace(model.Kind(k).name, res[k]);
  }
  return JsonValue(std::move(obj));
}

ResourceVec ResFromJson(const JsonValue& json, const ResourceModel& model) {
  ResourceVec res = model.ZeroVec();
  for (const auto& [name, value] : json.AsObject()) {
    res[model.KindIndex(name)] = value.AsInt();
  }
  return res;
}

}  // namespace

JsonValue ScheduleToJson(const Instance& instance, const Schedule& schedule) {
  const ResourceModel& model = instance.platform.Device().Model();

  JsonArray tasks;
  for (const TaskSlot& slot : schedule.task_slots) {
    tasks.push_back(JsonObject{
        {"task", static_cast<std::int64_t>(slot.task)},
        {"impl", slot.impl_index},
        {"target", slot.OnFpga() ? "region" : "cpu"},
        {"index", slot.target_index},
        {"start", slot.start},
        {"end", slot.end}});
  }

  JsonArray regions;
  for (const RegionInfo& region : schedule.regions) {
    JsonArray ids;
    for (const TaskId t : region.tasks) {
      ids.push_back(JsonValue(static_cast<std::int64_t>(t)));
    }
    regions.push_back(JsonObject{{"res", ResToJson(region.res, model)},
                                 {"reconf_time", region.reconf_time},
                                 {"tasks", std::move(ids)}});
  }

  JsonArray reconfs;
  for (const ReconfSlot& r : schedule.reconfigurations) {
    reconfs.push_back(JsonObject{
        {"region", r.region},
        {"loads", static_cast<std::int64_t>(r.loads_task)},
        {"start", r.start},
        {"end", r.end},
        {"controller", r.controller}});
  }

  JsonObject doc{{"format", "resched-schedule"},
                 {"version", 1},
                 {"instance", instance.name},
                 {"algorithm", schedule.algorithm},
                 {"makespan", schedule.makespan},
                 {"scheduling_seconds", schedule.scheduling_seconds},
                 {"floorplanning_seconds", schedule.floorplanning_seconds},
                 {"floorplan_retries", schedule.floorplan_retries},
                 {"tasks", std::move(tasks)},
                 {"regions", std::move(regions)},
                 {"reconfigurations", std::move(reconfs)}};
  if (!schedule.floorplan.empty()) {
    JsonArray rects;
    for (const Rect& r : schedule.floorplan) {
      rects.push_back(JsonObject{{"col", r.col0},
                                 {"row", r.row0},
                                 {"w", r.width},
                                 {"h", r.height}});
    }
    doc.emplace("floorplan", std::move(rects));
  }
  return JsonValue(std::move(doc));
}

Schedule ScheduleFromJson(const Instance& instance, const JsonValue& json) {
  if (json.GetString("format", "") != "resched-schedule") {
    throw InstanceError("not a resched-schedule document");
  }
  if (json.GetInt("version", 0) != 1) {
    throw InstanceError("unsupported schedule format version");
  }
  const ResourceModel& model = instance.platform.Device().Model();

  Schedule schedule;
  schedule.algorithm = json.GetString("algorithm", "?");
  schedule.makespan = json.At("makespan").AsInt();
  schedule.scheduling_seconds = json.GetDouble("scheduling_seconds", 0.0);
  schedule.floorplanning_seconds =
      json.GetDouble("floorplanning_seconds", 0.0);
  schedule.floorplan_retries = static_cast<std::size_t>(
      json.GetInt("floorplan_retries", 0));

  for (const JsonValue& tj : json.At("tasks").AsArray()) {
    TaskSlot slot;
    slot.task = static_cast<TaskId>(tj.At("task").AsInt());
    slot.impl_index = static_cast<std::size_t>(tj.At("impl").AsInt());
    const std::string target = tj.At("target").AsString();
    if (target == "region") {
      slot.target = TargetKind::kRegion;
    } else if (target == "cpu") {
      slot.target = TargetKind::kProcessor;
    } else {
      throw InstanceError("unknown schedule target: " + target);
    }
    slot.target_index = static_cast<std::size_t>(tj.At("index").AsInt());
    slot.start = tj.At("start").AsInt();
    slot.end = tj.At("end").AsInt();
    schedule.task_slots.push_back(slot);
  }
  if (schedule.task_slots.size() != instance.graph.NumTasks()) {
    throw InstanceError("schedule task count does not match the instance");
  }

  for (const JsonValue& rj : json.At("regions").AsArray()) {
    RegionInfo region;
    region.res = ResFromJson(rj.At("res"), model);
    region.reconf_time = rj.At("reconf_time").AsInt();
    for (const JsonValue& id : rj.At("tasks").AsArray()) {
      region.tasks.push_back(static_cast<TaskId>(id.AsInt()));
    }
    schedule.regions.push_back(std::move(region));
  }

  for (const JsonValue& rj : json.At("reconfigurations").AsArray()) {
    ReconfSlot slot;
    slot.region = static_cast<std::size_t>(rj.At("region").AsInt());
    slot.loads_task = static_cast<TaskId>(rj.At("loads").AsInt());
    slot.start = rj.At("start").AsInt();
    slot.end = rj.At("end").AsInt();
    slot.controller = static_cast<std::size_t>(rj.GetInt("controller", 0));
    schedule.reconfigurations.push_back(slot);
  }

  if (json.Contains("floorplan")) {
    for (const JsonValue& rj : json.At("floorplan").AsArray()) {
      schedule.floorplan.push_back(
          Rect{static_cast<std::size_t>(rj.At("col").AsInt()),
               static_cast<std::size_t>(rj.At("row").AsInt()),
               static_cast<std::size_t>(rj.At("w").AsInt()),
               static_cast<std::size_t>(rj.At("h").AsInt())});
    }
    schedule.floorplan_checked = true;
  }
  return schedule;
}

std::string ScheduleToString(const Instance& instance,
                             const Schedule& schedule) {
  return ScheduleToJson(instance, schedule).Dump(2);
}

Schedule ScheduleFromString(const Instance& instance,
                            const std::string& text) {
  return ScheduleFromJson(instance, JsonValue::Parse(text));
}

void SaveSchedule(const Instance& instance, const Schedule& schedule,
                  const std::string& path) {
  std::ofstream out(path);
  if (!out) throw InstanceError("cannot open for writing: " + path);
  out << ScheduleToString(instance, schedule) << '\n';
  if (!out) throw InstanceError("write failed: " + path);
}

Schedule LoadSchedule(const Instance& instance, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InstanceError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ScheduleFromString(instance, buf.str());
}

}  // namespace resched
