// JSON (de)serialization of schedules.
//
// A schedule document references its instance by name and task ids, so a
// schedule file is only meaningful next to its instance file; FromJson
// takes the instance to resolve resource-model arity and validate shape.
//
// Format:
// {
//   "format": "resched-schedule", "version": 1,
//   "instance": "<instance name>", "algorithm": "PA", "makespan": 123,
//   "tasks": [{"task": 0, "impl": 1, "target": "region"|"cpu",
//              "index": 0, "start": 0, "end": 100}, ...],
//   "regions": [{"res": {"CLB": 100}, "reconf_time": 7,
//                "tasks": [0, 3]}, ...],
//   "reconfigurations": [{"region": 0, "loads": 3,
//                         "start": 100, "end": 107}, ...],
//   "floorplan": [{"col": 0, "row": 0, "w": 3, "h": 1}, ...]   // optional
// }
#pragma once

#include "sched/schedule.hpp"
#include "util/json.hpp"

namespace resched {

JsonValue ScheduleToJson(const Instance& instance, const Schedule& schedule);
Schedule ScheduleFromJson(const Instance& instance, const JsonValue& json);

std::string ScheduleToString(const Instance& instance,
                             const Schedule& schedule);
Schedule ScheduleFromString(const Instance& instance,
                            const std::string& text);

void SaveSchedule(const Instance& instance, const Schedule& schedule,
                  const std::string& path);
Schedule LoadSchedule(const Instance& instance, const std::string& path);

}  // namespace resched
