// Graphviz DOT export of task graphs (debugging / documentation aid).
#pragma once

#include <string>

#include "taskgraph/taskgraph.hpp"

namespace resched {

/// Renders the DAG with per-task implementation summaries as node labels.
std::string ToDot(const TaskGraph& graph, const std::string& graph_name = "tg");

}  // namespace resched
