// Application model: a DAG of tasks, each with one or more hardware and
// software implementations (§III of the paper).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "arch/platform.hpp"
#include "arch/resource.hpp"
#include "util/common.hpp"

namespace resched {

using TaskId = std::int32_t;
inline constexpr TaskId kInvalidTask = -1;

enum class ImplKind : std::uint8_t { kSoftware, kHardware };

/// One implementation of a task.
///
/// `module_id` identifies the synthesized module: two implementations (of
/// the same or different tasks) with equal non-negative module_id are the
/// *same* bitstream, so a reconfiguration between them can be skipped
/// (module reuse — exploited by the IS-k baseline, and by PA only when the
/// module-reuse extension is enabled). A module_id of -1 means "unique".
struct Implementation {
  std::string name;
  ImplKind kind = ImplKind::kSoftware;
  TimeT exec_time = 0;
  ResourceVec res;       ///< empty (arity 0) for software implementations
  std::int32_t module_id = -1;

  bool IsHardware() const { return kind == ImplKind::kHardware; }
  bool IsSoftware() const { return kind == ImplKind::kSoftware; }
};

/// A task node: name plus its implementation alternatives.
struct Task {
  TaskId id = kInvalidTask;
  std::string name;
  std::vector<Implementation> impls;
};

/// Directed acyclic task graph with per-task implementation lists.
///
/// Construction is additive (AddTask/AddImpl/AddEdge); Validate() checks the
/// structural preconditions the schedulers rely on and is called by every
/// scheduler entry point.
class TaskGraph {
 public:
  /// Adds a task with no implementations yet; returns its id (dense, 0-based).
  TaskId AddTask(std::string name);

  /// Adds an implementation alternative; returns its index within the task.
  std::size_t AddImpl(TaskId task, Implementation impl);

  /// Adds a data dependency `from -> to`. Duplicate edges are ignored.
  void AddEdge(TaskId from, TaskId to);

  /// Communication-overhead extension (paper future work): attaches a data
  /// payload to an existing edge. The payload only costs time when the
  /// producer and consumer run in different domains (hardware region vs
  /// processor) on a platform with a finite HW<->SW bandwidth; see
  /// sched/comm.hpp.
  void SetEdgeData(TaskId from, TaskId to, std::int64_t bytes);
  /// Payload of an edge (0 when never set). Requires the edge to exist.
  std::int64_t EdgeData(TaskId from, TaskId to) const;
  /// True when any edge carries a payload.
  bool HasEdgeData() const { return !edge_data_.empty(); }

  std::size_t NumTasks() const { return tasks_.size(); }
  std::size_t NumEdges() const { return num_edges_; }

  const Task& GetTask(TaskId t) const;
  const Implementation& GetImpl(TaskId t, std::size_t impl_index) const;

  const std::vector<TaskId>& Successors(TaskId t) const;
  const std::vector<TaskId>& Predecessors(TaskId t) const;
  bool HasEdge(TaskId from, TaskId to) const;

  /// Kahn topological order; throws InstanceError when the graph is cyclic.
  std::vector<TaskId> TopologicalOrder() const;

  /// Checks: non-empty, acyclic, every task has >= 1 software
  /// implementation (paper assumption), hardware requirement vectors match
  /// the model arity and fit the device capacity, positive execution times.
  void Validate(const FpgaDevice& device) const;

  /// Index of the fastest software implementation of `t` (paper guarantees
  /// one exists; throws InstanceError otherwise).
  std::size_t FastestSoftwareImpl(TaskId t) const;

  /// Indices of all hardware implementations of `t`.
  std::vector<std::size_t> HardwareImpls(TaskId t) const;

  /// Sum over tasks of their minimum implementation time — the maxT
  /// normalizer of Eq. (4).
  TimeT SerialLowerBoundTime() const;

 private:
  void CheckTask(TaskId t) const;

  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> succs_;
  std::vector<std::vector<TaskId>> preds_;
  std::map<std::pair<TaskId, TaskId>, std::int64_t> edge_data_;
  std::size_t num_edges_ = 0;
};

/// A complete problem instance: platform + application.
struct Instance {
  std::string name;
  Platform platform;
  TaskGraph graph;
};

}  // namespace resched
