#include "taskgraph/timing.hpp"

#include <algorithm>

namespace resched {

namespace {

/// Ordering for the sparse base-gap table.
bool GapKeyLess(const std::pair<std::pair<TaskId, TaskId>, TimeT>& entry,
                const std::pair<TaskId, TaskId>& key) {
  return entry.first < key;
}

}  // namespace

TimingContext::TimingContext(const TaskGraph& graph)
    : graph_(&graph),
      exec_(graph.NumTasks(), 0),
      release_(graph.NumTasks(), 0),
      extra_out_(graph.NumTasks()),
      extra_in_(graph.NumTasks()),
      visit_stamp_(graph.NumTasks(), 0) {
  // Flatten the base graph into CSR once; the topology never changes over
  // the context's lifetime, only the gap weights do.
  const std::size_t n = graph.NumTasks();
  pred_off_.resize(n + 1, 0);
  succ_off_.resize(n + 1, 0);
  std::size_t edges = 0;
  for (std::size_t t = 0; t < n; ++t) {
    edges += graph.Predecessors(static_cast<TaskId>(t)).size();
  }
  pred_task_.reserve(edges);
  succ_task_.reserve(edges);
  for (std::size_t t = 0; t < n; ++t) {
    pred_off_[t] = pred_task_.size();
    for (const TaskId p : graph.Predecessors(static_cast<TaskId>(t))) {
      pred_task_.push_back(p);
    }
  }
  pred_off_[n] = pred_task_.size();
  for (std::size_t t = 0; t < n; ++t) {
    succ_off_[t] = succ_task_.size();
    for (const TaskId s : graph.Successors(static_cast<TaskId>(t))) {
      succ_task_.push_back(s);
    }
  }
  succ_off_[n] = succ_task_.size();
  pred_gap_.assign(pred_task_.size(), 0);
  succ_gap_.assign(succ_task_.size(), 0);
}

void TimingContext::WriteCsrGap(TaskId from, TaskId to, TimeT gap) {
  const auto fi = static_cast<std::size_t>(from);
  const auto ti = static_cast<std::size_t>(to);
  for (std::size_t e = pred_off_[ti]; e < pred_off_[ti + 1]; ++e) {
    if (pred_task_[e] == from) {
      pred_gap_[e] = gap;
      break;
    }
  }
  for (std::size_t e = succ_off_[fi]; e < succ_off_[fi + 1]; ++e) {
    if (succ_task_[e] == to) {
      succ_gap_[e] = gap;
      break;
    }
  }
  if (gap != 0) have_base_gaps_ = true;
}

void TimingContext::ClearCsrGaps() {
  if (!have_base_gaps_) return;
  std::fill(pred_gap_.begin(), pred_gap_.end(), TimeT{0});
  std::fill(succ_gap_.begin(), succ_gap_.end(), TimeT{0});
  have_base_gaps_ = false;
}

void TimingContext::Reset() {
  std::fill(exec_.begin(), exec_.end(), TimeT{0});
  std::fill(release_.begin(), release_.end(), TimeT{0});
  base_gaps_.clear();
  ClearCsrGaps();
  extra_.clear();
  for (auto& out : extra_out_) out.clear();
  for (auto& in : extra_in_) in.clear();
  dirty_ = true;
}

void TimingContext::SetExecTime(TaskId t, TimeT exec) {
  RESCHED_CHECK_MSG(exec > 0, "execution time must be positive");
  exec_.at(static_cast<std::size_t>(t)) = exec;
  dirty_ = true;
}

TimeT TimingContext::ExecTime(TaskId t) const {
  return exec_.at(static_cast<std::size_t>(t));
}

bool TimingContext::Reaches(TaskId from, TaskId to) const {
  if (from == to) return true;
  // Epoch-stamped iterative DFS — no per-call allocation after warm-up.
  if (++stamp_ == 0) {  // stamp wrapped: invalidate everything once
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0u);
    stamp_ = 1;
  }
  dfs_stack_.clear();
  dfs_stack_.push_back(from);
  visit_stamp_[static_cast<std::size_t>(from)] = stamp_;
  while (!dfs_stack_.empty()) {
    const auto ui = static_cast<std::size_t>(dfs_stack_.back());
    dfs_stack_.pop_back();
    for (std::size_t e = succ_off_[ui]; e < succ_off_[ui + 1]; ++e) {
      const TaskId v = succ_task_[e];
      if (v == to) return true;
      auto& seen = visit_stamp_[static_cast<std::size_t>(v)];
      if (seen != stamp_) {
        seen = stamp_;
        dfs_stack_.push_back(v);
      }
    }
    for (const std::size_t e : extra_out_[ui]) {
      const TaskId v = extra_[e].to;
      if (v == to) return true;
      auto& seen = visit_stamp_[static_cast<std::size_t>(v)];
      if (seen != stamp_) {
        seen = stamp_;
        dfs_stack_.push_back(v);
      }
    }
  }
  return false;
}

void TimingContext::AddOrderingEdge(TaskId from, TaskId to, TimeT gap) {
  RESCHED_CHECK_MSG(gap >= 0, "negative ordering gap");
  RESCHED_CHECK_MSG(from != to, "self ordering edge");
  // Eager cycle check *before* inserting: the edge closes a cycle exactly
  // when `to` already reaches `from`.
  RESCHED_CHECK_MSG(!Reaches(to, from),
                    "ordering edges introduced a cycle (scheduler bug)");
  const std::size_t index = extra_.size();
  extra_.push_back(OrderingEdge{from, to, gap});
  extra_out_[static_cast<std::size_t>(from)].push_back(index);
  extra_in_[static_cast<std::size_t>(to)].push_back(index);
  dirty_ = true;
}

void TimingContext::RaiseRelease(TaskId t, TimeT release) {
  auto& r = release_.at(static_cast<std::size_t>(t));
  if (release > r) {
    r = release;
    dirty_ = true;
  }
}

TimeT TimingContext::Release(TaskId t) const {
  return release_.at(static_cast<std::size_t>(t));
}

void TimingContext::SetBaseEdgeGap(TaskId from, TaskId to, TimeT gap) {
  RESCHED_CHECK_MSG(gap >= 0, "negative base edge gap");
  RESCHED_CHECK_MSG(graph_->HasEdge(from, to),
                    "SetBaseEdgeGap on a missing edge");
  const std::pair<TaskId, TaskId> key{from, to};
  const auto it =
      std::lower_bound(base_gaps_.begin(), base_gaps_.end(), key, GapKeyLess);
  const bool present = it != base_gaps_.end() && it->first == key;
  if (gap == 0) {
    if (present) base_gaps_.erase(it);
  } else if (present) {
    it->second = gap;
  } else {
    base_gaps_.insert(it, {key, gap});
  }
  WriteCsrGap(from, to, gap);
  have_base_gaps_ = !base_gaps_.empty();
  dirty_ = true;
}

TimeT TimingContext::BaseEdgeGap(TaskId from, TaskId to) const {
  if (base_gaps_.empty()) return 0;  // the common case, checked first
  const std::pair<TaskId, TaskId> key{from, to};
  const auto it =
      std::lower_bound(base_gaps_.begin(), base_gaps_.end(), key, GapKeyLess);
  return it != base_gaps_.end() && it->first == key ? it->second : 0;
}

void TimingContext::AssignBaseEdgeGaps(
    const std::vector<std::pair<std::pair<TaskId, TaskId>, TimeT>>& gaps) {
  base_gaps_.assign(gaps.begin(), gaps.end());
  std::sort(base_gaps_.begin(), base_gaps_.end());
  ClearCsrGaps();
  for (const auto& [key, gap] : base_gaps_) {
    RESCHED_CHECK_MSG(gap >= 0, "negative base edge gap");
    RESCHED_CHECK_MSG(graph_->HasEdge(key.first, key.second),
                      "AssignBaseEdgeGaps on a missing edge");
    WriteCsrGap(key.first, key.second, gap);
  }
  dirty_ = true;
}

const std::vector<TaskId>& TimingContext::CombinedTopologicalOrderRef() const {
  const std::size_t n = exec_.size();
  kahn_indegree_.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    kahn_indegree_[t] = (pred_off_[t + 1] - pred_off_[t]) + extra_in_[t].size();
  }
  // Kahn's algorithm with the order vector doubling as the FIFO queue.
  kahn_order_.clear();
  for (std::size_t t = 0; t < n; ++t) {
    if (kahn_indegree_[t] == 0) kahn_order_.push_back(static_cast<TaskId>(t));
  }
  for (std::size_t head = 0; head < kahn_order_.size(); ++head) {
    const auto ti = static_cast<std::size_t>(kahn_order_[head]);
    for (std::size_t e = succ_off_[ti]; e < succ_off_[ti + 1]; ++e) {
      const TaskId s = succ_task_[e];
      if (--kahn_indegree_[static_cast<std::size_t>(s)] == 0) {
        kahn_order_.push_back(s);
      }
    }
    for (const std::size_t e : extra_out_[ti]) {
      const TaskId s = extra_[e].to;
      if (--kahn_indegree_[static_cast<std::size_t>(s)] == 0) {
        kahn_order_.push_back(s);
      }
    }
  }
  RESCHED_CHECK_MSG(kahn_order_.size() == n,
                    "ordering edges introduced a cycle (scheduler bug)");
  return kahn_order_;
}

std::vector<TaskId> TimingContext::CombinedTopologicalOrder() const {
  return CombinedTopologicalOrderRef();
}

const TimeWindows& TimingContext::Windows() const {
  if (dirty_) Recompute();
  return windows_;
}

void TimingContext::Recompute() const {
  const std::size_t n = exec_.size();
  for (std::size_t t = 0; t < n; ++t) {
    RESCHED_CHECK_MSG(exec_[t] > 0,
                      "Windows() before all execution times were set");
  }
  const std::vector<TaskId>& order = CombinedTopologicalOrderRef();

  windows_.earliest_start.assign(n, 0);
  windows_.latest_finish.assign(n, 0);
  windows_.critical.assign(n, false);

  // Forward sweep: T_MIN. The CSR gap arrays are all-zero unless the
  // communication-overhead extension is active, so the common case is a
  // pure `es[p] + exec[p]` reduction over a contiguous slice.
  auto& es = windows_.earliest_start;
  for (const TaskId t : order) {
    const auto ti = static_cast<std::size_t>(t);
    TimeT start = release_[ti];
    for (std::size_t e = pred_off_[ti]; e < pred_off_[ti + 1]; ++e) {
      const auto pi = static_cast<std::size_t>(pred_task_[e]);
      start = std::max(start, es[pi] + exec_[pi] + pred_gap_[e]);
    }
    for (const std::size_t e : extra_in_[ti]) {
      const auto pi = static_cast<std::size_t>(extra_[e].from);
      start = std::max(start, es[pi] + exec_[pi] + extra_[e].gap);
    }
    es[ti] = start;
  }

  TimeT makespan = 0;
  for (std::size_t t = 0; t < n; ++t) {
    makespan = std::max(makespan, es[t] + exec_[t]);
  }
  windows_.makespan = makespan;

  // Backward sweep: T_MAX.
  auto& lf = windows_.latest_finish;
  lf.assign(n, makespan);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto ti = static_cast<std::size_t>(*it);
    TimeT finish = lf[ti];
    for (std::size_t e = succ_off_[ti]; e < succ_off_[ti + 1]; ++e) {
      const auto si = static_cast<std::size_t>(succ_task_[e]);
      finish = std::min(finish, lf[si] - exec_[si] - succ_gap_[e]);
    }
    for (const std::size_t e : extra_out_[ti]) {
      const auto si = static_cast<std::size_t>(extra_[e].to);
      finish = std::min(finish, lf[si] - exec_[si] - extra_[e].gap);
    }
    lf[ti] = finish;
  }

  for (std::size_t t = 0; t < n; ++t) {
    windows_.critical[t] = (lf[t] - es[t] == exec_[t]);
  }
  ++version_;
  dirty_ = false;
}

}  // namespace resched
