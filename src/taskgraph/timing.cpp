#include "taskgraph/timing.hpp"

#include <algorithm>
#include <deque>

namespace resched {

TimingContext::TimingContext(const TaskGraph& graph)
    : graph_(&graph),
      exec_(graph.NumTasks(), 0),
      release_(graph.NumTasks(), 0),
      extra_out_(graph.NumTasks()),
      extra_in_(graph.NumTasks()) {}

void TimingContext::SetExecTime(TaskId t, TimeT exec) {
  RESCHED_CHECK_MSG(exec > 0, "execution time must be positive");
  exec_.at(static_cast<std::size_t>(t)) = exec;
  dirty_ = true;
}

TimeT TimingContext::ExecTime(TaskId t) const {
  return exec_.at(static_cast<std::size_t>(t));
}

void TimingContext::AddOrderingEdge(TaskId from, TaskId to, TimeT gap) {
  RESCHED_CHECK_MSG(gap >= 0, "negative ordering gap");
  RESCHED_CHECK_MSG(from != to, "self ordering edge");
  const std::size_t index = extra_.size();
  extra_.push_back(OrderingEdge{from, to, gap});
  extra_out_[static_cast<std::size_t>(from)].push_back(index);
  extra_in_[static_cast<std::size_t>(to)].push_back(index);
  dirty_ = true;
  // Cycle check: recompute will throw via CombinedTopologicalOrder.
  (void)CombinedTopologicalOrder();
}

void TimingContext::RaiseRelease(TaskId t, TimeT release) {
  auto& r = release_.at(static_cast<std::size_t>(t));
  if (release > r) {
    r = release;
    dirty_ = true;
  }
}

TimeT TimingContext::Release(TaskId t) const {
  return release_.at(static_cast<std::size_t>(t));
}

void TimingContext::SetBaseEdgeGap(TaskId from, TaskId to, TimeT gap) {
  RESCHED_CHECK_MSG(gap >= 0, "negative base edge gap");
  RESCHED_CHECK_MSG(graph_->HasEdge(from, to),
                    "SetBaseEdgeGap on a missing edge");
  if (gap == 0) {
    base_gaps_.erase({from, to});
  } else {
    base_gaps_[{from, to}] = gap;
  }
  dirty_ = true;
}

TimeT TimingContext::BaseEdgeGap(TaskId from, TaskId to) const {
  const auto it = base_gaps_.find({from, to});
  return it == base_gaps_.end() ? 0 : it->second;
}

std::vector<TaskId> TimingContext::CombinedTopologicalOrder() const {
  const std::size_t n = exec_.size();
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    indegree[t] = graph_->Predecessors(static_cast<TaskId>(t)).size() +
                  extra_in_[t].size();
  }
  std::deque<TaskId> ready;
  for (std::size_t t = 0; t < n; ++t) {
    if (indegree[t] == 0) ready.push_back(static_cast<TaskId>(t));
  }
  std::vector<TaskId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const TaskId t = ready.front();
    ready.pop_front();
    order.push_back(t);
    for (const TaskId s : graph_->Successors(t)) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
    for (const std::size_t e : extra_out_[static_cast<std::size_t>(t)]) {
      const TaskId s = extra_[e].to;
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  RESCHED_CHECK_MSG(order.size() == n,
                    "ordering edges introduced a cycle (scheduler bug)");
  return order;
}

const TimeWindows& TimingContext::Windows() const {
  if (dirty_) Recompute();
  return windows_;
}

void TimingContext::Recompute() const {
  const std::size_t n = exec_.size();
  for (std::size_t t = 0; t < n; ++t) {
    RESCHED_CHECK_MSG(exec_[t] > 0,
                      "Windows() before all execution times were set");
  }
  const std::vector<TaskId> order = CombinedTopologicalOrder();

  windows_.earliest_start.assign(n, 0);
  windows_.latest_finish.assign(n, 0);
  windows_.critical.assign(n, false);

  // Forward sweep: T_MIN.
  auto& es = windows_.earliest_start;
  for (const TaskId t : order) {
    const auto ti = static_cast<std::size_t>(t);
    TimeT start = release_[ti];
    for (const TaskId p : graph_->Predecessors(t)) {
      const auto pi = static_cast<std::size_t>(p);
      start = std::max(start, es[pi] + exec_[pi] + BaseEdgeGap(p, t));
    }
    for (const std::size_t e : extra_in_[ti]) {
      const auto pi = static_cast<std::size_t>(extra_[e].from);
      start = std::max(start, es[pi] + exec_[pi] + extra_[e].gap);
    }
    es[ti] = start;
  }

  TimeT makespan = 0;
  for (std::size_t t = 0; t < n; ++t) {
    makespan = std::max(makespan, es[t] + exec_[t]);
  }
  windows_.makespan = makespan;

  // Backward sweep: T_MAX.
  auto& lf = windows_.latest_finish;
  lf.assign(n, makespan);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    const auto ti = static_cast<std::size_t>(t);
    for (const TaskId s : graph_->Successors(t)) {
      const auto si = static_cast<std::size_t>(s);
      lf[ti] = std::min(lf[ti], lf[si] - exec_[si] - BaseEdgeGap(t, s));
    }
    for (const std::size_t e : extra_out_[ti]) {
      const auto si = static_cast<std::size_t>(extra_[e].to);
      lf[ti] = std::min(lf[ti], lf[si] - exec_[si] - extra_[e].gap);
    }
  }

  for (std::size_t t = 0; t < n; ++t) {
    windows_.critical[t] = (lf[t] - es[t] == exec_[t]);
  }
  dirty_ = false;
}

}  // namespace resched
