#include "taskgraph/timing.hpp"

#include <algorithm>

namespace resched {

namespace {

/// Ordering for the sparse base-gap table.
bool GapKeyLess(const std::pair<std::pair<TaskId, TaskId>, TimeT>& entry,
                const std::pair<TaskId, TaskId>& key) {
  return entry.first < key;
}

}  // namespace

TimingContext::TimingContext(const TaskGraph& graph)
    : graph_(&graph),
      exec_(graph.NumTasks(), 0),
      release_(graph.NumTasks(), 0),
      extra_out_(graph.NumTasks()),
      extra_in_(graph.NumTasks()),
      visit_stamp_(graph.NumTasks(), 0) {}

void TimingContext::Reset() {
  std::fill(exec_.begin(), exec_.end(), TimeT{0});
  std::fill(release_.begin(), release_.end(), TimeT{0});
  base_gaps_.clear();
  extra_.clear();
  for (auto& out : extra_out_) out.clear();
  for (auto& in : extra_in_) in.clear();
  dirty_ = true;
}

void TimingContext::SetExecTime(TaskId t, TimeT exec) {
  RESCHED_CHECK_MSG(exec > 0, "execution time must be positive");
  exec_.at(static_cast<std::size_t>(t)) = exec;
  dirty_ = true;
}

TimeT TimingContext::ExecTime(TaskId t) const {
  return exec_.at(static_cast<std::size_t>(t));
}

bool TimingContext::Reaches(TaskId from, TaskId to) const {
  if (from == to) return true;
  // Epoch-stamped iterative DFS — no per-call allocation after warm-up.
  if (++stamp_ == 0) {  // stamp wrapped: invalidate everything once
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0u);
    stamp_ = 1;
  }
  dfs_stack_.clear();
  dfs_stack_.push_back(from);
  visit_stamp_[static_cast<std::size_t>(from)] = stamp_;
  while (!dfs_stack_.empty()) {
    const TaskId u = dfs_stack_.back();
    dfs_stack_.pop_back();
    for (const TaskId v : graph_->Successors(u)) {
      if (v == to) return true;
      auto& seen = visit_stamp_[static_cast<std::size_t>(v)];
      if (seen != stamp_) {
        seen = stamp_;
        dfs_stack_.push_back(v);
      }
    }
    for (const std::size_t e : extra_out_[static_cast<std::size_t>(u)]) {
      const TaskId v = extra_[e].to;
      if (v == to) return true;
      auto& seen = visit_stamp_[static_cast<std::size_t>(v)];
      if (seen != stamp_) {
        seen = stamp_;
        dfs_stack_.push_back(v);
      }
    }
  }
  return false;
}

void TimingContext::AddOrderingEdge(TaskId from, TaskId to, TimeT gap) {
  RESCHED_CHECK_MSG(gap >= 0, "negative ordering gap");
  RESCHED_CHECK_MSG(from != to, "self ordering edge");
  // Eager cycle check *before* inserting: the edge closes a cycle exactly
  // when `to` already reaches `from`.
  RESCHED_CHECK_MSG(!Reaches(to, from),
                    "ordering edges introduced a cycle (scheduler bug)");
  const std::size_t index = extra_.size();
  extra_.push_back(OrderingEdge{from, to, gap});
  extra_out_[static_cast<std::size_t>(from)].push_back(index);
  extra_in_[static_cast<std::size_t>(to)].push_back(index);
  dirty_ = true;
}

void TimingContext::RaiseRelease(TaskId t, TimeT release) {
  auto& r = release_.at(static_cast<std::size_t>(t));
  if (release > r) {
    r = release;
    dirty_ = true;
  }
}

TimeT TimingContext::Release(TaskId t) const {
  return release_.at(static_cast<std::size_t>(t));
}

void TimingContext::SetBaseEdgeGap(TaskId from, TaskId to, TimeT gap) {
  RESCHED_CHECK_MSG(gap >= 0, "negative base edge gap");
  RESCHED_CHECK_MSG(graph_->HasEdge(from, to),
                    "SetBaseEdgeGap on a missing edge");
  const std::pair<TaskId, TaskId> key{from, to};
  const auto it =
      std::lower_bound(base_gaps_.begin(), base_gaps_.end(), key, GapKeyLess);
  const bool present = it != base_gaps_.end() && it->first == key;
  if (gap == 0) {
    if (present) base_gaps_.erase(it);
  } else if (present) {
    it->second = gap;
  } else {
    base_gaps_.insert(it, {key, gap});
  }
  dirty_ = true;
}

TimeT TimingContext::BaseEdgeGap(TaskId from, TaskId to) const {
  if (base_gaps_.empty()) return 0;  // the common case, checked first
  const std::pair<TaskId, TaskId> key{from, to};
  const auto it =
      std::lower_bound(base_gaps_.begin(), base_gaps_.end(), key, GapKeyLess);
  return it != base_gaps_.end() && it->first == key ? it->second : 0;
}

void TimingContext::AssignBaseEdgeGaps(
    const std::vector<std::pair<std::pair<TaskId, TaskId>, TimeT>>& gaps) {
  base_gaps_.assign(gaps.begin(), gaps.end());
  std::sort(base_gaps_.begin(), base_gaps_.end());
  for (const auto& [key, gap] : base_gaps_) {
    RESCHED_CHECK_MSG(gap >= 0, "negative base edge gap");
    RESCHED_CHECK_MSG(graph_->HasEdge(key.first, key.second),
                      "AssignBaseEdgeGaps on a missing edge");
  }
  dirty_ = true;
}

const std::vector<TaskId>& TimingContext::CombinedTopologicalOrderRef() const {
  const std::size_t n = exec_.size();
  kahn_indegree_.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    kahn_indegree_[t] = graph_->Predecessors(static_cast<TaskId>(t)).size() +
                        extra_in_[t].size();
  }
  // Kahn's algorithm with the order vector doubling as the FIFO queue.
  kahn_order_.clear();
  for (std::size_t t = 0; t < n; ++t) {
    if (kahn_indegree_[t] == 0) kahn_order_.push_back(static_cast<TaskId>(t));
  }
  for (std::size_t head = 0; head < kahn_order_.size(); ++head) {
    const TaskId t = kahn_order_[head];
    for (const TaskId s : graph_->Successors(t)) {
      if (--kahn_indegree_[static_cast<std::size_t>(s)] == 0) {
        kahn_order_.push_back(s);
      }
    }
    for (const std::size_t e : extra_out_[static_cast<std::size_t>(t)]) {
      const TaskId s = extra_[e].to;
      if (--kahn_indegree_[static_cast<std::size_t>(s)] == 0) {
        kahn_order_.push_back(s);
      }
    }
  }
  RESCHED_CHECK_MSG(kahn_order_.size() == n,
                    "ordering edges introduced a cycle (scheduler bug)");
  return kahn_order_;
}

std::vector<TaskId> TimingContext::CombinedTopologicalOrder() const {
  return CombinedTopologicalOrderRef();
}

const TimeWindows& TimingContext::Windows() const {
  if (dirty_) Recompute();
  return windows_;
}

void TimingContext::Recompute() const {
  const std::size_t n = exec_.size();
  for (std::size_t t = 0; t < n; ++t) {
    RESCHED_CHECK_MSG(exec_[t] > 0,
                      "Windows() before all execution times were set");
  }
  const std::vector<TaskId>& order = CombinedTopologicalOrderRef();

  windows_.earliest_start.assign(n, 0);
  windows_.latest_finish.assign(n, 0);
  windows_.critical.assign(n, false);

  // Forward sweep: T_MIN.
  auto& es = windows_.earliest_start;
  for (const TaskId t : order) {
    const auto ti = static_cast<std::size_t>(t);
    TimeT start = release_[ti];
    for (const TaskId p : graph_->Predecessors(t)) {
      const auto pi = static_cast<std::size_t>(p);
      start = std::max(start, es[pi] + exec_[pi] + BaseEdgeGap(p, t));
    }
    for (const std::size_t e : extra_in_[ti]) {
      const auto pi = static_cast<std::size_t>(extra_[e].from);
      start = std::max(start, es[pi] + exec_[pi] + extra_[e].gap);
    }
    es[ti] = start;
  }

  TimeT makespan = 0;
  for (std::size_t t = 0; t < n; ++t) {
    makespan = std::max(makespan, es[t] + exec_[t]);
  }
  windows_.makespan = makespan;

  // Backward sweep: T_MAX.
  auto& lf = windows_.latest_finish;
  lf.assign(n, makespan);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    const auto ti = static_cast<std::size_t>(t);
    for (const TaskId s : graph_->Successors(t)) {
      const auto si = static_cast<std::size_t>(s);
      lf[ti] = std::min(lf[ti], lf[si] - exec_[si] - BaseEdgeGap(t, s));
    }
    for (const std::size_t e : extra_out_[ti]) {
      const auto si = static_cast<std::size_t>(extra_[e].to);
      lf[ti] = std::min(lf[ti], lf[si] - exec_[si] - extra_[e].gap);
    }
  }

  for (std::size_t t = 0; t < n; ++t) {
    windows_.critical[t] = (lf[t] - es[t] == exec_[t]);
  }
  dirty_ = false;
}

}  // namespace resched
