// Synthetic task-graph generator reproducing the paper's benchmark suite
// (§VII-A): pseudo-random layered DAGs where every task has one software
// implementation and `num_hw_impls` hardware implementations forming a
// Pareto trade-off between execution time and (heterogeneous CLB/BRAM/DSP)
// resource requirements; a fraction of tasks share a common hardware module
// library entry so that module reuse is possible.
//
// Generation is fully deterministic given (options, seed).
#pragma once

#include <cstdint>
#include <string>

#include "taskgraph/taskgraph.hpp"
#include "util/rng.hpp"

namespace resched {

struct GeneratorOptions {
  std::size_t num_tasks = 40;

  // --- DAG shape ------------------------------------------------------
  /// Maximum tasks per layer; actual widths are drawn uniformly in
  /// [1, max_width]. Controls the parallelism the graph exposes.
  std::size_t max_width = 10;
  /// Probability of an extra edge between any (earlier, later)-layer pair
  /// beyond the connectivity baseline.
  double extra_edge_prob = 0.08;
  /// Maximum number of parents drawn from the previous layer.
  std::size_t max_parents = 2;

  // --- Implementations -------------------------------------------------
  std::size_t num_hw_impls = 3;
  /// Fastest-HW-implementation execution time range, in ticks (µs).
  TimeT hw_fast_time_lo = 800;
  TimeT hw_fast_time_hi = 8000;
  /// Successive HW implementations are `time_step` x slower and
  /// `area_step` x smaller than the previous one (Pareto frontier).
  double time_step = 1.35;
  double area_step = 0.5;
  /// Software slowdown relative to the fastest HW implementation.
  double sw_slowdown_lo = 2.0;
  double sw_slowdown_hi = 4.0;

  // --- Resource requirements of the fastest HW implementation ----------
  std::int64_t clb_lo = 600;
  std::int64_t clb_hi = 2400;
  double bram_prob = 0.55;  ///< probability the module uses BRAM at all
  std::int64_t bram_lo = 2;
  std::int64_t bram_hi = 24;
  double dsp_prob = 0.55;
  std::int64_t dsp_lo = 4;
  std::int64_t dsp_hi = 40;

  /// Probability that a task reuses a previously generated hardware module
  /// library entry (same module ids -> module reuse possible, §VII-A).
  double share_prob = 0.15;

  /// Communication-overhead extension: when comm_bytes_hi > 0, every edge
  /// receives a payload drawn uniformly from [comm_bytes_lo,
  /// comm_bytes_hi] (bytes). Only priced when the platform also sets a
  /// HW<->SW bandwidth. Default off (matches the paper's model).
  std::int64_t comm_bytes_lo = 0;
  std::int64_t comm_bytes_hi = 0;

  /// Per-task random time jitter applied multiplicatively in
  /// [1-jitter, 1+jitter] to decorrelate shared-module instances' software
  /// times from each other (0 disables).
  double jitter = 0.0;
};

/// Generates the task graph only (resource vectors sized for `model`).
TaskGraph GenerateTaskGraph(const ResourceModel& model,
                            const GeneratorOptions& options, Rng& rng);

/// Generates a full instance on `platform`. The graph is validated against
/// the platform device before returning; implementations that would exceed
/// the whole device are clamped to fit.
Instance GenerateInstance(const Platform& platform,
                          const GeneratorOptions& options, std::uint64_t seed,
                          std::string name);

/// The paper's suite: `graphs_per_group` instances for every task count in
/// {10, 20, ..., max_tasks}; instance (g, i) is seeded deterministically
/// from `base_seed`.
struct SuiteSpec {
  std::size_t min_tasks = 10;
  std::size_t max_tasks = 100;
  std::size_t step = 10;
  std::size_t graphs_per_group = 10;
  std::uint64_t base_seed = 0xC0FFEE;
  GeneratorOptions options;  ///< num_tasks is overridden per group
};

std::vector<Instance> GenerateSuiteGroup(const Platform& platform,
                                         const SuiteSpec& spec,
                                         std::size_t num_tasks);

}  // namespace resched
