#include "taskgraph/taskgraph.hpp"

#include <algorithm>
#include <deque>

namespace resched {

TaskId TaskGraph::AddTask(std::string name) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(Task{id, std::move(name), {}});
  succs_.emplace_back();
  preds_.emplace_back();
  return id;
}

std::size_t TaskGraph::AddImpl(TaskId task, Implementation impl) {
  CheckTask(task);
  RESCHED_CHECK_MSG(impl.exec_time > 0, "implementation with non-positive time");
  if (impl.IsSoftware()) {
    RESCHED_CHECK_MSG(impl.res.size() == 0 || impl.res.IsZero(),
                      "software implementation must not require resources");
  }
  tasks_[static_cast<std::size_t>(task)].impls.push_back(std::move(impl));
  return tasks_[static_cast<std::size_t>(task)].impls.size() - 1;
}

void TaskGraph::AddEdge(TaskId from, TaskId to) {
  CheckTask(from);
  CheckTask(to);
  RESCHED_CHECK_MSG(from != to, "self-dependency");
  if (HasEdge(from, to)) return;
  succs_[static_cast<std::size_t>(from)].push_back(to);
  preds_[static_cast<std::size_t>(to)].push_back(from);
  ++num_edges_;
}

void TaskGraph::SetEdgeData(TaskId from, TaskId to, std::int64_t bytes) {
  RESCHED_CHECK_MSG(HasEdge(from, to), "SetEdgeData on a missing edge");
  RESCHED_CHECK_MSG(bytes >= 0, "negative edge payload");
  if (bytes == 0) {
    edge_data_.erase({from, to});
  } else {
    edge_data_[{from, to}] = bytes;
  }
}

std::int64_t TaskGraph::EdgeData(TaskId from, TaskId to) const {
  RESCHED_CHECK_MSG(HasEdge(from, to), "EdgeData on a missing edge");
  const auto it = edge_data_.find({from, to});
  return it == edge_data_.end() ? 0 : it->second;
}

const Task& TaskGraph::GetTask(TaskId t) const {
  CheckTask(t);
  return tasks_[static_cast<std::size_t>(t)];
}

const Implementation& TaskGraph::GetImpl(TaskId t,
                                         std::size_t impl_index) const {
  const Task& task = GetTask(t);
  RESCHED_CHECK_MSG(impl_index < task.impls.size(), "impl index out of range");
  return task.impls[impl_index];
}

const std::vector<TaskId>& TaskGraph::Successors(TaskId t) const {
  CheckTask(t);
  return succs_[static_cast<std::size_t>(t)];
}

const std::vector<TaskId>& TaskGraph::Predecessors(TaskId t) const {
  CheckTask(t);
  return preds_[static_cast<std::size_t>(t)];
}

bool TaskGraph::HasEdge(TaskId from, TaskId to) const {
  CheckTask(from);
  CheckTask(to);
  const auto& s = succs_[static_cast<std::size_t>(from)];
  return std::find(s.begin(), s.end(), to) != s.end();
}

std::vector<TaskId> TaskGraph::TopologicalOrder() const {
  std::vector<std::size_t> indegree(tasks_.size(), 0);
  for (const auto& ps : preds_) {
    // indegree computed from preds for clarity
    (void)ps;
  }
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    indegree[t] = preds_[t].size();
  }
  std::deque<TaskId> ready;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    if (indegree[t] == 0) ready.push_back(static_cast<TaskId>(t));
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId t = ready.front();
    ready.pop_front();
    order.push_back(t);
    for (const TaskId s : succs_[static_cast<std::size_t>(t)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  if (order.size() != tasks_.size()) {
    throw InstanceError("task graph contains a cycle");
  }
  return order;
}

void TaskGraph::Validate(const FpgaDevice& device) const {
  if (tasks_.empty()) throw InstanceError("task graph is empty");
  (void)TopologicalOrder();  // throws on cycles
  const std::size_t kinds = device.Model().NumKinds();
  for (const Task& task : tasks_) {
    bool has_sw = false;
    if (task.impls.empty()) {
      throw InstanceError("task '" + task.name + "' has no implementations");
    }
    for (const Implementation& impl : task.impls) {
      if (impl.exec_time <= 0) {
        throw InstanceError("task '" + task.name +
                            "' has an implementation with non-positive time");
      }
      if (impl.IsSoftware()) {
        has_sw = true;
      } else {
        if (impl.res.size() != kinds) {
          throw InstanceError(
              "task '" + task.name +
              "' has a hardware implementation whose resource vector does "
              "not match the device resource model");
        }
        if (impl.res.IsZero()) {
          throw InstanceError("task '" + task.name +
                              "' has a hardware implementation requiring no "
                              "resources");
        }
        if (!impl.res.FitsWithin(device.Capacity())) {
          throw InstanceError("task '" + task.name +
                              "' has a hardware implementation larger than "
                              "the whole device");
        }
      }
    }
    if (!has_sw) {
      throw InstanceError("task '" + task.name +
                          "' has no software implementation (the scheduler "
                          "requires at least one)");
    }
  }
}

std::size_t TaskGraph::FastestSoftwareImpl(TaskId t) const {
  const Task& task = GetTask(t);
  std::size_t best = task.impls.size();
  for (std::size_t i = 0; i < task.impls.size(); ++i) {
    if (!task.impls[i].IsSoftware()) continue;
    if (best == task.impls.size() ||
        task.impls[i].exec_time < task.impls[best].exec_time) {
      best = i;
    }
  }
  if (best == task.impls.size()) {
    throw InstanceError("task '" + task.name +
                        "' has no software implementation");
  }
  return best;
}

std::vector<std::size_t> TaskGraph::HardwareImpls(TaskId t) const {
  const Task& task = GetTask(t);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < task.impls.size(); ++i) {
    if (task.impls[i].IsHardware()) out.push_back(i);
  }
  return out;
}

TimeT TaskGraph::SerialLowerBoundTime() const {
  TimeT total = 0;
  for (const Task& task : tasks_) {
    RESCHED_CHECK_MSG(!task.impls.empty(), "task without implementations");
    TimeT best = task.impls.front().exec_time;
    for (const Implementation& impl : task.impls) {
      best = std::min(best, impl.exec_time);
    }
    total += best;
  }
  return total;
}

void TaskGraph::CheckTask(TaskId t) const {
  RESCHED_CHECK_MSG(t >= 0 && static_cast<std::size_t>(t) < tasks_.size(),
                    "task id out of range");
}

}  // namespace resched
