#include "taskgraph/analysis.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace resched {

namespace {

/// Dense reachability via reverse-topological bitset accumulation.
class ReachMatrix {
 public:
  explicit ReachMatrix(const TaskGraph& graph) {
    const std::size_t n = graph.NumTasks();
    words_ = (n + 63) / 64;
    bits_.assign(n * words_, 0);
    const std::vector<TaskId> order = graph.TopologicalOrder();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const auto u = static_cast<std::size_t>(*it);
      for (const TaskId v : graph.Successors(*it)) {
        const auto vi = static_cast<std::size_t>(v);
        bits_[u * words_ + vi / 64] |= std::uint64_t{1} << (vi % 64);
        for (std::size_t w = 0; w < words_; ++w) {
          bits_[u * words_ + w] |= bits_[vi * words_ + w];
        }
      }
    }
  }

  bool Reaches(TaskId from, TaskId to) const {
    const auto f = static_cast<std::size_t>(from);
    const auto t = static_cast<std::size_t>(to);
    return (bits_[f * words_ + t / 64] >> (t % 64)) & 1;
  }

 private:
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace

std::vector<std::size_t> ComputeLevels(const TaskGraph& graph) {
  std::vector<std::size_t> level(graph.NumTasks(), 0);
  for (const TaskId t : graph.TopologicalOrder()) {
    for (const TaskId p : graph.Predecessors(t)) {
      level[static_cast<std::size_t>(t)] =
          std::max(level[static_cast<std::size_t>(t)],
                   level[static_cast<std::size_t>(p)] + 1);
    }
  }
  return level;
}

GraphStats AnalyzeGraph(const TaskGraph& graph) {
  GraphStats stats;
  stats.num_tasks = graph.NumTasks();
  stats.num_edges = graph.NumEdges();
  if (stats.num_tasks == 0) return stats;

  for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
    if (graph.Predecessors(static_cast<TaskId>(t)).empty()) {
      ++stats.num_sources;
    }
    if (graph.Successors(static_cast<TaskId>(t)).empty()) {
      ++stats.num_sinks;
    }
  }

  const std::vector<std::size_t> levels = ComputeLevels(graph);
  const std::size_t max_level =
      *std::max_element(levels.begin(), levels.end());
  stats.depth = max_level + 1;
  stats.width_profile.assign(stats.depth, 0);
  for (const std::size_t l : levels) ++stats.width_profile[l];
  stats.max_width =
      *std::max_element(stats.width_profile.begin(),
                        stats.width_profile.end());
  stats.avg_width = static_cast<double>(stats.num_tasks) /
                    static_cast<double>(stats.depth);

  const double n = static_cast<double>(stats.num_tasks);
  const double max_edges = n * (n - 1.0) / 2.0;
  stats.density = max_edges > 0.0
                      ? static_cast<double>(stats.num_edges) / max_edges
                      : 0.0;
  stats.redundancy =
      stats.num_edges == 0
          ? 0.0
          : static_cast<double>(TransitivelyRedundantEdges(graph).size()) /
                static_cast<double>(stats.num_edges);
  return stats;
}

std::vector<std::pair<TaskId, TaskId>> TransitivelyRedundantEdges(
    const TaskGraph& graph) {
  const ReachMatrix reach(graph);
  std::vector<std::pair<TaskId, TaskId>> redundant;
  for (std::size_t ti = 0; ti < graph.NumTasks(); ++ti) {
    const auto a = static_cast<TaskId>(ti);
    for (const TaskId b : graph.Successors(a)) {
      // (a, b) is redundant iff some other successor of a reaches b.
      for (const TaskId mid : graph.Successors(a)) {
        if (mid == b) continue;
        if (reach.Reaches(mid, b)) {
          redundant.emplace_back(a, b);
          break;
        }
      }
    }
  }
  return redundant;
}

TaskGraph TransitiveReduction(const TaskGraph& graph) {
  const auto redundant = TransitivelyRedundantEdges(graph);
  auto is_redundant = [&redundant](TaskId a, TaskId b) {
    return std::find(redundant.begin(), redundant.end(),
                     std::make_pair(a, b)) != redundant.end();
  };

  TaskGraph reduced;
  for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
    const Task& task = graph.GetTask(static_cast<TaskId>(t));
    const TaskId id = reduced.AddTask(task.name);
    for (const Implementation& impl : task.impls) {
      reduced.AddImpl(id, impl);
    }
  }
  for (std::size_t ti = 0; ti < graph.NumTasks(); ++ti) {
    const auto a = static_cast<TaskId>(ti);
    for (const TaskId b : graph.Successors(a)) {
      if (is_redundant(a, b)) continue;
      reduced.AddEdge(a, b);
      const std::int64_t bytes = graph.EdgeData(a, b);
      if (bytes > 0) reduced.SetEdgeData(a, b, bytes);
    }
  }
  return reduced;
}

std::string GraphStats::ToString() const {
  return StrFormat(
      "%zu tasks, %zu edges (density %.3f, redundancy %.2f) | depth %zu, "
      "width max %zu avg %.2f | %zu sources, %zu sinks",
      num_tasks, num_edges, density, redundancy, depth, max_width,
      avg_width, num_sources, num_sinks);
}

}  // namespace resched
