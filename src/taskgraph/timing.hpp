// Critical Path Method engine (§V-B) over the task graph plus the ordering
// edges the scheduler adds while building a solution.
//
// The paper manipulates three timing notions:
//   * a time window w_t = [T_MIN_t, T_MAX_t] per task (earliest start,
//     latest delay-free finish) recomputed "with respect to the current
//     tasks dependencies" whenever implementations or orderings change;
//   * extra dependencies inserted to serialize tasks sharing a
//     reconfigurable region or a processor;
//   * delay propagation when a task is forced to finish after T_MAX.
//
// TimingContext models all three: ordering edges carry a *gap* weight (the
// reconfiguration time that must elapse between two consecutive tasks in
// the same region — zero for processor ordering), and per-task release
// times encode externally imposed delays (reconfigurator contention). One
// forward/backward longest-path sweep then yields T_MIN/T_MAX, the
// makespan and task criticality in O(V + E).
//
// Hot-path note: a TimingContext sits inside every PaScratch and is Reset()
// once per PA-R restart, so all mutators and the sweep reuse member
// buffers — after warm-up, no call here allocates (see DESIGN.md §8).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "taskgraph/taskgraph.hpp"

namespace resched {

/// Ordering edge with a minimum time gap between from's end and to's start.
struct OrderingEdge {
  TaskId from = kInvalidTask;
  TaskId to = kInvalidTask;
  TimeT gap = 0;
};

/// CPM result. Windows follow the paper's convention: `earliest_start` is
/// T_MIN (earliest start instant) and `latest_finish` is T_MAX (latest
/// completion that does not delay the schedule).
struct TimeWindows {
  std::vector<TimeT> earliest_start;
  std::vector<TimeT> latest_finish;
  std::vector<bool> critical;
  TimeT makespan = 0;

  TimeT WindowLength(TaskId t) const {
    return latest_finish[static_cast<std::size_t>(t)] -
           earliest_start[static_cast<std::size_t>(t)];
  }
};

class TimingContext {
 public:
  /// Captures the graph topology; execution times start at 0 and must be
  /// set for every task before the first Windows() call.
  explicit TimingContext(const TaskGraph& graph);

  std::size_t NumTasks() const { return exec_.size(); }

  /// Returns to the just-constructed state (no extra edges, zero releases,
  /// no base-edge gaps, execution times unset) while keeping every buffer's
  /// capacity — the restart-loop reset.
  void Reset();

  void SetExecTime(TaskId t, TimeT exec);
  TimeT ExecTime(TaskId t) const;

  /// Serializes `from` before `to` with a minimum gap (reconfiguration
  /// time) between from's end and to's start. Throws InternalError if the
  /// edge would close a cycle.
  void AddOrderingEdge(TaskId from, TaskId to, TimeT gap);

  /// Raises the earliest admissible start of `t` (reconfigurator-contention
  /// delays); never lowers it.
  void RaiseRelease(TaskId t, TimeT release);
  TimeT Release(TaskId t) const;

  /// Communication-overhead extension: sets the minimum gap between the
  /// end of `from` and the start of `to` along the *base* graph edge
  /// (from, to). Unlike releases this may be lowered again — the gap
  /// depends on the endpoints' current HW/SW domains, which the scheduler
  /// revises. Requires the base edge to exist.
  void SetBaseEdgeGap(TaskId from, TaskId to, TimeT gap);
  TimeT BaseEdgeGap(TaskId from, TaskId to) const;

  /// Bulk variant: replaces the whole base-gap table with `gaps` (sorted or
  /// not; entries must reference existing edges and non-negative gaps).
  /// Used to install a precomputed phase-A gap state in one assignment.
  void AssignBaseEdgeGaps(
      const std::vector<std::pair<std::pair<TaskId, TaskId>, TimeT>>& gaps);

  const std::vector<OrderingEdge>& ExtraEdges() const { return extra_; }

  /// Recomputes (lazily, cached) the CPM windows over base + extra edges.
  const TimeWindows& Windows() const;
  TimeT Makespan() const { return Windows().makespan; }

  /// Monotonic stamp of the current windows (bumped on every recompute,
  /// never reset): callers caching window-derived state compare stamps to
  /// detect staleness. Forces the lazy recompute first.
  std::uint64_t WindowsVersion() const {
    Windows();
    return version_;
  }

  /// Topological order over base + extra edges (by value; see
  /// CombinedTopologicalOrderRef for the allocation-free variant).
  std::vector<TaskId> CombinedTopologicalOrder() const;

  /// Allocation-free variant: the returned reference stays valid until the
  /// next mutation of this context.
  const std::vector<TaskId>& CombinedTopologicalOrderRef() const;

 private:
  void Recompute() const;
  /// True when a path `from` ~> `to` exists over base + extra edges.
  bool Reaches(TaskId from, TaskId to) const;
  /// Mirrors one base-gap table entry into the CSR gap arrays.
  void WriteCsrGap(TaskId from, TaskId to, TimeT gap);
  /// Zeroes the CSR gap arrays iff any entry may be non-zero.
  void ClearCsrGaps();

  const TaskGraph* graph_;
  std::vector<TimeT> exec_;
  std::vector<TimeT> release_;
  /// Sparse base-edge gap table, sorted by (from, to); nearly always empty
  /// (only the communication-overhead extension populates it).
  std::vector<std::pair<std::pair<TaskId, TaskId>, TimeT>> base_gaps_;
  // Flat CSR image of the base graph, built once at construction. The CPM
  // sweeps are the scheduler's innermost loop (they rerun after every
  // ordering mutation), so they walk these contiguous arrays instead of
  // chasing per-task adjacency vectors and doing a gap lookup per edge.
  // `pred_gap_`/`succ_gap_` mirror base_gaps_ entry-for-entry and are all
  // zero whenever base_gaps_ is empty (the common case).
  std::vector<std::size_t> pred_off_;  // n + 1
  std::vector<std::size_t> succ_off_;  // n + 1
  std::vector<TaskId> pred_task_;
  std::vector<TaskId> succ_task_;
  std::vector<TimeT> pred_gap_;
  std::vector<TimeT> succ_gap_;
  /// True while any CSR gap slot may be non-zero (cleared lazily on Reset).
  bool have_base_gaps_ = false;
  std::vector<OrderingEdge> extra_;
  // Extra-edge adjacency for fast sweeps.
  std::vector<std::vector<std::size_t>> extra_out_;
  std::vector<std::vector<std::size_t>> extra_in_;

  // Reusable sweep/DFS scratch (sized once to NumTasks()).
  mutable std::vector<std::size_t> kahn_indegree_;
  mutable std::vector<TaskId> kahn_order_;
  mutable std::vector<std::uint32_t> visit_stamp_;
  mutable std::uint32_t stamp_ = 0;
  mutable std::vector<TaskId> dfs_stack_;

  mutable TimeWindows windows_;
  mutable std::uint64_t version_ = 0;
  mutable bool dirty_ = true;
};

}  // namespace resched
