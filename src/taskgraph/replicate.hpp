// Periodic (multi-frame) unrolling.
//
// Streaming applications run the same task graph once per input frame.
// Scheduling a single frame optimizes latency; unrolling K frames into one
// DAG and scheduling that optimizes *throughput* (software-pipelining
// style): different frames' stages overlap on the fabric, and consecutive
// instances of the same stage can share a region with zero
// reconfigurations (they are literally the same module).
//
// The unrolled graph contains one copy of every task per frame with:
//   * the original intra-frame dependencies (payloads preserved),
//   * an inter-frame edge t(k) -> t(k+1) per task, serializing successive
//     instances of a stage (frame k+1's input for that stage arrives when
//     frame k's instance finished — the standard initiation constraint).
#pragma once

#include "taskgraph/taskgraph.hpp"

namespace resched {

struct UnrollOptions {
  std::size_t frames = 2;
  /// Give implementations that have no module id (-1) a synthetic shared
  /// id so the K copies of a task count as the same bitstream and can
  /// reuse a region across frames. Copies of an implementation always
  /// share whatever id results.
  bool share_modules_across_frames = true;
};

/// Unrolls `graph` per the options; task `t` of frame `k` is named
/// "<name>@<k>" and has id t + k * NumTasks().
TaskGraph UnrollPeriodic(const TaskGraph& graph,
                         const UnrollOptions& options);

/// Convenience wrapper at instance level (same platform, suffixed name).
Instance UnrollPeriodic(const Instance& instance,
                        const UnrollOptions& options);

/// Average per-frame initiation interval of a schedule of an unrolled
/// instance: makespan / frames. Lower is better throughput.
double ThroughputInterval(TimeT makespan, std::size_t frames);

}  // namespace resched
