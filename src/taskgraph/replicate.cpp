#include "taskgraph/replicate.hpp"

#include "util/string_util.hpp"

namespace resched {

TaskGraph UnrollPeriodic(const TaskGraph& graph,
                         const UnrollOptions& options) {
  RESCHED_CHECK_MSG(options.frames >= 1, "need at least one frame");
  const std::size_t n = graph.NumTasks();

  // Synthetic module ids for implementations lacking one: start above any
  // existing id so we never collide.
  std::int32_t next_module = 0;
  for (std::size_t t = 0; t < n; ++t) {
    for (const Implementation& impl : graph.GetTask(static_cast<TaskId>(t))
                                          .impls) {
      next_module = std::max(next_module, impl.module_id + 1);
    }
  }

  // Per (task, impl index): the module id all copies will share.
  std::vector<std::vector<std::int32_t>> module_of(n);
  for (std::size_t t = 0; t < n; ++t) {
    const Task& task = graph.GetTask(static_cast<TaskId>(t));
    module_of[t].resize(task.impls.size());
    for (std::size_t i = 0; i < task.impls.size(); ++i) {
      std::int32_t id = task.impls[i].module_id;
      if (id < 0 && options.share_modules_across_frames &&
          task.impls[i].IsHardware()) {
        id = next_module++;
      }
      module_of[t][i] = id;
    }
  }

  TaskGraph unrolled;
  for (std::size_t frame = 0; frame < options.frames; ++frame) {
    for (std::size_t t = 0; t < n; ++t) {
      const Task& task = graph.GetTask(static_cast<TaskId>(t));
      const TaskId id = unrolled.AddTask(
          StrFormat("%s@%zu", task.name.c_str(), frame));
      RESCHED_CHECK(static_cast<std::size_t>(id) == frame * n + t);
      for (std::size_t i = 0; i < task.impls.size(); ++i) {
        Implementation impl = task.impls[i];
        impl.module_id = module_of[t][i];
        unrolled.AddImpl(id, std::move(impl));
      }
    }
  }

  for (std::size_t frame = 0; frame < options.frames; ++frame) {
    const auto base = static_cast<TaskId>(frame * n);
    // Intra-frame dependencies.
    for (std::size_t t = 0; t < n; ++t) {
      for (const TaskId s : graph.Successors(static_cast<TaskId>(t))) {
        const TaskId from = base + static_cast<TaskId>(t);
        const TaskId to = base + s;
        unrolled.AddEdge(from, to);
        const std::int64_t bytes = graph.EdgeData(static_cast<TaskId>(t), s);
        if (bytes > 0) unrolled.SetEdgeData(from, to, bytes);
      }
    }
    // Inter-frame serialization of each stage.
    if (frame + 1 < options.frames) {
      for (std::size_t t = 0; t < n; ++t) {
        unrolled.AddEdge(base + static_cast<TaskId>(t),
                         base + static_cast<TaskId>(n + t));
      }
    }
  }
  return unrolled;
}

Instance UnrollPeriodic(const Instance& instance,
                        const UnrollOptions& options) {
  Instance out;
  out.name = StrFormat("%s_x%zu", instance.name.c_str(), options.frames);
  out.platform = instance.platform;
  out.graph = UnrollPeriodic(instance.graph, options);
  out.graph.Validate(out.platform.Device());
  return out;
}

double ThroughputInterval(TimeT makespan, std::size_t frames) {
  RESCHED_CHECK_MSG(frames >= 1, "need at least one frame");
  return static_cast<double>(makespan) / static_cast<double>(frames);
}

}  // namespace resched
