#include "taskgraph/dot.hpp"

#include "util/string_util.hpp"

namespace resched {

std::string ToDot(const TaskGraph& graph, const std::string& graph_name) {
  std::string out = "digraph " + graph_name + " {\n  rankdir=TB;\n";
  for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
    const Task& task = graph.GetTask(static_cast<TaskId>(t));
    std::string label = task.name;
    for (const Implementation& impl : task.impls) {
      label += StrFormat("\\n%s %s: %lld us",
                         impl.IsHardware() ? "HW" : "SW", impl.name.c_str(),
                         static_cast<long long>(impl.exec_time));
    }
    out += StrFormat("  n%zu [shape=box,label=\"%s\"];\n", t, label.c_str());
  }
  for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
    for (const TaskId s : graph.Successors(static_cast<TaskId>(t))) {
      out += StrFormat("  n%zu -> n%d;\n", t, s);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace resched
