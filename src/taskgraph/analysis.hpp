// Structural analysis of task graphs: level decomposition, width/depth
// profile, density, and transitive reduction. Used by the generator tests
// to pin suite shape, by examples to describe workloads, and by users to
// understand how much parallelism an application exposes (the paper notes
// PA-R's gains shrink at both parallelism extremes).
#pragma once

#include <string>
#include <vector>

#include "taskgraph/taskgraph.hpp"

namespace resched {

struct GraphStats {
  std::size_t num_tasks = 0;
  std::size_t num_edges = 0;
  std::size_t num_sources = 0;  ///< tasks with no predecessors
  std::size_t num_sinks = 0;    ///< tasks with no successors
  /// Longest path length in hops (1 for an edgeless graph).
  std::size_t depth = 0;
  /// Tasks per level (level = longest hop-distance from any source).
  std::vector<std::size_t> width_profile;
  std::size_t max_width = 0;
  double avg_width = 0.0;
  /// Edges / edges of a complete DAG on the same topological order.
  double density = 0.0;
  /// Fraction of edges that are transitively redundant.
  double redundancy = 0.0;

  std::string ToString() const;
};

/// Longest-hop-distance level per task (sources at level 0).
std::vector<std::size_t> ComputeLevels(const TaskGraph& graph);

GraphStats AnalyzeGraph(const TaskGraph& graph);

/// Edges implied by longer paths. An edge (a, b) is redundant iff a
/// reaches b through some other path.
std::vector<std::pair<TaskId, TaskId>> TransitivelyRedundantEdges(
    const TaskGraph& graph);

/// Copy of `graph` without transitively redundant edges (implementations,
/// names and edge payloads of kept edges are preserved).
TaskGraph TransitiveReduction(const TaskGraph& graph);

}  // namespace resched
