#include "taskgraph/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/string_util.hpp"

namespace resched {

namespace {

/// One reusable hardware library entry: the Pareto set of HW
/// implementations plus the matching software time.
struct ModuleLibraryEntry {
  std::vector<Implementation> hw_impls;
  TimeT sw_time = 0;
};

ModuleLibraryEntry MakeModuleEntry(const ResourceModel& model,
                                   const GeneratorOptions& opt, Rng& rng,
                                   std::int32_t* next_module_id) {
  ModuleLibraryEntry entry;
  const TimeT fast_time = rng.UniformInt(opt.hw_fast_time_lo, opt.hw_fast_time_hi);

  ResourceVec fast_res = model.ZeroVec();
  fast_res[model.KindIndex("CLB")] = rng.UniformInt(opt.clb_lo, opt.clb_hi);
  if (model.HasKind("BRAM") && rng.Bernoulli(opt.bram_prob)) {
    fast_res[model.KindIndex("BRAM")] = rng.UniformInt(opt.bram_lo, opt.bram_hi);
  }
  if (model.HasKind("DSP") && rng.Bernoulli(opt.dsp_prob)) {
    fast_res[model.KindIndex("DSP")] = rng.UniformInt(opt.dsp_lo, opt.dsp_hi);
  }

  double time_factor = 1.0;
  double area_factor = 1.0;
  for (std::size_t v = 0; v < opt.num_hw_impls; ++v) {
    Implementation impl;
    impl.kind = ImplKind::kHardware;
    impl.name = StrFormat("hw%zu", v);
    impl.exec_time = std::max<TimeT>(
        1, static_cast<TimeT>(std::llround(
               static_cast<double>(fast_time) * time_factor)));
    impl.res = model.ZeroVec();
    for (std::size_t k = 0; k < model.NumKinds(); ++k) {
      impl.res[k] = static_cast<std::int64_t>(
          std::ceil(static_cast<double>(fast_res[k]) * area_factor));
    }
    // Resource vectors must stay non-zero for hardware implementations.
    if (impl.res.IsZero()) impl.res[model.KindIndex("CLB")] = 1;
    impl.module_id = (*next_module_id)++;
    entry.hw_impls.push_back(std::move(impl));
    time_factor *= opt.time_step;
    area_factor *= opt.area_step;
  }

  const double slowdown = rng.UniformDouble(opt.sw_slowdown_lo, opt.sw_slowdown_hi);
  entry.sw_time = std::max<TimeT>(
      1, static_cast<TimeT>(std::llround(static_cast<double>(fast_time) * slowdown)));
  return entry;
}

}  // namespace

TaskGraph GenerateTaskGraph(const ResourceModel& model,
                            const GeneratorOptions& opt, Rng& rng) {
  RESCHED_CHECK_MSG(opt.num_tasks >= 1, "generator needs at least one task");
  RESCHED_CHECK_MSG(opt.max_width >= 1, "max_width must be >= 1");
  RESCHED_CHECK_MSG(opt.num_hw_impls >= 1, "need at least one HW impl");
  RESCHED_CHECK_MSG(opt.time_step >= 1.0, "time_step must be >= 1");
  RESCHED_CHECK_MSG(opt.area_step > 0.0 && opt.area_step <= 1.0,
                    "area_step must be in (0,1]");

  TaskGraph graph;

  // ---- 1. Layered DAG skeleton.
  std::vector<std::vector<TaskId>> layers;
  std::size_t created = 0;
  while (created < opt.num_tasks) {
    const std::size_t width = static_cast<std::size_t>(rng.UniformInt(
        1, static_cast<std::int64_t>(
               std::min(opt.max_width, opt.num_tasks - created))));
    layers.emplace_back();
    for (std::size_t i = 0; i < width; ++i) {
      const TaskId id =
          graph.AddTask(StrFormat("t%zu", created));
      layers.back().push_back(id);
      ++created;
    }
  }

  // ---- 2. Connectivity: every non-root task gets 1..max_parents parents
  // from the previous layer; every task in a non-final layer feeds at
  // least one child (guaranteed by the parent draws plus a fix-up pass).
  for (std::size_t l = 1; l < layers.size(); ++l) {
    const auto& prev = layers[l - 1];
    for (const TaskId t : layers[l]) {
      const std::size_t parents = static_cast<std::size_t>(rng.UniformInt(
          1, static_cast<std::int64_t>(
                 std::min(opt.max_parents, prev.size()))));
      std::vector<TaskId> pool = prev;
      rng.Shuffle(pool);
      for (std::size_t p = 0; p < parents; ++p) {
        graph.AddEdge(pool[p], t);
      }
    }
    // Fix-up: parent-layer tasks with no child yet get one at random.
    for (const TaskId p : prev) {
      if (graph.Successors(p).empty()) {
        const auto pick = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(layers[l].size()) - 1));
        graph.AddEdge(p, layers[l][pick]);
      }
    }
  }

  // ---- 3. Long-range extra edges for irregularity.
  if (layers.size() > 2 && opt.extra_edge_prob > 0.0) {
    for (std::size_t l = 0; l + 2 < layers.size(); ++l) {
      for (const TaskId a : layers[l]) {
        for (std::size_t m = l + 2; m < layers.size(); ++m) {
          for (const TaskId b : layers[m]) {
            if (rng.Bernoulli(opt.extra_edge_prob /
                              static_cast<double>(layers.size()))) {
              graph.AddEdge(a, b);
            }
          }
        }
      }
    }
  }

  // ---- 4. Edge payloads (communication-overhead extension).
  if (opt.comm_bytes_hi > 0) {
    RESCHED_CHECK_MSG(opt.comm_bytes_lo >= 0 &&
                          opt.comm_bytes_lo <= opt.comm_bytes_hi,
                      "comm payload range invalid");
    for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
      for (const TaskId s : graph.Successors(static_cast<TaskId>(t))) {
        graph.SetEdgeData(static_cast<TaskId>(t), s,
                          rng.UniformInt(opt.comm_bytes_lo,
                                         opt.comm_bytes_hi));
      }
    }
  }

  // ---- 5. Implementations: fresh module entries, occasionally shared.
  std::vector<ModuleLibraryEntry> library;
  std::int32_t next_module_id = 0;
  for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
    const ModuleLibraryEntry* entry = nullptr;
    if (!library.empty() && rng.Bernoulli(opt.share_prob)) {
      const auto pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(library.size()) - 1));
      entry = &library[pick];
    } else {
      library.push_back(MakeModuleEntry(model, opt, rng, &next_module_id));
      entry = &library.back();
    }

    double jitter_factor = 1.0;
    if (opt.jitter > 0.0) {
      jitter_factor = rng.UniformDouble(1.0 - opt.jitter, 1.0 + opt.jitter);
    }

    Implementation sw;
    sw.kind = ImplKind::kSoftware;
    sw.name = "sw";
    sw.exec_time = std::max<TimeT>(
        1, static_cast<TimeT>(std::llround(
               static_cast<double>(entry->sw_time) * jitter_factor)));
    graph.AddImpl(static_cast<TaskId>(t), std::move(sw));

    for (const Implementation& hw : entry->hw_impls) {
      Implementation copy = hw;
      copy.exec_time = std::max<TimeT>(
          1, static_cast<TimeT>(std::llround(
                 static_cast<double>(hw.exec_time) * jitter_factor)));
      graph.AddImpl(static_cast<TaskId>(t), std::move(copy));
    }
  }

  return graph;
}

Instance GenerateInstance(const Platform& platform,
                          const GeneratorOptions& options, std::uint64_t seed,
                          std::string name) {
  Rng rng(seed);
  TaskGraph graph = GenerateTaskGraph(platform.Device().Model(), options, rng);

  // Clamp any implementation that would not fit the whole device (possible
  // with aggressive option sets on small devices).
  const ResourceVec& cap = platform.Device().Capacity();
  TaskGraph clamped;
  bool needs_clamp = false;
  for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
    for (const Implementation& impl : graph.GetTask(static_cast<TaskId>(t)).impls) {
      if (impl.IsHardware() && !impl.res.FitsWithin(cap)) needs_clamp = true;
    }
  }
  if (needs_clamp) {
    for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
      const Task& task = graph.GetTask(static_cast<TaskId>(t));
      const TaskId id = clamped.AddTask(task.name);
      for (Implementation impl : task.impls) {
        if (impl.IsHardware()) {
          for (std::size_t k = 0; k < impl.res.size(); ++k) {
            impl.res[k] = std::min(impl.res[k], cap[k]);
          }
          if (impl.res.IsZero()) impl.res[0] = 1;
        }
        clamped.AddImpl(id, std::move(impl));
      }
    }
    for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
      for (const TaskId s : graph.Successors(static_cast<TaskId>(t))) {
        clamped.AddEdge(static_cast<TaskId>(t), s);
        const std::int64_t bytes = graph.EdgeData(static_cast<TaskId>(t), s);
        if (bytes > 0) clamped.SetEdgeData(static_cast<TaskId>(t), s, bytes);
      }
    }
    graph = std::move(clamped);
  }

  graph.Validate(platform.Device());
  return Instance{std::move(name), platform, std::move(graph)};
}

std::vector<Instance> GenerateSuiteGroup(const Platform& platform,
                                         const SuiteSpec& spec,
                                         std::size_t num_tasks) {
  RESCHED_CHECK_MSG(num_tasks >= spec.min_tasks && num_tasks <= spec.max_tasks,
                    "group size outside the suite range");
  std::vector<Instance> group;
  group.reserve(spec.graphs_per_group);
  GeneratorOptions opt = spec.options;
  opt.num_tasks = num_tasks;
  for (std::size_t i = 0; i < spec.graphs_per_group; ++i) {
    // Pre-DeriveSeed scheme, frozen deliberately: these seeds define the
    // published benchmark suite, and rederiving them would regenerate
    // every instance and invalidate all recorded figures.
    const std::uint64_t seed =
        HashCombine(spec.base_seed, HashCombine(num_tasks, i));  // resched-lint: allow(no-adhoc-seed-derivation)
    group.push_back(GenerateInstance(
        platform, opt, seed,
        StrFormat("tg_n%zu_i%zu", num_tasks, i)));
  }
  return group;
}

}  // namespace resched
