// PA-R: the randomized scheduler variant (§VI, Algorithm 1).
//
// Repeatedly runs the PA core with a random non-critical task ordering
// within a wall-clock budget, keeping the best floorplan-feasible schedule.
// The floorplanner is only consulted when an iteration improves on the
// incumbent, amortizing its cost across iterations; floorplan-infeasible
// candidates are simply discarded (no resource-shrinking restart).
//
// As an extension over the paper, restarts can be fanned out over a thread
// pool: every worker draws iterations from its own deterministic RNG
// stream, so results are reproducible for a fixed (seed, max_iterations,
// threads=1) configuration, and statistically equivalent when parallel.
#pragma once

#include <vector>

#include "core/pa_scheduler.hpp"

namespace resched {

struct PaROptions {
  /// Wall-clock budget (Algorithm 1's timeToRun); <= 0 means "no time
  /// limit" and requires max_iterations > 0.
  double time_budget_seconds = 1.0;
  /// Iteration cap; 0 means unbounded (budget-limited only).
  std::size_t max_iterations = 0;
  /// Worker threads (1 = faithful sequential Algorithm 1).
  std::size_t threads = 1;
  std::uint64_t seed = 1;
  /// Options for the inner doSchedule() calls; `ordering` is forced to
  /// kRandom and `run_floorplan` to false internally.
  PaOptions base;

  /// Per-iteration virtually-available capacity factor, drawn uniformly in
  /// [capacity_factor_lo, capacity_factor_hi].
  ///
  /// Rationale: phase §V-C deliberately packs regions up to the raw
  /// capacity check, but a rectangle on a column-based fabric always
  /// occupies at least its enclosing footprint, so region sets at ~100%
  /// raw utilization rarely admit a floorplan. The deterministic PA
  /// recovers through the §V-H shrink-and-restart loop; Algorithm 1 as
  /// printed only *discards* infeasible iterations, which would discard
  /// nearly all of them. Randomizing the virtual capacity keeps the
  /// discard structure of Algorithm 1 while letting the search visit
  /// region sets loose enough to floorplan. Set both factors to 1.0 to get
  /// the literal Algorithm 1.
  double capacity_factor_lo = 0.70;
  double capacity_factor_hi = 1.0;

  /// Warm start: seed the incumbent with the deterministic PA schedule
  /// (including its shrink-loop floorplan recovery) before randomizing.
  /// The warm-start time is charged against the budget. Guarantees PA-R
  /// never returns worse than PA — and never returns empty-handed.
  bool seed_with_deterministic = true;
  /// Record (elapsed seconds, best makespan) improvement points (Fig. 6).
  bool record_trace = false;
};

struct TracePoint {
  double seconds = 0.0;
  TimeT makespan = 0;
  std::size_t iteration = 0;
};

struct PaRResult {
  Schedule best;
  bool found = false;
  std::size_t iterations = 0;
  double seconds = 0.0;
  std::vector<TracePoint> trace;
};

PaRResult SchedulePaR(const Instance& instance, const PaROptions& options);

}  // namespace resched
