// PA-R: the randomized scheduler variant (§VI, Algorithm 1).
//
// Repeatedly runs the PA core with a random non-critical task ordering
// within a wall-clock budget, keeping the best floorplan-feasible schedule.
// The floorplanner is only consulted when an iteration improves on the
// incumbent, amortizing its cost across iterations; floorplan-infeasible
// candidates are simply discarded (no resource-shrinking restart).
//
// As an extension over the paper, restarts can be fanned out over a thread
// pool. Every *iteration* (ticket) draws its own deterministic RNG stream
// (DeriveSeed(kParSeedStream ^ seed, iteration)), so for a fixed (seed,
// max_iterations) configuration the set of candidates — and hence the best
// makespan — is identical at any thread count; only which worker executes
// an iteration varies.
//
// Hot path (PR 4): all workers share one immutable PaContext and one
// concurrent FloorplanCache; each worker reuses a private PaScratch, so a
// restart in steady state allocates nothing.
#pragma once

#include <vector>

#include "core/pa_scheduler.hpp"

namespace resched {

struct PaROptions {
  /// Wall-clock budget (Algorithm 1's timeToRun); <= 0 means "no time
  /// limit" and requires max_iterations > 0.
  double time_budget_seconds = 1.0;
  /// Iteration cap; 0 means unbounded (budget-limited only).
  std::size_t max_iterations = 0;
  /// Worker threads (1 = faithful sequential Algorithm 1).
  std::size_t threads = 1;
  std::uint64_t seed = 1;
  /// Options for the inner doSchedule() calls; `ordering` is forced to
  /// kRandom and `run_floorplan` to false internally. `base.floorplan_cache`
  /// controls the shared feasibility cache (on by default).
  PaOptions base;

  /// Per-iteration virtually-available capacity factor, drawn uniformly in
  /// [capacity_factor_lo, capacity_factor_hi].
  ///
  /// Rationale: phase §V-C deliberately packs regions up to the raw
  /// capacity check, but a rectangle on a column-based fabric always
  /// occupies at least its enclosing footprint, so region sets at ~100%
  /// raw utilization rarely admit a floorplan. The deterministic PA
  /// recovers through the §V-H shrink-and-restart loop; Algorithm 1 as
  /// printed only *discards* infeasible iterations, which would discard
  /// nearly all of them. Randomizing the virtual capacity keeps the
  /// discard structure of Algorithm 1 while letting the search visit
  /// region sets loose enough to floorplan. Set both factors to 1.0 to get
  /// the literal Algorithm 1.
  double capacity_factor_lo = 0.70;
  double capacity_factor_hi = 1.0;

  /// Warm start: seed the incumbent with the deterministic PA schedule
  /// (including its shrink-loop floorplan recovery) before randomizing.
  /// The warm-start time is charged against the budget. Guarantees PA-R
  /// never returns worse than PA — and never returns empty-handed.
  bool seed_with_deterministic = true;
  /// Record (elapsed seconds, best makespan) improvement points (Fig. 6).
  bool record_trace = false;

  /// Reuse one PaScratch per worker across restarts (the PR-4 hot path).
  /// `false` rebuilds the full per-iteration state every restart — the
  /// pre-PR-4 behaviour, kept as the baseline leg of bench/micro_restart.
  /// Results are bit-identical either way.
  bool reuse_scratch = true;

  /// Optional cooperative cancellation (reschedd per-request deadlines):
  /// polled once per restart ticket by every worker and during the
  /// deterministic warm start. When it fires, the workers drain and
  /// SchedulePaR throws CancelledError from the calling thread.
  const CancelToken* cancel = nullptr;
};

struct TracePoint {
  double seconds = 0.0;
  TimeT makespan = 0;
  /// Restarts *completed* (across all workers) when this improvement was
  /// accepted — a monotone x-axis for Fig. 6, unlike the ticket counter,
  /// which also counts restarts still in flight.
  std::size_t iteration = 0;
};

struct PaRResult {
  Schedule best;
  bool found = false;
  std::size_t iterations = 0;
  double seconds = 0.0;
  /// Sorted by `seconds`.
  std::vector<TracePoint> trace;
  /// Shared floorplan-cache counters for the whole run (zeros when the
  /// cache was disabled).
  FloorplanCacheStats floorplan_cache;
};

/// `cache`: optional externally-owned floorplan-feasibility cache shared
/// across calls (the reschedd worker pool passes one per device); when
/// null and options.base.floorplan_cache is set, a private cache spans
/// this call, as before. Results are bit-identical either way.
PaRResult SchedulePaR(const Instance& instance, const PaROptions& options,
                      FloorplanCache* cache = nullptr);

}  // namespace resched
