// §V-D software task balancing.
//
// After regions definition some tasks were demoted to software; if the
// schedule now leaves regions idle early on, promote software tasks (in
// increasing T_MIN order) back to hardware — but only when the task starts
// late enough (T_MIN > Eq.-(6) total reconfiguration time) that adding its
// reconfiguration cannot create contention on the controller.
#include <algorithm>

#include "core/pa_state.hpp"

namespace resched::pa {

void RunSoftwareTaskBalancing(const PaContext& ctx, PaScratch& s) {
  const TaskGraph& graph = s.Inst().graph;

  // Software tasks that do have hardware alternatives, by increasing T_MIN.
  ArenaVec<TaskId>& candidates = s.Buffers().balance_candidates;
  candidates.clear();
  for (std::size_t ti = 0; ti < graph.NumTasks(); ++ti) {
    const auto t = static_cast<TaskId>(ti);
    if (s.ChosenIsHardware(t)) continue;
    if (ctx.NumHwImpls(t) == 0) continue;
    candidates.push_back(t);
  }
  {
    const TimeWindows& win = s.Timing().Windows();
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](TaskId a, TaskId b) {
                       return win.earliest_start[static_cast<std::size_t>(a)] <
                              win.earliest_start[static_cast<std::size_t>(b)];
                     });
  }

  for (const TaskId t : candidates) {
    const TimeT tot_rec_time = s.TotalReconfTimeEstimate();
    const TimeT es_t =
        s.Timing().Windows().earliest_start[static_cast<std::size_t>(t)];
    if (es_t <= tot_rec_time) continue;

    // Find a region able to host t with its lowest-cost fitting HW
    // implementation (Eq.-(3) costs precomputed in the context tables).
    const std::size_t num_impls = graph.GetTask(t).impls.size();
    for (std::size_t r = 0; r < s.NumRegions(); ++r) {
      std::size_t best_impl = num_impls;
      double best_cost = 0.0;
      for (std::size_t i = 0; i < ctx.NumHwImpls(t); ++i) {
        const std::size_t impl = ctx.HwImplIndex(t, i);
        if (!s.CanHost(r, t, impl, /*require_reconf_room=*/true)) continue;
        const double cost = ctx.HwImplCost(t, i);
        if (best_impl == num_impls || cost < best_cost) {
          best_impl = impl;
          best_cost = cost;
        }
      }
      if (best_impl == num_impls) continue;

      s.SetImpl(t, best_impl);
      s.AssignToRegion(r, t);
      break;
    }
  }
}

}  // namespace resched::pa
