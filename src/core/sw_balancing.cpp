// §V-D software task balancing.
//
// After regions definition some tasks were demoted to software; if the
// schedule now leaves regions idle early on, promote software tasks (in
// increasing T_MIN order) back to hardware — but only when the task starts
// late enough (T_MIN > Eq.-(6) total reconfiguration time) that adding its
// reconfiguration cannot create contention on the controller.
#include <algorithm>

#include "core/cost_model.hpp"
#include "core/pa_state.hpp"

namespace resched::pa {

void RunSoftwareTaskBalancing(PaState& state) {
  const TaskGraph& graph = state.Inst().graph;
  const ResourceVec& max_res = state.Inst().platform.Device().Capacity();

  // Software tasks that do have hardware alternatives, by increasing T_MIN.
  std::vector<TaskId> candidates;
  for (std::size_t ti = 0; ti < graph.NumTasks(); ++ti) {
    const auto t = static_cast<TaskId>(ti);
    if (state.ChosenIsHardware(t)) continue;
    if (graph.HardwareImpls(t).empty()) continue;
    candidates.push_back(t);
  }
  {
    const TimeWindows& win = state.Timing().Windows();
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](TaskId a, TaskId b) {
                       return win.earliest_start[static_cast<std::size_t>(a)] <
                              win.earliest_start[static_cast<std::size_t>(b)];
                     });
  }

  for (const TaskId t : candidates) {
    const TimeT tot_rec_time = state.TotalReconfTimeEstimate();
    const TimeT es_t = state.Timing()
                           .Windows()
                           .earliest_start[static_cast<std::size_t>(t)];
    if (es_t <= tot_rec_time) continue;

    // Find a region able to host t with its lowest-cost fitting HW
    // implementation.
    for (std::size_t s = 0; s < state.Regions().size(); ++s) {
      std::size_t best_impl = graph.GetTask(t).impls.size();
      double best_cost = 0.0;
      for (const std::size_t i : graph.HardwareImpls(t)) {
        if (!state.CanHost(s, t, i, /*require_reconf_room=*/true)) continue;
        const double cost = ImplementationCost(graph.GetImpl(t, i), max_res,
                                               state.Weights(), state.MaxT());
        if (best_impl == graph.GetTask(t).impls.size() || cost < best_cost) {
          best_impl = i;
          best_cost = cost;
        }
      }
      if (best_impl == graph.GetTask(t).impls.size()) continue;

      state.SetImpl(t, best_impl);
      state.AssignToRegion(s, t);
      break;
    }
  }
}

}  // namespace resched::pa
