// §V-A implementation selection and §V-B critical path extraction.
#include "core/cost_model.hpp"
#include "core/pa_state.hpp"

namespace resched::pa {

void RunImplementationSelection(PaState& state) {
  const TaskGraph& graph = state.Inst().graph;
  const ResourceVec& max_res = state.Inst().platform.Device().Capacity();
  const std::vector<double>& weights = state.Weights();
  const TimeT max_t = state.MaxT();

  for (std::size_t ti = 0; ti < graph.NumTasks(); ++ti) {
    const auto t = static_cast<TaskId>(ti);
    const Task& task = graph.GetTask(t);

    // Lowest-cost hardware implementation (Eq. 3)...
    std::size_t best_hw = task.impls.size();
    double best_hw_cost = 0.0;
    for (std::size_t i = 0; i < task.impls.size(); ++i) {
      if (!task.impls[i].IsHardware()) continue;
      const double cost =
          ImplementationCost(task.impls[i], max_res, weights, max_t);
      if (best_hw == task.impls.size() || cost < best_hw_cost) {
        best_hw = i;
        best_hw_cost = cost;
      }
    }

    // ... versus the fastest software implementation; the faster of the two
    // wins (ties go to hardware: an accelerator at equal speed frees a
    // core).
    const std::size_t best_sw = graph.FastestSoftwareImpl(t);
    std::size_t chosen = best_sw;
    if (best_hw != task.impls.size() &&
        task.impls[best_hw].exec_time <= task.impls[best_sw].exec_time) {
      chosen = best_hw;
    }
    state.SetImpl(t, chosen);
  }
}

void RunCriticalPathExtraction(PaState& state) {
  // The CPM sweep itself lives in TimingContext (recomputed on demand);
  // here we pin the criticality labels that drive the phase-C processing
  // order, as the paper fixes them once after the initial schedule.
  state.SnapshotCriticality();
}

}  // namespace resched::pa
