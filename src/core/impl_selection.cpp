// §V-A implementation selection and §V-B critical path extraction.
//
// Both phases are independent of the virtually available capacity, so the
// actual Eq.-(3) selection and the criticality snapshot are precomputed
// once in PaContext (pa_context.cpp); per restart the stages reduce to
// bulk installs into the scratch.
#include "core/pa_state.hpp"

namespace resched::pa {

void RunImplementationSelection(const PaContext& ctx, PaScratch& s) {
  (void)ctx;
  s.AdoptInitialImplementations();
}

void RunCriticalPathExtraction(const PaContext& ctx, PaScratch& s) {
  // The CPM sweep itself lives in TimingContext (recomputed on demand);
  // here we pin the criticality labels that drive the phase-C processing
  // order, as the paper fixes them once after the initial schedule.
  (void)ctx;
  s.AdoptInitialCriticality();
}

}  // namespace resched::pa
