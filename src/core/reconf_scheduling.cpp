// §V-G reconfigurations scheduling.
//
// One reconfiguration task is generated between every pair of consecutive
// tasks in a region (skipped between same-module neighbours when the
// module-reuse extension is active). As in the paper, critical
// reconfigurations (those whose outgoing task is critical) get priority on
// the single controller, and every delay a reconfiguration induces is
// propagated over the task graph.
//
// Scheduling order: the paper processes reconfigurations by increasing
// T_MIN and shifts colliding ones "ahead in time", re-propagating delays.
// Iterating shift-and-propagate literally can churn for a long time when
// controller-order flips feed back through the task graph, so we use an
// equivalent correct-by-construction formulation: a reconfiguration R
// becomes *available* only when every reconfiguration R' whose outgoing
// task (weakly) precedes R's ingoing task has been scheduled — then R's
// T_MIN = end(t_in) is final. Among available reconfigurations we pick
// critical ones first, then lowest T_MIN, and place each in the earliest
// controller gap at or after its T_MIN, raising the outgoing task's
// release. The availability relation is acyclic (a cycle would imply a
// cycle among task dependencies), so this terminates in one pass and the
// emitted timeline satisfies every §III constraint by construction.
#include <algorithm>

#include "core/pa_state.hpp"

namespace resched::pa {

namespace {

using PendingReconf = StageBuffers::PendingReconf;

TimeT EndOf(const PaScratch& s, TaskId t) {
  const TimeWindows& win = s.Timing().Windows();
  return win.earliest_start[static_cast<std::size_t>(t)] +
         s.Timing().ExecTime(t);
}

/// Dense reachability over the task graph plus the scheduler's ordering
/// edges: reach[u] contains u itself and every task a path from u leads
/// to. The bitset and adjacency storage live in the scratch buffers.
class Reachability {
 public:
  Reachability(const PaScratch& s, StageBuffers& buf)
      : bits_(buf.reach_bits) {
    const TaskGraph& graph = s.Inst().graph;
    const std::size_t n = graph.NumTasks();
    words_ = (n + 63) / 64;
    bits_.assign(n * words_, 0);

    // Combined adjacency (graph + ordering edges).
    ArenaVec<std::vector<TaskId>>& succs = buf.combined_succs;
    if (succs.size() < n) succs.resize(n);
    for (std::size_t t = 0; t < n; ++t) {
      const std::vector<TaskId>& base = graph.Successors(static_cast<TaskId>(t));
      succs[t].assign(base.begin(), base.end());
    }
    for (const OrderingEdge& e : s.Timing().ExtraEdges()) {
      // Reused scratch: capacity persists across restarts, so these few
      // appends do not reallocate in steady state.
      auto& list = succs[static_cast<std::size_t>(e.from)];
      list.push_back(e.to);  // resched-lint: allow(reserve-before-push-hot)
    }

    const std::vector<TaskId>& order =
        s.Timing().CombinedTopologicalOrderRef();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const auto u = static_cast<std::size_t>(*it);
      Set(u, u);
      for (const TaskId v : succs[u]) {
        OrInto(u, static_cast<std::size_t>(v));
      }
    }
  }

  bool Reaches(TaskId from, TaskId to) const {
    const auto f = static_cast<std::size_t>(from);
    const auto t = static_cast<std::size_t>(to);
    return (bits_[f * words_ + t / 64] >> (t % 64)) & 1;
  }

 private:
  void Set(std::size_t row, std::size_t bit) {
    bits_[row * words_ + bit / 64] |= std::uint64_t{1} << (bit % 64);
  }
  void OrInto(std::size_t dst_row, std::size_t src_row) {
    for (std::size_t w = 0; w < words_; ++w) {
      bits_[dst_row * words_ + w] |= bits_[src_row * words_ + w];
    }
  }

  std::size_t words_ = 0;
  ArenaVec<std::uint64_t>& bits_;
};

}  // namespace

TimeT FirstLaneGap(const std::vector<std::pair<TimeT, TimeT>>& slots,
                   TimeT lo, TimeT duration, std::size_t* resume) {
  std::size_t i = resume ? *resume : 0;
  // A hint is valid when every slot before it ends at or before lo; ends
  // are monotone (disjoint slots sorted by start), so checking the last
  // skipped slot covers the whole prefix. Stale hints (a smaller lo than
  // the previous query, or an insertion since) fall back to binary search
  // over the monotone ends.
  if (i > slots.size() || (i > 0 && slots[i - 1].second > lo)) {
    i = static_cast<std::size_t>(
        std::partition_point(slots.begin(), slots.end(),
                             [lo](const std::pair<TimeT, TimeT>& s) {
                               return s.second <= lo;
                             }) -
        slots.begin());
  }
  TimeT candidate = lo;
  for (; i < slots.size(); ++i) {
    if (slots[i].second <= candidate) continue;
    if (slots[i].first >= candidate + duration) break;
    candidate = slots[i].second;
  }
  // Every slot before i now ends at or before candidate — a valid hint
  // for any future query with lo >= candidate.
  if (resume) *resume = i;
  return candidate;
}

void RunReconfigurationScheduling(const PaContext& ctx, PaScratch& s) {
  (void)ctx;
  StageBuffers& buf = s.Buffers();
  ArenaVec<ReconfSlot>& timeline = buf.timeline;  // sorted by start
  timeline.clear();

  // ---- build the reconfiguration task set RT.
  ArenaVec<PendingReconf>& pending = buf.pending;
  pending.clear();
  {
    const TimeWindows& win = s.Timing().Windows();
    for (std::size_t r = 0; r < s.NumRegions(); ++r) {
      const DraftRegion& region = s.Region(r);
      for (std::size_t i = 0; i + 1 < region.tasks.size(); ++i) {
        const TaskId t_in = region.tasks[i];
        const TaskId t_out = region.tasks[i + 1];
        if (s.RegionGap(r, t_in, t_out) == 0) continue;  // module reuse
        pending.push_back(PendingReconf{
            r, t_in, t_out, region.reconf_time,
            win.critical[static_cast<std::size_t>(t_out)]});
      }
    }
  }
  if (pending.empty()) return;

  // Per-controller lanes: slot list + bucketed gap index + cursors. The
  // gap index is set-only within one run (slots are only ever added), the
  // GapCursor soundness precondition.
  const std::size_t controllers = s.Inst().platform.NumReconfigurators();
  if (buf.lanes.size() < controllers) buf.lanes.resize(controllers);
  for (std::size_t c = 0; c < controllers; ++c) {
    StageBuffers::ControllerLane& lane = buf.lanes[c];
    lane.slots.clear();
    lane.index.ResizeAndClear(s.TimeBuckets());
    lane.cursor = {};
    lane.resume = 0;
  }

  const Reachability reach(s, buf);

  // precedes[i][j]: reconfiguration i must be scheduled before j, because
  // i's outgoing task weakly precedes j's ingoing task (so scheduling i can
  // still move j's T_MIN).
  const std::size_t m = pending.size();
  ArenaVec<std::size_t>& blockers = buf.blockers;
  blockers.assign(m, 0);
  ArenaVec<std::vector<std::size_t>>& blocks = buf.blocks;
  if (blocks.size() < m) blocks.resize(m);
  for (std::size_t i = 0; i < m; ++i) blocks[i].clear();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      if (reach.Reaches(pending[i].t_out, pending[j].t_in)) {
        blocks[i].push_back(j);
        ++blockers[j];
      }
    }
  }

  ArenaVec<char>& done = buf.done;
  done.assign(m, 0);
  for (std::size_t scheduled = 0; scheduled < m; ++scheduled) {
    // Pick among available reconfigurations: critical first (paper §V-G),
    // then lowest (now final) T_MIN, then stable index.
    std::size_t pick = m;
    TimeT pick_tmin = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (done[i] || blockers[i] != 0) continue;
      const TimeT tmin = EndOf(s, pending[i].t_in);
      const bool better =
          pick == m ||
          (pending[i].critical && !pending[pick].critical) ||
          (pending[i].critical == pending[pick].critical &&
           tmin < pick_tmin);
      if (better) {
        pick = i;
        pick_tmin = tmin;
      }
    }
    RESCHED_CHECK_MSG(pick < m,
                      "reconfiguration availability relation has a cycle");

    const PendingReconf& r = pending[pick];
    // Pick the controller offering the earliest gap (always controller 0
    // in the paper's single-controller model). The O(1) gap-index probe
    // answers the common "controller free at T_MIN" case without touching
    // the slot list; a blocked bucket window falls back to the exact
    // resume-cursor walk — bit-identical either way (outward-rounded
    // buckets: a clear window proves no tick-level overlap, so the exact
    // scan would return lo too; an occupied window decides nothing).
    std::size_t best_c = 0;
    TimeT start = kTimeInfinity;
    for (std::size_t c = 0; c < controllers; ++c) {
      StageBuffers::ControllerLane& lane = buf.lanes[c];
      const std::size_t blo = s.TimeBucketLo(pick_tmin);
      const std::size_t bhi = s.TimeBucketHi(pick_tmin + r.exe);
      TimeT gap_start;
      if (lane.index.FirstGap(blo, bhi - blo, &lane.cursor) == blo) {
        gap_start = pick_tmin;
      } else {
        gap_start = FirstLaneGap(lane.slots, pick_tmin, r.exe, &lane.resume);
      }
      if (gap_start < start) {
        start = gap_start;
        best_c = c;
        if (start == pick_tmin) break;  // no controller can start earlier
      }
    }
    const TimeT end = start + r.exe;
    const ReconfSlot slot{r.region, r.t_out, start, end, best_c};
    const auto pos = std::upper_bound(
        timeline.begin(), timeline.end(), slot,
        [](const ReconfSlot& a, const ReconfSlot& b) {
          return a.start < b.start;
        });
    timeline.insert(pos, slot);
    StageBuffers::ControllerLane& lane = buf.lanes[best_c];
    const std::pair<TimeT, TimeT> lane_slot{start, end};
    lane.slots.insert(
        std::upper_bound(lane.slots.begin(), lane.slots.end(), lane_slot),
        lane_slot);
    lane.index.Set(s.TimeBucketLo(start), s.TimeBucketHi(end));

    // Delay propagation: the outgoing task cannot start before the
    // reconfiguration completes; the window recomputation carries the
    // delay over the task graph.
    s.Timing().RaiseRelease(r.t_out, end);

    done[pick] = 1;
    for (const std::size_t j : blocks[pick]) --blockers[j];
  }
}

}  // namespace resched::pa
