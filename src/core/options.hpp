// Options for the PA deterministic scheduler (§V) and its PA-R randomized
// variant (§VI).
#pragma once

#include <cstdint>
#include <vector>

#include "floorplan/floorplanner.hpp"
#include "taskgraph/taskgraph.hpp"

namespace resched {

/// Processing order of *non-critical* hardware tasks during regions
/// definition (§V-C / §VI). Critical tasks are always ordered by descending
/// efficiency index, as in the paper.
enum class NonCriticalOrder : std::uint8_t {
  kEfficiency,    ///< descending efficiency index (deterministic PA)
  kRandom,        ///< uniformly random permutation (PA-R inner call)
  kFastestFirst,  ///< ascending execution time (the IS-1-like greedy bias;
                  ///< ablation only)
  kGraphOrder,    ///< task-id order (ablation only)
  kExplicit,      ///< caller-supplied priority permutation (PA-LS inner
                  ///< call; see PaOptions::explicit_order)
};

struct PaOptions {
  NonCriticalOrder ordering = NonCriticalOrder::kEfficiency;
  /// Seed for NonCriticalOrder::kRandom.
  std::uint64_t seed = 0;

  /// Priority permutation for NonCriticalOrder::kExplicit: non-critical
  /// hardware tasks are processed in the order their ids appear here
  /// (tasks not listed keep their relative efficiency order, after the
  /// listed ones). May contain every task id; irrelevant entries are
  /// ignored.
  std::vector<TaskId> explicit_order;

  /// Phase D (software task balancing) on/off — ablation knob.
  bool sw_balancing = true;

  /// Module-reuse extension (paper future work, default off): skip the
  /// reconfiguration between consecutive same-module tasks of a region.
  bool module_reuse = false;

  /// Phase H: run the floorplanner and, on failure, shrink the virtually
  /// available FPGA resources by `shrink_factor` and restart (§V-H).
  bool run_floorplan = true;
  double shrink_factor = 0.9;
  std::size_t max_shrink_rounds = 12;
  FloorplanOptions floorplan;

  /// Memoize floorplan feasibility queries (placement catalog + verdict
  /// cache) across shrink rounds / restarts. Results are bit-identical
  /// either way; off exists for benchmarking and debugging.
  bool floorplan_cache = true;
};

}  // namespace resched
