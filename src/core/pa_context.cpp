// PaContext construction: the capacity-independent prefix of the PA
// pipeline (§V-A implementation selection, §V-B critical path extraction,
// the §V-C processing orders) evaluated once per (instance, options) pair.
#include "core/pa_context.hpp"

#include <algorithm>

#include "core/cost_model.hpp"
#include "sched/comm.hpp"
#include "taskgraph/timing.hpp"

namespace resched::pa {

PaContext::PaContext(const Instance& instance, const PaOptions& options)
    : instance_(&instance),
      options_(&options),
      weights_(ComputeResourceWeights(instance.platform.Device().Capacity())),
      max_t_(instance.graph.SerialLowerBoundTime()) {
  const TaskGraph& graph = instance.graph;
  const ResourceVec& max_res = instance.platform.Device().Capacity();
  const std::size_t n = graph.NumTasks();

  // ---- hardware-implementation CSR tables + Eq.-(3) costs ---------------
  hw_impl_off_.assign(n + 1, 0);
  fastest_sw_.resize(n);
  for (std::size_t ti = 0; ti < n; ++ti) {
    const auto t = static_cast<TaskId>(ti);
    const Task& task = graph.GetTask(t);
    fastest_sw_[ti] = graph.FastestSoftwareImpl(t);
    for (std::size_t i = 0; i < task.impls.size(); ++i) {
      if (task.impls[i].IsHardware()) ++hw_impl_off_[ti + 1];
    }
  }
  for (std::size_t ti = 0; ti < n; ++ti) {
    hw_impl_off_[ti + 1] += hw_impl_off_[ti];
  }
  hw_impl_idx_.resize(hw_impl_off_[n]);
  hw_impl_cost_.resize(hw_impl_off_[n]);
  for (std::size_t ti = 0; ti < n; ++ti) {
    const auto t = static_cast<TaskId>(ti);
    const Task& task = graph.GetTask(t);
    std::size_t at = hw_impl_off_[ti];
    for (std::size_t i = 0; i < task.impls.size(); ++i) {
      if (!task.impls[i].IsHardware()) continue;
      hw_impl_idx_[at] = i;
      hw_impl_cost_[at] =
          ImplementationCost(task.impls[i], max_res, weights_, max_t_);
      ++at;
    }
  }

  // ---- §V-A: initial implementation selection (Eq. 3) -------------------
  // Capacity never enters Eq. (3), so this selection — and everything
  // derived from it below — is shared verbatim by every restart.
  initial_impl_.resize(n);
  initial_exec_.resize(n);
  for (std::size_t ti = 0; ti < n; ++ti) {
    const auto t = static_cast<TaskId>(ti);
    const Task& task = graph.GetTask(t);

    // Lowest-cost hardware implementation (Eq. 3)...
    std::size_t best_hw = task.impls.size();
    double best_hw_cost = 0.0;
    for (std::size_t i = 0; i < NumHwImpls(t); ++i) {
      const double cost = HwImplCost(t, i);
      if (best_hw == task.impls.size() || cost < best_hw_cost) {
        best_hw = HwImplIndex(t, i);
        best_hw_cost = cost;
      }
    }

    // ... versus the fastest software implementation; the faster of the
    // two wins (ties go to hardware: an accelerator at equal speed frees a
    // core).
    const std::size_t best_sw = fastest_sw_[ti];
    std::size_t chosen = best_sw;
    if (best_hw != task.impls.size() &&
        task.impls[best_hw].exec_time <= task.impls[best_sw].exec_time) {
      chosen = best_hw;
    }
    initial_impl_[ti] = chosen;
    initial_exec_[ti] = task.impls[chosen].exec_time;
  }

  // Communication-overhead extension: transfer gaps on base edges under
  // the phase-A HW/SW domains.
  if (graph.HasEdgeData() && instance.platform.HwSwBandwidthBytesPerSec() > 0.0) {
    initial_edge_gaps_.reserve(graph.NumEdges());
    for (std::size_t ti = 0; ti < n; ++ti) {
      const auto t = static_cast<TaskId>(ti);
      const bool t_hw = graph.GetImpl(t, initial_impl_[ti]).IsHardware();
      for (const TaskId s : graph.Successors(t)) {
        const auto si = static_cast<std::size_t>(s);
        const bool s_hw = graph.GetImpl(s, initial_impl_[si]).IsHardware();
        const TimeT gap = CommGap(instance.platform, graph, t, s, t_hw, s_hw);
        if (gap != 0) initial_edge_gaps_.push_back({{t, s}, gap});
      }
    }
    std::sort(initial_edge_gaps_.begin(), initial_edge_gaps_.end());
  }

  // ---- §V-B: criticality snapshot on the phase-A windows ----------------
  {
    TimingContext timing(graph);
    for (std::size_t ti = 0; ti < n; ++ti) {
      timing.SetExecTime(static_cast<TaskId>(ti), initial_exec_[ti]);
    }
    timing.AssignBaseEdgeGaps(initial_edge_gaps_);
    const TimeWindows& win = timing.Windows();
    initial_critical_.assign(n, 0);
    for (std::size_t ti = 0; ti < n; ++ti) {
      initial_critical_[ti] = win.critical[ti] ? 1 : 0;
    }
  }

  // ---- §V-C processing orders -------------------------------------------
  for (std::size_t ti = 0; ti < n; ++ti) {
    const auto t = static_cast<TaskId>(ti);
    if (!graph.GetImpl(t, initial_impl_[ti]).IsHardware()) continue;
    (initial_critical_[ti] ? critical_eff_ : non_critical_ids_).push_back(t);
  }
  auto efficiency_desc = [&](TaskId a, TaskId b) {
    return EfficiencyIndex(
               graph.GetImpl(a, initial_impl_[static_cast<std::size_t>(a)]),
               weights_) >
           EfficiencyIndex(
               graph.GetImpl(b, initial_impl_[static_cast<std::size_t>(b)]),
               weights_);
  };
  std::stable_sort(critical_eff_.begin(), critical_eff_.end(),
                   efficiency_desc);
  non_critical_eff_ = non_critical_ids_;
  std::stable_sort(non_critical_eff_.begin(), non_critical_eff_.end(),
                   efficiency_desc);
  non_critical_fastest_ = non_critical_ids_;
  std::stable_sort(non_critical_fastest_.begin(), non_critical_fastest_.end(),
                   [&](TaskId a, TaskId b) {
                     return initial_exec_[static_cast<std::size_t>(a)] <
                            initial_exec_[static_cast<std::size_t>(b)];
                   });
}

}  // namespace resched::pa
