// Public entry points for the PA deterministic scheduler (the paper's
// primary contribution, §IV-§V).
#pragma once

#include "core/options.hpp"
#include "sched/schedule.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace resched {

class FloorplanCache;

namespace pa {
class PaContext;
class PaScratch;
}  // namespace pa

/// Runs the full PA pipeline: the eight phases of §V including the
/// feasibility-check loop of §V-H (floorplan; on failure shrink the
/// virtually available resources by options.shrink_factor and restart).
/// Always returns a complete schedule: if no floorplannable region set is
/// found within options.max_shrink_rounds, the final round runs with zero
/// virtual FPGA capacity, i.e. an all-software schedule, which is trivially
/// feasible.
///
/// `cache`: optional shared floorplan-feasibility cache. When null and
/// options.floorplan_cache is set, a private cache spans the shrink rounds
/// of this call. Results are bit-identical with or without a cache.
///
/// `cancel`: optional cooperative cancellation token, polled at the top of
/// every shrink round; when it fires, CancelledError is thrown (the
/// reschedd per-request deadline path). Cancellation lives outside
/// PaOptions deliberately: PaContext borrows its options across requests
/// (warm reuse), while a token is strictly per-call.
Schedule SchedulePa(const Instance& instance, const PaOptions& options = {},
                    FloorplanCache* cache = nullptr,
                    const CancelToken* cancel = nullptr);

/// Warm-path variant of SchedulePa: runs the full §V pipeline including the
/// §V-H shrink loop against an existing context and scratch, so a caller
/// serving many requests over the same (instance, options) pair — the
/// reschedd worker — skips the per-call precompute entirely. The caller
/// must have validated the instance (PaContext construction assumes it).
/// Bit-identical to SchedulePa for the same (instance, options).
Schedule SchedulePaWarm(const pa::PaContext& ctx, pa::PaScratch& scratch,
                        FloorplanCache* cache = nullptr,
                        const CancelToken* cancel = nullptr);

/// One pass of the phases of §V-A..§V-G (no floorplanning) against a given
/// virtually available capacity: the doSchedule() of Algorithm 1, in the
/// hot-path form. The scratch is Reset() internally; `out` is fully
/// overwritten (buffers reused). Zero heap allocation in steady state.
/// `rng` is consulted only when the context's ordering == kRandom.
void RunPaCore(const pa::PaContext& ctx, pa::PaScratch& scratch,
               const ResourceVec& avail_cap, Rng& rng, Schedule& out);

/// Convenience wrapper that rebuilds the context and scratch per call —
/// the pre-PR-4 entry point, kept for one-shot callers and as the
/// "rebuild everything" baseline in bench/micro_restart.
Schedule RunPaCore(const Instance& instance, const PaOptions& options,
                   const ResourceVec& avail_cap, Rng& rng);

}  // namespace resched
