// Public entry points for the PA deterministic scheduler (the paper's
// primary contribution, §IV-§V).
#pragma once

#include "core/options.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace resched {

/// Runs the full PA pipeline: the eight phases of §V including the
/// feasibility-check loop of §V-H (floorplan; on failure shrink the
/// virtually available resources by options.shrink_factor and restart).
/// Always returns a complete schedule: if no floorplannable region set is
/// found within options.max_shrink_rounds, the final round runs with zero
/// virtual FPGA capacity, i.e. an all-software schedule, which is trivially
/// feasible.
Schedule SchedulePa(const Instance& instance, const PaOptions& options = {});

/// One pass of the phases of §V-A..§V-G (no floorplanning) against a given
/// virtually available capacity. This is the doSchedule() of Algorithm 1;
/// PA-R calls it directly. `rng` is consulted only when
/// options.ordering == NonCriticalOrder::kRandom.
Schedule RunPaCore(const Instance& instance, const PaOptions& options,
                   const ResourceVec& avail_cap, Rng& rng);

}  // namespace resched
