// Final assembly: freezes the phase results into a Schedule (§V-E start and
// end computation, applied to the *final* windows after every delay
// propagation) and double-checks the reconfiguration timeline invariants
// that phase G establishes by construction.
#include <algorithm>
#include <map>

#include "core/pa_state.hpp"

namespace resched::pa {

Schedule AssembleSchedule(PaState& state, std::vector<ReconfSlot> reconfs) {
  const TaskGraph& graph = state.Inst().graph;
  const TimeWindows& win = state.Timing().Windows();

  // Ingoing task per reconfiguration (the region task preceding the loaded
  // one), for the invariant sweep below.
  std::map<std::pair<std::size_t, TaskId>, TaskId> ingoing;
  for (std::size_t s = 0; s < state.Regions().size(); ++s) {
    const DraftRegion& region = state.Regions()[s];
    for (std::size_t i = 0; i + 1 < region.tasks.size(); ++i) {
      ingoing[{s, region.tasks[i + 1]}] = region.tasks[i];
    }
  }

  // Invariant sweep: under the final windows every reconfiguration must
  // start after its ingoing task ends, finish before its outgoing task
  // starts, and the controller timeline must be overlap-free. Phase G
  // guarantees all three; this is cheap insurance against regressions.
  {
    std::vector<ReconfSlot> sorted = reconfs;
    std::sort(sorted.begin(), sorted.end(),
              [](const ReconfSlot& a, const ReconfSlot& b) {
                return a.start < b.start;
              });
    std::vector<TimeT> last_end(
        state.Inst().platform.NumReconfigurators(), 0);
    for (const ReconfSlot& slot : sorted) {
      const auto it = ingoing.find({slot.region, slot.loads_task});
      RESCHED_CHECK_MSG(it != ingoing.end(),
                        "reconfiguration without an ingoing task");
      const auto in = static_cast<std::size_t>(it->second);
      const auto out = static_cast<std::size_t>(slot.loads_task);
      RESCHED_CHECK_MSG(
          slot.start >= win.earliest_start[in] +
                            state.Timing().ExecTime(it->second),
          "reconfiguration starts before its ingoing task ends");
      RESCHED_CHECK_MSG(slot.end <= win.earliest_start[out],
                        "reconfiguration ends after its outgoing task starts");
      RESCHED_CHECK_MSG(slot.start >= last_end.at(slot.controller),
                        "reconfigurations overlap on a controller");
      last_end[slot.controller] = slot.end;
    }
  }

  // ---- freeze the schedule (§V-E on the final windows).
  Schedule schedule;
  schedule.task_slots.resize(graph.NumTasks());
  for (std::size_t ti = 0; ti < graph.NumTasks(); ++ti) {
    const auto t = static_cast<TaskId>(ti);
    TaskSlot& slot = schedule.task_slots[ti];
    slot.task = t;
    slot.impl_index = state.ImplIndex(t);
    slot.start = win.earliest_start[ti];
    slot.end = slot.start + state.Timing().ExecTime(t);
    if (state.RegionOf(t) >= 0) {
      slot.target = TargetKind::kRegion;
      slot.target_index = static_cast<std::size_t>(state.RegionOf(t));
    } else {
      RESCHED_CHECK_MSG(state.ProcessorOf(t) >= 0,
                        "software task was never mapped to a core");
      slot.target = TargetKind::kProcessor;
      slot.target_index = static_cast<std::size_t>(state.ProcessorOf(t));
    }
  }

  schedule.regions.reserve(state.Regions().size());
  for (const DraftRegion& draft : state.Regions()) {
    RegionInfo info;
    info.res = draft.res;
    info.reconf_time = draft.reconf_time;
    info.tasks = draft.tasks;
    std::sort(info.tasks.begin(), info.tasks.end(),
              [&schedule](TaskId a, TaskId b) {
                return schedule.SlotOf(a).start < schedule.SlotOf(b).start;
              });
    schedule.regions.push_back(std::move(info));
  }

  std::sort(reconfs.begin(), reconfs.end(),
            [](const ReconfSlot& a, const ReconfSlot& b) {
              return a.start < b.start;
            });
  schedule.reconfigurations = std::move(reconfs);
  schedule.makespan = schedule.ComputeMakespan();
  return schedule;
}

}  // namespace resched::pa
