// Final assembly: freezes the phase results into a Schedule (§V-E start and
// end computation, applied to the *final* windows after every delay
// propagation) and double-checks the reconfiguration timeline invariants
// that phase G establishes by construction.
//
// The output Schedule is fully overwritten in place so a restart loop can
// reuse one candidate object (its vectors keep their capacity).
#include <algorithm>

#include "core/pa_state.hpp"

namespace resched::pa {

void AssembleSchedule(const PaContext& ctx, PaScratch& s, Schedule& out) {
  const TaskGraph& graph = ctx.Inst().graph;
  const TimeWindows& win = s.Timing().Windows();
  StageBuffers& buf = s.Buffers();
  const ArenaVec<ReconfSlot>& reconfs = buf.timeline;

  // Ingoing task per reconfiguration (the region task preceding the loaded
  // one), for the invariant sweep below. A task lives in at most one
  // region and appears there once, so indexing by the loaded task is
  // unambiguous.
  ArenaVec<TaskId>& ingoing = buf.ingoing_of;
  ingoing.assign(graph.NumTasks(), kInvalidTask);
  for (std::size_t r = 0; r < s.NumRegions(); ++r) {
    const DraftRegion& region = s.Region(r);
    for (std::size_t i = 0; i + 1 < region.tasks.size(); ++i) {
      ingoing[static_cast<std::size_t>(region.tasks[i + 1])] =
          region.tasks[i];
    }
  }

  // Invariant sweep: under the final windows every reconfiguration must
  // start after its ingoing task ends, finish before its outgoing task
  // starts, and the controller timeline must be overlap-free. Phase G
  // guarantees all three; this is cheap insurance against regressions.
  {
    ArenaVec<ReconfSlot>& sorted = buf.sorted_reconfs;
    sorted.assign(reconfs.begin(), reconfs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const ReconfSlot& a, const ReconfSlot& b) {
                return a.start < b.start;
              });
    ArenaVec<TimeT>& last_end = buf.controller_last_end;
    last_end.assign(ctx.Inst().platform.NumReconfigurators(), 0);
    for (const ReconfSlot& slot : sorted) {
      const TaskId in_task =
          ingoing[static_cast<std::size_t>(slot.loads_task)];
      RESCHED_CHECK_MSG(in_task != kInvalidTask,
                        "reconfiguration without an ingoing task");
      const auto in = static_cast<std::size_t>(in_task);
      const auto out_t = static_cast<std::size_t>(slot.loads_task);
      RESCHED_CHECK_MSG(
          slot.start >= win.earliest_start[in] + s.Timing().ExecTime(in_task),
          "reconfiguration starts before its ingoing task ends");
      RESCHED_CHECK_MSG(slot.end <= win.earliest_start[out_t],
                        "reconfiguration ends after its outgoing task starts");
      RESCHED_CHECK_MSG(slot.start >= last_end.at(slot.controller),
                        "reconfigurations overlap on a controller");
      last_end[slot.controller] = slot.end;
    }
  }

  // ---- freeze the schedule (§V-E on the final windows). Every field of
  // `out` is overwritten; vector assignments reuse capacity.
  out.task_slots.resize(graph.NumTasks());
  for (std::size_t ti = 0; ti < graph.NumTasks(); ++ti) {
    const auto t = static_cast<TaskId>(ti);
    TaskSlot& slot = out.task_slots[ti];
    slot.task = t;
    slot.impl_index = s.ImplIndex(t);
    slot.start = win.earliest_start[ti];
    slot.end = slot.start + s.Timing().ExecTime(t);
    if (s.RegionOf(t) >= 0) {
      slot.target = TargetKind::kRegion;
      slot.target_index = static_cast<std::size_t>(s.RegionOf(t));
    } else {
      RESCHED_CHECK_MSG(s.ProcessorOf(t) >= 0,
                        "software task was never mapped to a core");
      slot.target = TargetKind::kProcessor;
      slot.target_index = static_cast<std::size_t>(s.ProcessorOf(t));
    }
  }

  out.regions.resize(s.NumRegions());
  for (std::size_t r = 0; r < s.NumRegions(); ++r) {
    const DraftRegion& draft = s.Region(r);
    RegionInfo& info = out.regions[r];
    info.res = draft.res;
    info.reconf_time = draft.reconf_time;
    info.tasks.assign(draft.tasks.begin(), draft.tasks.end());
    std::sort(info.tasks.begin(), info.tasks.end(),
              [&out](TaskId a, TaskId b) {
                return out.SlotOf(a).start < out.SlotOf(b).start;
              });
  }

  out.reconfigurations.assign(buf.sorted_reconfs.begin(),
                              buf.sorted_reconfs.end());
  out.makespan = out.ComputeMakespan();

  // Solver metadata: reset to a freshly-scheduled state; the drivers fill
  // these in.
  out.algorithm.clear();
  out.scheduling_seconds = 0.0;
  out.floorplanning_seconds = 0.0;
  out.floorplan_retries = 0;
  out.floorplan.clear();
  out.floorplan_checked = false;
  out.floorplan_cache = {};
}

}  // namespace resched::pa
