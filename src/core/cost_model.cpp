#include "core/cost_model.hpp"

namespace resched {

std::vector<double> ComputeResourceWeights(const ResourceVec& max_res) {
  const double total = static_cast<double>(max_res.Total());
  RESCHED_CHECK_MSG(total > 0.0, "device with zero capacity");
  std::vector<double> weights(max_res.size());
  for (std::size_t r = 0; r < max_res.size(); ++r) {
    weights[r] = 1.0 - static_cast<double>(max_res[r]) / total;
  }
  return weights;
}

double WeightedResources(const ResourceVec& res,
                         const std::vector<double>& weights) {
  RESCHED_CHECK_MSG(res.size() == weights.size(), "arity mismatch");
  double sum = 0.0;
  for (std::size_t r = 0; r < res.size(); ++r) {
    sum += weights[r] * static_cast<double>(res[r]);
  }
  return sum;
}

double ImplementationCost(const Implementation& impl,
                          const ResourceVec& max_res,
                          const std::vector<double>& weights, TimeT max_t) {
  RESCHED_CHECK_MSG(impl.IsHardware(), "Eq.(3) applies to HW implementations");
  RESCHED_CHECK_MSG(max_t > 0, "maxT must be positive");
  const double denom = WeightedResources(max_res, weights);
  RESCHED_CHECK_MSG(denom > 0.0, "degenerate resource weights");
  const double rel_res = WeightedResources(impl.res, weights) / denom;
  const double rel_time =
      static_cast<double>(impl.exec_time) / static_cast<double>(max_t);
  return rel_res + rel_time;
}

double EfficiencyIndex(const Implementation& impl,
                       const std::vector<double>& weights) {
  RESCHED_CHECK_MSG(impl.IsHardware(), "Eq.(5) applies to HW implementations");
  const double weighted = WeightedResources(impl.res, weights);
  // A hardware implementation using only the most abundant kind can have a
  // near-zero weighted footprint; clamp to keep the index finite.
  const double denom = weighted > 1e-12 ? weighted : 1e-12;
  return static_cast<double>(impl.exec_time) / denom;
}

}  // namespace resched
