#include "core/pa_state.hpp"

#include <algorithm>

#include "core/cost_model.hpp"
#include "sched/comm.hpp"

namespace resched::pa {

PaScratch::PaScratch(const PaContext& ctx)
    : ctx_(&ctx),
      avail_cap_(ctx.Inst().platform.Device().Capacity()),
      impl_of_(ctx.NumTasks(), 0),
      timing_(ctx.Inst().graph),
      critical0_(ctx.NumTasks(), 0),
      region_of_(ctx.NumTasks(), -1),
      used_cap_(ctx.Inst().platform.Device().Model().ZeroVec()),
      processor_of_(ctx.NumTasks(), -1),
      buffers_(arena_) {
  // CanHost prefilter resolution: bucket the [0, MaxT] axis into at most
  // ~1024 bits so a region's occupancy image stays a few words wide.
  const auto maxt = static_cast<std::uint64_t>(ctx.MaxT());
  while ((maxt >> tl_shift_) >= 1024) ++tl_shift_;
  tl_bits_ = static_cast<std::size_t>(maxt >> tl_shift_) + 2;
}

void PaScratch::Reset(const ResourceVec& avail_cap) {
  avail_cap_ = avail_cap;
  std::fill(impl_of_.begin(), impl_of_.end(), std::size_t{0});
  timing_.Reset();
  std::fill(critical0_.begin(), critical0_.end(), char{0});
  for (std::size_t s = 0; s < num_regions_; ++s) {
    regions_[s].tasks.clear();  // keeps capacity
  }
  num_regions_ = 0;
  std::fill(region_of_.begin(), region_of_.end(), -1);
  used_cap_ = Inst().platform.Device().Model().ZeroVec();
  std::fill(processor_of_.begin(), processor_of_.end(), -1);
}

void PaScratch::SetImpl(TaskId t, std::size_t impl_index) {
  RESCHED_DCHECK_MSG(
      t >= 0 && static_cast<std::size_t>(t) < impl_of_.size(),
      "task id out of range");
  const Task& task = Inst().graph.GetTask(t);
  RESCHED_CHECK_MSG(impl_index < task.impls.size(), "impl index out of range");
  impl_of_[static_cast<std::size_t>(t)] = impl_index;
  timing_.SetExecTime(t, task.impls[impl_index].exec_time);

  // Communication-overhead extension: the HW/SW domain of `t` may have
  // changed, so refresh the transfer gaps on its incident edges.
  const TaskGraph& graph = Inst().graph;
  if (graph.HasEdgeData() &&
      Inst().platform.HwSwBandwidthBytesPerSec() > 0.0) {
    const bool t_hw = ChosenImpl(t).IsHardware();
    for (const TaskId p : graph.Predecessors(t)) {
      timing_.SetBaseEdgeGap(
          p, t,
          CommGap(Inst().platform, graph, p, t,
                  ChosenImpl(p).IsHardware(), t_hw));
    }
    for (const TaskId s : graph.Successors(t)) {
      timing_.SetBaseEdgeGap(
          t, s,
          CommGap(Inst().platform, graph, t, s, t_hw,
                  ChosenImpl(s).IsHardware()));
    }
  }
}

const Implementation& PaScratch::ChosenImpl(TaskId t) const {
  return Inst().graph.GetImpl(t, impl_of_.at(static_cast<std::size_t>(t)));
}

void PaScratch::SwitchToSoftware(TaskId t) {
  RESCHED_CHECK_MSG(RegionOf(t) < 0,
                    "cannot switch a region-assigned task to software");
  SetImpl(t, ctx_->FastestSoftwareImpl(t));
}

void PaScratch::AdoptInitialImplementations() {
  impl_of_ = ctx_->InitialImpls();
  const std::vector<TimeT>& exec = ctx_->InitialExecTimes();
  for (std::size_t ti = 0; ti < exec.size(); ++ti) {
    timing_.SetExecTime(static_cast<TaskId>(ti), exec[ti]);
  }
  timing_.AssignBaseEdgeGaps(ctx_->InitialEdgeGaps());
}

void PaScratch::AdoptInitialCriticality() {
  critical0_ = ctx_->InitialCriticalMask();
}

void PaScratch::SnapshotCriticality() {
  const TimeWindows& win = timing_.Windows();
  for (std::size_t t = 0; t < critical0_.size(); ++t) {
    critical0_[t] = win.critical[t] ? 1 : 0;
  }
}

bool PaScratch::HasFreeCapacity(const ResourceVec& res) const {
  return (used_cap_ + res).FitsWithin(avail_cap_);
}

bool PaScratch::CanHost(std::size_t region, TaskId t, std::size_t impl_index,
                        bool require_reconf_room) const {
  RESCHED_CHECK_MSG(region < num_regions_, "region out of range");
  const DraftRegion& r = regions_[region];
  const Implementation& impl = Inst().graph.GetImpl(t, impl_index);
  RESCHED_CHECK_MSG(impl.IsHardware(), "CanHost with software implementation");
  if (!impl.res.FitsWithin(r.res)) return false;

  // Overlap test on the *planned occupancy slots* [T_MIN, T_MIN + exec).
  //
  // Interpretation note (see DESIGN.md §4): testing on the full
  // [T_MIN, T_MAX] windows would reject almost every reuse, because
  // non-critical windows are wide and mutually overlapping; slots are what
  // the tasks will actually occupy (§V-E pins T_START = T_MIN), and the
  // serialization edges added on assignment guarantee region exclusivity
  // even when later delay propagation shifts the slots.
  const TimeWindows& win = timing_.Windows();
  const auto ti = static_cast<std::size_t>(t);
  const TimeT start_t = win.earliest_start[ti];
  const TimeT end_t = start_t + timing_.ExecTime(t);
  const TimeT room = require_reconf_room ? r.reconf_time : 0;

  // Bucketed-timeline prefilter: when the outward-rounded query range is
  // clear, every pairwise check below would pass (pair_room <= room), so
  // accept without the scan. A clash proves nothing — fall through to the
  // exact loop. Either way the decision matches the scalar code exactly.
  if (TimelineClear(region, r, start_t, end_t, room)) return true;

  for (const TaskId u : r.tasks) {
    const auto ui = static_cast<std::size_t>(u);
    const TimeT start_u = win.earliest_start[ui];
    const TimeT end_u = start_u + timing_.ExecTime(u);
    // Slots must be disjoint; with reconf room, the side on which the
    // reconfiguration would run must additionally fit reconf_s — unless
    // the pair shares a module under the reuse extension (no
    // reconfiguration will run between them).
    TimeT pair_room = room;
    if (pair_room > 0 && Options().module_reuse) {
      const Implementation& u_impl = ChosenImpl(u);
      if (u_impl.module_id >= 0 && u_impl.module_id == impl.module_id) {
        pair_room = 0;
      }
    }
    const bool u_before_t = end_u + pair_room <= start_t;
    const bool t_before_u = end_t + pair_room <= start_u;
    if (!u_before_t && !t_before_u) return false;
  }
  return true;
}

bool PaScratch::TimelineClear(std::size_t region, const DraftRegion& r,
                              TimeT start_t, TimeT end_t, TimeT room) const {
  if (r.tasks.empty()) return true;
  const TimeWindows& win = timing_.Windows();
  const std::uint64_t version = timing_.WindowsVersion();
  if (region_tl_.size() < num_regions_) region_tl_.resize(num_regions_);
  RegionTimeline& tl = region_tl_[region];
  if (tl.version != version || tl.ntasks != r.tasks.size()) {
    tl.index.ResizeAndClear(tl_bits_);  // keeps capacity
    for (const TaskId u : r.tasks) {
      const auto ui = static_cast<std::size_t>(u);
      const TimeT s = win.earliest_start[ui];
      tl.index.Set(BucketLo(s), BucketHi(s + timing_.ExecTime(u)));
    }
    tl.version = version;
    tl.ntasks = r.tasks.size();
  }
  const TimeT qs = start_t > room ? start_t - room : 0;
  const TimeT qe = end_t + room;
  // O(1) occupancy probe: prefix-popcount difference over the bucket
  // window instead of a word scan.
  return !tl.index.AnySet(BucketLo(qs), BucketHi(qe));
}

bool PaScratch::WouldAvoidReconf(std::size_t region, TaskId t,
                                 std::size_t impl_index) const {
  if (!Options().module_reuse) return false;
  const DraftRegion& r = Region(region);
  const Implementation& impl = Inst().graph.GetImpl(t, impl_index);
  if (impl.module_id < 0) return false;

  // Insertion position by earliest start (same rule as AssignToRegion).
  const TimeWindows& win = timing_.Windows();
  const TimeT es_t = win.earliest_start[static_cast<std::size_t>(t)];
  std::size_t pos = 0;
  while (pos < r.tasks.size() &&
         win.earliest_start[static_cast<std::size_t>(r.tasks[pos])] < es_t) {
    ++pos;
  }
  if (pos == 0) return false;  // would be first: initial config is free anyway
  return ChosenImpl(r.tasks[pos - 1]).module_id == impl.module_id;
}

std::size_t PaScratch::CreateRegionFor(TaskId t) {
  const Implementation& impl = ChosenImpl(t);
  RESCHED_CHECK_MSG(impl.IsHardware(), "region for a software implementation");
  RESCHED_CHECK_MSG(HasFreeCapacity(impl.res), "no capacity for new region");
  if (num_regions_ == regions_.size()) {
    regions_.emplace_back(arena_);  // pool growth (rare after warm-up)
  }
  DraftRegion& region = regions_[num_regions_];
  region.res = impl.res;
  region.reconf_time = Inst().platform.ReconfTicks(region.res);
  region.tasks.clear();
  region.tasks.push_back(t);
  ++num_regions_;
  used_cap_ += impl.res;
  RESCHED_DCHECK_MSG(used_cap_.FitsWithin(avail_cap_),
                     "FPGA capacity invariant broken by region creation");
  region_of_[static_cast<std::size_t>(t)] =
      static_cast<int>(num_regions_ - 1);
  return num_regions_ - 1;
}

TimeT PaScratch::RegionGap(std::size_t region, TaskId before,
                           TaskId after) const {
  if (Options().module_reuse) {
    const Implementation& a = ChosenImpl(before);
    const Implementation& b = ChosenImpl(after);
    if (a.module_id >= 0 && a.module_id == b.module_id) return 0;
  }
  return Region(region).reconf_time;
}

void PaScratch::AssignToRegion(std::size_t region, TaskId t) {
  RESCHED_CHECK_MSG(region < num_regions_, "region out of range");
  RESCHED_CHECK_MSG(RegionOf(t) < 0, "task already assigned to a region");
  DraftRegion& r = regions_[region];
  const TimeWindows& win = timing_.Windows();
  const TimeT es_t = win.earliest_start[static_cast<std::size_t>(t)];

  // Insert position: tasks in a region have pairwise-disjoint windows, so
  // ordering by earliest start equals ordering by windows.
  std::size_t pos = 0;
  while (pos < r.tasks.size() &&
         win.earliest_start[static_cast<std::size_t>(r.tasks[pos])] < es_t) {
    ++pos;
  }
  r.tasks.insert(r.tasks.begin() + static_cast<std::ptrdiff_t>(pos), t);
  region_of_[static_cast<std::size_t>(t)] = static_cast<int>(region);
  // Region exclusivity invariant: insertion kept the serialization order
  // aligned with the earliest-start order on both sides.
  RESCHED_DCHECK_MSG(
      pos == 0 ||
          win.earliest_start[static_cast<std::size_t>(r.tasks[pos - 1])] <=
              es_t,
      "region serialization order broken on the left neighbour");
  RESCHED_DCHECK_MSG(
      pos + 1 >= r.tasks.size() ||
          es_t <=
              win.earliest_start[static_cast<std::size_t>(r.tasks[pos + 1])],
      "region serialization order broken on the right neighbour");

  // Serialization edges with reconfiguration gaps. Stale prev->next edges
  // from earlier insertions remain in the timing context but are dominated
  // by the two new edges, so they are harmless.
  if (pos > 0) {
    const TaskId prev = r.tasks[pos - 1];
    timing_.AddOrderingEdge(prev, t, RegionGap(region, prev, t));
  }
  if (pos + 1 < r.tasks.size()) {
    const TaskId next = r.tasks[pos + 1];
    timing_.AddOrderingEdge(t, next, RegionGap(region, t, next));
  }
}

TimeT PaScratch::TotalReconfTimeEstimate() const {
  TimeT total = 0;
  for (std::size_t s = 0; s < num_regions_; ++s) {
    const DraftRegion& r = regions_[s];
    if (r.tasks.size() > 1) {
      total += r.reconf_time * static_cast<TimeT>(r.tasks.size() - 1);
    }
  }
  return total;
}

}  // namespace resched::pa
