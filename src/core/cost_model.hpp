// The paper's cost metrics: resource weights (Eq. 4), implementation cost
// (Eq. 3) and the efficiency index (Eq. 5) that gives the approach its name.
#pragma once

#include <vector>

#include "taskgraph/taskgraph.hpp"

namespace resched {

/// Eq. (4): weightRes_r = 1 - maxRes_r / sum_r' maxRes_r'. Scarcer resource
/// kinds (BRAM, DSP) receive weights close to 1; abundant ones (CLB) close
/// to 0, so using a scarce resource is expensive.
std::vector<double> ComputeResourceWeights(const ResourceVec& max_res);

/// Weighted resource amount sum_r weightRes_r * res_r.
double WeightedResources(const ResourceVec& res,
                         const std::vector<double>& weights);

/// Eq. (3): cost of a hardware implementation — relative weighted resource
/// usage plus execution time normalized by maxT (the all-fastest serial
/// schedule length, Eq. 4 bottom).
double ImplementationCost(const Implementation& impl,
                          const ResourceVec& max_res,
                          const std::vector<double>& weights, TimeT max_t);

/// Eq. (5): efficiency index — execution time per weighted resource unit.
/// High-efficiency implementations are slow-but-small; scheduling them
/// first lets more regions coexist on the fabric.
double EfficiencyIndex(const Implementation& impl,
                       const std::vector<double>& weights);

}  // namespace resched
