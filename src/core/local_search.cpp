#include "core/local_search.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "core/cost_model.hpp"
#include "core/pa_state.hpp"
#include "floorplan/floorplan_cache.hpp"
#include "util/timer.hpp"

namespace resched {

namespace {

/// Mutates (order, factor) in place: one of a random transposition, a
/// short segment reversal, or a capacity-factor nudge.
void Mutate(std::vector<TaskId>& order, double& factor,
            const PaLsOptions& options, Rng& rng) {
  const std::int64_t kind = rng.UniformInt(0, 3);
  const auto n = static_cast<std::int64_t>(order.size());
  if (kind <= 1 && n >= 2) {  // transposition (most common move)
    const auto i = static_cast<std::size_t>(rng.UniformInt(0, n - 1));
    const auto j = static_cast<std::size_t>(rng.UniformInt(0, n - 1));
    std::swap(order[i], order[j]);
  } else if (kind == 2 && n >= 3) {  // short reversal
    const auto i = static_cast<std::size_t>(rng.UniformInt(0, n - 3));
    const auto len = static_cast<std::size_t>(
        rng.UniformInt(2, std::min<std::int64_t>(6, n - static_cast<std::int64_t>(i))));
    std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                 order.begin() + static_cast<std::ptrdiff_t>(i + len));
  } else {  // capacity nudge
    factor = std::clamp(factor + rng.UniformDouble(-0.08, 0.08),
                        options.capacity_factor_lo,
                        options.capacity_factor_hi);
  }
}

}  // namespace

PaRResult SchedulePaLs(const Instance& instance,
                       const PaLsOptions& options) {
  RESCHED_CHECK_MSG(
      options.time_budget_seconds > 0.0 || options.max_iterations > 0,
      "PA-LS needs a time budget or an iteration cap");
  RESCHED_CHECK_MSG(options.capacity_factor_lo > 0.0 &&
                        options.capacity_factor_lo <=
                            options.capacity_factor_hi &&
                        options.capacity_factor_hi <= 1.0,
                    "capacity factors must satisfy 0 < lo <= hi <= 1");
  instance.graph.Validate(instance.platform.Device());

  const Deadline deadline(options.time_budget_seconds);
  Rng rng(options.seed);
  const ResourceVec full_cap = instance.platform.Device().Capacity();

  std::optional<FloorplanCache> cache;
  if (options.base.floorplan_cache) {
    cache.emplace(instance.platform.Device());
  }

  PaRResult result;
  TimeT best_makespan = kTimeInfinity;
  // Walk state initialized from the warm start: its shrink loop tells us
  // at which virtual capacity feasible region sets live — starting the
  // walk at factor 1.0 would propose only unfloorplannable candidates and
  // capacity-lowering moves could never win on raw makespan.
  double start_factor = options.capacity_factor_hi;
  TimeT current_makespan = kTimeInfinity;

  if (options.seed_with_deterministic) {
    PaOptions det = options.base;
    det.ordering = NonCriticalOrder::kEfficiency;
    det.explicit_order.clear();
    det.run_floorplan = true;
    Schedule warm = SchedulePa(instance, det, cache ? &*cache : nullptr);
    warm.algorithm = "PA-LS";
    best_makespan = warm.makespan;
    current_makespan = warm.makespan;
    for (std::size_t r = 0; r < warm.floorplan_retries; ++r) {
      start_factor *= det.shrink_factor;
    }
    start_factor = std::clamp(start_factor, options.capacity_factor_lo,
                              options.capacity_factor_hi);
    result.best = std::move(warm);
    result.found = true;
    if (options.record_trace) {
      result.trace.push_back(
          TracePoint{deadline.ElapsedSeconds(), best_makespan, 0});
    }
  }

  // Start point: efficiency-index order over all tasks (PA's own order
  // restricted to whichever tasks end up non-critical).
  const std::vector<double> weights =
      ComputeResourceWeights(instance.platform.Device().Capacity());
  std::vector<TaskId> current(instance.graph.NumTasks());
  std::iota(current.begin(), current.end(), TaskId{0});
  std::stable_sort(current.begin(), current.end(), [&](TaskId a, TaskId b) {
    auto best_eff = [&](TaskId t) {
      double best = 0.0;
      for (const std::size_t i : instance.graph.HardwareImpls(t)) {
        best = std::max(best,
                        EfficiencyIndex(instance.graph.GetImpl(t, i),
                                        weights));
      }
      return best;
    };
    return best_eff(a) > best_eff(b);
  });
  double current_factor = start_factor;

  PaOptions inner = options.base;
  inner.ordering = NonCriticalOrder::kExplicit;
  inner.run_floorplan = false;

  // Build-once hot path: `inner` outlives the context, which reads
  // `explicit_order` through its options pointer on every restart — the
  // per-iteration assignment below is all the walk has to do.
  const pa::PaContext ctx(instance, inner);
  pa::PaScratch scratch(ctx);
  Schedule schedule;

  std::size_t stall = 0;
  std::size_t iterations = 0;
  while (!deadline.Expired() &&
         (options.max_iterations == 0 ||
          iterations < options.max_iterations)) {
    ++iterations;

    std::vector<TaskId> candidate_order = current;
    double candidate_factor = current_factor;
    if (stall >= options.stall_limit) {  // random restart
      rng.Shuffle(candidate_order);
      candidate_factor = rng.UniformDouble(options.capacity_factor_lo,
                                           options.capacity_factor_hi);
      current_makespan = kTimeInfinity;  // accept whatever the restart finds
      stall = 0;
    } else {
      Mutate(candidate_order, candidate_factor, options, rng);
    }

    inner.explicit_order = candidate_order;
    Rng scratch_rng = rng.Split();
    RunPaCore(ctx, scratch, full_cap.ScaledDown(candidate_factor),
              scratch_rng, schedule);

    if (schedule.makespan < current_makespan) {
      current = std::move(candidate_order);
      current_factor = candidate_factor;
      current_makespan = schedule.makespan;
      stall = 0;
    } else {
      ++stall;
    }

    if (schedule.makespan >= best_makespan) continue;
    const FloorplanResult fp =
        cache ? cache->Query(schedule.RegionRequirements(), inner.floorplan)
              : FindFloorplan(instance.platform.Device(),
                              schedule.RegionRequirements(), inner.floorplan);
    if (!fp.feasible) continue;
    best_makespan = schedule.makespan;
    schedule.floorplan = fp.rects;
    schedule.floorplan_checked = true;
    schedule.algorithm = "PA-LS";
    result.best = std::move(schedule);
    result.found = true;
    if (options.record_trace) {
      // Grows only on improvements — cold by definition.
      result.trace.push_back(  // resched-lint: allow(reserve-before-push-hot)
          TracePoint{deadline.ElapsedSeconds(), best_makespan, iterations});
    }
  }

  result.iterations = iterations;
  result.seconds = deadline.ElapsedSeconds();
  if (cache) {
    result.floorplan_cache = cache->Stats();
    if (result.found) result.best.floorplan_cache = result.floorplan_cache;
  }
  if (result.found) result.best.scheduling_seconds = result.seconds;
  return result;
}

}  // namespace resched
