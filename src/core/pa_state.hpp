// Shared working state threaded through the PA phases (§V-A..§V-G).
//
// Phase functions mutate this state in sequence; the driver in
// pa_scheduler.cpp owns the phase order. The state wraps a TimingContext so
// that every implementation switch, region-ordering edge or release bump
// transparently re-derives the paper's time windows (T_MIN/T_MAX), the
// makespan and task criticality.
#pragma once

#include <vector>

#include "core/options.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/timing.hpp"
#include "util/rng.hpp"

namespace resched::pa {

/// A reconfigurable region under construction. `tasks` is kept in the
/// serialization order enforced by the ordering edges.
struct DraftRegion {
  ResourceVec res;
  TimeT reconf_time = 0;
  std::vector<TaskId> tasks;
};

class PaState {
 public:
  PaState(const Instance& instance, const ResourceVec& avail_cap,
          const PaOptions& options);

  const Instance& Inst() const { return *instance_; }
  const PaOptions& Options() const { return *options_; }
  const ResourceVec& AvailCap() const { return avail_cap_; }
  const std::vector<double>& Weights() const { return weights_; }
  TimeT MaxT() const { return max_t_; }

  TimingContext& Timing() { return timing_; }
  const TimingContext& Timing() const { return timing_; }

  std::size_t NumTasks() const { return impl_of_.size(); }

  // ---- implementation choice ------------------------------------------
  void SetImpl(TaskId t, std::size_t impl_index);
  std::size_t ImplIndex(TaskId t) const {
    return impl_of_.at(static_cast<std::size_t>(t));
  }
  const Implementation& ChosenImpl(TaskId t) const;
  bool ChosenIsHardware(TaskId t) const {
    return ChosenImpl(t).IsHardware();
  }

  /// Switches `t` to its fastest software implementation (§V-C fallback).
  void SwitchToSoftware(TaskId t);

  // ---- criticality snapshot --------------------------------------------
  /// Captures the phase-B criticality labels used for the regions-definition
  /// processing order.
  void SnapshotCriticality();
  bool WasCritical(TaskId t) const {
    return critical0_.at(static_cast<std::size_t>(t));
  }

  // ---- regions -----------------------------------------------------------
  const std::vector<DraftRegion>& Regions() const { return regions_; }
  /// Region index of `t` or -1 when t runs in software.
  int RegionOf(TaskId t) const {
    return region_of_.at(static_cast<std::size_t>(t));
  }
  const ResourceVec& UsedCap() const { return used_cap_; }

  /// Free capacity check for creating a region of requirement `res`.
  bool HasFreeCapacity(const ResourceVec& res) const;

  /// Whether region `s` can host task `t` with implementation `impl_index`:
  /// resource fit plus pairwise-disjoint time windows against every task
  /// already in `s`. With `require_reconf_room`, windows must additionally
  /// leave reconf_s of slack on the side where the reconfiguration would
  /// run (§V-C step 1 for critical tasks) — except between same-module
  /// neighbours when the module-reuse extension is active (no
  /// reconfiguration happens there, so no room is needed).
  bool CanHost(std::size_t region, TaskId t, std::size_t impl_index,
               bool require_reconf_room) const;

  /// Module-reuse extension: true when inserting (t, impl_index) into
  /// region `s` would sit directly after a task using the same module, so
  /// the reconfiguration before `t` disappears. Always false when the
  /// extension is off.
  bool WouldAvoidReconf(std::size_t region, TaskId t,
                        std::size_t impl_index) const;

  /// Creates a new region sized exactly for `t`'s implementation and
  /// assigns t to it; returns the region index.
  std::size_t CreateRegionFor(TaskId t);

  /// Assigns `t` into existing region `s` (implementation already chosen):
  /// inserts it in window order and adds the serialization edges with the
  /// appropriate reconfiguration gaps.
  void AssignToRegion(std::size_t region, TaskId t);

  /// Eq. (6): total reconfiguration time over all regions, assuming the
  /// first configuration of each region is free.
  TimeT TotalReconfTimeEstimate() const;

  /// Gap that must separate `before` and `after` in region `s`: the
  /// region's reconfiguration time, or zero when the module-reuse extension
  /// is active and both use the same module.
  TimeT RegionGap(std::size_t region, TaskId before, TaskId after) const;

  // ---- processors --------------------------------------------------------
  int ProcessorOf(TaskId t) const {
    return processor_of_.at(static_cast<std::size_t>(t));
  }
  void SetProcessor(TaskId t, std::size_t p) {
    processor_of_.at(static_cast<std::size_t>(t)) = static_cast<int>(p);
  }

 private:
  const Instance* instance_;
  const PaOptions* options_;
  ResourceVec avail_cap_;
  std::vector<double> weights_;
  TimeT max_t_ = 0;

  std::vector<std::size_t> impl_of_;
  TimingContext timing_;
  std::vector<bool> critical0_;

  std::vector<DraftRegion> regions_;
  std::vector<int> region_of_;
  ResourceVec used_cap_;

  std::vector<int> processor_of_;
};

// ---- phase entry points (called in order by the driver) -------------------

/// §V-A: assigns every task its initial implementation via Eq. (3).
void RunImplementationSelection(PaState& state);

/// §V-B is implicit: the TimingContext already yields CPM windows; this
/// merely snapshots criticality for the phase-C processing order.
void RunCriticalPathExtraction(PaState& state);

/// §V-C: defines the reconfigurable regions and maps hardware tasks to
/// them. `rng` is consulted only for NonCriticalOrder::kRandom.
void RunRegionsDefinition(PaState& state, Rng& rng);

/// §V-D: moves eligible software tasks back to underutilized regions.
void RunSoftwareTaskBalancing(PaState& state);

/// §V-F: binds software tasks to processors (Eq. 8/9).
void RunSoftwareTaskMapping(PaState& state);

/// §V-G: schedules the reconfiguration tasks on the single controller;
/// returns the controller timeline.
std::vector<ReconfSlot> RunReconfigurationScheduling(PaState& state);

/// Final assembly: repairs any residual reconfiguration/slot inconsistency
/// introduced by late delay propagation, then freezes starts/ends into a
/// Schedule (§V-E start/end computation happens here, on the final
/// windows).
Schedule AssembleSchedule(PaState& state, std::vector<ReconfSlot> reconfs);

}  // namespace resched::pa
