// Per-worker reusable working state threaded through the PA phases
// (§V-A..§V-G).
//
// Phase functions mutate a PaScratch in sequence; the driver in
// pa_scheduler.cpp owns the phase order. The scratch wraps a TimingContext
// so that every implementation switch, region-ordering edge or release
// bump transparently re-derives the paper's time windows (T_MIN/T_MAX),
// the makespan and task criticality.
//
// Hot-path contract (DESIGN.md §8): a PaScratch is constructed once per
// worker against a shared immutable PaContext and Reset() between
// restarts. Reset never frees — every vector (including the DraftRegion
// pool and the per-stage buffers) keeps its capacity, so a restart in
// steady state performs no heap allocation. A PaScratch borrows its
// PaContext, which must outlive it; scratches are never shared across
// threads.
#pragma once

#include <utility>
#include <vector>

#include "core/pa_context.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/timing.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/timeline.hpp"

namespace resched::pa {

/// A reconfigurable region under construction. `tasks` is kept in the
/// serialization order enforced by the ordering edges. Task storage is
/// carved from the owning scratch's arena.
struct DraftRegion {
  explicit DraftRegion(MonotonicArena& arena)
      : tasks(ArenaAllocator<TaskId>(arena)) {}

  ResourceVec res;
  TimeT reconf_time = 0;
  ArenaVec<TaskId> tasks;
};

/// Cross-restart buffers owned by the pipeline stages (see each stage's
/// .cpp for the usage). Stages fully overwrite what they use; nothing here
/// carries meaning across a Reset(). Every buffer bump-allocates from the
/// owning PaScratch's arena (DESIGN.md §10), so the working set of one
/// worker lives in one slab chain.
struct StageBuffers {
  explicit StageBuffers(MonotonicArena& arena)
      : critical(ArenaAllocator<TaskId>(arena)),
        non_critical(ArenaAllocator<TaskId>(arena)),
        explicit_pos(ArenaAllocator<std::size_t>(arena)),
        balance_candidates(ArenaAllocator<TaskId>(arena)),
        sw_tasks(ArenaAllocator<TaskId>(arena)),
        last_on_core(ArenaAllocator<TaskId>(arena)),
        pending(ArenaAllocator<PendingReconf>(arena)),
        blockers(ArenaAllocator<std::size_t>(arena)),
        blocks(ArenaAllocator<std::vector<std::size_t>>(arena)),
        done(ArenaAllocator<char>(arena)),
        reach_bits(ArenaAllocator<std::uint64_t>(arena)),
        combined_succs(ArenaAllocator<std::vector<TaskId>>(arena)),
        timeline(ArenaAllocator<ReconfSlot>(arena)),
        ingoing_of(ArenaAllocator<TaskId>(arena)),
        sorted_reconfs(ArenaAllocator<ReconfSlot>(arena)),
        controller_last_end(ArenaAllocator<TimeT>(arena)) {}

  // §V-G reconfigurations scheduling.
  struct PendingReconf {
    std::size_t region = 0;
    TaskId t_in = kInvalidTask;
    TaskId t_out = kInvalidTask;
    TimeT exe = 0;
    bool critical = false;
  };

  // §V-C regions definition.
  ArenaVec<TaskId> critical;
  ArenaVec<TaskId> non_critical;
  ArenaVec<std::size_t> explicit_pos;

  // §V-D software task balancing.
  ArenaVec<TaskId> balance_candidates;

  // §V-F software task mapping.
  ArenaVec<TaskId> sw_tasks;
  ArenaVec<TaskId> last_on_core;

  // §V-G reconfigurations scheduling. The inner vectors of `blocks` and
  // `combined_succs` stay heap-backed: their element counts vary per
  // restart and re-binding nested allocators would defeat the pool reuse.
  ArenaVec<PendingReconf> pending;
  ArenaVec<std::size_t> blockers;
  ArenaVec<std::vector<std::size_t>> blocks;
  ArenaVec<char> done;
  ArenaVec<std::uint64_t> reach_bits;
  ArenaVec<std::vector<TaskId>> combined_succs;
  /// Controller timeline produced by §V-G, consumed by the assembly.
  ArenaVec<ReconfSlot> timeline;
  /// Per-controller view of the §V-G timeline: the controller's own slots
  /// (sorted by start; disjoint, so ends are monotone too), a prefix-sum
  /// gap index over bucketed time answering "is this window clear?" in
  /// O(1), a fully-set-prefix cursor for it, and the resume index of the
  /// exact-scan fallback (see FirstLaneGap). Heap-backed like the nested
  /// vectors above: lane count tracks the platform, not the restart.
  struct ControllerLane {
    std::vector<std::pair<TimeT, TimeT>> slots;
    timeline::GapIndex index;
    timeline::GapCursor cursor;
    std::size_t resume = 0;
  };
  std::vector<ControllerLane> lanes;

  // Final assembly.
  ArenaVec<TaskId> ingoing_of;
  ArenaVec<ReconfSlot> sorted_reconfs;
  ArenaVec<TimeT> controller_last_end;
};

class PaScratch {
 public:
  /// Sizes every buffer for the context's instance and Reset()s against
  /// the full device capacity.
  explicit PaScratch(const PaContext& ctx);

  /// Restart reset: forgets the previous solution, installs the virtually
  /// available capacity for the next one. Keeps all buffer capacity.
  void Reset(const ResourceVec& avail_cap);

  const PaContext& Ctx() const { return *ctx_; }
  const Instance& Inst() const { return ctx_->Inst(); }
  const PaOptions& Options() const { return ctx_->Options(); }
  const ResourceVec& AvailCap() const { return avail_cap_; }
  const std::vector<double>& Weights() const { return ctx_->Weights(); }
  TimeT MaxT() const { return ctx_->MaxT(); }

  TimingContext& Timing() { return timing_; }
  const TimingContext& Timing() const { return timing_; }

  std::size_t NumTasks() const { return impl_of_.size(); }

  // ---- implementation choice ------------------------------------------
  void SetImpl(TaskId t, std::size_t impl_index);
  std::size_t ImplIndex(TaskId t) const {
    return impl_of_.at(static_cast<std::size_t>(t));
  }
  const Implementation& ChosenImpl(TaskId t) const;
  bool ChosenIsHardware(TaskId t) const {
    return ChosenImpl(t).IsHardware();
  }

  /// Switches `t` to its fastest software implementation (§V-C fallback).
  void SwitchToSoftware(TaskId t);

  /// §V-A bulk install: adopts the context's precomputed implementation
  /// selection (impl indices, execution times, communication gaps).
  void AdoptInitialImplementations();

  // ---- criticality snapshot --------------------------------------------
  /// §V-B bulk install: adopts the context's precomputed phase-B labels.
  void AdoptInitialCriticality();
  /// Recaptures the labels from the *current* windows (white-box tests).
  void SnapshotCriticality();
  bool WasCritical(TaskId t) const {
    return critical0_.at(static_cast<std::size_t>(t));
  }

  // ---- regions -----------------------------------------------------------
  std::size_t NumRegions() const { return num_regions_; }
  const DraftRegion& Region(std::size_t s) const {
    RESCHED_CHECK_MSG(s < num_regions_, "region out of range");
    return regions_[s];
  }
  /// Region index of `t` or -1 when t runs in software.
  int RegionOf(TaskId t) const {
    return region_of_.at(static_cast<std::size_t>(t));
  }
  const ResourceVec& UsedCap() const { return used_cap_; }

  /// Free capacity check for creating a region of requirement `res`.
  bool HasFreeCapacity(const ResourceVec& res) const;

  /// Whether region `s` can host task `t` with implementation `impl_index`:
  /// resource fit plus pairwise-disjoint time windows against every task
  /// already in `s`. With `require_reconf_room`, windows must additionally
  /// leave reconf_s of slack on the side where the reconfiguration would
  /// run (§V-C step 1 for critical tasks) — except between same-module
  /// neighbours when the module-reuse extension is active (no
  /// reconfiguration happens there, so no room is needed).
  bool CanHost(std::size_t region, TaskId t, std::size_t impl_index,
               bool require_reconf_room) const;

  /// Module-reuse extension: true when inserting (t, impl_index) into
  /// region `s` would sit directly after a task using the same module, so
  /// the reconfiguration before `t` disappears. Always false when the
  /// extension is off.
  bool WouldAvoidReconf(std::size_t region, TaskId t,
                        std::size_t impl_index) const;

  /// Creates a new region sized exactly for `t`'s implementation and
  /// assigns t to it; returns the region index.
  std::size_t CreateRegionFor(TaskId t);

  /// Assigns `t` into existing region `s` (implementation already chosen):
  /// inserts it in window order and adds the serialization edges with the
  /// appropriate reconfiguration gaps.
  void AssignToRegion(std::size_t region, TaskId t);

  /// Eq. (6): total reconfiguration time over all regions, assuming the
  /// first configuration of each region is free.
  TimeT TotalReconfTimeEstimate() const;

  /// Gap that must separate `before` and `after` in region `s`: the
  /// region's reconfiguration time, or zero when the module-reuse extension
  /// is active and both use the same module.
  TimeT RegionGap(std::size_t region, TaskId before, TaskId after) const;

  // ---- processors --------------------------------------------------------
  int ProcessorOf(TaskId t) const {
    return processor_of_.at(static_cast<std::size_t>(t));
  }
  void SetProcessor(TaskId t, std::size_t p) {
    processor_of_.at(static_cast<std::size_t>(t)) = static_cast<int>(p);
  }

  StageBuffers& Buffers() { return buffers_; }

  // ---- bucketed time axis (shared by the CanHost prefilter and the §V-G
  // controller lanes): bucket b covers ticks [b << shift, (b+1) << shift),
  // outward-rounded on store and on query so a clear bucket window proves
  // tick-level disjointness. Saturates at the axis end (conservative).
  std::size_t TimeBuckets() const { return tl_bits_; }
  std::size_t TimeBucketLo(TimeT t) const { return BucketLo(t); }
  /// Exclusive bucket end for an exclusive tick end t >= 1.
  std::size_t TimeBucketHi(TimeT t) const { return BucketHi(t); }

 private:
  /// Coarse per-region occupancy image over bucketed time, held as a
  /// prefix-popcount GapIndex: outward-rounded on store and on query, so
  /// an O(1) AnySet() == false proves slot disjointness and CanHost can
  /// accept without the pairwise scan. A clash only falls back to the
  /// exact loop — decisions are bit-identical either way.
  struct RegionTimeline {
    std::uint64_t version = 0;
    std::size_t ntasks = static_cast<std::size_t>(-1);
    timeline::GapIndex index;
  };

  /// True when the bucketed image proves [start_t - room, end_t + room)
  /// is disjoint from every slot already in region `r` (rebuilds the
  /// image lazily when windows or membership changed).
  bool TimelineClear(std::size_t region, const DraftRegion& r, TimeT start_t,
                     TimeT end_t, TimeT room) const;

  std::size_t BucketLo(TimeT t) const {
    const std::size_t b = static_cast<std::size_t>(t) >> tl_shift_;
    return b < tl_bits_ ? b : tl_bits_ - 1;  // saturate: stays conservative
  }
  std::size_t BucketHi(TimeT t) const {  // exclusive end for tick-end t >= 1
    const std::size_t b = (static_cast<std::size_t>(t - 1) >> tl_shift_) + 1;
    return b < tl_bits_ ? b : tl_bits_;
  }

  const PaContext* ctx_;
  ResourceVec avail_cap_;

  std::vector<std::size_t> impl_of_;
  TimingContext timing_;
  std::vector<char> critical0_;

  /// Backing store for the stage buffers and draft-region task lists;
  /// declared before them so it outlives every container carved from it.
  MonotonicArena arena_;

  /// Region pool: only the first num_regions_ entries are live; dead
  /// entries keep their task-vector capacity for reuse.
  std::vector<DraftRegion> regions_;
  std::size_t num_regions_ = 0;
  std::vector<int> region_of_;
  ResourceVec used_cap_;

  std::vector<int> processor_of_;

  // CanHost prefilter state (lazily rebuilt; epoch-checked via the timing
  // context's windows version, so Reset() needs no invalidation pass).
  mutable std::vector<RegionTimeline> region_tl_;
  std::size_t tl_shift_ = 0;
  std::size_t tl_bits_ = 1;

  StageBuffers buffers_;
};

// ---- phase entry points (called in order by the driver) -------------------

/// §V-A: installs the context's precomputed Eq.-(3) selection.
void RunImplementationSelection(const PaContext& ctx, PaScratch& s);

/// §V-B is implicit: the TimingContext already yields CPM windows; this
/// merely installs the precomputed criticality labels driving the phase-C
/// processing order.
void RunCriticalPathExtraction(const PaContext& ctx, PaScratch& s);

/// §V-C: defines the reconfigurable regions and maps hardware tasks to
/// them. `rng` is consulted only for NonCriticalOrder::kRandom.
void RunRegionsDefinition(const PaContext& ctx, PaScratch& s, Rng& rng);

/// §V-D: moves eligible software tasks back to underutilized regions.
void RunSoftwareTaskBalancing(const PaContext& ctx, PaScratch& s);

/// §V-F: binds software tasks to processors (Eq. 8/9).
void RunSoftwareTaskMapping(const PaContext& ctx, PaScratch& s);

/// §V-G: schedules the reconfiguration tasks on the single controller;
/// leaves the controller timeline in s.Buffers().timeline.
void RunReconfigurationScheduling(const PaContext& ctx, PaScratch& s);

/// Earliest start >= `lo` of a `duration`-long gap in one controller's
/// slot list (sorted by start, pairwise disjoint — so ends are monotone).
/// `resume`, when non-null, is a skip hint: on entry, an index i such
/// that every slot before i ended at or before some earlier query's
/// result; it is validated against `lo` (and recomputed by binary search
/// when stale), and updated on exit to the first slot index not wholly
/// before the returned start. Bit-identical to the head-to-tail scan for
/// every (lo, duration) — the hint only skips slots that end at or
/// before `lo`. Exposed for the differential regression test.
TimeT FirstLaneGap(const std::vector<std::pair<TimeT, TimeT>>& slots,
                   TimeT lo, TimeT duration, std::size_t* resume);

/// Final assembly: repairs any residual reconfiguration/slot inconsistency
/// introduced by late delay propagation, then freezes starts/ends into
/// `out` (§V-E start/end computation happens here, on the final windows).
/// Fully overwrites `out`, reusing its buffers.
void AssembleSchedule(const PaContext& ctx, PaScratch& s, Schedule& out);

}  // namespace resched::pa
