#include "core/pa_scheduler.hpp"

#include "core/pa_state.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace resched {

Schedule RunPaCore(const Instance& instance, const PaOptions& options,
                   const ResourceVec& avail_cap, Rng& rng) {
  pa::PaState state(instance, avail_cap, options);
  pa::RunImplementationSelection(state);
  pa::RunCriticalPathExtraction(state);
  pa::RunRegionsDefinition(state, rng);
  if (options.sw_balancing) pa::RunSoftwareTaskBalancing(state);
  pa::RunSoftwareTaskMapping(state);
  std::vector<ReconfSlot> reconfs = pa::RunReconfigurationScheduling(state);
  Schedule schedule = pa::AssembleSchedule(state, std::move(reconfs));
  schedule.algorithm =
      options.ordering == NonCriticalOrder::kRandom ? "PA-R(inner)" : "PA";
  return schedule;
}

Schedule SchedulePa(const Instance& instance, const PaOptions& options) {
  instance.graph.Validate(instance.platform.Device());
  Rng rng(options.seed);

  double scheduling_seconds = 0.0;
  double floorplanning_seconds = 0.0;

  ResourceVec avail_cap = instance.platform.Device().Capacity();
  Schedule schedule;
  for (std::size_t round = 0; round <= options.max_shrink_rounds; ++round) {
    const bool last_round = round == options.max_shrink_rounds;
    if (last_round) {
      // Fallback: zero virtual capacity forces an all-software schedule,
      // which needs no regions and hence no floorplan.
      avail_cap = avail_cap.ScaledDown(0.0);
    }

    WallTimer sched_timer;
    schedule = RunPaCore(instance, options, avail_cap, rng);
    scheduling_seconds += sched_timer.ElapsedSeconds();
    schedule.floorplan_retries = round;

    if (!options.run_floorplan) break;

    const FloorplanResult fp = FindFloorplan(
        instance.platform.Device(), schedule.RegionRequirements(),
        options.floorplan);
    floorplanning_seconds += fp.seconds;
    if (fp.feasible) {
      schedule.floorplan = fp.rects;
      schedule.floorplan_checked = true;
      break;
    }
    RESCHED_LOG_INFO << "floorplan infeasible for " << schedule.regions.size()
                     << " regions (round " << round
                     << "); shrinking available resources by "
                     << options.shrink_factor;
    avail_cap = avail_cap.ScaledDown(options.shrink_factor);
  }

  schedule.algorithm = "PA";
  schedule.scheduling_seconds = scheduling_seconds;
  schedule.floorplanning_seconds = floorplanning_seconds;
  return schedule;
}

}  // namespace resched
