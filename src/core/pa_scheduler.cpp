#include "core/pa_scheduler.hpp"

#include <optional>

#include "core/pa_state.hpp"
#include "floorplan/floorplan_cache.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace resched {

void RunPaCore(const pa::PaContext& ctx, pa::PaScratch& scratch,
               const ResourceVec& avail_cap, Rng& rng, Schedule& out) {
  scratch.Reset(avail_cap);
  pa::RunImplementationSelection(ctx, scratch);
  pa::RunCriticalPathExtraction(ctx, scratch);
  pa::RunRegionsDefinition(ctx, scratch, rng);
  if (ctx.Options().sw_balancing) pa::RunSoftwareTaskBalancing(ctx, scratch);
  pa::RunSoftwareTaskMapping(ctx, scratch);
  pa::RunReconfigurationScheduling(ctx, scratch);
  pa::AssembleSchedule(ctx, scratch, out);
  out.algorithm = ctx.Options().ordering == NonCriticalOrder::kRandom
                      ? "PA-R(inner)"
                      : "PA";
}

Schedule RunPaCore(const Instance& instance, const PaOptions& options,
                   const ResourceVec& avail_cap, Rng& rng) {
  pa::PaContext ctx(instance, options);
  pa::PaScratch scratch(ctx);
  Schedule schedule;
  RunPaCore(ctx, scratch, avail_cap, rng, schedule);
  return schedule;
}

Schedule SchedulePa(const Instance& instance, const PaOptions& options,
                    FloorplanCache* cache, const CancelToken* cancel) {
  instance.graph.Validate(instance.platform.Device());

  // Build-once hot path: one context and one scratch span every shrink
  // round; only the virtual capacity changes between rounds.
  pa::PaContext ctx(instance, options);
  pa::PaScratch scratch(ctx);
  return SchedulePaWarm(ctx, scratch, cache, cancel);
}

Schedule SchedulePaWarm(const pa::PaContext& ctx, pa::PaScratch& scratch,
                        FloorplanCache* cache, const CancelToken* cancel) {
  const Instance& instance = ctx.Inst();
  const PaOptions& options = ctx.Options();
  Rng rng(options.seed);

  double scheduling_seconds = 0.0;
  double floorplanning_seconds = 0.0;

  std::optional<FloorplanCache> own_cache;
  if (cache == nullptr && options.floorplan_cache && options.run_floorplan) {
    own_cache.emplace(instance.platform.Device());
  }
  FloorplanCache* fp_cache = cache != nullptr ? cache : (own_cache ? &*own_cache : nullptr);
  const FloorplanCacheStats stats_before =
      fp_cache != nullptr ? fp_cache->Stats() : FloorplanCacheStats{};

  ResourceVec avail_cap = instance.platform.Device().Capacity();
  Schedule schedule;
  for (std::size_t round = 0; round <= options.max_shrink_rounds; ++round) {
    if (cancel != nullptr) cancel->ThrowIfCancelled();
    const bool last_round = round == options.max_shrink_rounds;
    if (last_round) {
      // Fallback: zero virtual capacity forces an all-software schedule,
      // which needs no regions and hence no floorplan.
      avail_cap = avail_cap.ScaledDown(0.0);
    }

    WallTimer sched_timer;
    RunPaCore(ctx, scratch, avail_cap, rng, schedule);
    scheduling_seconds += sched_timer.ElapsedSeconds();
    schedule.floorplan_retries = round;

    if (!options.run_floorplan) break;

    const FloorplanResult fp =
        fp_cache != nullptr
            ? fp_cache->Query(schedule.RegionRequirements(),
                              options.floorplan)
            : FindFloorplan(instance.platform.Device(),
                            schedule.RegionRequirements(), options.floorplan);
    floorplanning_seconds += fp.seconds;
    if (fp.feasible) {
      schedule.floorplan = fp.rects;
      schedule.floorplan_checked = true;
      break;
    }
    RESCHED_LOG_INFO << "floorplan infeasible for " << schedule.regions.size()
                     << " regions (round " << round
                     << "); shrinking available resources by "
                     << options.shrink_factor;
    avail_cap = avail_cap.ScaledDown(options.shrink_factor);
  }

  schedule.algorithm = "PA";
  schedule.scheduling_seconds = scheduling_seconds;
  schedule.floorplanning_seconds = floorplanning_seconds;
  if (fp_cache != nullptr) {
    schedule.floorplan_cache = fp_cache->Stats().Since(stats_before);
  }
  return schedule;
}

}  // namespace resched
