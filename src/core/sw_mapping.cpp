// §V-F software task mapping.
//
// Software tasks are bound to processors in chronological (T_MIN) order;
// each goes to the core generating the least delay (Eq. 8 — with the min{}
// of the paper read as max{}: a delay is non-negative) and a serialization
// edge from the core's latest-ending task enforces the ordering, so Eq. (9)
// and the delay propagation of step 4 fall out of the window recomputation.
#include <algorithm>

#include "core/pa_state.hpp"

namespace resched::pa {

void RunSoftwareTaskMapping(const PaContext& ctx, PaScratch& s) {
  (void)ctx;
  const TaskGraph& graph = s.Inst().graph;
  const std::size_t cores = s.Inst().platform.NumProcessors();

  ArenaVec<TaskId>& sw_tasks = s.Buffers().sw_tasks;
  sw_tasks.clear();
  for (std::size_t ti = 0; ti < graph.NumTasks(); ++ti) {
    const auto t = static_cast<TaskId>(ti);
    if (!s.ChosenIsHardware(t)) sw_tasks.push_back(t);
  }
  {
    const TimeWindows& win = s.Timing().Windows();
    std::stable_sort(sw_tasks.begin(), sw_tasks.end(),
                     [&](TaskId a, TaskId b) {
                       return win.earliest_start[static_cast<std::size_t>(a)] <
                              win.earliest_start[static_cast<std::size_t>(b)];
                     });
  }

  // Latest-ending task per core, maintained incrementally.
  ArenaVec<TaskId>& last_on_core = s.Buffers().last_on_core;
  last_on_core.assign(cores, kInvalidTask);

  for (const TaskId t : sw_tasks) {
    const TimeWindows& win = s.Timing().Windows();
    const TimeT es_t = win.earliest_start[static_cast<std::size_t>(t)];

    // Eq. (8): lambda_p = max{0, max_{t2 in T_p}(T_END_t2 - T_MIN_t)}. With
    // chronological processing, the latest-ending task on the core attains
    // the inner max.
    std::size_t best_core = 0;
    TimeT best_delay = 0;
    for (std::size_t p = 0; p < cores; ++p) {
      TimeT delay = 0;
      if (last_on_core[p] != kInvalidTask) {
        const auto li = static_cast<std::size_t>(last_on_core[p]);
        const TimeT end_last =
            win.earliest_start[li] + s.Timing().ExecTime(last_on_core[p]);
        delay = std::max<TimeT>(0, end_last - es_t);
      }
      if (p == 0 || delay < best_delay) {
        best_core = p;
        best_delay = delay;
      }
      if (delay == 0) {
        // An idle-by-then core cannot be beaten; prefer the lowest index
        // for determinism.
        best_core = p;
        best_delay = 0;
        break;
      }
    }

    s.SetProcessor(t, best_core);
    if (last_on_core[best_core] != kInvalidTask) {
      // Eq. (9) + step 4: the ordering edge makes T_START = T_MIN +
      // lambda_p and propagates any delay through the window recomputation.
      s.Timing().AddOrderingEdge(last_on_core[best_core], t, /*gap=*/0);
    }
    last_on_core[best_core] = t;
  }
}

}  // namespace resched::pa
