// Build-once, instance-derived context shared by every PA restart.
//
// Everything the PA pipeline derives from the (instance, options) pair but
// NOT from the virtually available capacity is computed here exactly once
// and shared — read-only — by all worker threads of PA-R / PA-LS and by
// every round of PA's shrink loop:
//
//   * Eq.-(4) resource weights and the Eq.-(3) normalization horizon;
//   * the phase-A implementation selection (capacity never enters Eq. 3)
//     with the resulting execution times and communication-overhead gaps;
//   * the phase-B criticality snapshot (taken on the phase-A windows,
//     which do not depend on capacity either);
//   * the phase-C processing orders (critical by descending efficiency;
//     non-critical pre-sorted for each NonCriticalOrder policy);
//   * per-task CSR tables of hardware implementations with their Eq.-(3)
//     costs, replacing the allocating TaskGraph::HardwareImpls() calls on
//     the phase-D hot path.
//
// Ownership rules (DESIGN.md §8): a PaContext borrows the Instance and the
// PaOptions — both must outlive it. The options are read through the
// pointer on every restart, because PA-LS legitimately mutates
// `explicit_order` between iterations; everything *precomputed* here
// depends only on fields that callers never mutate mid-run.
#pragma once

#include <utility>
#include <vector>

#include "core/options.hpp"
#include "taskgraph/taskgraph.hpp"

namespace resched::pa {

class PaContext {
 public:
  PaContext(const Instance& instance, const PaOptions& options);

  const Instance& Inst() const { return *instance_; }
  const PaOptions& Options() const { return *options_; }
  std::size_t NumTasks() const { return initial_impl_.size(); }

  /// Eq. (4) weights against the *device* capacity (shrinking is a packing
  /// restriction, not a change of the device).
  const std::vector<double>& Weights() const { return weights_; }
  /// Eq. (3) normalization horizon (serial single-core lower bound).
  TimeT MaxT() const { return max_t_; }

  // ---- phase A/B precompute ---------------------------------------------
  const std::vector<std::size_t>& InitialImpls() const { return initial_impl_; }
  const std::vector<TimeT>& InitialExecTimes() const { return initial_exec_; }
  /// Non-zero communication gaps on base edges under the phase-A domains.
  const std::vector<std::pair<std::pair<TaskId, TaskId>, TimeT>>&
  InitialEdgeGaps() const {
    return initial_edge_gaps_;
  }
  /// Byte mask (1 = critical) — not vector<bool>: hot-path code indexes
  /// it per task and the byte form avoids the proxy/bit-extract cost.
  const std::vector<char>& InitialCriticalMask() const {
    return initial_critical_;
  }

  // ---- phase C processing orders ----------------------------------------
  /// Critical hardware tasks, by descending Eq.-(5) efficiency (stable).
  const std::vector<TaskId>& CriticalByEfficiency() const {
    return critical_eff_;
  }
  /// Non-critical hardware tasks in task-id order (kGraphOrder directly;
  /// kRandom shuffles a copy of this).
  const std::vector<TaskId>& NonCriticalById() const {
    return non_critical_ids_;
  }
  /// ... by descending efficiency (kEfficiency; kExplicit's tie-break base).
  const std::vector<TaskId>& NonCriticalByEfficiency() const {
    return non_critical_eff_;
  }
  /// ... by ascending phase-A execution time (kFastestFirst).
  const std::vector<TaskId>& NonCriticalByExecTime() const {
    return non_critical_fastest_;
  }

  // ---- hardware-implementation tables (CSR over task ids) ---------------
  std::size_t NumHwImpls(TaskId t) const {
    const auto ti = static_cast<std::size_t>(t);
    return hw_impl_off_[ti + 1] - hw_impl_off_[ti];
  }
  /// i-th hardware implementation index of `t` (i < NumHwImpls(t)).
  std::size_t HwImplIndex(TaskId t, std::size_t i) const {
    return hw_impl_idx_[hw_impl_off_[static_cast<std::size_t>(t)] + i];
  }
  /// Its Eq.-(3) cost under Weights()/MaxT().
  double HwImplCost(TaskId t, std::size_t i) const {
    return hw_impl_cost_[hw_impl_off_[static_cast<std::size_t>(t)] + i];
  }
  /// Cached TaskGraph::FastestSoftwareImpl.
  std::size_t FastestSoftwareImpl(TaskId t) const {
    return fastest_sw_[static_cast<std::size_t>(t)];
  }

 private:
  const Instance* instance_;
  const PaOptions* options_;

  std::vector<double> weights_;
  TimeT max_t_ = 0;

  std::vector<std::size_t> initial_impl_;
  std::vector<TimeT> initial_exec_;
  std::vector<std::pair<std::pair<TaskId, TaskId>, TimeT>> initial_edge_gaps_;
  std::vector<char> initial_critical_;

  std::vector<TaskId> critical_eff_;
  std::vector<TaskId> non_critical_ids_;
  std::vector<TaskId> non_critical_eff_;
  std::vector<TaskId> non_critical_fastest_;

  std::vector<std::size_t> hw_impl_off_;
  std::vector<std::size_t> hw_impl_idx_;
  std::vector<double> hw_impl_cost_;
  std::vector<std::size_t> fastest_sw_;
};

}  // namespace resched::pa
