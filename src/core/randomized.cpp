#include "core/randomized.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "core/pa_state.hpp"
#include "floorplan/floorplan_cache.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

namespace resched {

PaRResult SchedulePaR(const Instance& instance, const PaROptions& options,
                      FloorplanCache* cache) {
  RESCHED_CHECK_MSG(
      options.time_budget_seconds > 0.0 || options.max_iterations > 0,
      "PA-R needs a time budget or an iteration cap");
  RESCHED_CHECK_MSG(options.capacity_factor_lo > 0.0 &&
                        options.capacity_factor_lo <=
                            options.capacity_factor_hi &&
                        options.capacity_factor_hi <= 1.0,
                    "capacity factors must satisfy 0 < lo <= hi <= 1");
  instance.graph.Validate(instance.platform.Device());

  PaOptions inner = options.base;
  inner.ordering = NonCriticalOrder::kRandom;
  inner.run_floorplan = false;

  const ResourceVec full_cap = instance.platform.Device().Capacity();

  // Shared read-only context + shared concurrent feasibility cache: the
  // build-once half of the PR-4 hot path. An externally-owned cache (the
  // reschedd worker pool shares one per device across requests) takes
  // precedence over the per-call private one.
  const pa::PaContext ctx(instance, inner);
  std::optional<FloorplanCache> own_cache;
  if (cache == nullptr && options.base.floorplan_cache) {
    own_cache.emplace(instance.platform.Device());
    cache = &*own_cache;
  }

  const FloorplanCacheStats stats_before =
      cache != nullptr ? cache->Stats() : FloorplanCacheStats{};

  PaRResult result;
  Mutex best_mutex;
  TimeT best_makespan = kTimeInfinity;

  if (options.seed_with_deterministic) {
    PaOptions det = options.base;
    det.ordering = NonCriticalOrder::kEfficiency;
    det.run_floorplan = true;
    Schedule warm = SchedulePa(instance, det, cache, options.cancel);
    warm.algorithm = "PA-R";
    best_makespan = warm.makespan;
    result.best = std::move(warm);
    result.found = true;
    if (options.record_trace) {
      result.trace.push_back(TracePoint{0.0, best_makespan, 0});
    }
  }

  // The budget governs the randomized multi-start itself: the deterministic
  // warm start above is a fixed cost paid before the clock starts. This also
  // guarantees every worker gets at least one restart attempt even when the
  // warm start is slow (sanitizer builds run it ~10x slower).
  const Deadline deadline(options.time_budget_seconds);
  std::atomic<std::size_t> tickets{0};
  std::atomic<std::size_t> completed{0};

  auto worker = [&]() {
    // Steady-state reuse: one scratch and one candidate per worker, both
    // recycled across every restart this worker executes.
    std::optional<pa::PaScratch> scratch;
    if (options.reuse_scratch) scratch.emplace(ctx);
    Schedule candidate;

    for (;;) {
      if (deadline.Expired()) break;
      // Cooperative cancellation: drain quietly here; the calling thread
      // turns the fired token into a CancelledError after the join (an
      // exception must not escape a worker thread).
      if (options.cancel != nullptr && options.cancel->Cancelled()) break;
      const std::size_t iter = tickets.fetch_add(1) + 1;
      if (options.max_iterations != 0 && iter > options.max_iterations) break;

      // Per-iteration stream: candidate `iter` is the same schedule no
      // matter which worker draws the ticket, making the candidate set —
      // and the best makespan — independent of the thread count.
      Rng rng(DeriveSeed(kParSeedStream ^ options.seed, iter));
      const double factor = rng.UniformDouble(options.capacity_factor_lo,
                                              options.capacity_factor_hi);
      const ResourceVec avail_cap = full_cap.ScaledDown(factor);
      if (options.reuse_scratch) {
        RunPaCore(ctx, *scratch, avail_cap, rng, candidate);
      } else {
        candidate = RunPaCore(instance, inner, avail_cap, rng);
      }
      const std::size_t done_now = completed.fetch_add(1) + 1;

      // Fast path: not an improvement, skip the floorplanner entirely.
      {
        MutexLock lock(best_mutex);
        if (candidate.makespan >= best_makespan) continue;
      }

      // Potential improvement: validate on the fabric (outside the lock).
      const FloorplanResult fp =
          cache != nullptr ? cache->Query(candidate.RegionRequirements(),
                                          inner.floorplan)
                           : FindFloorplan(instance.platform.Device(),
                                           candidate.RegionRequirements(),
                                           inner.floorplan);
      if (!fp.feasible) continue;

      MutexLock lock(best_mutex);
      if (candidate.makespan >= best_makespan) continue;  // raced: recheck
      best_makespan = candidate.makespan;
      candidate.floorplan = fp.rects;
      candidate.floorplan_checked = true;
      candidate.algorithm = "PA-R";
      result.best = std::move(candidate);
      result.found = true;
      if (options.record_trace) {
        // Grows only on improvements — cold by definition.
        result.trace.push_back(  // resched-lint: allow(reserve-before-push-hot)
            TracePoint{deadline.ElapsedSeconds(), best_makespan, done_now});
      }
    }
  };

  if (options.threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(options.threads);
    for (std::size_t w = 0; w < options.threads; ++w) {
      threads.emplace_back(worker);
    }
    for (auto& t : threads) t.join();
  }

  // Surface a fired token as CancelledError only from the calling thread,
  // after every worker has drained.
  if (options.cancel != nullptr) options.cancel->ThrowIfCancelled();

  // Workers append improvements in acceptance order, which under
  // contention is not elapsed-time order; Fig. 6 wants a time-monotone
  // staircase.
  std::stable_sort(result.trace.begin(), result.trace.end(),
                   [](const TracePoint& a, const TracePoint& b) {
                     return a.seconds < b.seconds;
                   });

  result.iterations = completed.load();
  result.seconds = deadline.ElapsedSeconds();
  if (cache != nullptr) {
    // Delta, not totals: an externally-shared cache carries counters from
    // other requests.
    result.floorplan_cache = cache->Stats().Since(stats_before);
    if (result.found) result.best.floorplan_cache = result.floorplan_cache;
  }
  if (result.found) {
    result.best.scheduling_seconds = result.seconds;
  }
  return result;
}

}  // namespace resched
