// §V-C regions definition.
//
// Hardware tasks are processed critical-first and, within each class, by
// descending efficiency index (Eq. 5) — or in the order selected by
// PaOptions::ordering for non-critical tasks (the PA-R randomization point,
// §VI). Critical tasks prefer joining an existing region (lowest-bitstream
// one whose windows leave room for the reconfiguration), then a fresh
// region, then fall back to software. Non-critical tasks prefer a fresh
// region (maximize fabric utilization), then an existing one, then
// software.
//
// The class split and the base orders are precomputed in PaContext (they
// depend only on the phase-A selection); this stage copies the order that
// the active policy asks for into scratch buffers and applies it.
#include <algorithm>

#include "core/cost_model.hpp"
#include "core/pa_state.hpp"

namespace resched::pa {

namespace {

/// Picks, among regions that can host (t, impl), the one with the smallest
/// bitstream (== smallest reconfiguration time); returns -1 when none.
/// Under the module-reuse extension, regions where the insertion lands
/// right after a same-module task rank first regardless of bitstream — the
/// reconfiguration there costs nothing at all.
int PickSmallestBitstreamRegion(const PaScratch& s, TaskId t,
                                std::size_t impl_index,
                                bool require_reconf_room) {
  int best = -1;
  bool best_free = false;
  double best_bits = 0.0;
  const auto& device = s.Inst().platform.Device();
  for (std::size_t r = 0; r < s.NumRegions(); ++r) {
    if (!s.CanHost(r, t, impl_index, require_reconf_room)) continue;
    const bool free = s.WouldAvoidReconf(r, t, impl_index);
    const double bits = device.BitstreamBits(s.Region(r).res);
    const bool better =
        best < 0 || (free && !best_free) ||
        (free == best_free && bits < best_bits);
    if (better) {
      best = static_cast<int>(r);
      best_free = free;
      best_bits = bits;
    }
  }
  return best;
}

}  // namespace

void RunRegionsDefinition(const PaContext& ctx, PaScratch& s, Rng& rng) {
  StageBuffers& buf = s.Buffers();

  // Critical tasks always go by descending efficiency, as in the paper.
  ArenaVec<TaskId>& critical = buf.critical;
  critical.assign(ctx.CriticalByEfficiency().begin(),
                  ctx.CriticalByEfficiency().end());

  ArenaVec<TaskId>& non_critical = buf.non_critical;
  switch (s.Options().ordering) {
    case NonCriticalOrder::kEfficiency:
      non_critical.assign(ctx.NonCriticalByEfficiency().begin(),
                          ctx.NonCriticalByEfficiency().end());
      break;
    case NonCriticalOrder::kRandom:
      // The shuffle starts from the id-ordered list, matching the
      // pre-context behavior bit for bit.
      non_critical.assign(ctx.NonCriticalById().begin(),
                          ctx.NonCriticalById().end());
      rng.Shuffle(non_critical);
      break;
    case NonCriticalOrder::kFastestFirst:
      non_critical.assign(ctx.NonCriticalByExecTime().begin(),
                          ctx.NonCriticalByExecTime().end());
      break;
    case NonCriticalOrder::kGraphOrder:
      non_critical.assign(ctx.NonCriticalById().begin(),
                          ctx.NonCriticalById().end());
      break;
    case NonCriticalOrder::kExplicit: {
      // Position in the caller-supplied permutation; unlisted tasks keep
      // their efficiency order after all listed ones. The permutation is
      // re-read from the options every restart — PA-LS mutates it.
      const std::size_t n = ctx.NumTasks();
      ArenaVec<std::size_t>& pos = buf.explicit_pos;
      pos.assign(n, SIZE_MAX);
      for (std::size_t i = 0; i < s.Options().explicit_order.size(); ++i) {
        const TaskId t = s.Options().explicit_order[i];
        RESCHED_CHECK_MSG(t >= 0 && static_cast<std::size_t>(t) < n,
                          "explicit_order contains an unknown task id");
        pos[static_cast<std::size_t>(t)] = i;
      }
      non_critical.assign(ctx.NonCriticalByEfficiency().begin(),
                          ctx.NonCriticalByEfficiency().end());
      std::stable_sort(non_critical.begin(), non_critical.end(),
                       [&pos](TaskId a, TaskId b) {
                         return pos[static_cast<std::size_t>(a)] <
                                pos[static_cast<std::size_t>(b)];
                       });
      break;
    }
  }

  // ---- critical tasks: reuse -> create -> software ----------------------
  for (const TaskId t : critical) {
    const std::size_t impl = s.ImplIndex(t);
    const int reuse =
        PickSmallestBitstreamRegion(s, t, impl,
                                    /*require_reconf_room=*/true);
    if (reuse >= 0) {
      s.AssignToRegion(static_cast<std::size_t>(reuse), t);
      continue;
    }
    if (s.HasFreeCapacity(s.ChosenImpl(t).res)) {
      s.CreateRegionFor(t);
      continue;
    }
    s.SwitchToSoftware(t);
  }

  // ---- non-critical tasks: create -> reuse -> software ------------------
  for (const TaskId t : non_critical) {
    if (s.HasFreeCapacity(s.ChosenImpl(t).res)) {
      s.CreateRegionFor(t);
      continue;
    }
    const std::size_t impl = s.ImplIndex(t);
    const int reuse =
        PickSmallestBitstreamRegion(s, t, impl,
                                    /*require_reconf_room=*/false);
    if (reuse >= 0) {
      s.AssignToRegion(static_cast<std::size_t>(reuse), t);
      continue;
    }
    s.SwitchToSoftware(t);
  }
}

}  // namespace resched::pa
