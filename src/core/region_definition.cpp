// §V-C regions definition.
//
// Hardware tasks are processed critical-first and, within each class, by
// descending efficiency index (Eq. 5) — or in the order selected by
// PaOptions::ordering for non-critical tasks (the PA-R randomization point,
// §VI). Critical tasks prefer joining an existing region (lowest-bitstream
// one whose windows leave room for the reconfiguration), then a fresh
// region, then fall back to software. Non-critical tasks prefer a fresh
// region (maximize fabric utilization), then an existing one, then
// software.
#include <algorithm>

#include "core/cost_model.hpp"
#include "core/pa_state.hpp"

namespace resched::pa {

namespace {

/// Picks, among regions that can host (t, impl), the one with the smallest
/// bitstream (== smallest reconfiguration time); returns -1 when none.
/// Under the module-reuse extension, regions where the insertion lands
/// right after a same-module task rank first regardless of bitstream — the
/// reconfiguration there costs nothing at all.
int PickSmallestBitstreamRegion(const PaState& state, TaskId t,
                                std::size_t impl_index,
                                bool require_reconf_room) {
  int best = -1;
  bool best_free = false;
  double best_bits = 0.0;
  const auto& device = state.Inst().platform.Device();
  for (std::size_t s = 0; s < state.Regions().size(); ++s) {
    if (!state.CanHost(s, t, impl_index, require_reconf_room)) continue;
    const bool free = state.WouldAvoidReconf(s, t, impl_index);
    const double bits = device.BitstreamBits(state.Regions()[s].res);
    const bool better =
        best < 0 || (free && !best_free) ||
        (free == best_free && bits < best_bits);
    if (better) {
      best = static_cast<int>(s);
      best_free = free;
      best_bits = bits;
    }
  }
  return best;
}

}  // namespace

void RunRegionsDefinition(PaState& state, Rng& rng) {
  const TaskGraph& graph = state.Inst().graph;
  const std::vector<double>& weights = state.Weights();

  // Hardware tasks (per the phase-A selection), split by phase-B
  // criticality.
  std::vector<TaskId> critical;
  std::vector<TaskId> non_critical;
  for (std::size_t ti = 0; ti < graph.NumTasks(); ++ti) {
    const auto t = static_cast<TaskId>(ti);
    if (!state.ChosenIsHardware(t)) continue;
    (state.WasCritical(t) ? critical : non_critical).push_back(t);
  }

  auto efficiency_desc = [&](TaskId a, TaskId b) {
    return EfficiencyIndex(state.ChosenImpl(a), weights) >
           EfficiencyIndex(state.ChosenImpl(b), weights);
  };
  std::stable_sort(critical.begin(), critical.end(), efficiency_desc);

  switch (state.Options().ordering) {
    case NonCriticalOrder::kEfficiency:
      std::stable_sort(non_critical.begin(), non_critical.end(),
                       efficiency_desc);
      break;
    case NonCriticalOrder::kRandom:
      rng.Shuffle(non_critical);
      break;
    case NonCriticalOrder::kFastestFirst:
      std::stable_sort(non_critical.begin(), non_critical.end(),
                       [&](TaskId a, TaskId b) {
                         return state.ChosenImpl(a).exec_time <
                                state.ChosenImpl(b).exec_time;
                       });
      break;
    case NonCriticalOrder::kGraphOrder:
      break;  // already in task-id order
    case NonCriticalOrder::kExplicit: {
      // Position in the caller-supplied permutation; unlisted tasks keep
      // their efficiency order after all listed ones.
      std::vector<std::size_t> pos(graph.NumTasks(), SIZE_MAX);
      for (std::size_t i = 0; i < state.Options().explicit_order.size();
           ++i) {
        const TaskId t = state.Options().explicit_order[i];
        RESCHED_CHECK_MSG(
            t >= 0 && static_cast<std::size_t>(t) < graph.NumTasks(),
            "explicit_order contains an unknown task id");
        pos[static_cast<std::size_t>(t)] = i;
      }
      std::stable_sort(non_critical.begin(), non_critical.end(),
                       efficiency_desc);
      std::stable_sort(non_critical.begin(), non_critical.end(),
                       [&pos](TaskId a, TaskId b) {
                         return pos[static_cast<std::size_t>(a)] <
                                pos[static_cast<std::size_t>(b)];
                       });
      break;
    }
  }

  // ---- critical tasks: reuse -> create -> software ----------------------
  for (const TaskId t : critical) {
    const std::size_t impl = state.ImplIndex(t);
    const int reuse =
        PickSmallestBitstreamRegion(state, t, impl,
                                    /*require_reconf_room=*/true);
    if (reuse >= 0) {
      state.AssignToRegion(static_cast<std::size_t>(reuse), t);
      continue;
    }
    if (state.HasFreeCapacity(state.ChosenImpl(t).res)) {
      state.CreateRegionFor(t);
      continue;
    }
    state.SwitchToSoftware(t);
  }

  // ---- non-critical tasks: create -> reuse -> software ------------------
  for (const TaskId t : non_critical) {
    if (state.HasFreeCapacity(state.ChosenImpl(t).res)) {
      state.CreateRegionFor(t);
      continue;
    }
    const std::size_t impl = state.ImplIndex(t);
    const int reuse =
        PickSmallestBitstreamRegion(state, t, impl,
                                    /*require_reconf_room=*/false);
    if (reuse >= 0) {
      state.AssignToRegion(static_cast<std::size_t>(reuse), t);
      continue;
    }
    state.SwitchToSoftware(t);
  }
}

}  // namespace resched::pa
