// PA-LS: local search over the regions-definition processing order.
//
// PA-R explores orderings by independent random restarts; PA-LS instead
// walks a neighborhood: starting from the efficiency-index order (PA's
// choice), it repeatedly proposes a mutated (order, capacity-factor) pair
// — a random transposition, a small segment reversal, or a capacity
// nudge — reruns the PA core, and accepts first improvements. After
// `stall_limit` consecutive rejected proposals the walk restarts from a
// fresh random order (keeping the incumbent). Like PA-R, candidates are
// floorplan-checked only when they improve the incumbent, and the search
// is warm-started with the deterministic PA schedule.
//
// This is an extension beyond the paper — §VI explicitly leaves "finding
// the best ordering" open; PA-LS is the natural next step after random
// restarts, and `bench/ext_local_search` measures whether the structure
// of the ordering space rewards locality.
#pragma once

#include "core/pa_scheduler.hpp"
#include "core/randomized.hpp"

namespace resched {

struct PaLsOptions {
  double time_budget_seconds = 1.0;
  /// Proposal cap; 0 = unbounded (budget-limited only).
  std::size_t max_iterations = 0;
  std::uint64_t seed = 1;
  /// Consecutive rejected proposals before a random restart.
  std::size_t stall_limit = 40;
  PaOptions base;  ///< ordering/explicit_order are managed internally
  double capacity_factor_lo = 0.70;
  double capacity_factor_hi = 1.0;
  bool seed_with_deterministic = true;
  bool record_trace = false;
};

/// Result mirrors PA-R's.
PaRResult SchedulePaLs(const Instance& instance, const PaLsOptions& options);

}  // namespace resched
