// Append-only JSONL request journal + offline replay.
//
// Every accepted line and every emitted response is recorded, making a
// serving session reproducible after the fact:
//
//   {"journal":"meta","protocol":1,"build":{...}}          // once, on open
//   {"journal":"request","id":"r1","line":"<raw request>"}
//   {"journal":"response","id":"r1","line":"<response line>"}
//
// Replay re-submits every *deterministic* schedule/simulate request whose
// original response was ok to a fresh single-worker in-process server
// (original ids pinned, deadlines stripped — wall-clock concerns do not
// replay) and byte-compares the responses. Budgeted (nondeterministic)
// requests, control verbs and rejected/cancelled requests are skipped:
// their responses legitimately depend on timing and server state.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "util/mutex.hpp"

namespace resched::service {

class Journal {
 public:
  /// Opens `path` for appending; throws InstanceError on failure.
  explicit Journal(const std::string& path);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  void AppendRequest(const std::string& id, const std::string& raw_line);
  void AppendResponse(const std::string& id, const std::string& response_line);

 private:
  void AppendLine(const std::string& line) RESCHED_EXCLUDES(mu_);

  Mutex mu_;
  std::ofstream out_ RESCHED_GUARDED_BY(mu_);
};

struct ReplayOutcome {
  std::size_t requests = 0;    ///< request records in the journal
  std::size_t replayed = 0;    ///< re-executed and compared
  std::size_t matched = 0;     ///< byte-identical responses
  std::size_t mismatched = 0;
  std::size_t skipped = 0;     ///< nondeterministic / control / errored
  std::vector<std::string> mismatched_ids;

  bool ok() const { return mismatched == 0; }
};

/// Replays the journal at `path`; throws InstanceError when the file is
/// unreadable or not a journal.
ReplayOutcome ReplayJournal(const std::string& path);

}  // namespace resched::service
