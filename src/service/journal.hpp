// Append-only request journal + recovery scan + offline replay.
//
// v2 on-disk format — one framed record per line:
//
//   #v2 <len> <crc32c-hex8> <payload>\n
//
// where <len> is the payload byte count (decimal) and the checksum is
// CRC32C over the payload. The payload is the same JSON record family v1
// wrote as bare lines (which remain readable — a journal may mix both):
//
//   {"journal":"meta","protocol":1,"build":{...}}          // once per open
//   {"journal":"request","id":"r1","line":"<raw request>"}
//   {"journal":"response","id":"r1","line":"<response line>",
//    "served":"exec|cache|dedup|error|control"}            // v2 only
//
// The framing exists for exactly one failure: a crash (power cut, kill -9,
// ENOSPC) landing mid-append. The opening recovery scan walks the file,
// validates every frame, and distinguishes a *torn tail* (the trailing
// bytes fail to parse and nothing valid follows — expected after a crash;
// truncated away and reported) from *interior corruption* (a bad record
// with valid records after it — bit rot or foreign writes; refused with
// JournalError, because silently dropping interior records would fake
// history).
//
// Durability is an explicit policy, not an accident of libc buffering:
// kNone never fsyncs (fastest; a crash can lose OS-buffered records — the
// scan still recovers a consistent prefix), kBatch fsyncs every
// kBatchSyncInterval appends, kAlways fsyncs per record (a journaled
// response survives any subsequent crash, which is what the warm-start
// dedup contract leans on).
//
// Replay re-submits every *deterministic* schedule/simulate request whose
// original response was ok to a fresh single-worker in-process server
// (original ids pinned, deadlines stripped — wall-clock concerns do not
// replay) and byte-compares the responses. Budgeted (nondeterministic)
// requests, control verbs and rejected/cancelled requests are skipped:
// their responses legitimately depend on timing and server state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.hpp"
#include "util/mutex.hpp"

namespace resched::service {

/// A structured journal failure: open/write/fsync errors (disk full, short
/// writes that never complete, permission) and interior corruption.
/// Derives from InstanceError so pre-v2 catch sites keep working.
class JournalError : public InstanceError {
 public:
  explicit JournalError(const std::string& message) : InstanceError(message) {}
};

/// When appended records are pushed through fsync. See the header comment
/// for what each policy survives.
enum class JournalSync { kNone, kBatch, kAlways };

/// Parses "none" | "batch" | "always"; throws JournalError otherwise.
JournalSync ParseJournalSync(const std::string& text);

/// kBatch calls fsync once per this many appends (and on close).
inline constexpr std::size_t kBatchSyncInterval = 16;

/// One record recovered by the scan, independent of on-disk framing.
struct JournalRecord {
  std::string kind;    ///< "meta" | "request" | "response"
  std::string id;      ///< empty for meta
  std::string line;    ///< the journaled raw request / response line
  std::string served;  ///< response source tag; empty on v1 records
  int version = 2;     ///< 1 = bare JSONL line, 2 = framed
};

/// Result of walking a journal byte stream front to back.
struct JournalScan {
  std::vector<JournalRecord> records;
  std::uint64_t valid_bytes = 0;  ///< prefix that parsed cleanly
  std::uint64_t torn_bytes = 0;   ///< trailing bytes dropped as torn
  std::size_t v1_records = 0;
  std::size_t v2_records = 0;
  bool saw_meta = false;
};

/// Frames `payload` as a v2 journal line (terminating newline included).
/// Exposed so tests can hand-craft journals byte by byte.
std::string FrameRecordV2(std::string_view payload);

/// Walks `text` front to back. Returns the parsed records plus how many
/// trailing bytes were torn. Throws JournalError on interior corruption
/// (a bad record with valid records after it).
JournalScan ScanJournalText(std::string_view text);

/// ScanJournalText over the file at `path`; with `truncate_torn`, a torn
/// tail is cut off on disk (ftruncate) so the next append starts at a
/// record boundary. Throws JournalError when the file cannot be read (a
/// missing file is an error here — callers that treat ENOENT as "fresh
/// boot" check existence first).
JournalScan ScanJournalFile(const std::string& path, bool truncate_torn);

class Journal {
 public:
  /// What the opening recovery scan found (all zero on a fresh file).
  struct OpenReport {
    std::uint64_t valid_bytes = 0;
    std::uint64_t torn_bytes = 0;  ///< bytes truncated from the tail
    std::size_t records = 0;       ///< whole records already present
  };

  /// Opens `path` for appending in v2 framing. An existing file is
  /// recovery-scanned first: a torn tail is truncated (see Report()),
  /// interior corruption throws. Throws JournalError on open failure.
  explicit Journal(const std::string& path,
                   JournalSync sync = JournalSync::kBatch);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  void AppendRequest(const std::string& id, const std::string& raw_line);
  /// `served` records where the response came from: "exec" (a worker ran
  /// the scheduler), "cache" (result cache), "dedup" (replayed for a
  /// duplicate id), "error", "control". The chaos harness asserts at most
  /// one "exec" per id across a journal's whole crash/restart history.
  void AppendResponse(const std::string& id, const std::string& response_line,
                      const std::string& served);

  /// Forces buffered records to disk regardless of policy (used on
  /// graceful shutdown). Throws JournalError on fsync failure.
  void Sync() RESCHED_EXCLUDES(mu_);

  const OpenReport& Report() const { return report_; }

 private:
  void AppendPayload(const std::string& payload) RESCHED_EXCLUDES(mu_);

  const std::string path_;
  const JournalSync sync_;
  OpenReport report_;
  Mutex mu_;
  int fd_ RESCHED_GUARDED_BY(mu_) = -1;
  std::size_t appends_since_sync_ RESCHED_GUARDED_BY(mu_) = 0;
};

struct ReplayOutcome {
  std::size_t requests = 0;    ///< request records in the journal
  std::size_t replayed = 0;    ///< re-executed and compared
  std::size_t matched = 0;     ///< byte-identical responses
  std::size_t mismatched = 0;
  std::size_t skipped = 0;     ///< nondeterministic / control / errored
  std::uint64_t torn_bytes = 0;  ///< tail bytes the scan dropped
  std::vector<std::string> mismatched_ids;

  bool ok() const { return mismatched == 0; }
};

/// Replays the journal at `path` (v1, v2 or mixed; a torn tail is skipped
/// and reported, interior corruption throws). Throws InstanceError when
/// the file is unreadable or not a journal.
ReplayOutcome ReplayJournal(const std::string& path);

}  // namespace resched::service
