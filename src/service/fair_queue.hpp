// Per-tenant weighted-fair admission queue (deficit round-robin).
//
// The single BoundedQueue gave reschedd backpressure but no isolation: a
// chatty tenant that keeps the FIFO full both starves other tenants'
// queue positions and eats the whole capacity budget, so a quiet
// tenant's p99 queue wait grows with the *aggressor's* backlog. This
// queue gives every tenant its own FIFO with its own capacity, and
// workers pop via deficit round-robin:
//
//   * each tenant has a weight w (quantum); when its turn comes its
//     deficit is recharged to w and it dequeues up to w requests (unit
//     cost per request — admission cost is per message, the heavy
//     per-request work is bounded separately by in-flight caps) before
//     the turn passes on;
//   * a tenant whose queue empties leaves the ring and re-enters at the
//     back on its next push, so idle tenants cost nothing;
//   * a tenant at its in-flight cap is skipped (its turn is deferred, not
//     consumed) until OnDone() releases a slot.
//
// Fairness invariant: over any interval in which tenants A and B are both
// continuously backlogged and below their in-flight caps, the number of
// requests dequeued for A and B is proportional to their weights, within
// one quantum. One tenant's backlog therefore cannot delay another
// tenant's head-of-line request by more than (sum of other tenants'
// weights) requests per round.
//
// Single-tenant degeneration: with only kDefaultTenant active, TryPush /
// Pop behave exactly like BoundedQueue with the same capacity (FIFO, same
// rejection outcomes) — old clients observe bit-identical admission.
//
// Close() has the same drain semantics as BoundedQueue, including the
// expired-first drain handoff (see admission.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "service/admission.hpp"
#include "util/mutex.hpp"

namespace resched::service {

struct FairQueueOptions {
  /// Queue capacity per tenant (the old global queue_capacity, now an
  /// isolation boundary: one tenant's backlog cannot consume another's
  /// admission budget).
  std::size_t per_tenant_capacity = 64;
  /// Max requests per tenant popped-but-not-yet-OnDone'd. 0 = unlimited.
  std::size_t per_tenant_inflight = 0;
  /// Tenant name -> DRR weight (quantum). Unlisted tenants get
  /// default_weight. Weight 0 entries are clamped to 1.
  std::map<std::string, std::uint32_t> weights;
  std::uint32_t default_weight = 1;
};

template <typename T>
class WeightedFairQueue {
 public:
  explicit WeightedFairQueue(FairQueueOptions options)
      : options_(std::move(options)) {
    if (options_.default_weight == 0) options_.default_weight = 1;
  }

  WeightedFairQueue(const WeightedFairQueue&) = delete;
  WeightedFairQueue& operator=(const WeightedFairQueue&) = delete;

  /// Non-blocking admission into `tenant`'s queue; same outcome contract
  /// as BoundedQueue::TryPush, with kFull now meaning *this tenant's*
  /// capacity is exhausted (per-tenant overload rejection).
  PushOutcome TryPush(const std::string& tenant, T item)
      RESCHED_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return PushOutcome::kClosed;
      Tenant& t = State(tenant);
      if (t.items.size() >= options_.per_tenant_capacity) {
        return PushOutcome::kFull;
      }
      t.items.push_back(std::move(item));
      if (!t.in_ring) {
        ring_.push_back(tenant);
        t.in_ring = true;
        t.deficit = 0;  // recharged when its turn arrives
      }
      ++size_;
    }
    cv_.NotifyOne();
    return PushOutcome::kAccepted;
  }

  /// Installs the drain-expiry probe (see BoundedQueue::SetExpiryProbe).
  void SetExpiryProbe(std::function<bool(const T&)> probe)
      RESCHED_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    expiry_probe_ = std::move(probe);
  }

  /// Blocks for the next item under DRR order; false once closed and
  /// drained. During drain, already-expired items (per the probe) are
  /// handed out first and flagged, bypassing in-flight caps — shedding
  /// does not execute work, so it must never wait behind a cap.
  bool Pop(T& out, bool* expired_in_drain = nullptr) RESCHED_EXCLUDES(mu_) {
    if (expired_in_drain != nullptr) *expired_in_drain = false;
    MutexLock lock(mu_);
    for (;;) {
      if (closed_ && expiry_probe_ && size_ > 0) {
        if (PopExpiredLocked(out)) {
          if (expired_in_drain != nullptr) *expired_in_drain = true;
          return true;
        }
      }
      if (PopRoundRobinLocked(out)) return true;
      if (closed_ && size_ == 0) return false;
      // Empty, or every backlogged tenant is at its in-flight cap: wait
      // for a push, an OnDone, or Close.
      cv_.Wait(lock);
    }
  }

  /// Releases one of `tenant`'s in-flight slots. Every successful Pop
  /// must be matched by exactly one OnDone with the item's tenant.
  void OnDone(const std::string& tenant) RESCHED_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      Tenant& t = State(tenant);
      if (t.inflight > 0) --t.inflight;
    }
    cv_.NotifyAll();  // a capped tenant may have become eligible
  }

  /// Stops admission and wakes every blocked Pop(); already-admitted
  /// items drain (expired-first, see Pop). Idempotent.
  void Close() RESCHED_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  std::size_t Size() const RESCHED_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return size_;
  }

  /// Queue depth per currently-known tenant (for the stats verb).
  std::map<std::string, std::size_t> Depths() const RESCHED_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::map<std::string, std::size_t> out;
    for (const auto& [name, t] : tenants_) out[name] = t.items.size();
    return out;
  }

  std::size_t Capacity() const { return options_.per_tenant_capacity; }

 private:
  struct Tenant {
    std::deque<T> items;
    std::uint32_t weight = 1;
    std::uint32_t deficit = 0;
    std::size_t inflight = 0;
    bool in_ring = false;
  };

  Tenant& State(const std::string& tenant) RESCHED_REQUIRES(mu_) {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      Tenant t;
      const auto w = options_.weights.find(tenant);
      t.weight = (w != options_.weights.end() && w->second > 0)
                     ? w->second
                     : options_.default_weight;
      it = tenants_.emplace(tenant, std::move(t)).first;
    }
    return it->second;
  }

  /// First expired item across all tenants, in deterministic (sorted
  /// tenant name, then FIFO) order.
  bool PopExpiredLocked(T& out) RESCHED_REQUIRES(mu_) {
    for (auto& [name, t] : tenants_) {
      for (auto it = t.items.begin(); it != t.items.end(); ++it) {
        if (expiry_probe_(*it)) {
          out = std::move(*it);
          t.items.erase(it);
          --size_;
          ++t.inflight;  // matched by the caller's OnDone
          if (t.items.empty()) RemoveFromRing(name, t);
          return true;
        }
      }
    }
    return false;
  }

  /// One DRR dequeue attempt. Tenants at their in-flight cap are skipped
  /// without consuming their turn; false when nothing is eligible.
  bool PopRoundRobinLocked(T& out) RESCHED_REQUIRES(mu_) {
    const std::size_t cap = options_.per_tenant_inflight;
    for (std::size_t scanned = 0; scanned < ring_.size(); ++scanned) {
      const std::string& name = ring_.front();
      Tenant& t = tenants_.at(name);
      if (cap != 0 && t.inflight >= cap) {
        // Deferred, not consumed: move behind the others and keep looking.
        ring_.push_back(name);
        ring_.pop_front();
        continue;
      }
      if (t.deficit == 0) t.deficit = t.weight;  // turn starts: recharge
      out = std::move(t.items.front());
      t.items.pop_front();
      --size_;
      --t.deficit;
      ++t.inflight;
      if (t.items.empty()) {
        RemoveFromRing(name, t);
      } else if (t.deficit == 0) {
        // Quantum spent: to the back of the ring.
        ring_.push_back(name);
        ring_.pop_front();
      }
      return true;
    }
    return false;
  }

  void RemoveFromRing(const std::string& name, Tenant& t)
      RESCHED_REQUIRES(mu_) {
    for (auto it = ring_.begin(); it != ring_.end(); ++it) {
      if (*it == name) {
        ring_.erase(it);
        break;
      }
    }
    t.in_ring = false;
    t.deficit = 0;
  }

  mutable Mutex mu_;
  CondVar cv_;
  FairQueueOptions options_;
  std::map<std::string, Tenant> tenants_ RESCHED_GUARDED_BY(mu_);
  /// Round-robin order over tenants with queued items (front = next turn).
  std::deque<std::string> ring_ RESCHED_GUARDED_BY(mu_);
  std::size_t size_ RESCHED_GUARDED_BY(mu_) = 0;
  bool closed_ RESCHED_GUARDED_BY(mu_) = false;
  std::function<bool(const T&)> expiry_probe_ RESCHED_GUARDED_BY(mu_);
};

}  // namespace resched::service
