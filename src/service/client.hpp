// Resilient reschedd client: reconnect + idempotent resubmission.
//
// A client that loses its connection mid-request cannot tell a crashed
// daemon from a slow one, or a lost request from a lost *response*. The
// only safe recovery is to reconnect and resubmit the same line — which is
// exactly what the server's id-keyed dedup ledger makes idempotent: a
// finished id is re-answered from recorded history ("dedup", bit-identical
// body), an in-flight id is not executed twice, and an id the server never
// saw is executed once. The client therefore requires an explicit request
// id before it will retry; a line without one gets a single attempt.
//
// Reconnection uses capped exponential backoff (initial * multiplier^k,
// clamped to the cap) so a hundred clients hammering a restarting daemon
// back off instead of thundering.
//
// Two endpoint kinds share the retry machinery: unix-domain sockets speak
// the newline protocol, TCP endpoints speak RSF frames (see framing.hpp).
// The protocol payload is identical either way — a frame carries exactly
// one line, minus its trailing newline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "service/framing.hpp"
#include "util/socket.hpp"

namespace resched::service {

struct ClientOptions {
  /// Total submission attempts (first try + retries) before giving up.
  std::size_t max_attempts = 5;
  double backoff_initial_ms = 20.0;
  double backoff_max_ms = 1000.0;  ///< cap on any single sleep
  double backoff_multiplier = 2.0;
  /// Backoff sleep hook (milliseconds). Defaults to a real sleep; tests
  /// substitute a recorder to assert the capped-exponential sequence
  /// without wall-clock time.
  std::function<void(double)> sleep_fn;
};

/// Where the daemon lives: a unix-domain socket path (line protocol) or a
/// TCP host:port (framed protocol).
struct ClientEndpoint {
  static ClientEndpoint Unix(std::string path);
  static ClientEndpoint Tcp(std::string host, std::uint16_t port);

  bool tcp = false;
  std::string path;  ///< unix only
  std::string host;  ///< tcp only
  std::uint16_t port = 0;

  std::string Describe() const;  ///< for error messages
};

class RescheddClient {
 public:
  explicit RescheddClient(std::string socket_path, ClientOptions options = {});
  explicit RescheddClient(ClientEndpoint endpoint, ClientOptions options = {});

  RescheddClient(const RescheddClient&) = delete;
  RescheddClient& operator=(const RescheddClient&) = delete;

  struct Result {
    std::string response;   ///< matched response line (id included)
    std::string handshake;  ///< greeting from the serving connection
    std::size_t attempts = 0;
    std::size_t reconnects = 0;
  };

  /// Submits one request line and blocks for the response whose id matches
  /// the line's id. On a connection failure the line is resubmitted over a
  /// fresh connection (safe — see header) up to max_attempts, after which
  /// the last SocketError propagates. A line with no parsable id is sent
  /// at most once.
  Result Submit(const std::string& line);

 private:
  /// One connect + send + match cycle; false when the connection died
  /// (caller backs off and retries).
  bool Attempt(const std::string& line, const std::string& id, Result& result);

  /// Reads the next protocol line from the live connection, via the line
  /// reader (unix) or the frame reader (tcp). False on EOF or torn frame.
  bool ReadLine(std::string& out);

  /// Sends one protocol line: newline-terminated raw bytes (unix) or one
  /// RSF frame (tcp). False when the peer is gone.
  bool SendLine(const std::string& line);

  const ClientEndpoint endpoint_;
  const ClientOptions options_;
  std::unique_ptr<StreamSocket> socket_;
  std::unique_ptr<SocketLineReader> reader_;  ///< unix mode
  std::unique_ptr<FrameReader> framer_;       ///< tcp mode
};

}  // namespace resched::service
