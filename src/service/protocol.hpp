// reschedd wire protocol: JSON-lines requests and responses.
//
// One request per line, one response per line, matched by `id`. The
// transport (Unix socket, stdio, in-process pipe) only moves lines; this
// module owns parsing, validation and response formatting, so every
// transport speaks byte-identical JSON.
//
// Request:  {"verb": "schedule"|"simulate"|"cancel"|"stats"|"shutdown",
//            "id": "...",            // optional; server assigns "r<N>"
//            "tenant": "acme",       // optional fairness tenant ("default")
//            "deadline_ms": 250,     // optional per-request deadline
//            "instance": {...},      // schedule/simulate: inline instance
//            "algo": "pa"|"par"|"allsw", "seed": S,
//            "iterations": N,        // par restart cap (default 32)
//            "budget": SEC,          // par wall-clock budget (nondeterministic)
//            "module_reuse": b, "no_balancing": b, "no_floorplan": b,
//            "cache": b,             // opt out of the result cache
//            "trials": N, "fault_rate": R, "policy": "retry"|...,
//            "jitter": J,            // simulate only
//            "target": "r3"}         // cancel only
// Response: {"id": ..., "ok": true, ...} or
//           {"id": ..., "ok": false, "error": {"code": ..., "message": ...}}
//
// Determinism contract: a request with no wall-clock budget is a pure
// function of its canonical key (RequestKeyText) — the server strips the
// timing fields from schedule bodies and runs PA-R single-threaded, so
// identical submissions produce bit-identical response bodies at any
// worker count. Budgeted requests are nondeterministic by nature; they
// bypass the result cache and are skipped by journal replay comparison.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "io/instance_hash.hpp"
#include "taskgraph/taskgraph.hpp"
#include "util/json.hpp"

namespace resched::service {

inline constexpr int kProtocolVersion = 1;

enum class Verb { kSchedule, kSimulate, kCancel, kStats, kShutdown };

const char* ToString(Verb verb);

/// Stable error codes (the `error.code` field).
inline constexpr const char* kErrParse = "parse_error";
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrDeadline = "deadline_exceeded";
inline constexpr const char* kErrCancelled = "cancelled";
inline constexpr const char* kErrInternal = "internal";
/// Router-only: every candidate backend for the request is unhealthy.
inline constexpr const char* kErrUnavailable = "unavailable";

/// Tenant assigned to requests that carry no "tenant" field. Old clients
/// land here and must observe bit-identical behaviour to the pre-tenant
/// protocol (the tenant never enters RequestKeyText or response bodies).
inline constexpr const char* kDefaultTenant = "default";

/// A rejected request line. `id` is the request id when it could be
/// extracted (so the client can still match the error response).
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message,
                std::string id = {})
      : std::runtime_error(message),
        code_(std::move(code)),
        id_(std::move(id)) {}

  const std::string& code() const { return code_; }
  const std::string& id() const { return id_; }

 private:
  std::string code_;
  std::string id_;
};

struct ScheduleParams {
  std::string algo = "pa";      ///< pa | par | allsw
  std::uint64_t seed = 1;
  std::size_t iterations = 32;  ///< par restart cap (0 = unbounded)
  double budget_seconds = 0.0;  ///< par wall-clock budget; > 0 is nondeterministic
  bool module_reuse = false;
  bool sw_balancing = true;
  bool run_floorplan = true;
  bool use_cache = true;        ///< per-request result-cache opt-out
};

struct SimulateParams {
  double fault_rate = 0.0;
  std::size_t trials = 1;
  std::string policy = "retry";
  double jitter = 0.0;
};

struct Request {
  Verb verb = Verb::kStats;
  std::string id;       ///< client-supplied, or assigned by the server
  bool had_id = false;
  double deadline_ms = 0.0;  ///< 0 = no deadline (unless explicitly sent)
  /// True when the request carried a deadline_ms field at all. An explicit
  /// `"deadline_ms":0` is a legal request for an already-expired deadline
  /// (the shed-on-pop test relies on it) and must not read as "none".
  bool deadline_present = false;

  /// Admission-fairness tenant from the optional "tenant" field
  /// ([A-Za-z0-9_.-], at most 64 chars), kDefaultTenant when absent.
  /// Deliberately NOT part of RequestKeyText: results are tenant-
  /// independent, the result cache is shared across tenants, and old
  /// clients (no field) get bit-identical bodies.
  std::string tenant = kDefaultTenant;

  /// schedule/simulate payload (validated against its device).
  std::shared_ptr<const Instance> instance;
  Digest128 instance_digest;
  Digest128 platform_digest;  ///< keys the shared floorplan-cache pool

  ScheduleParams sched;
  SimulateParams sim;
  std::string cancel_target;  ///< cancel verb

  /// True when the response body is a pure function of the request key
  /// (no wall-clock budget involved) — the cacheable/replayable class.
  bool Deterministic() const { return sched.budget_seconds <= 0.0; }
};

/// Hardened limits for untrusted request lines (tight versus the on-disk
/// file defaults): 4 MiB per line, nesting depth 32, duplicate object
/// keys rejected (a repeated key would silently change which value the
/// server acts on).
JsonParseLimits RequestParseLimits();

/// True when `tenant` is a legal tenant name: 1-64 chars from
/// [A-Za-z0-9_.-]. Keeps tenant names safe to embed in metrics labels,
/// stats keys and filenames.
bool ValidTenantName(const std::string& tenant);

/// Parses and validates one request line; throws ProtocolError carrying a
/// stable error code (and the id when it was readable).
Request ParseRequest(const std::string& line);

/// Canonical cache-key text of a request: verb, normalized scheduling
/// parameters and the instance digest — excluding `id` and `deadline_ms`,
/// which do not affect the result. Two requests with equal key text get
/// bit-identical response bodies (when deterministic).
std::string RequestKeyText(const Request& request);

/// Compact `{"ok":true, ...}` body from extra fields.
std::string OkBody(JsonObject fields);

/// Compact `{"ok":false,"error":{...}}` body.
std::string ErrorBody(const std::string& code, const std::string& message);

/// Splices the id in front of a body: `{"id":"r1","ok":...}`. An empty id
/// (unparsable request) becomes `"id":null`.
std::string WithId(const std::string& id, const std::string& body);

/// Inverse of WithId, textually: given a response line produced by
/// WithId, recovers the exact body bytes (`{"ok":...}`) by skipping the
/// spliced `"id":<value>,` prefix. Purely lexical on purpose — a JSON
/// parse/re-dump round trip could legally reorder or reformat, and the
/// warm-start cache must restore the *bit-identical* body the original
/// daemon served. Returns false when `line` is not WithId-shaped.
bool StripResponseId(const std::string& line, std::string& body_out);

/// Greeting line sent once per connection: protocol version + build
/// provenance (the satellite build-info stamp).
std::string HandshakeLine();

}  // namespace resched::service
