#include "service/metrics_export.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace resched::service {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Integral values print without a decimal point (counters read naturally
/// and diffs stay clean); everything else gets round-trip-enough %g.
std::string FormatValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

void AppendSample(std::string& out, const std::string& name,
                  const MetricSample& sample) {
  out += name;
  if (!sample.labels.empty()) {
    out += '{';
    bool first = true;
    for (const auto& [k, v] : sample.labels) {
      if (!first) out += ',';
      first = false;
      out += k;
      out += "=\"";
      out += EscapeLabelValue(v);
      out += '"';
    }
    out += '}';
  }
  out += ' ';
  out += FormatValue(sample.value);
  out += '\n';
}

}  // namespace

const std::vector<double>& LatencyHistogram::BucketBoundsMs() {
  // 0.5ms .. 8192ms in powers of two: queue waits and service times for
  // schedule requests live squarely in this range; anything slower lands
  // in +Inf and is visible as "over 8s" without more resolution.
  static const std::vector<double> kBounds = {
      0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
  return kBounds;
}

void LatencyHistogram::Record(double ms) {
  const std::vector<double>& bounds = BucketBoundsMs();
  std::size_t idx = bounds.size();  // +Inf bucket
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (ms <= bounds[i]) {
      idx = i;
      break;
    }
  }
  MutexLock lock(mu_);
  if (buckets_.empty()) buckets_.assign(bounds.size() + 1, 0);
  ++buckets_[idx];
  sum_ms_ += ms;
  ++count_;
}

LatencyHistogram::Snapshot LatencyHistogram::Take() const {
  MutexLock lock(mu_);
  Snapshot snap;
  snap.buckets = buckets_.empty()
                     ? std::vector<std::uint64_t>(
                           BucketBoundsMs().size() + 1, 0)
                     : buckets_;
  snap.sum_ms = sum_ms_;
  snap.count = count_;
  return snap;
}

double HistogramQuantileMs(const LatencyHistogram::Snapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::vector<double>& bounds = LatencyHistogram::BucketBoundsMs();
  const double rank = q * static_cast<double>(snap.count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
    const double next = cumulative + static_cast<double>(snap.buckets[i]);
    if (next >= rank && snap.buckets[i] > 0) {
      const double lo = (i == 0) ? 0.0 : bounds[i - 1];
      // The +Inf bucket has no upper bound; report its lower edge (the
      // largest finite bound) rather than inventing a value.
      if (i >= bounds.size()) return lo;
      const double hi = bounds[i];
      const double frac =
          (rank - cumulative) / static_cast<double>(snap.buckets[i]);
      return lo + (hi - lo) * frac;
    }
    cumulative = next;
  }
  return bounds.back();
}

void AppendHistogramFamily(std::vector<MetricFamily>& families,
                           const std::string& name, const std::string& help,
                           const std::map<std::string, std::string>& labels,
                           const LatencyHistogram::Snapshot& snap) {
  // Find (or start) the family so several label sets share one family
  // block, as the exposition format requires.
  MetricFamily* family = nullptr;
  for (MetricFamily& f : families) {
    if (f.name == name) {
      family = &f;
      break;
    }
  }
  if (family == nullptr) {
    families.push_back(MetricFamily{name, help, "histogram", {}});
    family = &families.back();
  }
  const std::vector<double>& bounds = LatencyHistogram::BucketBoundsMs();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
    cumulative += snap.buckets[i];
    MetricSample s;
    s.labels = labels;
    s.labels["le"] =
        i < bounds.size() ? FormatValue(bounds[i]) : std::string("+Inf");
    s.labels["__kind"] = "bucket";  // internal marker consumed by render
    s.value = static_cast<double>(cumulative);
    family->samples.push_back(std::move(s));
  }
  MetricSample sum;
  sum.labels = labels;
  sum.labels["__kind"] = "sum";
  sum.value = snap.sum_ms;
  family->samples.push_back(std::move(sum));
  MetricSample count;
  count.labels = labels;
  count.labels["__kind"] = "count";
  count.value = static_cast<double>(snap.count);
  family->samples.push_back(std::move(count));
}

std::string RenderPrometheus(const std::vector<MetricFamily>& families) {
  std::string out;
  for (const MetricFamily& family : families) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " " + family.type + "\n";
    for (const MetricSample& sample : family.samples) {
      const auto kind = sample.labels.find("__kind");
      if (kind == sample.labels.end()) {
        AppendSample(out, family.name, sample);
        continue;
      }
      // Histogram sub-series: strip the internal marker and pick the
      // suffixed series name.
      MetricSample plain = sample;
      const std::string k = kind->second;
      plain.labels.erase("__kind");
      if (k == "bucket") {
        AppendSample(out, family.name + "_bucket", plain);
      } else if (k == "sum") {
        plain.labels.erase("le");
        AppendSample(out, family.name + "_sum", plain);
      } else {
        plain.labels.erase("le");
        AppendSample(out, family.name + "_count", plain);
      }
    }
  }
  return out;
}

bool WriteTextfileAtomic(const std::string& path, const std::string& content,
                         std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("open " + tmp);
    return false;
  }
  std::size_t done = 0;
  while (done < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + done, content.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("write " + tmp);
      (void)::close(fd);
      (void)::unlink(tmp.c_str());
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise a crash can leave the *renamed* file
  // empty — the same torn-state the atomic rename exists to prevent.
  if (::fsync(fd) != 0) {
    if (error != nullptr) *error = Errno("fsync " + tmp);
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    if (error != nullptr) *error = Errno("close " + tmp);
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = Errno("rename " + tmp + " -> " + path);
    (void)::unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace resched::service
