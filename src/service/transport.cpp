#include "service/transport.hpp"

#include <iostream>
#include <utility>

namespace resched::service {

// ---------------------------------------------------------------- Stdio --

bool StdioTransport::ReadLine(std::string& line) {
  return static_cast<bool>(std::getline(std::cin, line));
}

bool StdioTransport::WriteLine(const std::string& line) {
  std::cout << line << '\n' << std::flush;
  return static_cast<bool>(std::cout);
}

// ----------------------------------------------------------------- Pipe --

void PipeTransport::LineChannel::Push(std::string line) {
  {
    MutexLock lock(mu_);
    if (closed_) return;  // late line after close: dropped, like a dead pipe
    lines_.push_back(std::move(line));
  }
  cv_.NotifyOne();
}

bool PipeTransport::LineChannel::Pop(std::string& line) {
  MutexLock lock(mu_);
  while (!closed_ && lines_.empty()) cv_.Wait(lock);
  if (lines_.empty()) return false;
  line = std::move(lines_.front());
  lines_.pop_front();
  return true;
}

void PipeTransport::LineChannel::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

bool PipeTransport::ReadLine(std::string& line) {
  return requests_.Pop(line);
}

bool PipeTransport::WriteLine(const std::string& line) {
  responses_.Push(line);
  return true;
}

void PipeTransport::Send(std::string line) {
  requests_.Push(std::move(line));
}

bool PipeTransport::Receive(std::string& line) {
  return responses_.Pop(line);
}

void PipeTransport::CloseRequests() { requests_.Close(); }

void PipeTransport::CloseResponses() { responses_.Close(); }

// --------------------------------------------------------------- Socket --

UnixSocketServerTransport::UnixSocketServerTransport(const std::string& path)
    : listener_(path) {}

std::shared_ptr<UnixSocketServerTransport::Conn>
UnixSocketServerTransport::Snapshot() {
  MutexLock lock(mu_);
  return conn_;
}

bool UnixSocketServerTransport::SendLine(Conn& conn, const std::string& line) {
  // Per-connection lock: its entire purpose is covering the blocking send,
  // so concurrent writers (greeting replay vs. worker responses) cannot
  // interleave bytes mid-line on the stream socket.
  MutexLock lock(conn.write_mu);
  return conn.sock.SendAll(  // resched-lint: allow(lock-held-over-blocking-call)
      line + "\n");
}

bool UnixSocketServerTransport::ReadLine(std::string& line) {
  for (;;) {
    std::shared_ptr<Conn> conn = Snapshot();
    if (!conn) {
      std::optional<UnixSocket> accepted = listener_.Accept();
      if (!accepted) return false;  // listener closed
      conn = std::make_shared<Conn>(std::move(*accepted));
      std::string greeting;
      {
        MutexLock lock(mu_);
        conn_ = conn;
        greeting = greeting_;
      }
      if (!greeting.empty()) (void)SendLine(*conn, greeting);
    }
    // Blocking recv outside any lock; only this thread touches the reader.
    if (conn->reader.ReadLine(line)) return true;
    // Client hung up: drop the connection and accept the next one. A
    // worker mid-WriteLine still holds its own snapshot, so the socket
    // stays valid and its send just reports the peer as gone.
    MutexLock lock(mu_);
    conn_.reset();
  }
}

bool UnixSocketServerTransport::WriteLine(const std::string& line) {
  std::shared_ptr<Conn> conn = Snapshot();
  if (!conn) return false;
  return SendLine(*conn, line);
}

void UnixSocketServerTransport::SetGreeting(const std::string& line) {
  std::shared_ptr<Conn> conn;
  {
    MutexLock lock(mu_);
    greeting_ = line;
    conn = conn_;
  }
  if (conn) (void)SendLine(*conn, line);
}

void UnixSocketServerTransport::Close() { listener_.Close(); }

}  // namespace resched::service
