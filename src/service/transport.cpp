#include "service/transport.hpp"

#include <iostream>
#include <utility>

namespace resched::service {

// ---------------------------------------------------------------- Stdio --

bool StdioTransport::ReadLine(std::string& line) {
  return static_cast<bool>(std::getline(std::cin, line));
}

bool StdioTransport::WriteLine(const std::string& line) {
  std::cout << line << '\n' << std::flush;
  return static_cast<bool>(std::cout);
}

// ----------------------------------------------------------------- Pipe --

void PipeTransport::LineChannel::Push(std::string line) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;  // late line after close: dropped, like a dead pipe
    lines_.push_back(std::move(line));
  }
  cv_.notify_one();
}

bool PipeTransport::LineChannel::Pop(std::string& line) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !lines_.empty(); });
  if (lines_.empty()) return false;
  line = std::move(lines_.front());
  lines_.pop_front();
  return true;
}

void PipeTransport::LineChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool PipeTransport::ReadLine(std::string& line) {
  return requests_.Pop(line);
}

bool PipeTransport::WriteLine(const std::string& line) {
  responses_.Push(line);
  return true;
}

void PipeTransport::Send(std::string line) {
  requests_.Push(std::move(line));
}

bool PipeTransport::Receive(std::string& line) {
  return responses_.Pop(line);
}

void PipeTransport::CloseRequests() { requests_.Close(); }

void PipeTransport::CloseResponses() { responses_.Close(); }

// --------------------------------------------------------------- Socket --

UnixSocketServerTransport::UnixSocketServerTransport(const std::string& path)
    : listener_(path) {}

bool UnixSocketServerTransport::ReadLine(std::string& line) {
  for (;;) {
    if (!client_) {
      std::optional<UnixSocket> accepted = listener_.Accept();
      if (!accepted) return false;  // listener closed
      std::lock_guard<std::mutex> lock(mu_);
      client_.emplace(std::move(*accepted));
      reader_.emplace(*client_);
      if (!greeting_.empty()) {
        (void)client_->SendAll(greeting_ + "\n");
      }
    }
    if (reader_->ReadLine(line)) return true;
    // Client hung up: drop the connection and accept the next one.
    std::lock_guard<std::mutex> lock(mu_);
    reader_.reset();
    client_.reset();
  }
}

bool UnixSocketServerTransport::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!client_) return false;
  return client_->SendAll(line + "\n");
}

void UnixSocketServerTransport::SetGreeting(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  greeting_ = line;
  if (client_) (void)client_->SendAll(greeting_ + "\n");
}

void UnixSocketServerTransport::Close() { listener_.Close(); }

}  // namespace resched::service
