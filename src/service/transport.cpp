#include "service/transport.hpp"

#include <unistd.h>

#include <cerrno>
#include <utility>

#include "util/io_faults.hpp"

namespace resched::service {
namespace {

/// Bounded EINTR/EAGAIN retry budget for the stdio fd loops below (the
/// same reasoning as the journal's: generous versus any real signal
/// storm, finite under a 100%-fault injection spec).
constexpr int kMaxTransientRetries = 128;

}  // namespace

// ---------------------------------------------------------------- Stdio --
//
// Raw-fd loops rather than iostreams so the fault shim sees every byte
// (std::cin/cout buffer syscalls away from it) and so EINTR — which
// iostreams surface as an unrecoverable badbit — is retried like every
// other transport retries it.

bool StdioTransport::ReadLine(std::string& line) {
  line.clear();
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);  // unterminated trailing line
      buffer_.clear();
      return true;
    }
    char chunk[4096];
    int transient = 0;
    ssize_t n;
    while ((n = io_faults::Read(IoStream::kStdio, STDIN_FILENO, chunk,
                                sizeof chunk)) < 0) {
      if ((errno == EINTR || errno == EAGAIN) &&
          ++transient < kMaxTransientRetries) {
        continue;
      }
      eof_ = true;  // persistent read failure ends the stream
      break;
    }
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
    } else if (n == 0) {
      eof_ = true;
    }
  }
}

bool StdioTransport::WriteLine(const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t done = 0;
  int transient = 0;
  while (done < framed.size()) {
    const ssize_t n =
        io_faults::Write(IoStream::kStdio, STDOUT_FILENO, framed.data() + done,
                         framed.size() - done);
    if (n < 0) {
      if ((errno == EINTR || errno == EAGAIN) &&
          ++transient < kMaxTransientRetries) {
        continue;
      }
      return false;  // peer gone / persistent failure: response dropped
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// ----------------------------------------------------------------- Pipe --

void PipeTransport::LineChannel::Push(std::string line) {
  {
    MutexLock lock(mu_);
    if (closed_) return;  // late line after close: dropped, like a dead pipe
    lines_.push_back(std::move(line));
  }
  cv_.NotifyOne();
}

bool PipeTransport::LineChannel::Pop(std::string& line) {
  MutexLock lock(mu_);
  while (!closed_ && lines_.empty()) cv_.Wait(lock);
  if (lines_.empty()) return false;
  line = std::move(lines_.front());
  lines_.pop_front();
  return true;
}

void PipeTransport::LineChannel::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

bool PipeTransport::ReadLine(std::string& line) {
  return requests_.Pop(line);
}

bool PipeTransport::WriteLine(const std::string& line) {
  responses_.Push(line);
  return true;
}

void PipeTransport::Send(std::string line) {
  requests_.Push(std::move(line));
}

bool PipeTransport::Receive(std::string& line) {
  return responses_.Pop(line);
}

void PipeTransport::CloseRequests() { requests_.Close(); }

void PipeTransport::CloseResponses() { responses_.Close(); }

// --------------------------------------------------------------- Socket --

UnixSocketServerTransport::UnixSocketServerTransport(const std::string& path)
    : listener_(path) {}

std::shared_ptr<UnixSocketServerTransport::Conn>
UnixSocketServerTransport::Snapshot() {
  MutexLock lock(mu_);
  return conn_;
}

bool UnixSocketServerTransport::SendLine(Conn& conn, const std::string& line) {
  // Per-connection lock: its entire purpose is covering the blocking send,
  // so concurrent writers (greeting replay vs. worker responses) cannot
  // interleave bytes mid-line on the stream socket.
  MutexLock lock(conn.write_mu);
  // Unix-domain line protocol, not TCP framing — raw send is the format.
  return conn.sock.SendAll(  // resched-lint: allow(lock-held-over-blocking-call,no-unframed-tcp-write)
      line + "\n");
}

bool UnixSocketServerTransport::ReadLine(std::string& line) {
  for (;;) {
    std::shared_ptr<Conn> conn = Snapshot();
    if (!conn) {
      std::optional<UnixSocket> accepted = listener_.Accept();
      if (!accepted) return false;  // listener closed
      conn = std::make_shared<Conn>(std::move(*accepted));
      std::string greeting;
      {
        MutexLock lock(mu_);
        conn_ = conn;
        greeting = greeting_;
      }
      if (!greeting.empty()) (void)SendLine(*conn, greeting);
    }
    // Blocking recv outside any lock; only this thread touches the reader.
    if (conn->reader.ReadLine(line)) return true;
    // Client hung up: drop the connection and accept the next one. A
    // worker mid-WriteLine still holds its own snapshot, so the socket
    // stays valid and its send just reports the peer as gone.
    MutexLock lock(mu_);
    conn_.reset();
  }
}

bool UnixSocketServerTransport::WriteLine(const std::string& line) {
  std::shared_ptr<Conn> conn = Snapshot();
  if (!conn) return false;
  return SendLine(*conn, line);
}

void UnixSocketServerTransport::SetGreeting(const std::string& line) {
  std::shared_ptr<Conn> conn;
  {
    MutexLock lock(mu_);
    greeting_ = line;
    conn = conn_;
  }
  if (conn) (void)SendLine(*conn, line);
}

void UnixSocketServerTransport::Close() {
  listener_.Close();
  // Also wake a reader parked in recv(2) on the live connection; without
  // this, Close only stops *new* connections and a blocked ReadLine keeps
  // the serve loop alive until the peer hangs up.
  if (std::shared_ptr<Conn> conn = Snapshot()) conn->sock.Shutdown();
}

// ------------------------------------------------------------------ TCP --

TcpServerTransport::TcpServerTransport(const std::string& host,
                                       std::uint16_t port,
                                       std::size_t max_frame_bytes)
    : listener_(host, port), max_frame_bytes_(max_frame_bytes) {}

std::shared_ptr<TcpServerTransport::Conn> TcpServerTransport::Snapshot() {
  MutexLock lock(mu_);
  return conn_;
}

bool TcpServerTransport::SendFrame(Conn& conn, const std::string& line) {
  // Per-connection lock covering the blocking send, so concurrent writers
  // (greeting replay vs. worker responses) cannot interleave frames.
  MutexLock lock(conn.write_mu);
  return WriteFrame(  // resched-lint: allow(lock-held-over-blocking-call)
      conn.sock, line);
}

bool TcpServerTransport::ReadLine(std::string& line) {
  for (;;) {
    std::shared_ptr<Conn> conn = Snapshot();
    if (!conn) {
      std::optional<StreamSocket> accepted = listener_.Accept();
      if (!accepted) return false;  // listener closed
      conn = std::make_shared<Conn>(std::move(*accepted), max_frame_bytes_);
      std::string greeting;
      {
        MutexLock lock(mu_);
        conn_ = conn;
        greeting = greeting_;
      }
      if (!greeting.empty()) (void)SendFrame(*conn, greeting);
    }
    // Blocking recv outside any lock; only this thread touches the reader.
    const FrameResult r = conn->reader.Read(line);
    if (r == FrameResult::kFrame) return true;
    if (r != FrameResult::kEof) {
      framing_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    // EOF or framing violation: drop the connection and accept the next
    // one. A worker mid-WriteLine still holds its own snapshot, so the
    // socket stays valid and its send just reports the peer as gone.
    MutexLock lock(mu_);
    conn_.reset();
  }
}

bool TcpServerTransport::WriteLine(const std::string& line) {
  std::shared_ptr<Conn> conn = Snapshot();
  if (!conn) return false;
  return SendFrame(*conn, line);
}

void TcpServerTransport::SetGreeting(const std::string& line) {
  std::shared_ptr<Conn> conn;
  {
    MutexLock lock(mu_);
    greeting_ = line;
    conn = conn_;
  }
  if (conn) (void)SendFrame(*conn, line);
}

void TcpServerTransport::Close() {
  listener_.Close();
  // Same contract as the unix transport: wake a reader parked on the
  // live connection, not just the accept loop.
  if (std::shared_ptr<Conn> conn = Snapshot()) conn->sock.Shutdown();
}

}  // namespace resched::service

