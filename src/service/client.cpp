#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/json.hpp"

namespace resched::service {
namespace {

/// Best-effort id extraction from a request or response line. Empty when
/// the line has no string id (then a retry would not be idempotent).
std::string ExtractId(const std::string& line) {
  try {
    const JsonValue doc = JsonValue::Parse(line);
    if (doc.IsObject() && doc.Contains("id") && doc.At("id").IsString()) {
      return doc.At("id").AsString();
    }
  } catch (const std::exception&) {
    // Not JSON: the server will reject it; nothing to match on.
  }
  return {};
}

void RealSleepMs(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

ClientEndpoint ClientEndpoint::Unix(std::string path) {
  ClientEndpoint ep;
  ep.tcp = false;
  ep.path = std::move(path);
  return ep;
}

ClientEndpoint ClientEndpoint::Tcp(std::string host, std::uint16_t port) {
  ClientEndpoint ep;
  ep.tcp = true;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

std::string ClientEndpoint::Describe() const {
  if (tcp) return host + ":" + std::to_string(port);
  return path;
}

RescheddClient::RescheddClient(std::string socket_path, ClientOptions options)
    : RescheddClient(ClientEndpoint::Unix(std::move(socket_path)),
                     std::move(options)) {}

RescheddClient::RescheddClient(ClientEndpoint endpoint, ClientOptions options)
    : endpoint_(std::move(endpoint)), options_(std::move(options)) {}

bool RescheddClient::ReadLine(std::string& out) {
  if (endpoint_.tcp) {
    return framer_->Read(out) == FrameResult::kFrame;
  }
  return reader_->ReadLine(out);
}

bool RescheddClient::SendLine(const std::string& line) {
  if (endpoint_.tcp) return WriteFrame(*socket_, line);
  return socket_->SendAll(line + "\n");
}

bool RescheddClient::Attempt(const std::string& line, const std::string& id,
                             Result& result) {
  if (!socket_) {
    if (endpoint_.tcp) {
      socket_ = std::make_unique<StreamSocket>(
          StreamSocket::ConnectTcp(endpoint_.host, endpoint_.port));
      framer_ = std::make_unique<FrameReader>(*socket_);
    } else {
      socket_ = std::make_unique<StreamSocket>(
          StreamSocket::Connect(endpoint_.path));
      reader_ = std::make_unique<SocketLineReader>(*socket_);
    }
    std::string greeting;
    if (!ReadLine(greeting)) return false;  // died mid-accept
    result.handshake = std::move(greeting);
  }
  if (!SendLine(line)) return false;
  std::string received;
  while (ReadLine(received)) {
    if (id.empty()) {
      // No id to match: the next line is the answer (single-shot mode).
      result.response = std::move(received);
      return true;
    }
    if (ExtractId(received) == id) {
      result.response = std::move(received);
      return true;
    }
    // Anything else — a replayed greeting, or a stale response to a
    // pre-reconnect submission the server finished late — is skipped.
  }
  return false;  // EOF before the matching response
}

RescheddClient::Result RescheddClient::Submit(const std::string& line) {
  const std::string id = ExtractId(line);
  // Without an id the server cannot dedup a resend, so a retry could
  // execute twice; such lines get exactly one attempt.
  const std::size_t max_attempts =
      id.empty() ? 1 : std::max<std::size_t>(1, options_.max_attempts);
  const auto sleep_ms =
      options_.sleep_fn ? options_.sleep_fn
                        : std::function<void(double)>(RealSleepMs);

  Result result;
  double backoff_ms = options_.backoff_initial_ms;
  std::string last_error = "connection failed";
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      sleep_ms(backoff_ms);
      backoff_ms =
          std::min(backoff_ms * options_.backoff_multiplier,
                   options_.backoff_max_ms);
      ++result.reconnects;
    }
    ++result.attempts;
    try {
      if (Attempt(line, id, result)) return result;
      last_error = "server closed the connection before responding";
    } catch (const SocketError& e) {
      last_error = e.what();
    }
    framer_.reset();  // before the socket they borrow
    reader_.reset();
    socket_.reset();  // next attempt reconnects from scratch
  }
  throw SocketError("submit of id '" + id + "' to " + endpoint_.Describe() +
                    " failed after " + std::to_string(result.attempts) +
                    " attempt(s): " + last_error);
}

}  // namespace resched::service
