#include "service/framing.hpp"

#include <cstring>
#include <limits>

namespace resched::service {

std::string FrameHeader(std::size_t payload_size) {
  if (payload_size > std::numeric_limits<std::uint32_t>::max()) {
    throw SocketError("frame payload too large for u32 length field (" +
                      std::to_string(payload_size) + " bytes)");
  }
  const auto n = static_cast<std::uint32_t>(payload_size);
  std::string header(kFrameHeaderBytes, '\0');
  header[0] = kFrameMagic[0];
  header[1] = kFrameMagic[1];
  header[2] = kFrameMagic[2];
  header[3] = static_cast<char>(kFrameVersion);
  header[4] = static_cast<char>(n & 0xff);
  header[5] = static_cast<char>((n >> 8) & 0xff);
  header[6] = static_cast<char>((n >> 16) & 0xff);
  header[7] = static_cast<char>((n >> 24) & 0xff);
  return header;
}

bool WriteFrame(StreamSocket& socket, std::string_view payload) {
  std::string wire = FrameHeader(payload.size());
  wire.append(payload);
  return socket.SendAll(wire);
}

const char* FrameResultName(FrameResult r) {
  switch (r) {
    case FrameResult::kFrame: return "frame";
    case FrameResult::kEof: return "eof";
    case FrameResult::kBadMagic: return "bad_magic";
    case FrameResult::kBadVersion: return "bad_version";
    case FrameResult::kTooLarge: return "too_large";
    case FrameResult::kTorn: return "torn";
  }
  return "unknown";
}

bool FrameReader::Fill(std::size_t need) {
  while (buffer_.size() < need) {
    if (eof_) return false;
    if (!socket_->RecvSome(buffer_)) eof_ = true;
  }
  return true;
}

FrameResult FrameReader::Read(std::string& payload) {
  if (!Fill(kFrameHeaderBytes)) {
    return buffer_.empty() ? FrameResult::kEof : FrameResult::kTorn;
  }
  if (std::memcmp(buffer_.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return FrameResult::kBadMagic;
  }
  if (static_cast<std::uint8_t>(buffer_[3]) != kFrameVersion) {
    return FrameResult::kBadVersion;
  }
  const std::uint32_t len =
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer_[4])) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer_[5]))
       << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer_[6]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer_[7]))
       << 24);
  // Reject before Fill so a hostile length prefix never drives allocation.
  if (len > max_frame_bytes_) return FrameResult::kTooLarge;
  if (!Fill(kFrameHeaderBytes + len)) return FrameResult::kTorn;
  payload.assign(buffer_, kFrameHeaderBytes, len);
  buffer_.erase(0, kFrameHeaderBytes + len);
  return FrameResult::kFrame;
}

}  // namespace resched::service
