// Prometheus-textfile metrics export for reschedd and reschedd-router.
//
// Deliberately a *textfile* writer, not an HTTP endpoint: the daemons
// already own their sockets for the request protocol, and the Prometheus
// node_exporter textfile collector (or a plain `cat`/`curl file://`)
// picks the file up without the service growing an HTTP stack. The file
// is replaced atomically — written to `<path>.tmp`, fsync'd, then
// rename(2)'d over the target — so a scraper never observes a torn
// half-written exposition.
//
// The model is the minimal slice of the Prometheus exposition format the
// fleet needs: counter and gauge families with optional labels, and
// histogram families with cumulative `le` buckets plus `_sum`/`_count`.
// Families render in the order given; samples in the order added — the
// callers build them from sorted maps, so output is deterministic and
// diff-able, which the router smoke test's format check relies on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.hpp"

namespace resched::service {

/// One labeled sample: `name{tenant="acme"} 42`.
struct MetricSample {
  std::map<std::string, std::string> labels;  ///< sorted => stable output
  double value = 0.0;
};

struct MetricFamily {
  std::string name;
  std::string help;
  std::string type;  ///< "counter" | "gauge" | "histogram"
  std::vector<MetricSample> samples;
};

/// Fixed-bound latency histogram (power-of-two millisecond buckets,
/// 0.5ms .. ~8s, +Inf). Thread-safe; Snapshot() is consistent.
class LatencyHistogram {
 public:
  struct Snapshot {
    std::vector<std::uint64_t> buckets;  ///< per-bucket (non-cumulative)
    double sum_ms = 0.0;
    std::uint64_t count = 0;
  };

  /// Upper bounds in ms, one per bucket, excluding the implicit +Inf.
  static const std::vector<double>& BucketBoundsMs();

  void Record(double ms);
  Snapshot Take() const;

 private:
  mutable Mutex mu_;
  std::vector<std::uint64_t> buckets_ RESCHED_GUARDED_BY(mu_);
  double sum_ms_ RESCHED_GUARDED_BY(mu_) = 0.0;
  std::uint64_t count_ RESCHED_GUARDED_BY(mu_) = 0;
};

/// Interpolated quantile estimate (q in [0,1]) from a histogram snapshot,
/// assuming uniform density inside a bucket — the usual Prometheus
/// histogram_quantile. Returns 0 for an empty histogram.
double HistogramQuantileMs(const LatencyHistogram::Snapshot& snap, double q);

/// Appends a histogram family (cumulative buckets, `_sum`, `_count`) for
/// `snap` with the given base labels to `families`.
void AppendHistogramFamily(std::vector<MetricFamily>& families,
                           const std::string& name, const std::string& help,
                           const std::map<std::string, std::string>& labels,
                           const LatencyHistogram::Snapshot& snap);

/// Renders families in the exposition text format (`# HELP` / `# TYPE`
/// headers plus samples, '\n'-terminated).
std::string RenderPrometheus(const std::vector<MetricFamily>& families);

/// Atomically replaces `path` with `content` (tmp file + fsync + rename).
/// Returns false with `error` filled on any syscall failure; the target
/// is never left torn.
bool WriteTextfileAtomic(const std::string& path, const std::string& content,
                         std::string* error);

}  // namespace resched::service
