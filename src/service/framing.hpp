// Length-prefixed binary framing for the reschedd TCP transport.
//
// The JSON-lines protocol delimits messages with '\n', which is fine over
// a unix socket on one host but fragile for fleet traffic: large
// instances make the reader scan megabytes for a newline, and a single
// embedded newline from a buggy client desynchronizes the stream with no
// way to tell where the next message starts. Frames fix both: every
// message is
//
//   offset  size  field
//   0       3     magic "RSF"
//   3       1     protocol version (kFrameVersion)
//   4       4     payload length, unsigned little-endian
//   8       n     payload (a protocol line WITHOUT the trailing '\n')
//
// The magic+version byte doubles as the transport-level handshake: a peer
// speaking a different framing version (or raw JSON-lines by mistake)
// fails the very first ReadFrame with kBadMagic/kBadVersion and the
// connection is dropped before any payload is interpreted. The length
// field is checked against a per-connection limit before any allocation,
// so a hostile length cannot balloon memory.
//
// All I/O goes through StreamSocket::SendAll/RecvSome, which route
// through util/io_faults — the kill -9 chaos harness and fault shim cover
// framed TCP exactly like the journal and unix-socket paths. This file is
// the only place in src/service/ + src/router/ allowed to touch the raw
// socket byte stream (the no-unframed-tcp-write lint rule pins everything
// above it to WriteFrame/ReadFrame).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/socket.hpp"

namespace resched::service {

inline constexpr char kFrameMagic[3] = {'R', 'S', 'F'};
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Default per-connection frame payload cap (also the read limit the TCP
/// transport enforces): generous for big instances, small enough that a
/// hostile length prefix cannot balloon the resident set.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;  // 64 MiB

/// Serializes the 8-byte header for a payload of `payload_size` bytes.
std::string FrameHeader(std::size_t payload_size);

/// Sends one frame (header + payload in a single SendAll so the kernel
/// sees one write). Returns false when the peer is gone, like SendAll;
/// throws SocketError on other failures or when the payload exceeds the
/// u32 length field.
bool WriteFrame(StreamSocket& socket, std::string_view payload);

enum class FrameResult {
  kFrame,       ///< `payload` holds one complete frame payload.
  kEof,         ///< orderly EOF on a frame boundary
  kBadMagic,    ///< peer is not speaking RSF framing
  kBadVersion,  ///< RSF magic but an unknown version byte
  kTooLarge,    ///< length prefix exceeds the configured limit
  kTorn,        ///< EOF mid-frame (peer died / crashed mid-write)
};

const char* FrameResultName(FrameResult r);

/// Buffered frame reader over a StreamSocket. Anything but kFrame is
/// terminal for the connection: the stream position can no longer be
/// trusted, so callers drop the connection rather than resynchronize.
class FrameReader {
 public:
  explicit FrameReader(StreamSocket& socket,
                       std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : socket_(&socket), max_frame_bytes_(max_frame_bytes) {}

  FrameResult Read(std::string& payload);

 private:
  /// Blocks until `buffer_` holds at least `need` bytes. Returns false on
  /// EOF first.
  bool Fill(std::size_t need);

  StreamSocket* socket_;
  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace resched::service
