// Line transports for the reschedd protocol.
//
// The server speaks to exactly one Transport; the implementations trade
// deployment for determinism:
//
//   * UnixSocketServerTransport — the single-host daemon path: one client
//     connection at a time over a Unix-domain socket, re-accepting after a
//     disconnect, greeting each connection with the handshake line.
//   * TcpServerTransport — the fleet path: same one-client-at-a-time
//     contract over localhost TCP, but messages travel as length-prefixed
//     RSF frames (service/framing.hpp) instead of '\n'-delimited lines,
//     with a per-connection read limit and a framing-version handshake.
//     The Transport interface still trades whole protocol lines; framing
//     is invisible above this class.
//   * StdioTransport — `reschedd --stdio`: requests on stdin, responses on
//     stdout. Lets CI drive a full server lifecycle through a plain pipe
//     with no filesystem socket and no cleanup.
//   * PipeTransport — in-process channels for tests, benches and journal
//     replay: the client half (Send/Receive) runs in the test thread while
//     the server half (ReadLine/WriteLine) runs in a server thread, with
//     no serialization loss and no OS dependency.
//
// Thread contract: ReadLine is called by the server's reader thread only;
// WriteLine may be called from any worker (the server serializes writes
// with its own mutex — transports need not).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "service/framing.hpp"
#include "util/mutex.hpp"
#include "util/socket.hpp"

namespace resched::service {

class Transport {
 public:
  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Blocks for the next request line; false on end of stream (client
  /// closed stdin / pipe closed / listener shut down).
  virtual bool ReadLine(std::string& line) = 0;

  /// Writes one response line; false when the peer is gone (the response
  /// is dropped — the server counts but does not retry).
  virtual bool WriteLine(const std::string& line) = 0;

  /// Installs the per-connection greeting. Single-connection transports
  /// emit it immediately; the socket transport replays it on every accept.
  virtual void SetGreeting(const std::string& line) { (void)WriteLine(line); }
};

/// Requests on stdin, responses on stdout — raw-fd loops (with bounded
/// EINTR/EAGAIN retries, routed through the io_faults shim) rather than
/// iostreams, so fault injection covers this transport too.
class StdioTransport : public Transport {
 public:
  bool ReadLine(std::string& line) override;
  bool WriteLine(const std::string& line) override;

 private:
  std::string buffer_;  ///< touched by the reader thread only
  bool eof_ = false;
};

/// In-process pair of blocking line channels. The Transport interface is
/// the server half; Send/Receive/CloseRequests are the client half.
class PipeTransport : public Transport {
 public:
  // Server half.
  bool ReadLine(std::string& line) override;
  bool WriteLine(const std::string& line) override;

  // Client half.
  void Send(std::string line);
  /// Blocks for the next response line; false once the server is gone and
  /// every pending response was consumed.
  bool Receive(std::string& line);
  /// Client-side end-of-stream: the server's ReadLine starts returning
  /// false once the admitted lines drain (like closing stdin).
  void CloseRequests();
  /// Server-side close of the response stream (called on Serve() exit so a
  /// blocked Receive() unsticks).
  void CloseResponses();

 private:
  class LineChannel {
   public:
    void Push(std::string line) RESCHED_EXCLUDES(mu_);
    bool Pop(std::string& line) RESCHED_EXCLUDES(mu_);
    void Close() RESCHED_EXCLUDES(mu_);

   private:
    Mutex mu_;
    CondVar cv_;
    std::deque<std::string> lines_ RESCHED_GUARDED_BY(mu_);
    bool closed_ RESCHED_GUARDED_BY(mu_) = false;
  };

  LineChannel requests_;
  LineChannel responses_;
};

/// Unix-domain socket server endpoint: accepts one client at a time and
/// re-accepts after a disconnect. Serve() keeps running until a shutdown
/// verb arrives or Close() is called from another thread.
class UnixSocketServerTransport : public Transport {
 public:
  explicit UnixSocketServerTransport(const std::string& path);

  bool ReadLine(std::string& line) override;
  bool WriteLine(const std::string& line) override;
  void SetGreeting(const std::string& line) override;

  /// Stops accepting; a blocked ReadLine returns false.
  void Close();

  const std::string& Path() const { return listener_.Path(); }

 private:
  /// One accepted client connection. Shared-ptr snapshots let the blocking
  /// recv/send run outside mu_ while a concurrent swap (client hang-up →
  /// re-accept) can never free the socket under a caller: the snapshot
  /// keeps it alive, and I/O on a dropped connection just reports the
  /// peer as gone. write_mu serializes the bytes of concurrent sends
  /// (greeting replay vs. worker responses) per connection.
  struct Conn {
    explicit Conn(UnixSocket s) : sock(std::move(s)), reader(sock) {}
    UnixSocket sock;
    SocketLineReader reader;  ///< touched by the reader thread only
    Mutex write_mu;
  };

  std::shared_ptr<Conn> Snapshot() RESCHED_EXCLUDES(mu_);
  /// Sends one line over `conn`, holding its per-connection write lock.
  static bool SendLine(Conn& conn, const std::string& line);

  UnixListener listener_;
  /// Guards the connection slot and greeting only — never held across
  /// socket I/O (the annotation rollout surfaced the old design, which
  /// both ran SendAll under mu_ and read the slot unlocked in ReadLine).
  Mutex mu_;
  std::shared_ptr<Conn> conn_ RESCHED_GUARDED_BY(mu_);
  std::string greeting_ RESCHED_GUARDED_BY(mu_);
};

/// TCP server endpoint speaking RSF frames: accepts one client at a time
/// on host:port (port 0 = kernel-assigned ephemeral port, readable via
/// Port()), re-accepts after a disconnect, replays the greeting frame on
/// every accept. A connection that violates framing (wrong magic or
/// version byte, frame above the read limit, EOF mid-frame) is dropped —
/// the byte stream cannot be trusted past the first bad header — and the
/// event is counted in FramingErrors().
class TcpServerTransport : public Transport {
 public:
  TcpServerTransport(const std::string& host, std::uint16_t port,
                     std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  bool ReadLine(std::string& line) override;
  bool WriteLine(const std::string& line) override;
  void SetGreeting(const std::string& line) override;

  /// Stops accepting; a blocked ReadLine returns false.
  void Close();

  const std::string& Host() const { return listener_.Host(); }
  std::uint16_t Port() const { return listener_.Port(); }
  std::uint64_t FramingErrors() const {
    return framing_errors_.load(std::memory_order_relaxed);
  }

 private:
  /// Same shared-ptr snapshot discipline as the unix-socket transport
  /// (see UnixSocketServerTransport::Conn); only the wire format differs.
  struct Conn {
    explicit Conn(StreamSocket s, std::size_t max_frame)
        : sock(std::move(s)), reader(sock, max_frame) {}
    StreamSocket sock;
    FrameReader reader;  ///< touched by the reader thread only
    Mutex write_mu;
  };

  std::shared_ptr<Conn> Snapshot() RESCHED_EXCLUDES(mu_);
  static bool SendFrame(Conn& conn, const std::string& line);

  TcpListener listener_;
  std::size_t max_frame_bytes_;
  std::atomic<std::uint64_t> framing_errors_{0};
  Mutex mu_;  ///< guards the slot + greeting only, never held across I/O
  std::shared_ptr<Conn> conn_ RESCHED_GUARDED_BY(mu_);
  std::string greeting_ RESCHED_GUARDED_BY(mu_);
};

}  // namespace resched::service
