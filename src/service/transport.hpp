// Line transports for the reschedd protocol.
//
// The server speaks to exactly one Transport; the three implementations
// trade deployment for determinism:
//
//   * UnixSocketServerTransport — the production daemon path: one client
//     connection at a time over a Unix-domain socket, re-accepting after a
//     disconnect, greeting each connection with the handshake line.
//   * StdioTransport — `reschedd --stdio`: requests on stdin, responses on
//     stdout. Lets CI drive a full server lifecycle through a plain pipe
//     with no filesystem socket and no cleanup.
//   * PipeTransport — in-process channels for tests, benches and journal
//     replay: the client half (Send/Receive) runs in the test thread while
//     the server half (ReadLine/WriteLine) runs in a server thread, with
//     no serialization loss and no OS dependency.
//
// Thread contract: ReadLine is called by the server's reader thread only;
// WriteLine may be called from any worker (the server serializes writes
// with its own mutex — transports need not).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "util/socket.hpp"

namespace resched::service {

class Transport {
 public:
  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Blocks for the next request line; false on end of stream (client
  /// closed stdin / pipe closed / listener shut down).
  virtual bool ReadLine(std::string& line) = 0;

  /// Writes one response line; false when the peer is gone (the response
  /// is dropped — the server counts but does not retry).
  virtual bool WriteLine(const std::string& line) = 0;

  /// Installs the per-connection greeting. Single-connection transports
  /// emit it immediately; the socket transport replays it on every accept.
  virtual void SetGreeting(const std::string& line) { (void)WriteLine(line); }
};

/// Requests on stdin, responses on stdout (flushed per line).
class StdioTransport : public Transport {
 public:
  bool ReadLine(std::string& line) override;
  bool WriteLine(const std::string& line) override;
};

/// In-process pair of blocking line channels. The Transport interface is
/// the server half; Send/Receive/CloseRequests are the client half.
class PipeTransport : public Transport {
 public:
  // Server half.
  bool ReadLine(std::string& line) override;
  bool WriteLine(const std::string& line) override;

  // Client half.
  void Send(std::string line);
  /// Blocks for the next response line; false once the server is gone and
  /// every pending response was consumed.
  bool Receive(std::string& line);
  /// Client-side end-of-stream: the server's ReadLine starts returning
  /// false once the admitted lines drain (like closing stdin).
  void CloseRequests();
  /// Server-side close of the response stream (called on Serve() exit so a
  /// blocked Receive() unsticks).
  void CloseResponses();

 private:
  class LineChannel {
   public:
    void Push(std::string line);
    bool Pop(std::string& line);
    void Close();

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::string> lines_;
    bool closed_ = false;
  };

  LineChannel requests_;
  LineChannel responses_;
};

/// Unix-domain socket server endpoint: accepts one client at a time and
/// re-accepts after a disconnect. Serve() keeps running until a shutdown
/// verb arrives or Close() is called from another thread.
class UnixSocketServerTransport : public Transport {
 public:
  explicit UnixSocketServerTransport(const std::string& path);

  bool ReadLine(std::string& line) override;
  bool WriteLine(const std::string& line) override;
  void SetGreeting(const std::string& line) override;

  /// Stops accepting; a blocked ReadLine returns false.
  void Close();

  const std::string& Path() const { return listener_.Path(); }

 private:
  UnixListener listener_;
  /// Guards client_/reader_ swaps (reader thread) against concurrent
  /// worker writes; the blocking recv itself runs unlocked (reads and
  /// writes travel opposite directions on the same fd).
  std::mutex mu_;
  std::optional<UnixSocket> client_;
  std::optional<SocketLineReader> reader_;
  std::string greeting_;
};

}  // namespace resched::service
