// Bounded admission queue for the reschedd request pipeline.
//
// Admission control is the service's backpressure mechanism: the reader
// thread *tries* to enqueue and, when the queue is at capacity, rejects the
// request immediately with an `overloaded` error instead of blocking — a
// blocked reader would stop serving cancel/stats verbs, and an unbounded
// queue would hide overload until memory runs out. Workers block on Pop().
//
// Close() flips the queue into drain mode: no further pushes are accepted,
// blocked Pop() calls keep returning the items already admitted, and once
// the queue is empty Pop() returns false — which is exactly the graceful-
// shutdown contract ("never lose an accepted request").
//
// During drain, items whose deadline already passed (as judged by the
// installed expiry probe) are handed out *first* and flagged, so shutdown
// sheds doomed work immediately instead of executing a live backlog in
// front of requests that can only be answered with deadline errors.
//
// Every state member is guarded by mu_ (compiler-checked); notifications
// happen after the lock is dropped so a woken thread never bounces.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <utility>

#include "util/mutex.hpp"

namespace resched::service {

/// Why TryPush did (not) admit an item. A full queue and a closed queue
/// demand different client advice — "back off and retry" versus "this
/// daemon is going away" — so the rejection carries the reason.
enum class PushOutcome { kAccepted, kFull, kClosed };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission. kFull / kClosed reject without queueing (the
  /// caller turns them into `overloaded` / `shutting_down` responses).
  /// Closed wins when both would apply: after Close() the capacity state
  /// is no longer meaningful to a client.
  PushOutcome TryPush(T item) RESCHED_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return PushOutcome::kClosed;
      if (items_.size() >= capacity_) return PushOutcome::kFull;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return PushOutcome::kAccepted;
  }

  /// Installs the drain-expiry probe: `probe(item)` answers "is this item
  /// already past its deadline?". Install before threads start popping
  /// (the server wires it up during construction).
  void SetExpiryProbe(std::function<bool(const T&)> probe)
      RESCHED_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    expiry_probe_ = std::move(probe);
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; false only in the latter case. Once the queue is closed,
  /// items the expiry probe reports as already expired are returned ahead
  /// of FIFO order with `*expired_in_drain = true`, so a draining server
  /// sheds them without executing the live work queued in front.
  bool Pop(T& out, bool* expired_in_drain = nullptr) RESCHED_EXCLUDES(mu_) {
    if (expired_in_drain != nullptr) *expired_in_drain = false;
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) cv_.Wait(lock);
    if (items_.empty()) return false;
    if (closed_ && expiry_probe_) {
      for (auto it = items_.begin(); it != items_.end(); ++it) {
        if (expiry_probe_(*it)) {
          out = std::move(*it);
          items_.erase(it);
          if (expired_in_drain != nullptr) *expired_in_drain = true;
          return true;
        }
      }
    }
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops admission and wakes every blocked Pop(); already-admitted items
  /// are still handed out (drain semantics). Idempotent.
  void Close() RESCHED_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  std::size_t Size() const RESCHED_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  std::size_t Capacity() const { return capacity_; }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ RESCHED_GUARDED_BY(mu_);
  std::size_t capacity_;  ///< immutable after construction
  bool closed_ RESCHED_GUARDED_BY(mu_) = false;
  std::function<bool(const T&)> expiry_probe_ RESCHED_GUARDED_BY(mu_);
};

}  // namespace resched::service
