// Bounded admission queue for the reschedd request pipeline.
//
// Admission control is the service's backpressure mechanism: the reader
// thread *tries* to enqueue and, when the queue is at capacity, rejects the
// request immediately with an `overloaded` error instead of blocking — a
// blocked reader would stop serving cancel/stats verbs, and an unbounded
// queue would hide overload until memory runs out. Workers block on Pop().
//
// Close() flips the queue into drain mode: no further pushes are accepted,
// blocked Pop() calls keep returning the items already admitted, and once
// the queue is empty Pop() returns false — which is exactly the graceful-
// shutdown contract ("never lose an accepted request").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace resched::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission: false when the queue is full or closed (the
  /// caller turns that into an `overloaded` / `shutting down` rejection).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; false only in the latter case.
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops admission and wakes every blocked Pop(); already-admitted items
  /// are still handed out (drain semantics). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t Capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace resched::service
