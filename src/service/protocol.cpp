#include "service/protocol.hpp"

#include <string_view>
#include <utility>

#include "io/instance_io.hpp"
#include "sched/recovery.hpp"
#include "util/build_info.hpp"
#include "util/check.hpp"

namespace resched::service {
namespace {

/// Validated field extraction for the post-id phase: every shape error from
/// here on is the client's fault and carries the request id.
std::uint64_t GetSeed(const JsonValue& doc) {
  const std::int64_t raw = doc.GetInt("seed", 1);
  return static_cast<std::uint64_t>(raw);
}

ScheduleParams ParseScheduleParams(const JsonValue& doc,
                                   const std::string& id) {
  ScheduleParams p;
  p.algo = doc.GetString("algo", "pa");
  if (p.algo != "pa" && p.algo != "par" && p.algo != "allsw") {
    throw ProtocolError(kErrBadRequest, "unknown algo: " + p.algo, id);
  }
  p.seed = GetSeed(doc);
  p.budget_seconds = doc.GetDouble("budget", 0.0);
  if (p.budget_seconds < 0.0) {
    throw ProtocolError(kErrBadRequest, "budget must be >= 0", id);
  }
  // Without a wall-clock budget PA-R needs an iteration cap; 32 restarts is
  // the deterministic default. With a budget the cap defaults to unbounded.
  const std::int64_t iterations =
      doc.GetInt("iterations", p.budget_seconds > 0.0 ? 0 : 32);
  if (iterations < 0) {
    throw ProtocolError(kErrBadRequest, "iterations must be >= 0", id);
  }
  p.iterations = static_cast<std::size_t>(iterations);
  if (p.algo == "par" && p.budget_seconds <= 0.0 && p.iterations == 0) {
    throw ProtocolError(kErrBadRequest,
                        "par needs iterations > 0 or budget > 0", id);
  }
  p.module_reuse = doc.GetBool("module_reuse", false);
  p.sw_balancing = !doc.GetBool("no_balancing", false);
  p.run_floorplan = !doc.GetBool("no_floorplan", false);
  p.use_cache = doc.GetBool("cache", true);
  return p;
}

SimulateParams ParseSimulateParams(const JsonValue& doc,
                                   const std::string& id) {
  SimulateParams p;
  p.fault_rate = doc.GetDouble("fault_rate", 0.0);
  if (p.fault_rate < 0.0 || p.fault_rate > 1.0) {
    throw ProtocolError(kErrBadRequest, "fault_rate must be in [0, 1]", id);
  }
  const std::int64_t trials = doc.GetInt("trials", 1);
  if (trials <= 0) {
    throw ProtocolError(kErrBadRequest, "trials must be positive", id);
  }
  p.trials = static_cast<std::size_t>(trials);
  p.policy = doc.GetString("policy", "retry");
  try {
    (void)ParseRecoveryPolicy(p.policy);
  } catch (const InstanceError& e) {
    throw ProtocolError(kErrBadRequest, e.what(), id);
  }
  p.jitter = doc.GetDouble("jitter", 0.0);
  if (p.jitter < 0.0 || p.jitter >= 1.0) {
    throw ProtocolError(kErrBadRequest, "jitter must be in [0, 1)", id);
  }
  return p;
}

void ParseInstancePayload(const JsonValue& doc, Request& req) {
  if (!doc.Contains("instance") || !doc.At("instance").IsObject()) {
    throw ProtocolError(kErrBadRequest,
                        "an inline \"instance\" object is required", req.id);
  }
  try {
    req.instance =
        std::make_shared<const Instance>(InstanceFromJson(doc.At("instance")));
    req.instance->graph.Validate(req.instance->platform.Device());
  } catch (const InstanceError& e) {
    throw ProtocolError(kErrBadRequest, e.what(), req.id);
  }
  // One canonical serialization feeds both digests: the full-instance
  // digest keys the result cache, the platform digest keys the shared
  // floorplan-cache pool (identical fabrics share one cache).
  const JsonValue canonical = InstanceToJson(*req.instance);
  req.instance_digest = HashCanonicalText(canonical.Dump(-1));
  req.platform_digest =
      HashCanonicalText(canonical.At("platform").Dump(-1));
}

}  // namespace

const char* ToString(Verb verb) {
  switch (verb) {
    case Verb::kSchedule: return "schedule";
    case Verb::kSimulate: return "simulate";
    case Verb::kCancel: return "cancel";
    case Verb::kStats: return "stats";
    case Verb::kShutdown: return "shutdown";
  }
  return "unknown";
}

JsonParseLimits RequestParseLimits() {
  JsonParseLimits limits;
  limits.max_depth = 32;
  limits.max_bytes = 4u << 20;  // 4 MiB per request line
  // {"verb":"schedule","verb":"stats"} must be an error, not a coin flip
  // over which copy the validator saw versus which one ran.
  limits.reject_duplicate_keys = true;
  return limits;
}

bool ValidTenantName(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > 64) return false;
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Request ParseRequest(const std::string& line) {
  JsonValue doc;
  try {
    doc = JsonValue::Parse(line, RequestParseLimits());
  } catch (const JsonError& e) {
    throw ProtocolError(kErrParse, e.what());
  }
  if (!doc.IsObject()) {
    throw ProtocolError(kErrParse, "request must be a JSON object");
  }

  Request req;
  if (doc.Contains("id")) {
    const JsonValue& id = doc.At("id");
    if (!id.IsString() || id.AsString().empty()) {
      throw ProtocolError(kErrBadRequest, "id must be a non-empty string");
    }
    req.id = id.AsString();
    req.had_id = true;
  }

  try {
    const std::string verb = doc.GetString("verb", "");
    if (verb == "schedule") {
      req.verb = Verb::kSchedule;
    } else if (verb == "simulate") {
      req.verb = Verb::kSimulate;
    } else if (verb == "cancel") {
      req.verb = Verb::kCancel;
    } else if (verb == "stats") {
      req.verb = Verb::kStats;
    } else if (verb == "shutdown") {
      req.verb = Verb::kShutdown;
    } else if (verb.empty()) {
      throw ProtocolError(kErrBadRequest, "\"verb\" is required", req.id);
    } else {
      throw ProtocolError(kErrBadRequest, "unknown verb: " + verb, req.id);
    }

    req.deadline_present = doc.Contains("deadline_ms");
    req.deadline_ms = doc.GetDouble("deadline_ms", 0.0);
    if (req.deadline_ms < 0.0) {
      throw ProtocolError(kErrBadRequest, "deadline_ms must be >= 0", req.id);
    }

    if (doc.Contains("tenant")) {
      const JsonValue& tenant = doc.At("tenant");
      if (!tenant.IsString() || !ValidTenantName(tenant.AsString())) {
        throw ProtocolError(
            kErrBadRequest,
            "tenant must be 1-64 chars from [A-Za-z0-9_.-]", req.id);
      }
      req.tenant = tenant.AsString();
    }

    if (req.verb == Verb::kSchedule || req.verb == Verb::kSimulate) {
      ParseInstancePayload(doc, req);
      req.sched = ParseScheduleParams(doc, req.id);
      if (req.verb == Verb::kSimulate) {
        req.sim = ParseSimulateParams(doc, req.id);
      }
    } else if (req.verb == Verb::kCancel) {
      req.cancel_target = doc.GetString("target", "");
      if (req.cancel_target.empty()) {
        throw ProtocolError(kErrBadRequest,
                            "cancel needs a \"target\" request id", req.id);
      }
    }
  } catch (const JsonError& e) {
    // Wrong field type inside an otherwise-parsable document.
    throw ProtocolError(kErrBadRequest, e.what(), req.id);
  }
  return req;
}

std::string RequestKeyText(const Request& request) {
  JsonObject key;
  key["verb"] = ToString(request.verb);
  key["instance"] = request.instance_digest.ToHex();
  key["algo"] = request.sched.algo;
  key["seed"] = std::to_string(request.sched.seed);
  key["iterations"] = request.sched.iterations;
  key["budget"] = request.sched.budget_seconds;
  key["module_reuse"] = request.sched.module_reuse;
  key["sw_balancing"] = request.sched.sw_balancing;
  key["run_floorplan"] = request.sched.run_floorplan;
  if (request.verb == Verb::kSimulate) {
    key["fault_rate"] = request.sim.fault_rate;
    key["trials"] = request.sim.trials;
    key["policy"] = request.sim.policy;
    key["jitter"] = request.sim.jitter;
  }
  return JsonValue(std::move(key)).Dump(-1);
}

std::string OkBody(JsonObject fields) {
  fields["ok"] = true;
  return JsonValue(std::move(fields)).Dump(-1);
}

std::string ErrorBody(const std::string& code, const std::string& message) {
  JsonObject error;
  error["code"] = code;
  error["message"] = message;
  JsonObject body;
  body["ok"] = false;
  body["error"] = JsonValue(std::move(error));
  return JsonValue(std::move(body)).Dump(-1);
}

std::string WithId(const std::string& id, const std::string& body) {
  RESCHED_CHECK_MSG(body.size() > 2 && body.front() == '{' &&
                        body.back() == '}',
                    "response body must be a non-empty JSON object");
  // JsonValue(id).Dump escapes any quotes/control characters a hostile
  // client put into its id.
  const std::string id_json =
      id.empty() ? std::string("null") : JsonValue(id).Dump(-1);
  return "{\"id\":" + id_json + "," + body.substr(1);
}

bool StripResponseId(const std::string& line, std::string& body_out) {
  constexpr std::string_view kPrefix = "{\"id\":";
  if (line.size() < kPrefix.size() + 2 ||
      line.compare(0, kPrefix.size(), kPrefix) != 0 || line.back() != '}') {
    return false;
  }
  std::size_t pos = kPrefix.size();
  if (line[pos] == '"') {
    // String id: skip to the closing quote, honoring backslash escapes
    // (WithId escaped whatever the client sent, so the value may contain
    // \" sequences).
    ++pos;
    while (pos < line.size()) {
      if (line[pos] == '\\') {
        pos += 2;
        continue;
      }
      if (line[pos] == '"') break;
      ++pos;
    }
    if (pos >= line.size()) return false;
    ++pos;  // past the closing quote
  } else {
    // Non-string id (the `null` of an unparsable request): scan to the
    // separating comma — no nesting is possible before it.
    while (pos < line.size() && line[pos] != ',') ++pos;
  }
  if (pos >= line.size() || line[pos] != ',') return false;
  body_out = "{" + line.substr(pos + 1);
  return true;
}

std::string HandshakeLine() {
  const BuildInfo& build = GetBuildInfo();
  JsonObject info;
  info["version"] = build.version;
  info["git"] = build.git;
  info["build_type"] = build.build_type;
  info["sanitizers"] = build.sanitizers;
  info["compiler"] = build.compiler;
  JsonObject hs;
  hs["reschedd"] = JsonValue(std::move(info));
  hs["protocol"] = kProtocolVersion;
  return JsonValue(std::move(hs)).Dump(-1);
}

}  // namespace resched::service
