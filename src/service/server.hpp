// reschedd — the batch scheduling service core.
//
// One reader thread (the caller of Serve()) parses request lines, answers
// control verbs (stats/cancel) inline, and admits scheduling work into
// per-tenant weighted-fair queues (service/fair_queue.hpp); a
// util/thread_pool worker pool drains them under deficit round-robin.
// Each worker keeps a warm (PaContext, PaScratch) slot that is reused
// across consecutive requests for the same instance+options, and all
// workers share one FloorplanCache per distinct platform plus one result
// cache keyed on the canonical request digest — an identical submission
// is served bit-identically from the cache without touching the
// scheduler. The result cache is shared across tenants (tenant is an
// admission concept, not part of the request key).
//
// Lifecycle guarantees:
//   * admission is non-blocking: a tenant at its queue capacity rejects
//     with `overloaded` (backpressure per tenant, not buffering);
//   * every accepted request gets exactly one response, even across a
//     shutdown (the queues drain before Serve() returns, shedding
//     already-expired items first);
//   * the shutdown verb's own response is written last;
//   * deadlines and cancel verbs unwind cooperatively through the PA/PA-R
//     cancellation hooks — a worker is never killed mid-flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/fair_queue.hpp"
#include "service/journal.hpp"
#include "service/metrics_export.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/cancel.hpp"
#include "util/memo_map.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

namespace resched {
class FloorplanCache;
struct Schedule;
struct PaOptions;
namespace pa {
class PaContext;
class PaScratch;
}  // namespace pa
}  // namespace resched

namespace resched::service {

struct ServerOptions {
  std::size_t workers = 2;
  /// Admission-queue capacity; requests beyond it are rejected with
  /// `overloaded` (backpressure, not buffering).
  std::size_t queue_capacity = 64;
  /// Serve identical deterministic submissions from a response cache.
  bool result_cache = true;
  std::size_t result_cache_capacity = 512;
  /// Share one floorplan-feasibility cache per distinct platform across
  /// requests and workers.
  bool floorplan_cache = true;
  /// Framed request journal (empty = disabled).
  std::string journal_path;
  /// When the journal pushes records through fsync (none|batch|always).
  JournalSync journal_sync = JournalSync::kBatch;
  /// Journal to replay into the result cache + dedup map at boot (empty =
  /// cold start; a missing file is a fresh boot, not an error). Usually
  /// the same path as journal_path on a restarted daemon.
  std::string warm_start_path;
  /// Bound on the id -> response dedup map (oldest-by-id eviction; a
  /// bound, not an LRU — its job is capping memory, not hit rate).
  std::size_t completed_capacity = 4096;

  /// Tenant -> DRR weight (quantum); unlisted tenants get
  /// default_tenant_weight. queue_capacity above is the *per-tenant*
  /// capacity (with only the default tenant active, admission behaves
  /// exactly like the old single BoundedQueue).
  std::map<std::string, std::uint32_t> tenant_weights;
  std::uint32_t default_tenant_weight = 1;
  /// Max popped-but-unfinished requests per tenant (0 = unlimited).
  std::size_t per_tenant_inflight = 0;
  /// Prometheus textfile target (empty = disabled). Written atomically
  /// every metrics_interval_ms and once more on Serve() exit.
  std::string metrics_out_path;
  double metrics_interval_ms = 1000.0;
  /// Keep exact per-tenant queue-wait samples (bounded) so stats can
  /// report exact p50/p99 instead of histogram-interpolated estimates.
  /// Bench/test-only: off by default to keep the serving path lean.
  bool record_latency_samples = false;
};

struct ServiceCounters {
  std::uint64_t received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t rejected_invalid = 0;  ///< parse/validation rejections
  std::uint64_t completed_ok = 0;
  std::uint64_t failed = 0;            ///< internal errors
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t deduped = 0;         ///< duplicate ids answered from history
  std::uint64_t rejected_shutting_down = 0;
  std::uint64_t journal_errors = 0;  ///< appends/fsyncs that failed
};

/// What a warm start recovered from the journal (all zero on cold start).
struct RecoveryInfo {
  bool enabled = false;
  std::size_t records_scanned = 0;
  std::uint64_t torn_bytes = 0;      ///< tail bytes dropped by the scan
  std::size_t cache_restored = 0;    ///< result-cache entries re-inserted
  std::size_t dedup_restored = 0;    ///< completed ids re-registered
};

class RescheddServer {
 public:
  explicit RescheddServer(Transport& transport, ServerOptions options = {});
  ~RescheddServer();

  /// Runs the full serving loop; returns after a shutdown verb (drained)
  /// or transport end-of-stream. Call at most once.
  void Serve();

  ServiceCounters Counters() const;
  const RecoveryInfo& Recovery() const { return recovery_; }

 private:
  struct Pending {
    Request request;
    std::shared_ptr<CancelToken> token;
    double admitted_at_ms = 0.0;  ///< uptime stamp for queue-wait metrics
  };

  /// Per-tenant observability. Counters are atomics and the histograms
  /// are internally locked, so the map lock (tenants_mu_) only covers
  /// slot creation/lookup — hot-path updates never serialize on it.
  struct TenantStats {
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> shed_overload{0};
    std::atomic<std::uint64_t> shed_shutdown{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<std::uint64_t> deadline_expired{0};
    std::atomic<std::uint64_t> exec{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> deduped{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> drain_shed{0};  ///< expired-first drain pops
    LatencyHistogram queue_wait;
    LatencyHistogram service_time;
    Mutex samples_mu;
    std::vector<double> queue_wait_samples RESCHED_GUARDED_BY(samples_mu);
  };

  /// Per-worker warm slot: the (context, scratch) pair is rebuilt only
  /// when the instance digest or scheduling options change between
  /// consecutive requests on this worker.
  struct WarmSlot {
    std::string fingerprint;
    std::shared_ptr<const Instance> instance;
    std::unique_ptr<PaOptions> options;
    std::unique_ptr<pa::PaContext> ctx;
    std::unique_ptr<pa::PaScratch> scratch;

    WarmSlot();
    ~WarmSlot();
  };

  struct PlatformCacheEntry {
    std::unique_ptr<FloorplanCache> cache;
    /// Keeps the device the cache was built from alive.
    std::shared_ptr<const Instance> anchor;
  };

  struct DigestHash {
    std::uint64_t operator()(const Digest128& d) const { return d.lo; }
  };

  bool ReadLoop();
  void Admit(Request request)
      RESCHED_EXCLUDES(registry_mu_, completed_mu_);
  bool CancelTarget(const std::string& target) RESCHED_EXCLUDES(registry_mu_);
  void WorkerLoop();
  void Process(Pending& item, WarmSlot& warm)
      RESCHED_EXCLUDES(registry_mu_, write_mu_, completed_mu_);
  /// Replays options_.warm_start_path into the result cache and the
  /// completed-id map (no re-solving — recorded bodies are restored
  /// byte-for-byte). Called from the constructor.
  void WarmStart() RESCHED_EXCLUDES(completed_mu_);
  /// Looks up a completed id; true (and fills `body`) on a hit.
  bool FindCompleted(const std::string& id, std::string& body)
      RESCHED_EXCLUDES(completed_mu_);
  /// Records a completed id's body, evicting at completed_capacity.
  void RememberCompleted(const std::string& id, const std::string& body)
      RESCHED_EXCLUDES(completed_mu_);
  std::string Execute(const Request& request, const CancelToken& token,
                      WarmSlot& warm);
  std::string ExecuteSchedule(const Request& request, const CancelToken& token,
                              WarmSlot& warm);
  std::string ExecuteSimulate(const Request& request, const CancelToken& token,
                              WarmSlot& warm);
  Schedule ComputeSchedule(const Request& request, const CancelToken& token,
                           WarmSlot& warm, std::size_t& iterations);
  std::string StatsBody() RESCHED_EXCLUDES(pool_mu_, tenants_mu_);
  FloorplanCache* PoolFor(const Request& request) RESCHED_EXCLUDES(pool_mu_);
  /// Finds (or creates) the stats slot for `tenant`.
  TenantStats& TenantStatsFor(const std::string& tenant)
      RESCHED_EXCLUDES(tenants_mu_);
  void RecordQueueWait(TenantStats& stats, double wait_ms);
  /// Exact p50/p99 from recorded samples when enabled, histogram
  /// interpolation otherwise.
  void QueueWaitQuantiles(TenantStats& stats, double& p50, double& p99);
  std::vector<MetricFamily> BuildMetricFamilies()
      RESCHED_EXCLUDES(tenants_mu_);
  void WriteMetricsNow();
  void MetricsLoop() RESCHED_EXCLUDES(metrics_mu_);
  /// `served` tags the journaled response record with where the body came
  /// from ("exec", "cache", "dedup", "error", "control") — the chaos
  /// harness counts "exec" records to prove nothing ran twice.
  void Respond(const std::string& id, const std::string& body,
               const char* served) RESCHED_EXCLUDES(write_mu_);
  std::string NextId();

  Transport& transport_;
  ServerOptions options_;

  WeightedFairQueue<Pending> queue_;
  WallTimer uptime_;  ///< monotonic base for queue-wait stamps
  std::unique_ptr<ConcurrentMemoMap<Digest128, std::string, DigestHash>>
      result_cache_;
  std::unique_ptr<Journal> journal_;

  /// Serializes transport writes + journal order. Guards no member:
  /// transport_ and journal_ are internally thread-safe; this lock only
  /// pins "response hits the wire" and "response hits the journal" into
  /// one atomic step so the journal's replay order matches the client's.
  Mutex write_mu_;

  Mutex registry_mu_;
  std::map<std::string, std::shared_ptr<CancelToken>> registry_
      RESCHED_GUARDED_BY(registry_mu_);

  /// Completed id -> response body (without id): the idempotent-
  /// resubmission ledger. A duplicate of a finished request is re-answered
  /// from here ("dedup") instead of re-executing; warm start seeds it from
  /// the journal so the contract survives a restart.
  Mutex completed_mu_;
  std::map<std::string, std::string> completed_
      RESCHED_GUARDED_BY(completed_mu_);

  RecoveryInfo recovery_;  ///< written once in the ctor, read-only after

  Mutex pool_mu_;
  std::map<std::string, PlatformCacheEntry> floorplan_pool_
      RESCHED_GUARDED_BY(pool_mu_);

  std::atomic<std::uint64_t> next_id_{0};
  std::string shutdown_id_;

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_overloaded_{0};
  std::atomic<std::uint64_t> rejected_invalid_{0};
  std::atomic<std::uint64_t> completed_ok_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> deduped_{0};
  std::atomic<std::uint64_t> rejected_shutting_down_{0};
  std::atomic<std::uint64_t> journal_errors_{0};

  Mutex tenants_mu_;
  /// unique_ptr slots so references stay stable while the map grows.
  std::map<std::string, std::unique_ptr<TenantStats>> tenant_stats_
      RESCHED_GUARDED_BY(tenants_mu_);

  /// Metrics-writer thread state (runs only when metrics_out_path set).
  std::thread metrics_thread_;
  Mutex metrics_mu_;
  CondVar metrics_cv_;
  bool metrics_stop_ RESCHED_GUARDED_BY(metrics_mu_) = false;
  std::atomic<std::uint64_t> metrics_writes_{0};
  std::atomic<std::uint64_t> metrics_errors_{0};
};

}  // namespace resched::service
