#include "service/journal.hpp"

#include <map>
#include <thread>
#include <utility>

#include "service/server.hpp"
#include "service/transport.hpp"
#include "util/build_info.hpp"
#include "util/common.hpp"
#include "util/json.hpp"

namespace resched::service {

Journal::Journal(const std::string& path)
    : out_(path, std::ios::out | std::ios::app) {
  if (!out_) {
    throw InstanceError("cannot open journal for appending: " + path);
  }
  const BuildInfo& build_info = GetBuildInfo();
  JsonObject build;
  build["version"] = build_info.version;
  build["git"] = build_info.git;
  build["build_type"] = build_info.build_type;
  build["sanitizers"] = build_info.sanitizers;
  JsonObject meta;
  meta["journal"] = "meta";
  meta["protocol"] = kProtocolVersion;
  meta["build"] = JsonValue(std::move(build));
  AppendLine(JsonValue(std::move(meta)).Dump(-1));
}

void Journal::AppendRequest(const std::string& id,
                            const std::string& raw_line) {
  JsonObject record;
  record["journal"] = "request";
  record["id"] = id;
  record["line"] = raw_line;
  AppendLine(JsonValue(std::move(record)).Dump(-1));
}

void Journal::AppendResponse(const std::string& id,
                             const std::string& response_line) {
  JsonObject record;
  record["journal"] = "response";
  record["id"] = id;
  record["line"] = response_line;
  AppendLine(JsonValue(std::move(record)).Dump(-1));
}

void Journal::AppendLine(const std::string& line) {
  // The lock intentionally covers the stream write + flush: it IS the
  // serialization point that keeps journal records whole lines.
  MutexLock lock(mu_);
  out_ << line << '\n';
  out_.flush();  // resched-lint: allow(lock-held-over-blocking-call)
}

namespace {

/// True when the journal record pair (request, response) is in the
/// replayable class: deterministic scheduling work whose original response
/// was ok. Everything else legitimately depends on timing or server state.
bool Replayable(const Request& request, const JsonValue& original_response) {
  if (request.verb != Verb::kSchedule && request.verb != Verb::kSimulate) {
    return false;
  }
  if (!request.Deterministic()) return false;
  return original_response.GetBool("ok", false);
}

}  // namespace

ReplayOutcome ReplayJournal(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InstanceError("cannot open journal: " + path);

  std::vector<std::pair<std::string, std::string>> requests;  // (id, raw)
  std::map<std::string, std::string> responses;               // id -> line
  bool saw_meta = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue record = JsonValue::Parse(line);
    const std::string kind = record.GetString("journal", "");
    if (kind == "meta") {
      saw_meta = true;
    } else if (kind == "request") {
      requests.emplace_back(record.GetString("id", ""),
                            record.At("line").AsString());
    } else if (kind == "response") {
      responses[record.GetString("id", "")] = record.At("line").AsString();
    } else {
      throw InstanceError("not a reschedd journal record: " + line);
    }
  }
  if (!saw_meta) throw InstanceError("journal has no meta record: " + path);

  ReplayOutcome outcome;
  outcome.requests = requests.size();

  // A fresh single-worker in-process server; requests are replayed
  // serially (submit, then wait), so admission never rejects and ordering
  // is reproducible.
  PipeTransport pipe;
  ServerOptions server_options;
  server_options.workers = 1;
  server_options.queue_capacity = 2;
  RescheddServer server(pipe, server_options);
  std::thread serve_thread([&server] { server.Serve(); });
  std::string reply;
  (void)pipe.Receive(reply);  // handshake greeting

  for (const auto& [id, raw] : requests) {
    const auto found = responses.find(id);
    if (found == responses.end()) {
      ++outcome.skipped;  // session died before responding
      continue;
    }
    Request request;
    try {
      request = ParseRequest(raw);
    } catch (const ProtocolError&) {
      ++outcome.skipped;
      continue;
    }
    const std::string& original = found->second;
    if (!Replayable(request, JsonValue::Parse(original))) {
      ++outcome.skipped;
      continue;
    }

    // Pin the originally-assigned id and strip the wall-clock deadline —
    // neither is part of the deterministic result.
    JsonValue doc = JsonValue::Parse(raw, RequestParseLimits());
    JsonObject fields = doc.AsObject();
    fields["id"] = id;
    fields.erase("deadline_ms");
    pipe.Send(JsonValue(std::move(fields)).Dump(-1));
    if (!pipe.Receive(reply)) break;  // server gone
    ++outcome.replayed;
    if (reply == original) {
      ++outcome.matched;
    } else {
      ++outcome.mismatched;
      outcome.mismatched_ids.push_back(id);
    }
  }

  pipe.Send("{\"verb\":\"shutdown\"}");
  while (pipe.Receive(reply)) {
    // Drain the shutdown acknowledgment (and anything else in flight).
    if (reply.find("\"verb\":\"shutdown\"") != std::string::npos) break;
  }
  serve_thread.join();
  return outcome;
}

}  // namespace resched::service
