#include "service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <thread>
#include <utility>

#include "service/server.hpp"
#include "service/transport.hpp"
#include "util/build_info.hpp"
#include "util/crc32c.hpp"
#include "util/io_faults.hpp"
#include "util/json.hpp"

namespace resched::service {
namespace {

constexpr std::string_view kV2Prefix = "#v2 ";

/// Cap on consecutive EINTR/EAGAIN results before an append gives up.
/// Generous versus anything a signal storm produces, small enough that an
/// injected 100%-EAGAIN spec terminates with a JournalError, not a hang.
constexpr int kMaxTransientRetries = 128;

std::string ErrnoText() { return std::strerror(errno); }

/// Validates a v2 frame (line without its newline): prefix, decimal
/// length, 8-hex CRC32C, payload of exactly that length and checksum.
bool ParseV2Frame(std::string_view line, std::string_view& payload_out) {
  if (line.size() < kV2Prefix.size() ||
      line.substr(0, kV2Prefix.size()) != kV2Prefix) {
    return false;
  }
  std::size_t pos = kV2Prefix.size();
  std::uint64_t len = 0;
  bool any_digit = false;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    len = len * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    if (len > (std::uint64_t{1} << 30)) return false;  // absurd frame
    ++pos;
    any_digit = true;
  }
  if (!any_digit || pos >= line.size() || line[pos] != ' ') return false;
  ++pos;
  if (pos + 8 >= line.size()) return false;
  std::uint32_t crc = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const char c = line[pos + i];
    std::uint32_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    crc = (crc << 4) | nibble;
  }
  pos += 8;
  if (line[pos] != ' ') return false;
  ++pos;
  const std::string_view payload = line.substr(pos);
  if (payload.size() != len) return false;
  if (Crc32c(payload) != crc) return false;
  payload_out = payload;
  return true;
}

/// Parses a record payload (the JSON both versions share) into `out`.
/// False on anything that is not a well-formed journal record.
bool ParsePayload(std::string_view payload, int version, JournalRecord& out) {
  JsonValue doc;
  try {
    doc = JsonValue::Parse(std::string(payload));
  } catch (const std::exception&) {
    return false;
  }
  try {
    const std::string kind = doc.GetString("journal", "");
    if (kind == "meta") {
      out = JournalRecord{};
      out.kind = kind;
    } else if (kind == "request" || kind == "response") {
      out = JournalRecord{};
      out.kind = kind;
      out.id = doc.GetString("id", "");
      out.line = doc.At("line").AsString();
      out.served = doc.GetString("served", "");
    } else {
      return false;
    }
  } catch (const std::exception&) {
    return false;
  }
  out.version = version;
  return true;
}

/// Would this complete line parse as a record (either framing)? Used to
/// tell a torn tail (nothing valid after the failure) from interior
/// corruption (valid records after it).
bool LineValidates(std::string_view line) {
  JournalRecord record;
  if (line.size() >= kV2Prefix.size() &&
      line.substr(0, kV2Prefix.size()) == kV2Prefix) {
    std::string_view payload;
    return ParseV2Frame(line, payload) && ParsePayload(payload, 2, record);
  }
  if (line.empty()) return false;
  return ParsePayload(line, 1, record);
}

}  // namespace

JournalSync ParseJournalSync(const std::string& text) {
  if (text == "none") return JournalSync::kNone;
  if (text == "batch") return JournalSync::kBatch;
  if (text == "always") return JournalSync::kAlways;
  throw JournalError("bad journal sync policy '" + text +
                     "' (expected none|batch|always)");
}

std::string FrameRecordV2(std::string_view payload) {
  char crc_hex[9];
  std::snprintf(crc_hex, sizeof crc_hex, "%08x", Crc32c(payload));
  std::string line;
  line.reserve(payload.size() + 24);
  line.append(kV2Prefix);
  line.append(std::to_string(payload.size()));
  line.push_back(' ');
  line.append(crc_hex, 8);
  line.push_back(' ');
  line.append(payload);
  line.push_back('\n');
  return line;
}

JournalScan ScanJournalText(std::string_view text) {
  JournalScan scan;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) break;  // unterminated tail
    const std::string_view line = text.substr(pos, nl - pos);
    if (line.empty()) {  // tolerated, as the v1 reader did
      pos = nl + 1;
      continue;
    }
    JournalRecord record;
    bool parsed = false;
    if (line.size() >= kV2Prefix.size() &&
        line.substr(0, kV2Prefix.size()) == kV2Prefix) {
      std::string_view payload;
      parsed = ParseV2Frame(line, payload) && ParsePayload(payload, 2, record);
    } else {
      parsed = ParsePayload(line, 1, record);
    }
    if (!parsed) break;
    if (record.version == 2) {
      ++scan.v2_records;
    } else {
      ++scan.v1_records;
    }
    if (record.kind == "meta") scan.saw_meta = true;
    scan.records.push_back(std::move(record));
    pos = nl + 1;
  }
  scan.valid_bytes = pos;
  scan.torn_bytes = text.size() - pos;

  if (scan.torn_bytes > 0) {
    // A crash tears at most the record being appended, so nothing valid
    // can follow the failure point in an honest journal. A valid record
    // after it means the damage is interior — refuse rather than fake a
    // shorter history.
    std::string_view tail = text.substr(pos);
    const std::size_t first_nl = tail.find('\n');
    if (first_nl != std::string_view::npos) {
      tail = tail.substr(first_nl + 1);
      std::size_t tpos = 0;
      while (tpos < tail.size()) {
        const std::size_t nl = tail.find('\n', tpos);
        if (nl == std::string_view::npos) break;
        if (LineValidates(tail.substr(tpos, nl - tpos))) {
          throw JournalError(
              "interior journal corruption: invalid record at byte " +
              std::to_string(pos) + " is followed by valid records");
        }
        tpos = nl + 1;
      }
    }
  }
  return scan;
}

JournalScan ScanJournalFile(const std::string& path, bool truncate_torn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw JournalError("cannot open journal: " + path + ": " + ErrnoText());
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  JournalScan scan = ScanJournalText(text);
  if (truncate_torn && scan.torn_bytes > 0) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0) {
      throw JournalError("cannot open journal for truncation: " + path + ": " +
                         ErrnoText());
    }
    if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
      const std::string reason = ErrnoText();
      (void)::close(fd);
      throw JournalError("cannot truncate torn journal tail: " + path + ": " +
                         reason);
    }
    if (::close(fd) != 0) {
      throw JournalError("close after truncation failed: " + path + ": " +
                         ErrnoText());
    }
  }
  return scan;
}

Journal::Journal(const std::string& path, JournalSync sync)
    : path_(path), sync_(sync) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno != ENOENT) {
      throw JournalError("cannot stat journal: " + path + ": " + ErrnoText());
    }
  } else if (st.st_size > 0) {
    // Recovery-first open: cut any torn tail so this session's appends
    // start at a record boundary, and remember what was dropped.
    const JournalScan scan = ScanJournalFile(path, /*truncate_torn=*/true);
    report_.valid_bytes = scan.valid_bytes;
    report_.torn_bytes = scan.torn_bytes;
    report_.records = scan.records.size();
  }

  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw JournalError("cannot open journal for appending: " + path + ": " +
                       ErrnoText());
  }
  {
    MutexLock lock(mu_);
    fd_ = fd;
  }

  const BuildInfo& build_info = GetBuildInfo();
  JsonObject build;
  build["version"] = build_info.version;
  build["git"] = build_info.git;
  build["build_type"] = build_info.build_type;
  build["sanitizers"] = build_info.sanitizers;
  JsonObject meta;
  meta["journal"] = "meta";
  meta["protocol"] = kProtocolVersion;
  meta["build"] = JsonValue(std::move(build));
  AppendPayload(JsonValue(std::move(meta)).Dump(-1));
}

Journal::~Journal() {
  MutexLock lock(mu_);
  if (fd_ < 0) return;
  if (sync_ != JournalSync::kNone && appends_since_sync_ > 0) {
    // Best effort in a destructor: nothing useful can be done with an
    // fsync failure during unwinding.
    (void)io_faults::Fsync(IoStream::kJournal, fd_);
  }
  (void)::close(fd_);
  fd_ = -1;
}

void Journal::AppendRequest(const std::string& id,
                            const std::string& raw_line) {
  JsonObject record;
  record["journal"] = "request";
  record["id"] = id;
  record["line"] = raw_line;
  AppendPayload(JsonValue(std::move(record)).Dump(-1));
}

void Journal::AppendResponse(const std::string& id,
                             const std::string& response_line,
                             const std::string& served) {
  JsonObject record;
  record["journal"] = "response";
  record["id"] = id;
  record["line"] = response_line;
  if (!served.empty()) record["served"] = served;
  AppendPayload(JsonValue(std::move(record)).Dump(-1));
}

void Journal::AppendPayload(const std::string& payload) {
  const std::string line = FrameRecordV2(payload);
  // The lock intentionally covers the write: it IS the serialization
  // point that keeps journal records whole lines (and keeps the fsync
  // cadence an exact count of durable records).
  MutexLock lock(mu_);
  if (fd_ < 0) throw JournalError("append to a closed journal: " + path_);
  std::size_t done = 0;
  int transient = 0;
  while (done < line.size()) {
    const ssize_t n = io_faults::Write(IoStream::kJournal, fd_,
                                       line.data() + done, line.size() - done);
    if (n < 0) {
      if ((errno == EINTR || errno == EAGAIN) &&
          ++transient < kMaxTransientRetries) {
        continue;
      }
      throw JournalError("journal append failed at byte " +
                         std::to_string(done) + "/" +
                         std::to_string(line.size()) + ": " + path_ + ": " +
                         ErrnoText());
    }
    if (n == 0 && ++transient >= kMaxTransientRetries) {
      throw JournalError("journal append made no progress at byte " +
                         std::to_string(done) + "/" +
                         std::to_string(line.size()) + ": " + path_);
    }
    done += static_cast<std::size_t>(n);
  }
  ++appends_since_sync_;
  const bool want_sync =
      sync_ == JournalSync::kAlways ||
      (sync_ == JournalSync::kBatch &&
       appends_since_sync_ >= kBatchSyncInterval);
  if (want_sync) {
    transient = 0;
    while (io_faults::Fsync(IoStream::kJournal, fd_) != 0) {
      if (errno == EINTR && ++transient < kMaxTransientRetries) continue;
      throw JournalError("journal fsync failed: " + path_ + ": " +
                         ErrnoText());
    }
    appends_since_sync_ = 0;
  }
}

void Journal::Sync() {
  MutexLock lock(mu_);
  if (fd_ < 0) return;
  int transient = 0;
  while (io_faults::Fsync(IoStream::kJournal, fd_) != 0) {
    if (errno == EINTR && ++transient < kMaxTransientRetries) continue;
    throw JournalError("journal fsync failed: " + path_ + ": " + ErrnoText());
  }
  appends_since_sync_ = 0;
}

namespace {

/// True when the journal record pair (request, response) is in the
/// replayable class: deterministic scheduling work whose original response
/// was ok. Everything else legitimately depends on timing or server state.
bool Replayable(const Request& request, const JsonValue& original_response) {
  if (request.verb != Verb::kSchedule && request.verb != Verb::kSimulate) {
    return false;
  }
  if (!request.Deterministic()) return false;
  return original_response.GetBool("ok", false);
}

}  // namespace

ReplayOutcome ReplayJournal(const std::string& path) {
  const JournalScan scan = ScanJournalFile(path, /*truncate_torn=*/false);
  if (!scan.saw_meta) {
    throw InstanceError("journal has no meta record: " + path);
  }

  std::vector<std::pair<std::string, std::string>> requests;  // (id, raw)
  std::map<std::string, std::string> responses;               // id -> line
  requests.reserve(scan.records.size());
  for (const JournalRecord& record : scan.records) {
    if (record.kind == "request") {
      requests.emplace_back(record.id, record.line);
    } else if (record.kind == "response") {
      responses[record.id] = record.line;
    }
  }

  ReplayOutcome outcome;
  outcome.requests = requests.size();
  outcome.torn_bytes = scan.torn_bytes;

  // A fresh single-worker in-process server; requests are replayed
  // serially (submit, then wait), so admission never rejects and ordering
  // is reproducible.
  PipeTransport pipe;
  ServerOptions server_options;
  server_options.workers = 1;
  server_options.queue_capacity = 2;
  RescheddServer server(pipe, server_options);
  std::thread serve_thread([&server] { server.Serve(); });
  std::string reply;
  (void)pipe.Receive(reply);  // handshake greeting

  for (const auto& [id, raw] : requests) {
    const auto found = responses.find(id);
    if (found == responses.end()) {
      ++outcome.skipped;  // session died before responding
      continue;
    }
    Request request;
    try {
      request = ParseRequest(raw);
    } catch (const ProtocolError&) {
      ++outcome.skipped;
      continue;
    }
    const std::string& original = found->second;
    if (!Replayable(request, JsonValue::Parse(original))) {
      ++outcome.skipped;
      continue;
    }

    // Pin the originally-assigned id and strip the wall-clock deadline —
    // neither is part of the deterministic result.
    JsonValue doc = JsonValue::Parse(raw, RequestParseLimits());
    JsonObject fields = doc.AsObject();
    fields["id"] = id;
    fields.erase("deadline_ms");
    pipe.Send(JsonValue(std::move(fields)).Dump(-1));
    if (!pipe.Receive(reply)) break;  // server gone
    ++outcome.replayed;
    if (reply == original) {
      ++outcome.matched;
    } else {
      ++outcome.mismatched;
      outcome.mismatched_ids.push_back(id);
    }
  }

  pipe.Send("{\"verb\":\"shutdown\"}");
  while (pipe.Receive(reply)) {
    // Drain the shutdown acknowledgment (and anything else in flight).
    if (reply.find("\"verb\":\"shutdown\"") != std::string::npos) break;
  }
  serve_thread.join();
  return outcome;
}

}  // namespace resched::service
