#include "service/server.hpp"

#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "baseline/reference.hpp"
#include "core/pa_scheduler.hpp"
#include "core/pa_state.hpp"
#include "core/randomized.hpp"
#include "floorplan/floorplan_cache.hpp"
#include "io/schedule_io.hpp"
#include "sched/validator.hpp"
#include "sim/executor.hpp"
#include "util/build_info.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace resched::service {
namespace {

std::int64_t AsInt64(std::uint64_t v) { return static_cast<std::int64_t>(v); }

FairQueueOptions MakeQueueOptions(const ServerOptions& options) {
  FairQueueOptions q;
  q.per_tenant_capacity = options.queue_capacity;
  q.per_tenant_inflight = options.per_tenant_inflight;
  q.weights = options.tenant_weights;
  q.default_weight = options.default_tenant_weight;
  return q;
}

/// Bound on the exact-sample vectors (record_latency_samples) so a long
/// bench run cannot grow them without limit.
constexpr std::size_t kMaxLatencySamples = 1u << 16;

}  // namespace

RescheddServer::WarmSlot::WarmSlot() = default;
RescheddServer::WarmSlot::~WarmSlot() = default;

RescheddServer::RescheddServer(Transport& transport, ServerOptions options)
    : transport_(transport),
      options_(options),
      queue_(MakeQueueOptions(options)) {
  RESCHED_CHECK_MSG(options_.workers > 0, "reschedd needs at least 1 worker");
  RESCHED_CHECK_MSG(options_.queue_capacity > 0,
                    "admission queue capacity must be positive");
  // Drain-expiry probe: lets Close()-time draining hand out already-dead
  // requests first so shutdown never executes doomed work.
  queue_.SetExpiryProbe(
      [](const Pending& p) { return p.token != nullptr && p.token->Cancelled(); });
  if (options_.result_cache) {
    result_cache_ = std::make_unique<
        ConcurrentMemoMap<Digest128, std::string, DigestHash>>(
        options_.result_cache_capacity);
  }
  if (!options_.journal_path.empty()) {
    // Recovery-first: the Journal ctor truncates any torn tail before the
    // warm-start scan below reads the file, so recovery only ever replays
    // whole records.
    journal_ = std::make_unique<Journal>(options_.journal_path,
                                         options_.journal_sync);
  }
  if (!options_.warm_start_path.empty()) WarmStart();
}

void RescheddServer::WarmStart() {
  recovery_.enabled = true;
  const std::string& path = options_.warm_start_path;
  {
    // A daemon's first boot has no journal yet: that is a cold start with
    // warm-start armed, not an error.
    std::ifstream probe(path);
    if (!probe) return;
  }
  const JournalScan scan = ScanJournalFile(path, /*truncate_torn=*/false);
  recovery_.records_scanned = scan.records.size();
  recovery_.torn_bytes = scan.torn_bytes;
  if (journal_ && path == options_.journal_path) {
    // The Journal ctor already cut the tail; report what it dropped.
    recovery_.torn_bytes = journal_->Report().torn_bytes;
  }

  // Pair request records with their response by id, in journal order.
  std::map<std::string, std::string> raw_requests;
  for (const JournalRecord& record : scan.records) {
    if (record.kind == "request") {
      raw_requests[record.id] = record.line;
      continue;
    }
    if (record.kind != "response") continue;
    const auto found = raw_requests.find(record.id);
    if (found == raw_requests.end()) continue;

    Request request;
    try {
      request = ParseRequest(found->second);
    } catch (const ProtocolError&) {
      continue;  // journaled by an older/newer build; not restorable
    }
    if (request.verb != Verb::kSchedule && request.verb != Verb::kSimulate) {
      continue;  // control responses depend on server state
    }
    std::string body;
    if (!StripResponseId(record.line, body)) continue;
    bool was_ok = false;
    try {
      was_ok = JsonValue::Parse(body).GetBool("ok", false);
    } catch (const std::exception&) {
      continue;
    }
    if (!was_ok) continue;  // errors are retryable, not replayable history

    RememberCompleted(record.id, body);
    ++recovery_.dedup_restored;
    if (result_cache_ && request.Deterministic() && request.sched.use_cache) {
      result_cache_->Insert(HashCanonicalText(RequestKeyText(request)), body);
      ++recovery_.cache_restored;
    }
  }
}

bool RescheddServer::FindCompleted(const std::string& id, std::string& body) {
  MutexLock lock(completed_mu_);
  const auto it = completed_.find(id);
  if (it == completed_.end()) return false;
  body = it->second;
  return true;
}

void RescheddServer::RememberCompleted(const std::string& id,
                                       const std::string& body) {
  MutexLock lock(completed_mu_);
  if (completed_.size() >= options_.completed_capacity &&
      completed_.find(id) == completed_.end()) {
    completed_.erase(completed_.begin());
  }
  completed_[id] = body;
}

RescheddServer::~RescheddServer() {
  queue_.Close();
  if (metrics_thread_.joinable()) {
    // Serve() normally joins; this is the Serve-threw (or never-ran) path.
    {
      MutexLock lock(metrics_mu_);
      metrics_stop_ = true;
    }
    metrics_cv_.NotifyAll();
    metrics_thread_.join();
  }
}

void RescheddServer::Serve() {
  transport_.SetGreeting(HandshakeLine());

  if (!options_.metrics_out_path.empty()) {
    metrics_thread_ = std::thread([this] { MetricsLoop(); });
  }

  // Destruction order matters: `closer` runs before `pool`'s destructor,
  // so even when ReadLoop throws (transport failure) the queue closes
  // first and the workers drain and exit instead of blocking in Pop().
  ThreadPool pool(options_.workers);
  struct QueueCloser {
    WeightedFairQueue<Pending>& queue;
    ~QueueCloser() { queue.Close(); }
  } closer{queue_};

  for (std::size_t w = 0; w < options_.workers; ++w) {
    pool.Submit([this] { WorkerLoop(); });
  }

  const bool shutdown_requested = ReadLoop();

  queue_.Close();
  pool.Wait();  // drain: every accepted request has been answered

  if (shutdown_requested) {
    JsonObject body;
    body["verb"] = "shutdown";
    body["drained"] = true;
    Respond(shutdown_id_, OkBody(std::move(body)), "control");
  }
  if (journal_) {
    try {
      journal_->Sync();  // a graceful exit leaves a durable journal
    } catch (const JournalError& e) {
      journal_errors_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "reschedd: %s\n", e.what());
    }
  }
  if (metrics_thread_.joinable()) {
    {
      MutexLock lock(metrics_mu_);
      metrics_stop_ = true;
    }
    metrics_cv_.NotifyAll();
    metrics_thread_.join();
    WriteMetricsNow();  // final snapshot covers the full lifetime
  }
}

bool RescheddServer::ReadLoop() {
  std::string line;
  while (transport_.ReadLine(line)) {
    if (line.empty()) continue;
    received_.fetch_add(1, std::memory_order_relaxed);

    Request request;
    try {
      request = ParseRequest(line);
    } catch (const ProtocolError& e) {
      rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
      Respond(e.id(), ErrorBody(e.code(), e.what()), "error");
      continue;
    }
    if (!request.had_id) request.id = NextId();
    if (journal_) {
      try {
        journal_->AppendRequest(request.id, line);
      } catch (const JournalError& e) {
        journal_errors_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "reschedd: %s\n", e.what());
      }
    }

    switch (request.verb) {
      case Verb::kStats:
        Respond(request.id, StatsBody(), "control");
        break;
      case Verb::kCancel: {
        JsonObject body;
        body["verb"] = "cancel";
        body["target"] = request.cancel_target;
        body["cancelled"] = CancelTarget(request.cancel_target);
        Respond(request.id, OkBody(std::move(body)), "control");
        break;
      }
      case Verb::kShutdown:
        shutdown_id_ = request.id;
        return true;
      case Verb::kSchedule:
      case Verb::kSimulate:
        Admit(std::move(request));
        break;
    }
  }
  return false;
}

std::string RescheddServer::NextId() {
  std::string id = "r";
  id += std::to_string(next_id_.fetch_add(1) + 1);
  return id;
}

void RescheddServer::Admit(Request request) {
  const std::string id = request.id;
  const std::string tenant = request.tenant;
  TenantStats& tstats = TenantStatsFor(tenant);

  // Idempotent resubmission: a client that reconnected and resent a
  // request (it cannot tell a lost response from a slow one) must not
  // trigger a second execution. A finished id is re-answered from the
  // completed ledger; an id still in flight is dropped silently — the
  // original execution's response goes to the live connection.
  if (request.had_id) {
    std::string body;
    if (FindCompleted(id, body)) {
      deduped_.fetch_add(1, std::memory_order_relaxed);
      tstats.deduped.fetch_add(1, std::memory_order_relaxed);
      Respond(id, body, "dedup");
      return;
    }
    {
      MutexLock lock(registry_mu_);
      if (registry_.find(id) != registry_.end()) {
        deduped_.fetch_add(1, std::memory_order_relaxed);
        tstats.deduped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  auto token = std::make_shared<CancelToken>(
      request.deadline_ms > 0.0 ? request.deadline_ms / 1000.0 : 0.0);
  if (request.deadline_present && request.deadline_ms <= 0.0) {
    // An explicit 0ms deadline is already expired; Deadline cannot arm a
    // zero-length window, so the token is force-expired instead.
    token->ExpireDeadlineNow();
  }
  {
    // Registered before the push so a cancel verb racing the worker can
    // always find the token.
    MutexLock lock(registry_mu_);
    registry_[id] = token;
  }
  Pending item;
  item.request = std::move(request);
  item.token = std::move(token);
  item.admitted_at_ms = static_cast<double>(uptime_.ElapsedMicros()) / 1000.0;
  const PushOutcome outcome = queue_.TryPush(tenant, std::move(item));
  if (outcome == PushOutcome::kAccepted) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    tstats.admitted.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    MutexLock lock(registry_mu_);
    registry_.erase(id);
  }
  if (outcome == PushOutcome::kClosed) {
    rejected_shutting_down_.fetch_add(1, std::memory_order_relaxed);
    tstats.shed_shutdown.fetch_add(1, std::memory_order_relaxed);
    Respond(id, ErrorBody(kErrShuttingDown, "server is shutting down"),
            "error");
  } else {
    rejected_overloaded_.fetch_add(1, std::memory_order_relaxed);
    tstats.shed_overload.fetch_add(1, std::memory_order_relaxed);
    Respond(id, ErrorBody(kErrOverloaded, "admission queue is full"),
            "error");
  }
}

bool RescheddServer::CancelTarget(const std::string& target) {
  MutexLock lock(registry_mu_);
  auto it = registry_.find(target);
  if (it == registry_.end()) return false;
  it->second->Cancel();
  return true;
}

void RescheddServer::WorkerLoop() {
  WarmSlot warm;
  Pending item;
  bool expired_in_drain = false;
  while (queue_.Pop(item, &expired_in_drain)) {
    const std::string tenant = item.request.tenant;
    TenantStats& tstats = TenantStatsFor(tenant);
    RecordQueueWait(tstats, static_cast<double>(uptime_.ElapsedMicros()) / 1000.0 -
                                item.admitted_at_ms);
    if (expired_in_drain) {
      tstats.drain_shed.fetch_add(1, std::memory_order_relaxed);
    }
    // Deadline-aware shedding: a request whose deadline (or cancel)
    // already fired while queued is answered here, not handed to the
    // scheduler — and not served from the result cache either, which
    // would fake a success the client has stopped waiting for.
    if (item.token->Cancelled()) {
      const std::string& id = item.request.id;
      std::string body;
      if (item.token->ExplicitlyCancelled()) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        tstats.cancelled.fetch_add(1, std::memory_order_relaxed);
        body = ErrorBody(kErrCancelled, "request cancelled");
      } else {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        tstats.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        body = ErrorBody(kErrDeadline, "deadline expired while queued");
      }
      {
        MutexLock lock(registry_mu_);
        registry_.erase(id);
      }
      Respond(id, body, "error");
    } else {
      WallTimer service;
      Process(item, warm);
      tstats.service_time.Record(static_cast<double>(service.ElapsedMicros()) /
                                 1000.0);
    }
    item = Pending{};  // release the instance/token before blocking again
    queue_.OnDone(tenant);
  }
}

void RescheddServer::Process(Pending& item, WarmSlot& warm) {
  const Request& request = item.request;
  TenantStats& tstats = TenantStatsFor(request.tenant);

  // Closes the Admit-time dedup race: a duplicate that slipped past both
  // Admit checks (original finished between them) finds the completed
  // entry here, because RememberCompleted runs before the registry erase.
  if (request.had_id) {
    std::string done_body;
    if (FindCompleted(request.id, done_body)) {
      deduped_.fetch_add(1, std::memory_order_relaxed);
      tstats.deduped.fetch_add(1, std::memory_order_relaxed);
      {
        MutexLock lock(registry_mu_);
        registry_.erase(request.id);
      }
      Respond(request.id, done_body, "dedup");
      return;
    }
  }

  const bool cacheable = result_cache_ != nullptr && request.Deterministic() &&
                         request.sched.use_cache;
  Digest128 key;
  std::string body;
  bool ok = false;
  bool from_cache = false;

  if (cacheable) {
    key = HashCanonicalText(RequestKeyText(request));
    if (std::shared_ptr<const std::string> hit = result_cache_->Find(key)) {
      body = *hit;
      ok = true;
      from_cache = true;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      tstats.cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!from_cache) {
    try {
      // A request can spend its whole deadline queued; charge that too.
      item.token->ThrowIfCancelled();
      body = Execute(request, *item.token, warm);
      ok = true;
      tstats.exec.fetch_add(1, std::memory_order_relaxed);
    } catch (const CancelledError&) {
      if (item.token->ExplicitlyCancelled()) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        tstats.cancelled.fetch_add(1, std::memory_order_relaxed);
        body = ErrorBody(kErrCancelled, "request cancelled");
      } else {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        tstats.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        body = ErrorBody(kErrDeadline, "deadline exceeded");
      }
    } catch (const std::exception& e) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      tstats.failed.fetch_add(1, std::memory_order_relaxed);
      body = ErrorBody(kErrInternal, e.what());
    }
  }

  if (ok) {
    completed_ok_.fetch_add(1, std::memory_order_relaxed);
    if (cacheable && !from_cache) result_cache_->Insert(key, body);
    // Into the dedup ledger BEFORE leaving the registry: a duplicate
    // checks completed-then-registry, so at least one of the two must see
    // this request at any instant. Only ok bodies are remembered — an
    // error (deadline, overload) is exactly what a client retries.
    if (request.had_id) RememberCompleted(request.id, body);
  }
  {
    MutexLock lock(registry_mu_);
    registry_.erase(request.id);
  }
  Respond(request.id, body, ok ? (from_cache ? "cache" : "exec") : "error");
}

std::string RescheddServer::Execute(const Request& request,
                                    const CancelToken& token, WarmSlot& warm) {
  return request.verb == Verb::kSimulate
             ? ExecuteSimulate(request, token, warm)
             : ExecuteSchedule(request, token, warm);
}

FloorplanCache* RescheddServer::PoolFor(const Request& request) {
  if (!options_.floorplan_cache) return nullptr;
  const std::string key = request.platform_digest.ToHex();
  {
    MutexLock lock(pool_mu_);
    auto it = floorplan_pool_.find(key);
    if (it != floorplan_pool_.end()) return it->second.cache.get();
  }
  // Miss: build the cache outside the lock — constructing a FloorplanCache
  // walks the whole fabric to index placements, and the old code did that
  // under pool_mu_, stalling every worker on every platform behind one
  // build (a gap the lock-scope audit for the annotation rollout caught).
  // Two workers can race the same platform; the loser's empty cache is
  // discarded by emplace, which is harmless and keeps hits pure.
  PlatformCacheEntry entry;
  entry.anchor = request.instance;
  entry.cache =
      std::make_unique<FloorplanCache>(request.instance->platform.Device());
  MutexLock lock(pool_mu_);
  auto it = floorplan_pool_.emplace(key, std::move(entry)).first;
  return it->second.cache.get();
}

Schedule RescheddServer::ComputeSchedule(const Request& request,
                                         const CancelToken& token,
                                         WarmSlot& warm,
                                         std::size_t& iterations) {
  iterations = 0;
  PaOptions pa_options;
  pa_options.module_reuse = request.sched.module_reuse;
  pa_options.sw_balancing = request.sched.sw_balancing;
  pa_options.run_floorplan = request.sched.run_floorplan;
  pa_options.seed = request.sched.seed;

  FloorplanCache* fp_cache = PoolFor(request);

  if (request.sched.algo == "allsw") {
    return ScheduleAllSoftware(*request.instance);
  }
  if (request.sched.algo == "par") {
    PaROptions par;
    par.base = pa_options;
    par.time_budget_seconds = request.sched.budget_seconds;
    par.max_iterations = request.sched.iterations;
    // Single-threaded on purpose: equal-makespan tie acceptance depends on
    // worker timing at threads > 1, and the service promises bit-identical
    // bodies for identical deterministic requests.
    par.threads = 1;
    par.seed = request.sched.seed;
    par.cancel = &token;
    const PaRResult result = SchedulePaR(*request.instance, par, fp_cache);
    iterations = result.iterations;
    return result.best;
  }

  // Deterministic PA through the per-worker warm slot: consecutive
  // requests for the same (instance, options) reuse the context/scratch.
  const std::string fingerprint =
      request.instance_digest.ToHex() + "|" + RequestKeyText(request);
  if (warm.fingerprint != fingerprint) {
    warm.fingerprint.clear();  // stay invalid if a rebuild throws
    warm.instance = request.instance;
    warm.options = std::make_unique<PaOptions>(pa_options);
    warm.ctx = std::make_unique<pa::PaContext>(*warm.instance, *warm.options);
    warm.scratch = std::make_unique<pa::PaScratch>(*warm.ctx);
    warm.fingerprint = fingerprint;
  }
  return SchedulePaWarm(*warm.ctx, *warm.scratch, fp_cache, &token);
}

std::string RescheddServer::ExecuteSchedule(const Request& request,
                                            const CancelToken& token,
                                            WarmSlot& warm) {
  const Instance& instance = *request.instance;
  std::size_t iterations = 0;
  Schedule schedule = ComputeSchedule(request, token, warm, iterations);

  const ValidationResult check = ValidateSchedule(instance, schedule);
  RESCHED_CHECK_MSG(check.ok(), "scheduler emitted an invalid schedule");

  JsonValue schedule_json = ScheduleToJson(instance, schedule);
  // Wall-clock fields would break the bit-identical response contract.
  schedule_json.AsObject().erase("scheduling_seconds");
  schedule_json.AsObject().erase("floorplanning_seconds");

  JsonObject body;
  body["verb"] = "schedule";
  body["algo"] = request.sched.algo;
  body["instance_digest"] = request.instance_digest.ToHex();
  body["makespan"] = schedule.makespan;
  if (request.sched.algo == "par" && request.Deterministic()) {
    body["iterations"] = iterations;
  }
  body["schedule"] = std::move(schedule_json);
  return OkBody(std::move(body));
}

std::string RescheddServer::ExecuteSimulate(const Request& request,
                                            const CancelToken& token,
                                            WarmSlot& warm) {
  const Instance& instance = *request.instance;
  std::size_t iterations = 0;
  const Schedule schedule = ComputeSchedule(request, token, warm, iterations);

  sim::SimOptions sim_options;
  sim_options.task_jitter = request.sim.jitter;
  sim_options.reconf_jitter = request.sim.jitter;
  sim_options.recovery.policy = ParseRecoveryPolicy(request.sim.policy);

  std::size_t survived = 0;
  std::size_t invalid = 0;
  std::size_t lost = 0;
  std::vector<double> stretches;
  sim::RecoveryStats totals;
  for (std::size_t i = 0; i < request.sim.trials; ++i) {
    token.ThrowIfCancelled();
    const sim::FaultScenario scenario = sim::GenerateFaultScenario(
        schedule, sim::UniformFaultRates(request.sim.fault_rate),
        DeriveSeed(kFaultSeedStream ^ request.sched.seed, i));
    sim_options.faults = scenario;
    sim_options.seed = DeriveSeed(kJitterSeedStream ^ request.sched.seed, i);
    try {
      const sim::SimResult result =
          sim::Simulate(instance, schedule, sim_options);
      ValidationOptions vopt;
      vopt.executed = true;
      vopt.outages = sim::OutagesFromScenario(scenario);
      if (!ValidateSchedule(instance, result.executed, vopt).ok()) {
        ++invalid;
        continue;
      }
      ++survived;
      stretches.push_back(result.stretch);
      totals.reconf_retries += result.recovery.reconf_retries;
      totals.task_restarts += result.recovery.task_restarts;
      totals.migrations += result.recovery.migrations;
      totals.rescheduled_tasks += result.recovery.rescheduled_tasks;
      totals.abandoned_regions += result.recovery.abandoned_regions;
    } catch (const InstanceError&) {
      // Recovery deadlock (no software fallback left): the trial is lost.
      ++lost;
    }
  }

  JsonObject recovery;
  recovery["reconf_retries"] = totals.reconf_retries;
  recovery["task_restarts"] = totals.task_restarts;
  recovery["migrations"] = totals.migrations;
  recovery["rescheduled_tasks"] = totals.rescheduled_tasks;
  recovery["abandoned_regions"] = totals.abandoned_regions;

  JsonObject body;
  body["verb"] = "simulate";
  body["algo"] = request.sched.algo;
  body["instance_digest"] = request.instance_digest.ToHex();
  body["makespan"] = schedule.makespan;
  body["trials"] = request.sim.trials;
  body["survived"] = survived;
  body["invalid"] = invalid;
  body["lost"] = lost;
  if (!stretches.empty()) {
    double sum = 0.0;
    for (const double s : stretches) sum += s;
    body["mean_stretch"] = sum / static_cast<double>(stretches.size());
    body["p95_stretch"] = Percentile(stretches, 95.0);
  }
  body["recovery"] = JsonValue(std::move(recovery));
  return OkBody(std::move(body));
}

std::string RescheddServer::StatsBody() {
  JsonObject counters;
  counters["received"] = AsInt64(received_.load(std::memory_order_relaxed));
  counters["accepted"] = AsInt64(accepted_.load(std::memory_order_relaxed));
  counters["rejected_overloaded"] =
      AsInt64(rejected_overloaded_.load(std::memory_order_relaxed));
  counters["rejected_invalid"] =
      AsInt64(rejected_invalid_.load(std::memory_order_relaxed));
  counters["completed_ok"] =
      AsInt64(completed_ok_.load(std::memory_order_relaxed));
  counters["failed"] = AsInt64(failed_.load(std::memory_order_relaxed));
  counters["cancelled"] = AsInt64(cancelled_.load(std::memory_order_relaxed));
  counters["deadline_expired"] =
      AsInt64(deadline_expired_.load(std::memory_order_relaxed));
  counters["cache_hits"] =
      AsInt64(cache_hits_.load(std::memory_order_relaxed));
  counters["deduped"] = AsInt64(deduped_.load(std::memory_order_relaxed));
  counters["rejected_shutting_down"] =
      AsInt64(rejected_shutting_down_.load(std::memory_order_relaxed));
  counters["journal_errors"] =
      AsInt64(journal_errors_.load(std::memory_order_relaxed));

  const BuildInfo& build_info = GetBuildInfo();
  JsonObject build;
  build["version"] = build_info.version;
  build["git"] = build_info.git;
  build["build_type"] = build_info.build_type;
  build["sanitizers"] = build_info.sanitizers;

  JsonObject body;
  body["verb"] = "stats";
  body["protocol"] = kProtocolVersion;
  body["workers"] = options_.workers;
  body["queue_capacity"] = options_.queue_capacity;
  body["queue_depth"] = queue_.Size();
  body["build"] = JsonValue(std::move(build));
  body["counters"] = JsonValue(std::move(counters));
  if (result_cache_) {
    const auto cache_counters = result_cache_->Snapshot();
    JsonObject cache;
    cache["hits"] = AsInt64(cache_counters.hits);
    cache["misses"] = AsInt64(cache_counters.misses);
    cache["evictions"] = AsInt64(cache_counters.evictions);
    cache["capacity"] = result_cache_->Capacity();
    body["result_cache"] = JsonValue(std::move(cache));
  }
  {
    MutexLock lock(pool_mu_);
    body["floorplan_caches"] = floorplan_pool_.size();
  }

  // Per-tenant section: admission outcomes, served-by breakdown and
  // queue-wait / service-time quantiles (exact when sample recording is
  // on, histogram-interpolated otherwise).
  {
    std::map<std::string, std::size_t> depths = queue_.Depths();
    std::vector<std::pair<std::string, TenantStats*>> snapshot;
    {
      MutexLock lock(tenants_mu_);
      snapshot.reserve(tenant_stats_.size());
      for (const auto& [name, stats] : tenant_stats_) {
        snapshot.emplace_back(name, stats.get());
      }
    }
    JsonObject tenants;
    for (const auto& [name, stats] : snapshot) {
      JsonObject t;
      t["admitted"] = AsInt64(stats->admitted.load(std::memory_order_relaxed));
      t["shed_overload"] =
          AsInt64(stats->shed_overload.load(std::memory_order_relaxed));
      t["shed_shutdown"] =
          AsInt64(stats->shed_shutdown.load(std::memory_order_relaxed));
      t["cancelled"] =
          AsInt64(stats->cancelled.load(std::memory_order_relaxed));
      t["deadline_expired"] =
          AsInt64(stats->deadline_expired.load(std::memory_order_relaxed));
      t["exec"] = AsInt64(stats->exec.load(std::memory_order_relaxed));
      t["cache_hits"] =
          AsInt64(stats->cache_hits.load(std::memory_order_relaxed));
      t["deduped"] = AsInt64(stats->deduped.load(std::memory_order_relaxed));
      t["failed"] = AsInt64(stats->failed.load(std::memory_order_relaxed));
      t["drain_shed"] =
          AsInt64(stats->drain_shed.load(std::memory_order_relaxed));
      const auto depth = depths.find(name);
      t["queue_depth"] =
          depth != depths.end() ? depth->second : std::size_t{0};
      double p50 = 0.0;
      double p99 = 0.0;
      QueueWaitQuantiles(*stats, p50, p99);
      t["queue_wait_p50_ms"] = p50;
      t["queue_wait_p99_ms"] = p99;
      const LatencyHistogram::Snapshot service = stats->service_time.Take();
      t["service_p50_ms"] = HistogramQuantileMs(service, 0.50);
      t["service_p99_ms"] = HistogramQuantileMs(service, 0.99);
      tenants[name] = JsonValue(std::move(t));
    }
    body["tenants"] = JsonValue(std::move(tenants));
  }
  if (!options_.metrics_out_path.empty()) {
    JsonObject metrics;
    metrics["path"] = options_.metrics_out_path;
    metrics["writes"] =
        AsInt64(metrics_writes_.load(std::memory_order_relaxed));
    metrics["errors"] =
        AsInt64(metrics_errors_.load(std::memory_order_relaxed));
    body["metrics"] = JsonValue(std::move(metrics));
  }
  if (recovery_.enabled) {
    JsonObject recovery;
    recovery["records_scanned"] = recovery_.records_scanned;
    recovery["torn_bytes"] = AsInt64(
        static_cast<std::uint64_t>(recovery_.torn_bytes));
    recovery["cache_restored"] = recovery_.cache_restored;
    recovery["dedup_restored"] = recovery_.dedup_restored;
    body["recovery"] = JsonValue(std::move(recovery));
  }
  return OkBody(std::move(body));
}

void RescheddServer::Respond(const std::string& id, const std::string& body,
                             const char* served) {
  const std::string line = WithId(id, body);
  // Deliberately held across the transport write and the journal append:
  // this lock's entire job is making the two one atomic step, so the
  // journal's response order is the order the client observed (replay
  // byte-compares against it). See the ledger in DESIGN.md §11.
  MutexLock lock(write_mu_);
  (void)transport_.WriteLine(  // resched-lint: allow(lock-held-over-blocking-call)
      line);
  if (journal_) {
    try {
      journal_->AppendResponse(id, line, served);
    } catch (const JournalError& e) {
      // Surfaced, not fatal: the daemon keeps serving with a lagging
      // journal (whose recovery scan handles the torn record), and the
      // stats counter makes the degradation visible.
      journal_errors_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "reschedd: %s\n", e.what());
    }
  }
}

RescheddServer::TenantStats& RescheddServer::TenantStatsFor(
    const std::string& tenant) {
  MutexLock lock(tenants_mu_);
  auto it = tenant_stats_.find(tenant);
  if (it == tenant_stats_.end()) {
    it = tenant_stats_.emplace(tenant, std::make_unique<TenantStats>()).first;
  }
  return *it->second;
}

void RescheddServer::RecordQueueWait(TenantStats& stats, double wait_ms) {
  if (wait_ms < 0.0) wait_ms = 0.0;
  stats.queue_wait.Record(wait_ms);
  if (options_.record_latency_samples) {
    MutexLock lock(stats.samples_mu);
    if (stats.queue_wait_samples.size() < kMaxLatencySamples) {
      stats.queue_wait_samples.push_back(wait_ms);
    }
  }
}

void RescheddServer::QueueWaitQuantiles(TenantStats& stats, double& p50,
                                        double& p99) {
  if (options_.record_latency_samples) {
    std::vector<double> samples;
    {
      MutexLock lock(stats.samples_mu);
      samples = stats.queue_wait_samples;
    }
    if (!samples.empty()) {
      p50 = Percentile(samples, 50.0);
      p99 = Percentile(samples, 99.0);
      return;
    }
  }
  const LatencyHistogram::Snapshot snap = stats.queue_wait.Take();
  p50 = HistogramQuantileMs(snap, 0.50);
  p99 = HistogramQuantileMs(snap, 0.99);
}

std::vector<MetricFamily> RescheddServer::BuildMetricFamilies() {
  std::vector<MetricFamily> families;

  MetricFamily up{"reschedd_up", "Whether this reschedd process is serving.",
                  "gauge", {}};
  up.samples.push_back(MetricSample{{}, 1.0});
  families.push_back(std::move(up));

  MetricFamily requests{"reschedd_requests_total",
                        "Request events by outcome across all tenants.",
                        "counter",
                        {}};
  const auto add_event = [&requests](const char* event, std::uint64_t v) {
    requests.samples.push_back(
        MetricSample{{{"event", event}}, static_cast<double>(v)});
  };
  const ServiceCounters c = Counters();
  add_event("received", c.received);
  add_event("accepted", c.accepted);
  add_event("rejected_overloaded", c.rejected_overloaded);
  add_event("rejected_invalid", c.rejected_invalid);
  add_event("completed_ok", c.completed_ok);
  add_event("failed", c.failed);
  add_event("cancelled", c.cancelled);
  add_event("deadline_expired", c.deadline_expired);
  add_event("cache_hits", c.cache_hits);
  add_event("deduped", c.deduped);
  add_event("rejected_shutting_down", c.rejected_shutting_down);
  add_event("journal_errors", c.journal_errors);
  families.push_back(std::move(requests));

  MetricFamily depth{"reschedd_queue_depth",
                     "Currently queued requests per tenant.", "gauge", {}};
  for (const auto& [tenant, n] : queue_.Depths()) {
    depth.samples.push_back(
        MetricSample{{{"tenant", tenant}}, static_cast<double>(n)});
  }
  families.push_back(std::move(depth));

  std::vector<std::pair<std::string, TenantStats*>> snapshot;
  {
    MutexLock lock(tenants_mu_);
    snapshot.reserve(tenant_stats_.size());
    for (const auto& [name, stats] : tenant_stats_) {
      snapshot.emplace_back(name, stats.get());
    }
  }
  MetricFamily tenant_requests{
      "reschedd_tenant_requests_total",
      "Per-tenant request outcomes (admitted, shed, served-by).", "counter",
      {}};
  for (const auto& [name, stats] : snapshot) {
    const auto add = [&tenant_requests, &name = name](const char* outcome,
                                                      std::uint64_t v) {
      tenant_requests.samples.push_back(MetricSample{
          {{"tenant", name}, {"outcome", outcome}}, static_cast<double>(v)});
    };
    add("admitted", stats->admitted.load(std::memory_order_relaxed));
    add("shed_overload", stats->shed_overload.load(std::memory_order_relaxed));
    add("shed_shutdown", stats->shed_shutdown.load(std::memory_order_relaxed));
    add("cancelled", stats->cancelled.load(std::memory_order_relaxed));
    add("deadline_expired",
        stats->deadline_expired.load(std::memory_order_relaxed));
    add("exec", stats->exec.load(std::memory_order_relaxed));
    add("cache", stats->cache_hits.load(std::memory_order_relaxed));
    add("dedup", stats->deduped.load(std::memory_order_relaxed));
    add("failed", stats->failed.load(std::memory_order_relaxed));
    add("drain_shed", stats->drain_shed.load(std::memory_order_relaxed));
  }
  families.push_back(std::move(tenant_requests));

  for (const auto& [name, stats] : snapshot) {
    AppendHistogramFamily(families, "reschedd_tenant_queue_wait_ms",
                          "Queue wait per tenant in milliseconds.",
                          {{"tenant", name}}, stats->queue_wait.Take());
  }
  for (const auto& [name, stats] : snapshot) {
    AppendHistogramFamily(families, "reschedd_tenant_service_ms",
                          "Service time per tenant in milliseconds.",
                          {{"tenant", name}}, stats->service_time.Take());
  }
  return families;
}

void RescheddServer::WriteMetricsNow() {
  std::string error;
  if (WriteTextfileAtomic(options_.metrics_out_path,
                          RenderPrometheus(BuildMetricFamilies()), &error)) {
    metrics_writes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_errors_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "reschedd: metrics write failed: %s\n",
                 error.c_str());
  }
}

void RescheddServer::MetricsLoop() {
  const double interval_s =
      options_.metrics_interval_ms > 0.0 ? options_.metrics_interval_ms / 1000.0
                                         : 1.0;
  for (;;) {
    {
      MutexLock lock(metrics_mu_);
      if (!metrics_stop_) (void)metrics_cv_.WaitFor(lock, interval_s);
      if (metrics_stop_) return;  // Serve() writes the final snapshot
    }
    WriteMetricsNow();
  }
}

ServiceCounters RescheddServer::Counters() const {
  ServiceCounters c;
  c.received = received_.load(std::memory_order_relaxed);
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.rejected_overloaded = rejected_overloaded_.load(std::memory_order_relaxed);
  c.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  c.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  c.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  c.deduped = deduped_.load(std::memory_order_relaxed);
  c.rejected_shutting_down =
      rejected_shutting_down_.load(std::memory_order_relaxed);
  c.journal_errors = journal_errors_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace resched::service
