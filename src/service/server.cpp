#include "service/server.hpp"

#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "baseline/reference.hpp"
#include "core/pa_scheduler.hpp"
#include "core/pa_state.hpp"
#include "core/randomized.hpp"
#include "floorplan/floorplan_cache.hpp"
#include "io/schedule_io.hpp"
#include "sched/validator.hpp"
#include "sim/executor.hpp"
#include "util/build_info.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace resched::service {
namespace {

std::int64_t AsInt64(std::uint64_t v) { return static_cast<std::int64_t>(v); }

}  // namespace

RescheddServer::WarmSlot::WarmSlot() = default;
RescheddServer::WarmSlot::~WarmSlot() = default;

RescheddServer::RescheddServer(Transport& transport, ServerOptions options)
    : transport_(transport),
      options_(options),
      queue_(options.queue_capacity) {
  RESCHED_CHECK_MSG(options_.workers > 0, "reschedd needs at least 1 worker");
  RESCHED_CHECK_MSG(options_.queue_capacity > 0,
                    "admission queue capacity must be positive");
  if (options_.result_cache) {
    result_cache_ = std::make_unique<
        ConcurrentMemoMap<Digest128, std::string, DigestHash>>(
        options_.result_cache_capacity);
  }
  if (!options_.journal_path.empty()) {
    // Recovery-first: the Journal ctor truncates any torn tail before the
    // warm-start scan below reads the file, so recovery only ever replays
    // whole records.
    journal_ = std::make_unique<Journal>(options_.journal_path,
                                         options_.journal_sync);
  }
  if (!options_.warm_start_path.empty()) WarmStart();
}

void RescheddServer::WarmStart() {
  recovery_.enabled = true;
  const std::string& path = options_.warm_start_path;
  {
    // A daemon's first boot has no journal yet: that is a cold start with
    // warm-start armed, not an error.
    std::ifstream probe(path);
    if (!probe) return;
  }
  const JournalScan scan = ScanJournalFile(path, /*truncate_torn=*/false);
  recovery_.records_scanned = scan.records.size();
  recovery_.torn_bytes = scan.torn_bytes;
  if (journal_ && path == options_.journal_path) {
    // The Journal ctor already cut the tail; report what it dropped.
    recovery_.torn_bytes = journal_->Report().torn_bytes;
  }

  // Pair request records with their response by id, in journal order.
  std::map<std::string, std::string> raw_requests;
  for (const JournalRecord& record : scan.records) {
    if (record.kind == "request") {
      raw_requests[record.id] = record.line;
      continue;
    }
    if (record.kind != "response") continue;
    const auto found = raw_requests.find(record.id);
    if (found == raw_requests.end()) continue;

    Request request;
    try {
      request = ParseRequest(found->second);
    } catch (const ProtocolError&) {
      continue;  // journaled by an older/newer build; not restorable
    }
    if (request.verb != Verb::kSchedule && request.verb != Verb::kSimulate) {
      continue;  // control responses depend on server state
    }
    std::string body;
    if (!StripResponseId(record.line, body)) continue;
    bool was_ok = false;
    try {
      was_ok = JsonValue::Parse(body).GetBool("ok", false);
    } catch (const std::exception&) {
      continue;
    }
    if (!was_ok) continue;  // errors are retryable, not replayable history

    RememberCompleted(record.id, body);
    ++recovery_.dedup_restored;
    if (result_cache_ && request.Deterministic() && request.sched.use_cache) {
      result_cache_->Insert(HashCanonicalText(RequestKeyText(request)), body);
      ++recovery_.cache_restored;
    }
  }
}

bool RescheddServer::FindCompleted(const std::string& id, std::string& body) {
  MutexLock lock(completed_mu_);
  const auto it = completed_.find(id);
  if (it == completed_.end()) return false;
  body = it->second;
  return true;
}

void RescheddServer::RememberCompleted(const std::string& id,
                                       const std::string& body) {
  MutexLock lock(completed_mu_);
  if (completed_.size() >= options_.completed_capacity &&
      completed_.find(id) == completed_.end()) {
    completed_.erase(completed_.begin());
  }
  completed_[id] = body;
}

RescheddServer::~RescheddServer() { queue_.Close(); }

void RescheddServer::Serve() {
  transport_.SetGreeting(HandshakeLine());

  // Destruction order matters: `closer` runs before `pool`'s destructor,
  // so even when ReadLoop throws (transport failure) the queue closes
  // first and the workers drain and exit instead of blocking in Pop().
  ThreadPool pool(options_.workers);
  struct QueueCloser {
    BoundedQueue<Pending>& queue;
    ~QueueCloser() { queue.Close(); }
  } closer{queue_};

  for (std::size_t w = 0; w < options_.workers; ++w) {
    pool.Submit([this] { WorkerLoop(); });
  }

  const bool shutdown_requested = ReadLoop();

  queue_.Close();
  pool.Wait();  // drain: every accepted request has been answered

  if (shutdown_requested) {
    JsonObject body;
    body["verb"] = "shutdown";
    body["drained"] = true;
    Respond(shutdown_id_, OkBody(std::move(body)), "control");
  }
  if (journal_) {
    try {
      journal_->Sync();  // a graceful exit leaves a durable journal
    } catch (const JournalError& e) {
      journal_errors_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "reschedd: %s\n", e.what());
    }
  }
}

bool RescheddServer::ReadLoop() {
  std::string line;
  while (transport_.ReadLine(line)) {
    if (line.empty()) continue;
    received_.fetch_add(1, std::memory_order_relaxed);

    Request request;
    try {
      request = ParseRequest(line);
    } catch (const ProtocolError& e) {
      rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
      Respond(e.id(), ErrorBody(e.code(), e.what()), "error");
      continue;
    }
    if (!request.had_id) request.id = NextId();
    if (journal_) {
      try {
        journal_->AppendRequest(request.id, line);
      } catch (const JournalError& e) {
        journal_errors_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "reschedd: %s\n", e.what());
      }
    }

    switch (request.verb) {
      case Verb::kStats:
        Respond(request.id, StatsBody(), "control");
        break;
      case Verb::kCancel: {
        JsonObject body;
        body["verb"] = "cancel";
        body["target"] = request.cancel_target;
        body["cancelled"] = CancelTarget(request.cancel_target);
        Respond(request.id, OkBody(std::move(body)), "control");
        break;
      }
      case Verb::kShutdown:
        shutdown_id_ = request.id;
        return true;
      case Verb::kSchedule:
      case Verb::kSimulate:
        Admit(std::move(request));
        break;
    }
  }
  return false;
}

std::string RescheddServer::NextId() {
  std::string id = "r";
  id += std::to_string(next_id_.fetch_add(1) + 1);
  return id;
}

void RescheddServer::Admit(Request request) {
  const std::string id = request.id;

  // Idempotent resubmission: a client that reconnected and resent a
  // request (it cannot tell a lost response from a slow one) must not
  // trigger a second execution. A finished id is re-answered from the
  // completed ledger; an id still in flight is dropped silently — the
  // original execution's response goes to the live connection.
  if (request.had_id) {
    std::string body;
    if (FindCompleted(id, body)) {
      deduped_.fetch_add(1, std::memory_order_relaxed);
      Respond(id, body, "dedup");
      return;
    }
    {
      MutexLock lock(registry_mu_);
      if (registry_.find(id) != registry_.end()) {
        deduped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  auto token = std::make_shared<CancelToken>(
      request.deadline_ms > 0.0 ? request.deadline_ms / 1000.0 : 0.0);
  if (request.deadline_present && request.deadline_ms <= 0.0) {
    // An explicit 0ms deadline is already expired; Deadline cannot arm a
    // zero-length window, so the token is force-expired instead.
    token->ExpireDeadlineNow();
  }
  {
    // Registered before the push so a cancel verb racing the worker can
    // always find the token.
    MutexLock lock(registry_mu_);
    registry_[id] = token;
  }
  Pending item;
  item.request = std::move(request);
  item.token = std::move(token);
  const PushOutcome outcome = queue_.TryPush(std::move(item));
  if (outcome == PushOutcome::kAccepted) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    MutexLock lock(registry_mu_);
    registry_.erase(id);
  }
  if (outcome == PushOutcome::kClosed) {
    rejected_shutting_down_.fetch_add(1, std::memory_order_relaxed);
    Respond(id, ErrorBody(kErrShuttingDown, "server is shutting down"),
            "error");
  } else {
    rejected_overloaded_.fetch_add(1, std::memory_order_relaxed);
    Respond(id, ErrorBody(kErrOverloaded, "admission queue is full"),
            "error");
  }
}

bool RescheddServer::CancelTarget(const std::string& target) {
  MutexLock lock(registry_mu_);
  auto it = registry_.find(target);
  if (it == registry_.end()) return false;
  it->second->Cancel();
  return true;
}

void RescheddServer::WorkerLoop() {
  WarmSlot warm;
  Pending item;
  while (queue_.Pop(item)) {
    // Deadline-aware shedding: a request whose deadline (or cancel)
    // already fired while queued is answered here, not handed to the
    // scheduler — and not served from the result cache either, which
    // would fake a success the client has stopped waiting for.
    if (item.token->Cancelled()) {
      const std::string& id = item.request.id;
      std::string body;
      if (item.token->ExplicitlyCancelled()) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        body = ErrorBody(kErrCancelled, "request cancelled");
      } else {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        body = ErrorBody(kErrDeadline, "deadline expired while queued");
      }
      {
        MutexLock lock(registry_mu_);
        registry_.erase(id);
      }
      Respond(id, body, "error");
    } else {
      Process(item, warm);
    }
    item = Pending{};  // release the instance/token before blocking again
  }
}

void RescheddServer::Process(Pending& item, WarmSlot& warm) {
  const Request& request = item.request;

  // Closes the Admit-time dedup race: a duplicate that slipped past both
  // Admit checks (original finished between them) finds the completed
  // entry here, because RememberCompleted runs before the registry erase.
  if (request.had_id) {
    std::string done_body;
    if (FindCompleted(request.id, done_body)) {
      deduped_.fetch_add(1, std::memory_order_relaxed);
      {
        MutexLock lock(registry_mu_);
        registry_.erase(request.id);
      }
      Respond(request.id, done_body, "dedup");
      return;
    }
  }

  const bool cacheable = result_cache_ != nullptr && request.Deterministic() &&
                         request.sched.use_cache;
  Digest128 key;
  std::string body;
  bool ok = false;
  bool from_cache = false;

  if (cacheable) {
    key = HashCanonicalText(RequestKeyText(request));
    if (std::shared_ptr<const std::string> hit = result_cache_->Find(key)) {
      body = *hit;
      ok = true;
      from_cache = true;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!from_cache) {
    try {
      // A request can spend its whole deadline queued; charge that too.
      item.token->ThrowIfCancelled();
      body = Execute(request, *item.token, warm);
      ok = true;
    } catch (const CancelledError&) {
      if (item.token->ExplicitlyCancelled()) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        body = ErrorBody(kErrCancelled, "request cancelled");
      } else {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        body = ErrorBody(kErrDeadline, "deadline exceeded");
      }
    } catch (const std::exception& e) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      body = ErrorBody(kErrInternal, e.what());
    }
  }

  if (ok) {
    completed_ok_.fetch_add(1, std::memory_order_relaxed);
    if (cacheable && !from_cache) result_cache_->Insert(key, body);
    // Into the dedup ledger BEFORE leaving the registry: a duplicate
    // checks completed-then-registry, so at least one of the two must see
    // this request at any instant. Only ok bodies are remembered — an
    // error (deadline, overload) is exactly what a client retries.
    if (request.had_id) RememberCompleted(request.id, body);
  }
  {
    MutexLock lock(registry_mu_);
    registry_.erase(request.id);
  }
  Respond(request.id, body, ok ? (from_cache ? "cache" : "exec") : "error");
}

std::string RescheddServer::Execute(const Request& request,
                                    const CancelToken& token, WarmSlot& warm) {
  return request.verb == Verb::kSimulate
             ? ExecuteSimulate(request, token, warm)
             : ExecuteSchedule(request, token, warm);
}

FloorplanCache* RescheddServer::PoolFor(const Request& request) {
  if (!options_.floorplan_cache) return nullptr;
  const std::string key = request.platform_digest.ToHex();
  {
    MutexLock lock(pool_mu_);
    auto it = floorplan_pool_.find(key);
    if (it != floorplan_pool_.end()) return it->second.cache.get();
  }
  // Miss: build the cache outside the lock — constructing a FloorplanCache
  // walks the whole fabric to index placements, and the old code did that
  // under pool_mu_, stalling every worker on every platform behind one
  // build (a gap the lock-scope audit for the annotation rollout caught).
  // Two workers can race the same platform; the loser's empty cache is
  // discarded by emplace, which is harmless and keeps hits pure.
  PlatformCacheEntry entry;
  entry.anchor = request.instance;
  entry.cache =
      std::make_unique<FloorplanCache>(request.instance->platform.Device());
  MutexLock lock(pool_mu_);
  auto it = floorplan_pool_.emplace(key, std::move(entry)).first;
  return it->second.cache.get();
}

Schedule RescheddServer::ComputeSchedule(const Request& request,
                                         const CancelToken& token,
                                         WarmSlot& warm,
                                         std::size_t& iterations) {
  iterations = 0;
  PaOptions pa_options;
  pa_options.module_reuse = request.sched.module_reuse;
  pa_options.sw_balancing = request.sched.sw_balancing;
  pa_options.run_floorplan = request.sched.run_floorplan;
  pa_options.seed = request.sched.seed;

  FloorplanCache* fp_cache = PoolFor(request);

  if (request.sched.algo == "allsw") {
    return ScheduleAllSoftware(*request.instance);
  }
  if (request.sched.algo == "par") {
    PaROptions par;
    par.base = pa_options;
    par.time_budget_seconds = request.sched.budget_seconds;
    par.max_iterations = request.sched.iterations;
    // Single-threaded on purpose: equal-makespan tie acceptance depends on
    // worker timing at threads > 1, and the service promises bit-identical
    // bodies for identical deterministic requests.
    par.threads = 1;
    par.seed = request.sched.seed;
    par.cancel = &token;
    const PaRResult result = SchedulePaR(*request.instance, par, fp_cache);
    iterations = result.iterations;
    return result.best;
  }

  // Deterministic PA through the per-worker warm slot: consecutive
  // requests for the same (instance, options) reuse the context/scratch.
  const std::string fingerprint =
      request.instance_digest.ToHex() + "|" + RequestKeyText(request);
  if (warm.fingerprint != fingerprint) {
    warm.fingerprint.clear();  // stay invalid if a rebuild throws
    warm.instance = request.instance;
    warm.options = std::make_unique<PaOptions>(pa_options);
    warm.ctx = std::make_unique<pa::PaContext>(*warm.instance, *warm.options);
    warm.scratch = std::make_unique<pa::PaScratch>(*warm.ctx);
    warm.fingerprint = fingerprint;
  }
  return SchedulePaWarm(*warm.ctx, *warm.scratch, fp_cache, &token);
}

std::string RescheddServer::ExecuteSchedule(const Request& request,
                                            const CancelToken& token,
                                            WarmSlot& warm) {
  const Instance& instance = *request.instance;
  std::size_t iterations = 0;
  Schedule schedule = ComputeSchedule(request, token, warm, iterations);

  const ValidationResult check = ValidateSchedule(instance, schedule);
  RESCHED_CHECK_MSG(check.ok(), "scheduler emitted an invalid schedule");

  JsonValue schedule_json = ScheduleToJson(instance, schedule);
  // Wall-clock fields would break the bit-identical response contract.
  schedule_json.AsObject().erase("scheduling_seconds");
  schedule_json.AsObject().erase("floorplanning_seconds");

  JsonObject body;
  body["verb"] = "schedule";
  body["algo"] = request.sched.algo;
  body["instance_digest"] = request.instance_digest.ToHex();
  body["makespan"] = schedule.makespan;
  if (request.sched.algo == "par" && request.Deterministic()) {
    body["iterations"] = iterations;
  }
  body["schedule"] = std::move(schedule_json);
  return OkBody(std::move(body));
}

std::string RescheddServer::ExecuteSimulate(const Request& request,
                                            const CancelToken& token,
                                            WarmSlot& warm) {
  const Instance& instance = *request.instance;
  std::size_t iterations = 0;
  const Schedule schedule = ComputeSchedule(request, token, warm, iterations);

  sim::SimOptions sim_options;
  sim_options.task_jitter = request.sim.jitter;
  sim_options.reconf_jitter = request.sim.jitter;
  sim_options.recovery.policy = ParseRecoveryPolicy(request.sim.policy);

  std::size_t survived = 0;
  std::size_t invalid = 0;
  std::size_t lost = 0;
  std::vector<double> stretches;
  sim::RecoveryStats totals;
  for (std::size_t i = 0; i < request.sim.trials; ++i) {
    token.ThrowIfCancelled();
    const sim::FaultScenario scenario = sim::GenerateFaultScenario(
        schedule, sim::UniformFaultRates(request.sim.fault_rate),
        DeriveSeed(kFaultSeedStream ^ request.sched.seed, i));
    sim_options.faults = scenario;
    sim_options.seed = DeriveSeed(kJitterSeedStream ^ request.sched.seed, i);
    try {
      const sim::SimResult result =
          sim::Simulate(instance, schedule, sim_options);
      ValidationOptions vopt;
      vopt.executed = true;
      vopt.outages = sim::OutagesFromScenario(scenario);
      if (!ValidateSchedule(instance, result.executed, vopt).ok()) {
        ++invalid;
        continue;
      }
      ++survived;
      stretches.push_back(result.stretch);
      totals.reconf_retries += result.recovery.reconf_retries;
      totals.task_restarts += result.recovery.task_restarts;
      totals.migrations += result.recovery.migrations;
      totals.rescheduled_tasks += result.recovery.rescheduled_tasks;
      totals.abandoned_regions += result.recovery.abandoned_regions;
    } catch (const InstanceError&) {
      // Recovery deadlock (no software fallback left): the trial is lost.
      ++lost;
    }
  }

  JsonObject recovery;
  recovery["reconf_retries"] = totals.reconf_retries;
  recovery["task_restarts"] = totals.task_restarts;
  recovery["migrations"] = totals.migrations;
  recovery["rescheduled_tasks"] = totals.rescheduled_tasks;
  recovery["abandoned_regions"] = totals.abandoned_regions;

  JsonObject body;
  body["verb"] = "simulate";
  body["algo"] = request.sched.algo;
  body["instance_digest"] = request.instance_digest.ToHex();
  body["makespan"] = schedule.makespan;
  body["trials"] = request.sim.trials;
  body["survived"] = survived;
  body["invalid"] = invalid;
  body["lost"] = lost;
  if (!stretches.empty()) {
    double sum = 0.0;
    for (const double s : stretches) sum += s;
    body["mean_stretch"] = sum / static_cast<double>(stretches.size());
    body["p95_stretch"] = Percentile(stretches, 95.0);
  }
  body["recovery"] = JsonValue(std::move(recovery));
  return OkBody(std::move(body));
}

std::string RescheddServer::StatsBody() {
  JsonObject counters;
  counters["received"] = AsInt64(received_.load(std::memory_order_relaxed));
  counters["accepted"] = AsInt64(accepted_.load(std::memory_order_relaxed));
  counters["rejected_overloaded"] =
      AsInt64(rejected_overloaded_.load(std::memory_order_relaxed));
  counters["rejected_invalid"] =
      AsInt64(rejected_invalid_.load(std::memory_order_relaxed));
  counters["completed_ok"] =
      AsInt64(completed_ok_.load(std::memory_order_relaxed));
  counters["failed"] = AsInt64(failed_.load(std::memory_order_relaxed));
  counters["cancelled"] = AsInt64(cancelled_.load(std::memory_order_relaxed));
  counters["deadline_expired"] =
      AsInt64(deadline_expired_.load(std::memory_order_relaxed));
  counters["cache_hits"] =
      AsInt64(cache_hits_.load(std::memory_order_relaxed));
  counters["deduped"] = AsInt64(deduped_.load(std::memory_order_relaxed));
  counters["rejected_shutting_down"] =
      AsInt64(rejected_shutting_down_.load(std::memory_order_relaxed));
  counters["journal_errors"] =
      AsInt64(journal_errors_.load(std::memory_order_relaxed));

  const BuildInfo& build_info = GetBuildInfo();
  JsonObject build;
  build["version"] = build_info.version;
  build["git"] = build_info.git;
  build["build_type"] = build_info.build_type;
  build["sanitizers"] = build_info.sanitizers;

  JsonObject body;
  body["verb"] = "stats";
  body["protocol"] = kProtocolVersion;
  body["workers"] = options_.workers;
  body["queue_capacity"] = options_.queue_capacity;
  body["queue_depth"] = queue_.Size();
  body["build"] = JsonValue(std::move(build));
  body["counters"] = JsonValue(std::move(counters));
  if (result_cache_) {
    const auto cache_counters = result_cache_->Snapshot();
    JsonObject cache;
    cache["hits"] = AsInt64(cache_counters.hits);
    cache["misses"] = AsInt64(cache_counters.misses);
    cache["evictions"] = AsInt64(cache_counters.evictions);
    cache["capacity"] = result_cache_->Capacity();
    body["result_cache"] = JsonValue(std::move(cache));
  }
  {
    MutexLock lock(pool_mu_);
    body["floorplan_caches"] = floorplan_pool_.size();
  }
  if (recovery_.enabled) {
    JsonObject recovery;
    recovery["records_scanned"] = recovery_.records_scanned;
    recovery["torn_bytes"] = AsInt64(
        static_cast<std::uint64_t>(recovery_.torn_bytes));
    recovery["cache_restored"] = recovery_.cache_restored;
    recovery["dedup_restored"] = recovery_.dedup_restored;
    body["recovery"] = JsonValue(std::move(recovery));
  }
  return OkBody(std::move(body));
}

void RescheddServer::Respond(const std::string& id, const std::string& body,
                             const char* served) {
  const std::string line = WithId(id, body);
  // Deliberately held across the transport write and the journal append:
  // this lock's entire job is making the two one atomic step, so the
  // journal's response order is the order the client observed (replay
  // byte-compares against it). See the ledger in DESIGN.md §11.
  MutexLock lock(write_mu_);
  (void)transport_.WriteLine(  // resched-lint: allow(lock-held-over-blocking-call)
      line);
  if (journal_) {
    try {
      journal_->AppendResponse(id, line, served);
    } catch (const JournalError& e) {
      // Surfaced, not fatal: the daemon keeps serving with a lagging
      // journal (whose recovery scan handles the torn record), and the
      // stats counter makes the degradation visible.
      journal_errors_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "reschedd: %s\n", e.what());
    }
  }
}

ServiceCounters RescheddServer::Counters() const {
  ServiceCounters c;
  c.received = received_.load(std::memory_order_relaxed);
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.rejected_overloaded = rejected_overloaded_.load(std::memory_order_relaxed);
  c.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  c.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  c.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  c.deduped = deduped_.load(std::memory_order_relaxed);
  c.rejected_shutting_down =
      rejected_shutting_down_.load(std::memory_order_relaxed);
  c.journal_errors = journal_errors_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace resched::service
