#include "sim/faults.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace resched::sim {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kReconfFailure: return "reconf_failure";
    case FaultKind::kTransientRegionFault: return "transient_region_fault";
    case FaultKind::kPermanentRegionLoss: return "permanent_region_loss";
    case FaultKind::kTaskCrash: return "task_crash";
    case FaultKind::kTaskOverrun: return "task_overrun";
  }
  return "?";
}

FaultRates UniformFaultRates(double rate) {
  FaultRates rates;
  rates.reconf_failure_prob = rate;
  rates.transient_region_prob = rate;
  rates.permanent_region_prob = rate / 4.0;
  rates.task_crash_prob = rate / 2.0;
  rates.task_overrun_prob = rate;
  return rates;
}

FaultScenario GenerateFaultScenario(const Schedule& schedule,
                                    const FaultRates& rates,
                                    std::uint64_t seed) {
  FaultScenario scenario;
  Rng rng(seed);
  const TimeT horizon = std::max<TimeT>(1, schedule.makespan);
  const TimeT window = std::max<TimeT>(
      1, static_cast<TimeT>(static_cast<double>(horizon) *
                            rates.repair_window_frac));

  // Fixed visit order keeps the event list a pure function of
  // (schedule shape, rates, seed): reconfigurations, regions, tasks.
  for (std::size_t r = 0; r < schedule.reconfigurations.size(); ++r) {
    if (!rng.Bernoulli(rates.reconf_failure_prob)) continue;
    FaultEvent event;
    event.kind = FaultKind::kReconfFailure;
    event.index = r;
    event.count = 1;
    while (event.count < 3 && rng.Bernoulli(rates.reconf_failure_prob)) {
      ++event.count;
    }
    scenario.events.push_back(event);
  }
  for (std::size_t s = 0; s < schedule.regions.size(); ++s) {
    if (rng.Bernoulli(rates.permanent_region_prob)) {
      FaultEvent event;
      event.kind = FaultKind::kPermanentRegionLoss;
      event.index = s;
      event.at = rng.UniformInt(0, horizon - 1);
      scenario.events.push_back(event);
      continue;  // a lost region draws no transient fault
    }
    if (rng.Bernoulli(rates.transient_region_prob)) {
      FaultEvent event;
      event.kind = FaultKind::kTransientRegionFault;
      event.index = s;
      event.at = rng.UniformInt(0, horizon - 1);
      event.window = window;
      scenario.events.push_back(event);
    }
  }
  for (std::size_t t = 0; t < schedule.task_slots.size(); ++t) {
    if (rng.Bernoulli(rates.task_crash_prob)) {
      FaultEvent event;
      event.kind = FaultKind::kTaskCrash;
      event.index = t;
      event.count = 1;
      scenario.events.push_back(event);
    }
    if (rng.Bernoulli(rates.task_overrun_prob)) {
      FaultEvent event;
      event.kind = FaultKind::kTaskOverrun;
      event.index = t;
      event.factor = rates.overrun_factor;
      scenario.events.push_back(event);
    }
  }
  return scenario;
}

std::vector<RegionOutage> OutagesFromScenario(const FaultScenario& scenario) {
  std::vector<RegionOutage> outages;
  for (const FaultEvent& event : scenario.events) {
    if (event.kind == FaultKind::kTransientRegionFault) {
      outages.push_back(RegionOutage{event.index, event.at,
                                     event.at + event.window});
    } else if (event.kind == FaultKind::kPermanentRegionLoss) {
      outages.push_back(RegionOutage{event.index, event.at, kTimeInfinity});
    }
  }
  return outages;
}

}  // namespace resched::sim
