// Deterministic fault scenarios for the execution simulator.
//
// A FaultScenario is an explicit, replayable list of fault events against
// one schedule: which reconfiguration attempts fail, which regions suffer
// transient faults (offline for a repair window) or permanent loss, which
// tasks crash or overrun. Scenarios are either written by hand (and
// round-tripped through src/io/fault_io) or generated from per-class
// rates with a seed — the same (schedule, rates, seed) triple always
// yields the same event list, so every faulted run is reproducible.
#pragma once

#include "sched/schedule.hpp"
#include "sched/validator.hpp"

namespace resched::sim {

enum class FaultKind : std::uint8_t {
  /// Attempts of reconfiguration `index` fail `count` times before
  /// succeeding; each failed attempt occupies the controller for the full
  /// duration and retries after capped exponential backoff.
  kReconfFailure,
  /// Region `index` goes offline at time `at` for `window` ticks (an SEU
  /// whose repair window covers scrubbing); a task or reconfiguration in
  /// flight on the region is killed and re-run.
  kTransientRegionFault,
  /// Region `index` dies at time `at` and never comes back; its unstarted
  /// tasks are recovered per policy (sched/recovery.hpp).
  kPermanentRegionLoss,
  /// Task `index` crashes `count` times: each attempt runs to completion,
  /// is discarded, and the task re-runs.
  kTaskCrash,
  /// Task `index` runs `factor` x longer than its (jittered) estimate.
  kTaskOverrun,
};

const char* ToString(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kReconfFailure;
  /// Reconfiguration index, region index, or task id — per `kind`.
  std::size_t index = 0;
  /// Onset time (region faults only).
  TimeT at = 0;
  /// Repair window (transient region faults only).
  TimeT window = 0;
  /// Failed attempts (reconfiguration failures, crashes).
  std::size_t count = 1;
  /// Duration multiplier (overruns).
  double factor = 1.0;

  friend bool operator==(const FaultEvent& a, const FaultEvent& b) {
    return a.kind == b.kind && a.index == b.index && a.at == b.at &&
           a.window == b.window && a.count == b.count && a.factor == b.factor;
  }
};

struct FaultScenario {
  std::vector<FaultEvent> events;
  bool Empty() const { return events.empty(); }

  friend bool operator==(const FaultScenario& a, const FaultScenario& b) {
    return a.events == b.events;
  }
};

/// Per-class fault rates for seeded scenario generation. Probabilities are
/// per entity (per reconfiguration / region / task); onset times are drawn
/// uniformly over the schedule's nominal makespan.
struct FaultRates {
  /// P(a reconfiguration suffers >= 1 failed attempt); extra consecutive
  /// failures follow Bernoulli(p) draws, capped at 3.
  double reconf_failure_prob = 0.0;
  /// P(a region suffers one transient fault).
  double transient_region_prob = 0.0;
  /// P(a region is permanently lost). Drawn before the transient fault; a
  /// lost region draws no transient.
  double permanent_region_prob = 0.0;
  double task_crash_prob = 0.0;
  double task_overrun_prob = 0.0;
  /// Overrun multiplier applied to affected tasks.
  double overrun_factor = 2.0;
  /// Transient repair window as a fraction of the nominal makespan
  /// (>= 1 tick).
  double repair_window_frac = 0.05;
};

/// Spreads one scalar fault rate over the event classes: reconfiguration
/// failures, transient region faults and overruns at `rate`, crashes at
/// half of it, permanent region loss at a quarter (losing fabric for good
/// is the rare catastrophic case). The single-knob sweep used by
/// `resched_cli simulate --fault-rate` and bench/ext_robustness.
FaultRates UniformFaultRates(double rate);

/// Generates the deterministic scenario for (schedule, rates, seed).
/// Entities are visited in a fixed order (reconfigurations, regions,
/// tasks, each ascending), so the event list is stable across platforms.
FaultScenario GenerateFaultScenario(const Schedule& schedule,
                                    const FaultRates& rates,
                                    std::uint64_t seed);

/// Region fault windows of a scenario in validator form (permanent losses
/// become windows open until kTimeInfinity). See ValidationOptions::outages.
std::vector<RegionOutage> OutagesFromScenario(const FaultScenario& scenario);

}  // namespace resched::sim
