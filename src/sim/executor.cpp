#include "sim/executor.hpp"

#include <algorithm>
#include <deque>

#include "sched/comm.hpp"
#include "util/string_util.hpp"

namespace resched::sim {

namespace {

/// Node ids in the event graph: tasks are [0, n), reconfigurations are
/// [n, n + m).
struct EventGraph {
  std::vector<std::vector<std::size_t>> succs;
  std::vector<std::size_t> indegree;

  explicit EventGraph(std::size_t nodes)
      : succs(nodes), indegree(nodes, 0) {}

  void AddEdge(std::size_t from, std::size_t to) {
    succs[from].push_back(to);
    ++indegree[to];
  }
};

TimeT Jittered(TimeT nominal, double jitter, Rng& rng) {
  if (jitter <= 0.0) return nominal;
  const double factor = rng.UniformDouble(1.0 - jitter, 1.0 + jitter);
  return std::max<TimeT>(
      1, static_cast<TimeT>(std::llround(static_cast<double>(nominal) *
                                         factor)));
}

}  // namespace

SimResult Simulate(const Instance& instance, const Schedule& schedule,
                   const SimOptions& options) {
  const TaskGraph& graph = instance.graph;
  const std::size_t n = graph.NumTasks();
  const std::size_t m = schedule.reconfigurations.size();
  RESCHED_CHECK_MSG(schedule.task_slots.size() == n,
                    "schedule does not match instance");

  Rng rng(options.seed);

  // ---- jittered durations (drawn in a fixed order for determinism).
  std::vector<TimeT> task_dur(n);
  for (std::size_t t = 0; t < n; ++t) {
    const TaskSlot& slot = schedule.task_slots[t];
    const TimeT nominal =
        graph.GetImpl(slot.task, slot.impl_index).exec_time;
    task_dur[t] = Jittered(nominal, options.task_jitter, rng);
  }
  std::vector<TimeT> reconf_dur(m);
  for (std::size_t r = 0; r < m; ++r) {
    const ReconfSlot& slot = schedule.reconfigurations[r];
    RESCHED_CHECK_MSG(slot.region < schedule.regions.size(),
                      "reconfiguration references unknown region");
    reconf_dur[r] = Jittered(schedule.regions[slot.region].reconf_time,
                             options.reconf_jitter, rng);
  }

  // ---- event graph.
  EventGraph events(n + m);

  // Data dependencies (comm gaps are applied at relaxation time).
  for (std::size_t t = 0; t < n; ++t) {
    for (const TaskId s : graph.Successors(static_cast<TaskId>(t))) {
      events.AddEdge(t, static_cast<std::size_t>(s));
    }
  }

  // Per-core ordering (by scheduled start).
  for (std::size_t core = 0; core < instance.platform.NumProcessors();
       ++core) {
    std::vector<std::size_t> on_core;
    for (std::size_t t = 0; t < n; ++t) {
      const TaskSlot& slot = schedule.task_slots[t];
      if (!slot.OnFpga() && slot.target_index == core) on_core.push_back(t);
    }
    std::sort(on_core.begin(), on_core.end(), [&](std::size_t a,
                                                  std::size_t b) {
      return schedule.task_slots[a].start < schedule.task_slots[b].start;
    });
    for (std::size_t i = 0; i + 1 < on_core.size(); ++i) {
      events.AddEdge(on_core[i], on_core[i + 1]);
    }
  }

  // Per-region ordering and reconfiguration hooks.
  // reconf_of_task[t] = reconf index that loads t, or SIZE_MAX.
  std::vector<std::size_t> reconf_of_task(n, SIZE_MAX);
  for (std::size_t r = 0; r < m; ++r) {
    const ReconfSlot& slot = schedule.reconfigurations[r];
    const auto ti = static_cast<std::size_t>(slot.loads_task);
    RESCHED_CHECK_MSG(ti < n, "reconfiguration loads unknown task");
    RESCHED_CHECK_MSG(reconf_of_task[ti] == SIZE_MAX,
                      "task loaded by two reconfigurations");
    reconf_of_task[ti] = r;
  }
  for (std::size_t s = 0; s < schedule.regions.size(); ++s) {
    const RegionInfo& region = schedule.regions[s];
    for (std::size_t i = 0; i < region.tasks.size(); ++i) {
      const auto ti = static_cast<std::size_t>(region.tasks[i]);
      RESCHED_CHECK_MSG(schedule.task_slots[ti].OnFpga() &&
                            schedule.task_slots[ti].target_index == s,
                        "region task list inconsistent with slots");
      const std::size_t reconf = reconf_of_task[ti];
      if (reconf != SIZE_MAX) {
        RESCHED_CHECK_MSG(schedule.reconfigurations[reconf].region == s,
                          "reconfiguration region mismatch");
        // reconf -> task it loads.
        events.AddEdge(n + reconf, ti);
        if (i > 0) {
          // previous region task -> reconf.
          events.AddEdge(static_cast<std::size_t>(region.tasks[i - 1]),
                         n + reconf);
        }
      } else if (i > 0) {
        // Module reuse (or first task): direct region ordering.
        events.AddEdge(static_cast<std::size_t>(region.tasks[i - 1]), ti);
      }
    }
  }

  // Per-controller ordering of reconfigurations (by scheduled start).
  for (std::size_t c = 0; c < instance.platform.NumReconfigurators(); ++c) {
    std::vector<std::size_t> on_controller;
    for (std::size_t r = 0; r < m; ++r) {
      if (schedule.reconfigurations[r].controller == c) {
        on_controller.push_back(r);
      }
    }
    std::sort(on_controller.begin(), on_controller.end(),
              [&](std::size_t a, std::size_t b) {
                return schedule.reconfigurations[a].start <
                       schedule.reconfigurations[b].start;
              });
    for (std::size_t i = 0; i + 1 < on_controller.size(); ++i) {
      events.AddEdge(n + on_controller[i], n + on_controller[i + 1]);
    }
  }

  // ---- earliest-start relaxation in topological order.
  std::vector<TimeT> start(n + m, 0);
  std::vector<TimeT> end(n + m, 0);
  std::deque<std::size_t> ready;
  std::vector<std::size_t> indegree = events.indegree;
  for (std::size_t v = 0; v < n + m; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::size_t v = ready.front();
    ready.pop_front();
    ++processed;
    const TimeT dur = v < n ? task_dur[v] : reconf_dur[v - n];
    end[v] = start[v] + dur;
    for (const std::size_t w : events.succs[v]) {
      // Communication gap applies only on task->task data edges.
      TimeT gap = 0;
      if (v < n && w < n &&
          graph.HasEdge(static_cast<TaskId>(v), static_cast<TaskId>(w))) {
        gap = CommGap(instance.platform, graph, static_cast<TaskId>(v),
                      static_cast<TaskId>(w),
                      schedule.task_slots[v].OnFpga(),
                      schedule.task_slots[w].OnFpga());
      }
      start[w] = std::max(start[w], end[v] + gap);
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  RESCHED_CHECK_MSG(processed == n + m,
                    "schedule decision structure contains a cycle");

  // ---- results.
  SimResult result;
  result.task_start.assign(n, 0);
  result.task_end.assign(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    result.task_start[t] = start[t];
    result.task_end[t] = end[t];
    result.makespan = std::max(result.makespan, end[t]);
  }
  result.stretch = schedule.makespan > 0
                       ? static_cast<double>(result.makespan) /
                             static_cast<double>(schedule.makespan)
                       : 0.0;

  // Utilization per core / region / controller.
  for (std::size_t core = 0; core < instance.platform.NumProcessors();
       ++core) {
    ResourceUsage usage;
    usage.name = StrFormat("cpu%zu", core);
    for (std::size_t t = 0; t < n; ++t) {
      const TaskSlot& slot = schedule.task_slots[t];
      if (!slot.OnFpga() && slot.target_index == core) {
        usage.busy += task_dur[t];
      }
    }
    result.usage.push_back(usage);
  }
  for (std::size_t s = 0; s < schedule.regions.size(); ++s) {
    ResourceUsage usage;
    usage.name = StrFormat("rr%zu", s);
    for (const TaskId t : schedule.regions[s].tasks) {
      usage.busy += task_dur[static_cast<std::size_t>(t)];
    }
    result.usage.push_back(usage);
  }
  for (std::size_t c = 0; c < instance.platform.NumReconfigurators(); ++c) {
    ResourceUsage usage;
    usage.name = StrFormat("icap%zu", c);
    for (std::size_t r = 0; r < m; ++r) {
      if (schedule.reconfigurations[r].controller == c) {
        usage.busy += reconf_dur[r];
      }
    }
    result.usage.push_back(usage);
  }
  for (ResourceUsage& usage : result.usage) {
    usage.utilization = result.makespan > 0
                            ? static_cast<double>(usage.busy) /
                                  static_cast<double>(result.makespan)
                            : 0.0;
  }
  return result;
}

}  // namespace resched::sim
