#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <queue>

#include "sched/comm.hpp"
#include "util/string_util.hpp"

namespace resched::sim {

namespace {

/// Node ids in the event graph: tasks are [0, n), reconfigurations are
/// [n, n + m).
struct EventGraph {
  std::vector<std::vector<std::size_t>> succs;
  std::vector<std::size_t> indegree;

  explicit EventGraph(std::size_t nodes)
      : succs(nodes), indegree(nodes, 0) {}

  void AddEdge(std::size_t from, std::size_t to) {
    succs[from].push_back(to);
    ++indegree[to];
  }
};

TimeT Jittered(TimeT nominal, double jitter, Rng& rng) {
  if (jitter <= 0.0) return nominal;
  const double factor = rng.UniformDouble(1.0 - jitter, 1.0 + jitter);
  return std::max<TimeT>(
      1, static_cast<TimeT>(std::llround(static_cast<double>(nominal) *
                                         factor)));
}

/// Nominal-time replay: the original static event-graph relaxation. Kept
/// as its own path so empty-scenario results stay bit-identical to the
/// pre-fault executor.
SimResult SimulateNominal(const Instance& instance, const Schedule& schedule,
                          const SimOptions& options) {
  const TaskGraph& graph = instance.graph;
  const std::size_t n = graph.NumTasks();
  const std::size_t m = schedule.reconfigurations.size();
  RESCHED_CHECK_MSG(schedule.task_slots.size() == n,
                    "schedule does not match instance");

  Rng rng(options.seed);

  // ---- jittered durations (drawn in a fixed order for determinism).
  std::vector<TimeT> task_dur(n);
  for (std::size_t t = 0; t < n; ++t) {
    const TaskSlot& slot = schedule.task_slots[t];
    const TimeT nominal =
        graph.GetImpl(slot.task, slot.impl_index).exec_time;
    task_dur[t] = Jittered(nominal, options.task_jitter, rng);
  }
  std::vector<TimeT> reconf_dur(m);
  for (std::size_t r = 0; r < m; ++r) {
    const ReconfSlot& slot = schedule.reconfigurations[r];
    RESCHED_CHECK_MSG(slot.region < schedule.regions.size(),
                      "reconfiguration references unknown region");
    reconf_dur[r] = Jittered(schedule.regions[slot.region].reconf_time,
                             options.reconf_jitter, rng);
  }

  // ---- event graph.
  EventGraph events(n + m);

  // Data dependencies (comm gaps are applied at relaxation time).
  for (std::size_t t = 0; t < n; ++t) {
    for (const TaskId s : graph.Successors(static_cast<TaskId>(t))) {
      events.AddEdge(t, static_cast<std::size_t>(s));
    }
  }

  // Per-core ordering (by scheduled start).
  for (std::size_t core = 0; core < instance.platform.NumProcessors();
       ++core) {
    std::vector<std::size_t> on_core;
    for (std::size_t t = 0; t < n; ++t) {
      const TaskSlot& slot = schedule.task_slots[t];
      if (!slot.OnFpga() && slot.target_index == core) on_core.push_back(t);
    }
    std::sort(on_core.begin(), on_core.end(), [&](std::size_t a,
                                                  std::size_t b) {
      return schedule.task_slots[a].start < schedule.task_slots[b].start;
    });
    for (std::size_t i = 0; i + 1 < on_core.size(); ++i) {
      events.AddEdge(on_core[i], on_core[i + 1]);
    }
  }

  // Per-region ordering and reconfiguration hooks.
  // reconf_of_task[t] = reconf index that loads t, or SIZE_MAX.
  std::vector<std::size_t> reconf_of_task(n, SIZE_MAX);
  for (std::size_t r = 0; r < m; ++r) {
    const ReconfSlot& slot = schedule.reconfigurations[r];
    const auto ti = static_cast<std::size_t>(slot.loads_task);
    RESCHED_CHECK_MSG(ti < n, "reconfiguration loads unknown task");
    RESCHED_CHECK_MSG(reconf_of_task[ti] == SIZE_MAX,
                      "task loaded by two reconfigurations");
    reconf_of_task[ti] = r;
  }
  for (std::size_t s = 0; s < schedule.regions.size(); ++s) {
    const RegionInfo& region = schedule.regions[s];
    for (std::size_t i = 0; i < region.tasks.size(); ++i) {
      const auto ti = static_cast<std::size_t>(region.tasks[i]);
      RESCHED_CHECK_MSG(schedule.task_slots[ti].OnFpga() &&
                            schedule.task_slots[ti].target_index == s,
                        "region task list inconsistent with slots");
      const std::size_t reconf = reconf_of_task[ti];
      if (reconf != SIZE_MAX) {
        RESCHED_CHECK_MSG(schedule.reconfigurations[reconf].region == s,
                          "reconfiguration region mismatch");
        // reconf -> task it loads.
        events.AddEdge(n + reconf, ti);
        if (i > 0) {
          // previous region task -> reconf.
          events.AddEdge(static_cast<std::size_t>(region.tasks[i - 1]),
                         n + reconf);
        }
      } else if (i > 0) {
        // Module reuse (or first task): direct region ordering.
        events.AddEdge(static_cast<std::size_t>(region.tasks[i - 1]), ti);
      }
    }
  }

  // Per-controller ordering of reconfigurations (by scheduled start).
  for (std::size_t c = 0; c < instance.platform.NumReconfigurators(); ++c) {
    std::vector<std::size_t> on_controller;
    for (std::size_t r = 0; r < m; ++r) {
      if (schedule.reconfigurations[r].controller == c) {
        on_controller.push_back(r);
      }
    }
    std::sort(on_controller.begin(), on_controller.end(),
              [&](std::size_t a, std::size_t b) {
                return schedule.reconfigurations[a].start <
                       schedule.reconfigurations[b].start;
              });
    for (std::size_t i = 0; i + 1 < on_controller.size(); ++i) {
      events.AddEdge(n + on_controller[i], n + on_controller[i + 1]);
    }
  }

  // ---- earliest-start relaxation in topological order.
  std::vector<TimeT> start(n + m, 0);
  std::vector<TimeT> end(n + m, 0);
  std::deque<std::size_t> ready;
  std::vector<std::size_t> indegree = events.indegree;
  for (std::size_t v = 0; v < n + m; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::size_t v = ready.front();
    ready.pop_front();
    ++processed;
    const TimeT dur = v < n ? task_dur[v] : reconf_dur[v - n];
    end[v] = start[v] + dur;
    for (const std::size_t w : events.succs[v]) {
      // Communication gap applies only on task->task data edges.
      TimeT gap = 0;
      if (v < n && w < n &&
          graph.HasEdge(static_cast<TaskId>(v), static_cast<TaskId>(w))) {
        gap = CommGap(instance.platform, graph, static_cast<TaskId>(v),
                      static_cast<TaskId>(w),
                      schedule.task_slots[v].OnFpga(),
                      schedule.task_slots[w].OnFpga());
      }
      start[w] = std::max(start[w], end[v] + gap);
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  RESCHED_CHECK_MSG(processed == n + m,
                    "schedule decision structure contains a cycle");

  // ---- results.
  SimResult result;
  result.task_start.assign(n, 0);
  result.task_end.assign(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    result.task_start[t] = start[t];
    result.task_end[t] = end[t];
    result.makespan = std::max(result.makespan, end[t]);
  }
  result.stretch = schedule.makespan > 0
                       ? static_cast<double>(result.makespan) /
                             static_cast<double>(schedule.makespan)
                       : 0.0;

  // Utilization per core / region / controller.
  for (std::size_t core = 0; core < instance.platform.NumProcessors();
       ++core) {
    ResourceUsage usage;
    usage.name = StrFormat("cpu%zu", core);
    for (std::size_t t = 0; t < n; ++t) {
      const TaskSlot& slot = schedule.task_slots[t];
      if (!slot.OnFpga() && slot.target_index == core) {
        usage.busy += task_dur[t];
      }
    }
    result.usage.push_back(usage);
  }
  for (std::size_t s = 0; s < schedule.regions.size(); ++s) {
    ResourceUsage usage;
    usage.name = StrFormat("rr%zu", s);
    for (const TaskId t : schedule.regions[s].tasks) {
      usage.busy += task_dur[static_cast<std::size_t>(t)];
    }
    result.usage.push_back(usage);
  }
  for (std::size_t c = 0; c < instance.platform.NumReconfigurators(); ++c) {
    ResourceUsage usage;
    usage.name = StrFormat("icap%zu", c);
    for (std::size_t r = 0; r < m; ++r) {
      if (schedule.reconfigurations[r].controller == c) {
        usage.busy += reconf_dur[r];
      }
    }
    result.usage.push_back(usage);
  }
  for (ResourceUsage& usage : result.usage) {
    usage.utilization = result.makespan > 0
                            ? static_cast<double>(usage.busy) /
                                  static_cast<double>(result.makespan)
                            : 0.0;
  }

  // As-executed schedule: same decisions, simulated times.
  result.executed.task_slots = schedule.task_slots;
  for (std::size_t t = 0; t < n; ++t) {
    result.executed.task_slots[t].start = start[t];
    result.executed.task_slots[t].end = end[t];
  }
  result.executed.regions = schedule.regions;
  result.executed.reconfigurations = schedule.reconfigurations;
  for (std::size_t r = 0; r < m; ++r) {
    result.executed.reconfigurations[r].start = start[n + r];
    result.executed.reconfigurations[r].end = end[n + r];
  }
  std::stable_sort(result.executed.reconfigurations.begin(),
                   result.executed.reconfigurations.end(),
                   [](const ReconfSlot& a, const ReconfSlot& b) {
                     return a.start < b.start;
                   });
  result.executed.makespan = result.makespan;
  result.executed.algorithm = schedule.algorithm;
  result.executed.floorplan = schedule.floorplan;
  result.executed.floorplan_checked = schedule.floorplan_checked;
  return result;
}

// ===================================================================
// Faulted replay: a discrete-event engine over the schedule's decisions.
//
// Every waiting line (core queues, region entry lists, controller job
// queues) is processed strictly in order of a single global priority —
// the task's start time in the static schedule (ties by id). Dependency
// edges strictly increase that priority (the schedule is valid and
// durations are positive), and recovery insertions keep every pending
// queue sorted by it, so the globally minimal-priority pending task is
// always at the head of its queue with its reconfiguration at the head
// of its controller: the engine can never deadlock, only wait for time
// (backoff, repair windows), which Wake events bound.
// ===================================================================

/// Global dispatch priority: static scheduled start, ties by task id.
struct Prio {
  TimeT start = 0;
  TaskId id = kInvalidTask;
  friend bool operator<(const Prio& a, const Prio& b) {
    return a.start != b.start ? a.start < b.start : a.id < b.id;
  }
};

enum class EvKind : std::uint8_t {
  // Completions strictly before fault onsets at equal times: slots are
  // half-open, so an operation ending exactly at an onset is unharmed.
  kReconfDone = 0,
  kTaskDone = 1,
  kFault = 2,
  kWake = 3,
};

struct Event {
  TimeT time = 0;
  EvKind kind = EvKind::kWake;
  std::size_t id = 0;
  std::uint64_t epoch = 0;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.id > b.id;
  }
};

enum class JobState : std::uint8_t { kPending, kRunning, kDone, kCancelled };

/// One reconfiguration job. Originals come from the schedule; recovery
/// appends fresh ones (suffix repair, broken module-reuse chains).
struct DesJob {
  std::size_t region = 0;
  TaskId task = kInvalidTask;
  std::size_t controller = 0;
  TimeT dur = 0;        ///< per-attempt duration (jittered for originals)
  TimeT nominal = 0;    ///< region reconf time — backoff denomination
  std::size_t fail_budget = 0;  ///< scenario-injected failures remaining
  std::size_t failed = 0;       ///< failed attempts so far
  TimeT not_before = 0;         ///< backoff / repair gate
  JobState state = JobState::kPending;
  TimeT start = 0, end = 0;     ///< last attempt
  std::uint64_t epoch = 0;      ///< bumped on interruption/cancellation
};

struct DesTask {
  std::size_t impl = 0;
  bool on_fpga = false;
  std::size_t target = 0;
  double jfactor = 1.0;   ///< jitter factor, drawn once per task
  double overrun = 1.0;   ///< scenario overrun multiplier
  std::size_t crash_budget = 0;
  bool done = false;
  bool running = false;
  TimeT start = 0, end = 0;  ///< last attempt
  std::uint64_t epoch = 0;
  Prio prio;
};

struct DesEntry {
  TaskId task = kInvalidTask;
  std::size_t job = SIZE_MAX;  ///< reconfiguration job, SIZE_MAX = reuse
};

struct DesRegion {
  std::vector<DesEntry> entries;  ///< done prefix, then pending by prio
  bool alive = true;
  TimeT offline_until = 0;
  TaskId running_task = kInvalidTask;
  std::size_t running_job = SIZE_MAX;
  TimeT busy_until = 0;
  /// Currently loaded configuration (survives transient faults — the
  /// repair window models scrubbing, which restores it).
  TaskId loaded_task = kInvalidTask;
  std::int32_t loaded_module = -1;
};

struct DesCore {
  std::vector<TaskId> queue;  ///< done prefix, then pending by prio
  TaskId running = kInvalidTask;
  TimeT busy_until = 0;
};

struct DesController {
  std::vector<std::size_t> queue;  ///< job ids, sorted by task prio
  std::size_t running = SIZE_MAX;
  TimeT busy_until = 0;
};

struct PendingFault {
  std::size_t region = 0;
  bool permanent = false;
  TimeT at = 0;
  TimeT window = 0;
};

class FaultedSim {
 public:
  FaultedSim(const Instance& instance, const Schedule& schedule,
             const SimOptions& options)
      : instance_(instance),
        graph_(instance.graph),
        schedule_(schedule),
        options_(options),
        n_(instance.graph.NumTasks()) {}

  SimResult Run();

 private:
  Prio PrioOf(TaskId t) const {
    return Prio{schedule_.task_slots[static_cast<std::size_t>(t)].start, t};
  }
  std::int32_t ModuleOf(TaskId t) const {
    return graph_.GetImpl(t, tasks_[static_cast<std::size_t>(t)].impl)
        .module_id;
  }
  DesTask& TaskOf(TaskId t) { return tasks_[static_cast<std::size_t>(t)]; }

  void Init();
  void ApplyScenario();
  TimeT AttemptDuration(TaskId t) const;
  TimeT ReadyTime(TaskId t) const;
  bool PredsDone(TaskId t) const;

  /// First entry whose task is not done, or SIZE_MAX.
  std::size_t HeadEntry(const DesRegion& region) const;
  void StartTask(TaskId t);
  void StartReconf(std::size_t job);
  void Dispatch();
  void PushWake(TimeT at);

  void OnTaskDone(const Event& e);
  void OnReconfDone(const Event& e);
  void OnFault(const PendingFault& f);
  void KillRunningTask(DesRegion& region, bool count_restart);
  void InterruptRunningJob(DesRegion& region, TimeT resume_gate);
  void AbandonJob(std::size_t job);
  void MigrateOrphans(const std::vector<TaskId>& orphans, bool forced);
  RecoveryContext BuildContext() const;
  void ApplyDecision(const RecoveryDecision& d);
  std::size_t PickController() const;
  void RepairReuseChain(std::size_t region_index);
  void InsertIntoCore(TaskId t);
  void InsertEntry(std::size_t region_index, DesEntry entry);
  void AccumulateTaskBusy(TaskId t, TimeT span);

  SimResult Finish();

  const Instance& instance_;
  const TaskGraph& graph_;
  const Schedule& schedule_;
  const SimOptions& options_;
  const std::size_t n_;

  std::vector<DesTask> tasks_;
  std::vector<DesJob> jobs_;
  std::vector<DesRegion> regions_;
  std::vector<DesCore> cores_;
  std::vector<DesController> controllers_;
  std::vector<PendingFault> faults_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  TimeT now_ = 0;
  std::size_t done_count_ = 0;
  RecoveryStats stats_;

  std::vector<TimeT> core_busy_;
  std::vector<TimeT> region_busy_;
  std::vector<TimeT> controller_busy_;
};

void FaultedSim::Init() {
  RESCHED_CHECK_MSG(schedule_.task_slots.size() == n_,
                    "schedule does not match instance");
  const std::size_t m = schedule_.reconfigurations.size();

  Rng rng(options_.seed);
  tasks_.resize(n_);
  for (std::size_t t = 0; t < n_; ++t) {
    const TaskSlot& slot = schedule_.task_slots[t];
    DesTask& st = tasks_[t];
    st.impl = slot.impl_index;
    st.on_fpga = slot.OnFpga();
    st.target = slot.target_index;
    st.prio = PrioOf(static_cast<TaskId>(t));
    if (options_.task_jitter > 0.0) {
      st.jfactor = rng.UniformDouble(1.0 - options_.task_jitter,
                                     1.0 + options_.task_jitter);
    }
  }

  jobs_.resize(m);
  std::vector<std::size_t> reconf_of_task(n_, SIZE_MAX);
  for (std::size_t r = 0; r < m; ++r) {
    const ReconfSlot& slot = schedule_.reconfigurations[r];
    RESCHED_CHECK_MSG(slot.region < schedule_.regions.size(),
                      "reconfiguration references unknown region");
    RESCHED_CHECK_MSG(slot.controller <
                          instance_.platform.NumReconfigurators(),
                      "reconfiguration on unknown controller");
    const auto ti = static_cast<std::size_t>(slot.loads_task);
    RESCHED_CHECK_MSG(ti < n_, "reconfiguration loads unknown task");
    RESCHED_CHECK_MSG(reconf_of_task[ti] == SIZE_MAX,
                      "task loaded by two reconfigurations");
    reconf_of_task[ti] = r;
    DesJob& job = jobs_[r];
    job.region = slot.region;
    job.task = slot.loads_task;
    job.controller = slot.controller;
    job.nominal = schedule_.regions[slot.region].reconf_time;
    job.dur = Jittered(job.nominal, options_.reconf_jitter, rng);
  }

  regions_.resize(schedule_.regions.size());
  for (std::size_t s = 0; s < schedule_.regions.size(); ++s) {
    const RegionInfo& region = schedule_.regions[s];
    DesRegion& ds = regions_[s];
    for (std::size_t i = 0; i < region.tasks.size(); ++i) {
      const auto ti = static_cast<std::size_t>(region.tasks[i]);
      RESCHED_CHECK_MSG(schedule_.task_slots[ti].OnFpga() &&
                            schedule_.task_slots[ti].target_index == s,
                        "region task list inconsistent with slots");
      DesEntry entry;
      entry.task = region.tasks[i];
      entry.job = reconf_of_task[ti];
      if (entry.job != SIZE_MAX) {
        RESCHED_CHECK_MSG(jobs_[entry.job].region == s,
                          "reconfiguration region mismatch");
      }
      ds.entries.push_back(entry);
    }
    // A leading entry without a reconfiguration models the module being
    // part of the initial configuration: pretend it is pre-loaded.
    if (!ds.entries.empty() && ds.entries.front().job == SIZE_MAX) {
      ds.loaded_task = ds.entries.front().task;
      ds.loaded_module = ModuleOf(ds.entries.front().task);
    }
  }

  cores_.resize(instance_.platform.NumProcessors());
  for (std::size_t t = 0; t < n_; ++t) {
    const TaskSlot& slot = schedule_.task_slots[t];
    if (slot.OnFpga()) continue;
    RESCHED_CHECK_MSG(slot.target_index < cores_.size(),
                      "task assigned to unknown processor");
    cores_[slot.target_index].queue.push_back(static_cast<TaskId>(t));
  }
  for (DesCore& core : cores_) {
    std::sort(core.queue.begin(), core.queue.end(),
              [&](TaskId a, TaskId b) { return PrioOf(a) < PrioOf(b); });
  }

  controllers_.resize(instance_.platform.NumReconfigurators());
  for (std::size_t r = 0; r < m; ++r) {
    controllers_[jobs_[r].controller].queue.push_back(r);
  }
  for (DesController& controller : controllers_) {
    std::sort(controller.queue.begin(), controller.queue.end(),
              [&](std::size_t a, std::size_t b) {
                return PrioOf(jobs_[a].task) < PrioOf(jobs_[b].task);
              });
  }

  core_busy_.assign(cores_.size(), 0);
  region_busy_.assign(regions_.size(), 0);
  controller_busy_.assign(controllers_.size(), 0);
}

void FaultedSim::ApplyScenario() {
  for (const FaultEvent& event : options_.faults.events) {
    switch (event.kind) {
      case FaultKind::kReconfFailure:
        if (event.index >= jobs_.size()) {
          throw InstanceError(StrFormat(
              "fault event references unknown reconfiguration %zu",
              event.index));
        }
        jobs_[event.index].fail_budget += std::max<std::size_t>(1,
                                                                event.count);
        break;
      case FaultKind::kTaskCrash:
        if (event.index >= n_) {
          throw InstanceError(StrFormat(
              "fault event references unknown task %zu", event.index));
        }
        tasks_[event.index].crash_budget +=
            std::max<std::size_t>(1, event.count);
        break;
      case FaultKind::kTaskOverrun:
        if (event.index >= n_) {
          throw InstanceError(StrFormat(
              "fault event references unknown task %zu", event.index));
        }
        if (event.factor > 0.0) tasks_[event.index].overrun *= event.factor;
        break;
      case FaultKind::kTransientRegionFault:
      case FaultKind::kPermanentRegionLoss: {
        if (event.index >= regions_.size()) {
          throw InstanceError(StrFormat(
              "fault event references unknown region %zu", event.index));
        }
        PendingFault fault;
        fault.region = event.index;
        fault.permanent = event.kind == FaultKind::kPermanentRegionLoss;
        fault.at = std::max<TimeT>(0, event.at);
        fault.window = std::max<TimeT>(1, event.window);
        heap_.push(Event{fault.at, EvKind::kFault, faults_.size(), 0});
        faults_.push_back(fault);
        break;
      }
    }
  }
}

TimeT FaultedSim::AttemptDuration(TaskId t) const {
  const DesTask& st = tasks_[static_cast<std::size_t>(t)];
  const TimeT nominal = graph_.GetImpl(t, st.impl).exec_time;
  const double factor = st.jfactor * st.overrun;
  if (factor == 1.0) return std::max<TimeT>(1, nominal);
  return std::max<TimeT>(
      1, static_cast<TimeT>(
             std::llround(static_cast<double>(nominal) * factor)));
}

bool FaultedSim::PredsDone(TaskId t) const {
  for (const TaskId p : graph_.Predecessors(t)) {
    if (!tasks_[static_cast<std::size_t>(p)].done) return false;
  }
  return true;
}

TimeT FaultedSim::ReadyTime(TaskId t) const {
  TimeT ready = 0;
  const DesTask& st = tasks_[static_cast<std::size_t>(t)];
  for (const TaskId p : graph_.Predecessors(t)) {
    const DesTask& sp = tasks_[static_cast<std::size_t>(p)];
    const TimeT gap =
        CommGap(instance_.platform, graph_, p, t, sp.on_fpga, st.on_fpga);
    ready = std::max(ready, sp.end + gap);
  }
  return ready;
}

std::size_t FaultedSim::HeadEntry(const DesRegion& region) const {
  for (std::size_t i = 0; i < region.entries.size(); ++i) {
    if (!tasks_[static_cast<std::size_t>(region.entries[i].task)].done) {
      return i;
    }
  }
  return SIZE_MAX;
}

void FaultedSim::PushWake(TimeT at) {
  if (at > now_) heap_.push(Event{at, EvKind::kWake, 0, 0});
}

void FaultedSim::StartTask(TaskId t) {
  DesTask& st = TaskOf(t);
  st.running = true;
  st.start = now_;
  const TimeT end = now_ + AttemptDuration(t);
  if (st.on_fpga) {
    DesRegion& region = regions_[st.target];
    region.running_task = t;
    region.busy_until = end;
  } else {
    DesCore& core = cores_[st.target];
    core.running = t;
    core.busy_until = end;
  }
  heap_.push(
      Event{end, EvKind::kTaskDone, static_cast<std::size_t>(t), st.epoch});
}

void FaultedSim::StartReconf(std::size_t job_index) {
  DesJob& job = jobs_[job_index];
  job.state = JobState::kRunning;
  job.start = now_;
  const TimeT end = now_ + job.dur;
  DesController& controller = controllers_[job.controller];
  controller.running = job_index;
  controller.busy_until = end;
  DesRegion& region = regions_[job.region];
  region.running_job = job_index;
  region.busy_until = end;
  heap_.push(Event{end, EvKind::kReconfDone, job_index, job.epoch});
}

void FaultedSim::Dispatch() {
  bool progress = true;
  while (progress) {
    progress = false;

    // Controllers: strictly the first pending job of each queue.
    for (DesController& controller : controllers_) {
      if (controller.running != SIZE_MAX) continue;
      std::size_t head = SIZE_MAX;
      for (const std::size_t j : controller.queue) {
        if (jobs_[j].state == JobState::kPending) {
          head = j;
          break;
        }
      }
      if (head == SIZE_MAX) continue;
      const DesJob& job = jobs_[head];
      const DesRegion& region = regions_[job.region];
      if (!region.alive) continue;  // cancellation is in flight
      const std::size_t h = HeadEntry(region);
      if (h == SIZE_MAX || region.entries[h].job != head) continue;
      if (region.running_task != kInvalidTask ||
          region.running_job != SIZE_MAX) {
        continue;
      }
      const TimeT gate = std::max(job.not_before, region.offline_until);
      if (gate > now_) {
        PushWake(gate);
        continue;
      }
      StartReconf(head);
      progress = true;
    }

    // Regions: strictly the head entry.
    for (DesRegion& region : regions_) {
      if (!region.alive || region.running_task != kInvalidTask ||
          region.running_job != SIZE_MAX) {
        continue;
      }
      if (region.offline_until > now_) continue;  // wake already queued
      const std::size_t h = HeadEntry(region);
      if (h == SIZE_MAX) continue;
      const DesEntry& entry = region.entries[h];
      const TaskId t = entry.task;
      const std::int32_t mod = ModuleOf(t);
      const bool loaded =
          entry.job != SIZE_MAX
              ? jobs_[entry.job].state == JobState::kDone
              : (region.loaded_task == t ||
                 (region.loaded_module >= 0 && region.loaded_module == mod));
      if (!loaded || !PredsDone(t)) continue;
      const TimeT ready = ReadyTime(t);
      if (ready > now_) {
        PushWake(ready);
        continue;
      }
      StartTask(t);
      progress = true;
    }

    // Cores: strictly the first unfinished task of each queue.
    for (DesCore& core : cores_) {
      if (core.running != kInvalidTask) continue;
      TaskId head = kInvalidTask;
      for (const TaskId t : core.queue) {
        if (!TaskOf(t).done) {
          head = t;
          break;
        }
      }
      if (head == kInvalidTask || TaskOf(head).running) continue;
      if (!PredsDone(head)) continue;
      const TimeT ready = ReadyTime(head);
      if (ready > now_) {
        PushWake(ready);
        continue;
      }
      StartTask(head);
      progress = true;
    }
  }
}

void FaultedSim::AccumulateTaskBusy(TaskId t, TimeT span) {
  const DesTask& st = tasks_[static_cast<std::size_t>(t)];
  if (st.on_fpga) {
    region_busy_[st.target] += span;
  } else {
    core_busy_[st.target] += span;
  }
}

void FaultedSim::OnTaskDone(const Event& e) {
  const TaskId t = static_cast<TaskId>(e.id);
  DesTask& st = TaskOf(t);
  if (!st.running || e.epoch != st.epoch) return;  // stale (killed attempt)
  st.running = false;
  AccumulateTaskBusy(t, now_ - st.start);
  if (st.on_fpga) {
    regions_[st.target].running_task = kInvalidTask;
  } else {
    cores_[st.target].running = kInvalidTask;
  }
  if (st.crash_budget > 0) {
    // The attempt ran to completion but its result is discarded; the task
    // stays at the head of its queue and re-runs in place.
    --st.crash_budget;
    ++stats_.task_restarts;
    return;
  }
  st.done = true;
  st.end = now_;
  ++done_count_;
}

void FaultedSim::OnReconfDone(const Event& e) {
  DesJob& job = jobs_[e.id];
  if (job.state != JobState::kRunning || e.epoch != job.epoch) return;
  DesController& controller = controllers_[job.controller];
  controller.running = SIZE_MAX;
  controller_busy_[job.controller] += now_ - job.start;
  DesRegion& region = regions_[job.region];
  region.running_job = SIZE_MAX;
  if (job.fail_budget > 0) {
    --job.fail_budget;
    ++job.failed;
    ++stats_.reconf_retries;
    if (job.failed >= options_.recovery.max_reconf_attempts) {
      AbandonJob(e.id);
      return;
    }
    job.state = JobState::kPending;
    job.not_before =
        now_ + RetryBackoff(options_.recovery, job.nominal, job.failed);
    PushWake(job.not_before);
    return;
  }
  job.state = JobState::kDone;
  job.end = now_;
  region.loaded_task = job.task;
  region.loaded_module = ModuleOf(job.task);
}

void FaultedSim::KillRunningTask(DesRegion& region, bool count_restart) {
  if (region.running_task == kInvalidTask) return;
  const TaskId t = region.running_task;
  DesTask& st = TaskOf(t);
  AccumulateTaskBusy(t, now_ - st.start);
  ++st.epoch;  // the queued TaskDone is now stale
  st.running = false;
  region.running_task = kInvalidTask;
  if (count_restart) ++stats_.task_restarts;
}

void FaultedSim::InterruptRunningJob(DesRegion& region, TimeT resume_gate) {
  if (region.running_job == SIZE_MAX) return;
  DesJob& job = jobs_[region.running_job];
  DesController& controller = controllers_[job.controller];
  controller.running = SIZE_MAX;
  controller_busy_[job.controller] += now_ - job.start;
  ++job.epoch;  // the queued ReconfDone is now stale
  job.state = JobState::kPending;
  // The wasted attempt does not consume the failure budget and does not
  // push the job toward abandonment — it retries once the region is back.
  job.not_before = std::max(
      resume_gate,
      now_ + RetryBackoff(options_.recovery, job.nominal, job.failed + 1));
  ++stats_.reconf_retries;
  region.running_job = SIZE_MAX;
  PushWake(job.not_before);
}

void FaultedSim::OnFault(const PendingFault& f) {
  DesRegion& region = regions_[f.region];
  if (!region.alive) return;
  if (!f.permanent) {
    region.offline_until = std::max(region.offline_until, now_ + f.window);
    if (options_.recovery.policy == RecoveryPolicy::kSoftwareFallback &&
        region.running_task != kInvalidTask) {
      // Eager policy: the killed task does not wait out the repair window,
      // it moves to its software implementation right away.
      const TaskId killed = region.running_task;
      KillRunningTask(region, /*count_restart=*/false);
      for (std::size_t i = 0; i < region.entries.size(); ++i) {
        if (region.entries[i].task == killed) {
          region.entries.erase(region.entries.begin() +
                               static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      MigrateOrphans({killed}, /*forced=*/true);
      RepairReuseChain(f.region);
    } else {
      KillRunningTask(region, /*count_restart=*/true);
    }
    InterruptRunningJob(region, region.offline_until);
    PushWake(region.offline_until);
    return;
  }

  // Permanent loss: the region is gone; everything unfinished on it
  // becomes an orphan for the recovery planner.
  region.alive = false;
  ++stats_.abandoned_regions;
  KillRunningTask(region, /*count_restart=*/false);
  if (region.running_job != SIZE_MAX) {
    DesJob& job = jobs_[region.running_job];
    DesController& controller = controllers_[job.controller];
    controller.running = SIZE_MAX;
    controller_busy_[job.controller] += now_ - job.start;
    ++job.epoch;
    job.state = JobState::kCancelled;
    region.running_job = SIZE_MAX;
  }
  for (DesJob& job : jobs_) {
    if (job.region == f.region && job.state == JobState::kPending) {
      job.state = JobState::kCancelled;
    }
  }
  std::vector<TaskId> orphans;
  std::vector<DesEntry> keep;
  for (const DesEntry& entry : region.entries) {
    if (tasks_[static_cast<std::size_t>(entry.task)].done) {
      keep.push_back(entry);
    } else {
      orphans.push_back(entry.task);  // entry order is dependency-safe
    }
  }
  region.entries = std::move(keep);
  MigrateOrphans(orphans, /*forced=*/true);
}

void FaultedSim::AbandonJob(std::size_t job_index) {
  DesJob& job = jobs_[job_index];
  job.state = JobState::kCancelled;
  const std::size_t s = job.region;
  DesRegion& region = regions_[s];
  for (std::size_t i = 0; i < region.entries.size(); ++i) {
    if (region.entries[i].task == job.task) {
      region.entries.erase(region.entries.begin() +
                           static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  MigrateOrphans({job.task}, /*forced=*/true);
  RepairReuseChain(s);
}

RecoveryContext FaultedSim::BuildContext() const {
  RecoveryContext ctx;
  ctx.now = now_;
  ctx.core_load.resize(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const DesCore& core = cores_[c];
    TimeT load = core.running != kInvalidTask ? std::max(now_,
                                                         core.busy_until)
                                              : now_;
    for (const TaskId t : core.queue) {
      const DesTask& st = tasks_[static_cast<std::size_t>(t)];
      if (st.done || st.running) continue;
      load += graph_.GetImpl(t, st.impl).exec_time;
    }
    ctx.core_load[c] = load;
  }
  ctx.regions.resize(regions_.size());
  for (std::size_t s = 0; s < regions_.size(); ++s) {
    const DesRegion& region = regions_[s];
    RecoveryContext::RegionState& out = ctx.regions[s];
    out.usable = region.alive;
    out.res = schedule_.regions[s].res;
    out.reconf_time = schedule_.regions[s].reconf_time;
    TimeT load = std::max(now_, region.offline_until);
    if (region.running_task != kInvalidTask ||
        region.running_job != SIZE_MAX) {
      load = std::max(load, region.busy_until);
    }
    for (const DesEntry& entry : region.entries) {
      const DesTask& st = tasks_[static_cast<std::size_t>(entry.task)];
      if (st.done || st.running) continue;
      if (entry.job != SIZE_MAX &&
          jobs_[entry.job].state == JobState::kPending) {
        load += jobs_[entry.job].dur;
      }
      load += graph_.GetImpl(entry.task, st.impl).exec_time;
    }
    out.load = load;
  }
  ctx.controller_load.resize(controllers_.size());
  for (std::size_t c = 0; c < controllers_.size(); ++c) {
    const DesController& controller = controllers_[c];
    TimeT load = controller.running != SIZE_MAX
                     ? std::max(now_, controller.busy_until)
                     : now_;
    for (const std::size_t j : controller.queue) {
      if (jobs_[j].state == JobState::kPending) load += jobs_[j].dur;
    }
    ctx.controller_load[c] = load;
  }
  return ctx;
}

std::size_t FaultedSim::PickController() const {
  std::size_t best = 0;
  std::size_t best_pending = SIZE_MAX;
  for (std::size_t c = 0; c < controllers_.size(); ++c) {
    std::size_t pending = 0;
    for (const std::size_t j : controllers_[c].queue) {
      if (jobs_[j].state == JobState::kPending) ++pending;
    }
    if (pending < best_pending) {
      best_pending = pending;
      best = c;
    }
  }
  return best;
}

void FaultedSim::InsertIntoCore(TaskId t) {
  DesCore& core = cores_[TaskOf(t).target];
  const Prio prio = PrioOf(t);
  auto it = core.queue.begin();
  for (; it != core.queue.end(); ++it) {
    if (!TaskOf(*it).done && prio < PrioOf(*it)) break;
  }
  core.queue.insert(it, t);
}

void FaultedSim::InsertEntry(std::size_t region_index, DesEntry entry) {
  DesRegion& region = regions_[region_index];
  const Prio prio = PrioOf(entry.task);
  auto it = region.entries.begin();
  for (; it != region.entries.end(); ++it) {
    // Never insert in front of a completed or in-flight attempt: those
    // entries are the region's immutable past (and present).
    const DesTask& st = tasks_[static_cast<std::size_t>(it->task)];
    if (!st.done && !st.running && prio < PrioOf(it->task)) break;
  }
  region.entries.insert(it, entry);
}

void FaultedSim::RepairReuseChain(std::size_t region_index) {
  DesRegion& region = regions_[region_index];
  if (!region.alive) return;
  TaskId prev_task = region.loaded_task;
  std::int32_t prev_module = region.loaded_module;
  bool past_head = false;
  for (DesEntry& entry : region.entries) {
    const DesTask& st = tasks_[static_cast<std::size_t>(entry.task)];
    const std::int32_t mod = ModuleOf(entry.task);
    if (st.done || st.running) {
      // Completed or in-flight: the module is (being) executed from the
      // fabric as-is — it must never be given a fresh reconfiguration.
      prev_task = entry.task;
      prev_module = mod;
      continue;
    }
    const bool has_job =
        entry.job != SIZE_MAX && jobs_[entry.job].state != JobState::kCancelled;
    // The head entry compares against the currently loaded configuration;
    // later entries against their predecessor in the (possibly edited)
    // sequence. Module reuse needs a shared non-unique module id.
    const bool reuse_ok =
        (!past_head && prev_task == entry.task) ||
        (prev_module >= 0 && prev_module == mod);
    if (!has_job && !reuse_ok) {
      DesJob job;
      job.region = region_index;
      job.task = entry.task;
      job.controller = PickController();
      job.nominal = schedule_.regions[region_index].reconf_time;
      job.dur = job.nominal;
      jobs_.push_back(job);
      const std::size_t job_index = jobs_.size() - 1;
      entry.job = job_index;
      DesController& controller = controllers_[job.controller];
      const Prio prio = PrioOf(entry.task);
      auto it = controller.queue.begin();
      for (; it != controller.queue.end(); ++it) {
        if (jobs_[*it].state == JobState::kPending &&
            prio < PrioOf(jobs_[*it].task)) {
          break;
        }
      }
      controller.queue.insert(it, job_index);
    }
    past_head = true;
    prev_task = entry.task;
    prev_module = mod;
  }
}

void FaultedSim::ApplyDecision(const RecoveryDecision& d) {
  DesTask& st = TaskOf(d.task);
  st.impl = d.impl_index;
  st.on_fpga = d.to_region;
  st.target = d.target;
  if (!d.to_region) {
    InsertIntoCore(d.task);
    return;
  }
  DesJob job;
  job.region = d.target;
  job.task = d.task;
  job.controller = d.controller;
  job.nominal = schedule_.regions[d.target].reconf_time;
  job.dur = job.nominal;
  jobs_.push_back(job);
  const std::size_t job_index = jobs_.size() - 1;
  DesController& controller = controllers_[job.controller];
  const Prio prio = PrioOf(d.task);
  auto it = controller.queue.begin();
  for (; it != controller.queue.end(); ++it) {
    if (jobs_[*it].state == JobState::kPending &&
        prio < PrioOf(jobs_[*it].task)) {
      break;
    }
  }
  controller.queue.insert(it, job_index);
  DesEntry entry;
  entry.task = d.task;
  entry.job = job_index;
  InsertEntry(d.target, entry);
  RepairReuseChain(d.target);
}

void FaultedSim::MigrateOrphans(const std::vector<TaskId>& orphans,
                                bool forced) {
  if (orphans.empty()) return;
  RESCHED_CHECK_MSG(forced, "orphans only arise from forced events");
  RecoveryContext ctx = BuildContext();
  const RecoveryPolicy policy = options_.recovery.policy;
  // kRetry falls back to software only when forced — and every call site
  // is a forced one (permanent loss, abandoned reconfiguration).
  std::vector<RecoveryDecision> plan =
      policy == RecoveryPolicy::kSuffixReschedule
          ? PlanSuffixRepair(graph_, orphans, ctx)
          : PlanSoftwareFallback(graph_, orphans, ctx);
  for (const RecoveryDecision& d : plan) {
    ApplyDecision(d);
    if (policy == RecoveryPolicy::kSuffixReschedule) {
      ++stats_.rescheduled_tasks;
    } else {
      ++stats_.migrations;
    }
  }
}

SimResult FaultedSim::Finish() {
  if (done_count_ != n_ && std::getenv("RESCHED_SIM_DEBUG")) {
    std::fprintf(stderr, "stall at t=%lld: %zu/%zu done\n",
                 static_cast<long long>(now_), done_count_, n_);
    for (std::size_t t = 0; t < n_; ++t) {
      if (tasks_[t].done) continue;
      std::fprintf(stderr,
                   "  task %zu: on_fpga=%d target=%zu running=%d prio=(%lld)\n",
                   t, tasks_[t].on_fpga ? 1 : 0, tasks_[t].target,
                   tasks_[t].running ? 1 : 0,
                   static_cast<long long>(tasks_[t].prio.start));
    }
    for (std::size_t s = 0; s < regions_.size(); ++s) {
      std::fprintf(stderr,
                   "  region %zu: alive=%d offline_until=%lld running=%d "
                   "loaded=%d entries:",
                   s, regions_[s].alive ? 1 : 0,
                   static_cast<long long>(regions_[s].offline_until),
                   regions_[s].running_task, regions_[s].loaded_task);
      for (const DesEntry& e : regions_[s].entries) {
        std::fprintf(stderr, " %d(job=%zd)", e.task,
                     e.job == SIZE_MAX ? -1
                                       : static_cast<std::ptrdiff_t>(e.job));
      }
      std::fprintf(stderr, "\n");
    }
    for (std::size_t c = 0; c < controllers_.size(); ++c) {
      std::fprintf(stderr, "  controller %zu: running=%zd queue:", c,
                   controllers_[c].running == SIZE_MAX
                       ? -1
                       : static_cast<std::ptrdiff_t>(controllers_[c].running));
      for (const std::size_t j : controllers_[c].queue) {
        std::fprintf(
            stderr, " j%zu(task=%d region=%zu state=%d not_before=%lld)", j,
            jobs_[j].task, jobs_[j].region, static_cast<int>(jobs_[j].state),
            static_cast<long long>(jobs_[j].not_before));
      }
      std::fprintf(stderr, "\n");
    }
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      std::fprintf(stderr, "  core %zu: running=%d queue:", c,
                   cores_[c].running);
      for (const TaskId t : cores_[c].queue) {
        std::fprintf(stderr, " %d%s", t,
                     tasks_[static_cast<std::size_t>(t)].done ? "(done)" : "");
      }
      std::fprintf(stderr, "\n");
    }
  }
  RESCHED_CHECK_MSG(done_count_ == n_,
                    "fault simulation stalled before completing all tasks");
  SimResult result;
  result.task_start.assign(n_, 0);
  result.task_end.assign(n_, 0);
  for (std::size_t t = 0; t < n_; ++t) {
    result.task_start[t] = tasks_[t].start;
    result.task_end[t] = tasks_[t].end;
    result.makespan = std::max(result.makespan, tasks_[t].end);
  }
  result.stretch = schedule_.makespan > 0
                       ? static_cast<double>(result.makespan) /
                             static_cast<double>(schedule_.makespan)
                       : 0.0;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    result.usage.push_back(ResourceUsage{StrFormat("cpu%zu", c),
                                         core_busy_[c], 0.0});
  }
  for (std::size_t s = 0; s < regions_.size(); ++s) {
    result.usage.push_back(ResourceUsage{StrFormat("rr%zu", s),
                                         region_busy_[s], 0.0});
  }
  for (std::size_t c = 0; c < controllers_.size(); ++c) {
    result.usage.push_back(ResourceUsage{StrFormat("icap%zu", c),
                                         controller_busy_[c], 0.0});
  }
  for (ResourceUsage& usage : result.usage) {
    usage.utilization = result.makespan > 0
                            ? static_cast<double>(usage.busy) /
                                  static_cast<double>(result.makespan)
                            : 0.0;
  }
  result.recovery = stats_;
  result.recovery.survived = true;

  // As-executed schedule: final placements, final successful attempts.
  Schedule& executed = result.executed;
  executed.task_slots.resize(n_);
  for (std::size_t t = 0; t < n_; ++t) {
    TaskSlot& slot = executed.task_slots[t];
    slot.task = static_cast<TaskId>(t);
    slot.impl_index = tasks_[t].impl;
    slot.target =
        tasks_[t].on_fpga ? TargetKind::kRegion : TargetKind::kProcessor;
    slot.target_index = tasks_[t].target;
    slot.start = tasks_[t].start;
    slot.end = tasks_[t].end;
  }
  executed.regions.resize(regions_.size());
  for (std::size_t s = 0; s < regions_.size(); ++s) {
    executed.regions[s].res = schedule_.regions[s].res;
    executed.regions[s].reconf_time = schedule_.regions[s].reconf_time;
  }
  std::vector<TaskId> by_start(n_);
  for (std::size_t t = 0; t < n_; ++t) by_start[t] = static_cast<TaskId>(t);
  std::sort(by_start.begin(), by_start.end(), [&](TaskId a, TaskId b) {
    const DesTask& ta = tasks_[static_cast<std::size_t>(a)];
    const DesTask& tb = tasks_[static_cast<std::size_t>(b)];
    return ta.start != tb.start ? ta.start < tb.start : a < b;
  });
  for (const TaskId t : by_start) {
    const DesTask& st = tasks_[static_cast<std::size_t>(t)];
    if (st.on_fpga) executed.regions[st.target].tasks.push_back(t);
  }
  for (const DesJob& job : jobs_) {
    if (job.state != JobState::kDone) continue;
    ReconfSlot slot;
    slot.region = job.region;
    slot.loads_task = job.task;
    slot.start = job.start;
    slot.end = job.end;
    slot.controller = job.controller;
    executed.reconfigurations.push_back(slot);
  }
  std::sort(executed.reconfigurations.begin(),
            executed.reconfigurations.end(),
            [](const ReconfSlot& a, const ReconfSlot& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.region != b.region) return a.region < b.region;
              return a.loads_task < b.loads_task;
            });
  executed.makespan = result.makespan;
  executed.algorithm = schedule_.algorithm;
  executed.floorplan = schedule_.floorplan;
  executed.floorplan_checked = schedule_.floorplan_checked;
  return result;
}

SimResult FaultedSim::Run() {
  Init();
  ApplyScenario();
  Dispatch();
  while (!heap_.empty()) {
    const Event e = heap_.top();
    heap_.pop();
    RESCHED_CHECK_MSG(e.time >= now_, "event heap went backwards");
    now_ = e.time;
    switch (e.kind) {
      case EvKind::kReconfDone:
        OnReconfDone(e);
        break;
      case EvKind::kTaskDone:
        OnTaskDone(e);
        break;
      case EvKind::kFault:
        OnFault(faults_[e.id]);
        break;
      case EvKind::kWake:
        break;
    }
    Dispatch();
  }
  return Finish();
}

}  // namespace

SimResult Simulate(const Instance& instance, const Schedule& schedule,
                   const SimOptions& options) {
  if (options.faults.Empty()) {
    return SimulateNominal(instance, schedule, options);
  }
  FaultedSim sim(instance, schedule, options);
  return sim.Run();
}

}  // namespace resched::sim
