// Discrete-event execution simulator.
//
// Replays a schedule's *decisions* (implementation selection, mapping,
// per-resource task orders, reconfiguration-controller assignment order)
// under perturbed execution times, the way the static schedule would
// actually unfold on the SoC: every task starts as soon as its
// predecessors (plus HW<->SW transfer gaps), its resource (previous
// occupant) and — for hardware tasks — its reconfiguration are done;
// every reconfiguration starts as soon as the region's previous task ends
// and its controller (in the recorded per-controller order) is free.
//
// With zero jitter the simulated times can only be earlier than the static
// schedule (all orderings are kept, all waits are earliest-start), which
// doubles as a strong cross-check of schedule consistency. With jitter it
// measures the *robustness* of a scheduler's decisions: how much a
// schedule degrades when execution times deviate from their estimates.
//
// With a non-empty FaultScenario the replay switches to a time-ordered
// event engine that injects the scenario's faults and recovers online per
// the configured policy (sim/faults.hpp, sched/recovery.hpp): failed
// reconfigurations retry with capped exponential backoff, transiently
// faulted regions go offline for their repair window, permanently lost
// regions hand their unstarted tasks to the recovery planner. An empty
// scenario takes the original relaxation path, so nominal results are
// bit-identical to the pre-fault executor.
#pragma once

#include "sched/recovery.hpp"
#include "sched/schedule.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"

namespace resched::sim {

struct SimOptions {
  /// Multiplicative task-duration noise: actual = nominal * U[1-j, 1+j].
  double task_jitter = 0.0;
  /// Same for reconfiguration durations.
  double reconf_jitter = 0.0;
  std::uint64_t seed = 1;
  /// Fault events to inject; empty = nominal replay.
  FaultScenario faults;
  /// Recovery policy and retry knobs (consulted only under faults).
  RecoveryOptions recovery;
};

struct ResourceUsage {
  std::string name;
  TimeT busy = 0;
  double utilization = 0.0;  ///< busy / makespan
};

/// Telemetry of the online-recovery machinery (all zero under an empty
/// scenario).
struct RecoveryStats {
  std::size_t reconf_retries = 0;    ///< failed reconfiguration attempts
  std::size_t task_restarts = 0;     ///< crash/kill re-executions
  std::size_t migrations = 0;        ///< tasks moved to a software fallback
  std::size_t rescheduled_tasks = 0; ///< tasks re-placed by suffix repair
  std::size_t abandoned_regions = 0; ///< regions permanently lost
  bool survived = true;              ///< every task completed
};

struct SimResult {
  TimeT makespan = 0;
  std::vector<TimeT> task_start;
  std::vector<TimeT> task_end;
  std::vector<ResourceUsage> usage;  ///< cores, regions, controllers

  /// makespan / schedule.makespan — the degradation factor (under faults:
  /// the degraded stretch).
  double stretch = 0.0;

  RecoveryStats recovery;

  /// The as-executed schedule: final targets/implementations (reflecting
  /// any recovery migrations) with simulated times and only the successful
  /// reconfiguration attempts. Passes ValidateSchedule with
  /// ValidationOptions{.executed = true, .outages = OutagesFromScenario(...)}.
  Schedule executed;
};

/// Simulates `schedule` on `instance`. Throws InternalError if the
/// schedule's decision structure is inconsistent (e.g. a hardware task in
/// a region that never hosts it) and InstanceError if recovery would
/// deadlock (a task lost its hardware home and has no software
/// implementation).
SimResult Simulate(const Instance& instance, const Schedule& schedule,
                   const SimOptions& options = {});

}  // namespace resched::sim
