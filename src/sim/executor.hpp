// Discrete-event execution simulator.
//
// Replays a schedule's *decisions* (implementation selection, mapping,
// per-resource task orders, reconfiguration-controller assignment order)
// under perturbed execution times, the way the static schedule would
// actually unfold on the SoC: every task starts as soon as its
// predecessors (plus HW<->SW transfer gaps), its resource (previous
// occupant) and — for hardware tasks — its reconfiguration are done;
// every reconfiguration starts as soon as the region's previous task ends
// and its controller (in the recorded per-controller order) is free.
//
// With zero jitter the simulated times can only be earlier than the static
// schedule (all orderings are kept, all waits are earliest-start), which
// doubles as a strong cross-check of schedule consistency. With jitter it
// measures the *robustness* of a scheduler's decisions: how much a
// schedule degrades when execution times deviate from their estimates.
#pragma once

#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace resched::sim {

struct SimOptions {
  /// Multiplicative task-duration noise: actual = nominal * U[1-j, 1+j].
  double task_jitter = 0.0;
  /// Same for reconfiguration durations.
  double reconf_jitter = 0.0;
  std::uint64_t seed = 1;
};

struct ResourceUsage {
  std::string name;
  TimeT busy = 0;
  double utilization = 0.0;  ///< busy / makespan
};

struct SimResult {
  TimeT makespan = 0;
  std::vector<TimeT> task_start;
  std::vector<TimeT> task_end;
  std::vector<ResourceUsage> usage;  ///< cores, regions, controllers

  /// makespan / schedule.makespan — the degradation factor.
  double stretch = 0.0;
};

/// Simulates `schedule` on `instance`. Throws InternalError if the
/// schedule's decision structure is inconsistent (e.g. a hardware task in
/// a region that never hosts it).
SimResult Simulate(const Instance& instance, const Schedule& schedule,
                   const SimOptions& options = {});

}  // namespace resched::sim
