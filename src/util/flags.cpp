#include "util/flags.hpp"

#include <algorithm>
#include <charconv>

namespace resched {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) throw FlagError("bare '--' is not a valid flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      if (name.empty()) throw FlagError("flag with empty name: " + arg);
      flags.values_[name] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not a flag; else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::int64_t value = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw FlagError("flag --" + name + " expects an integer, got '" + s + "'");
  }
  return value;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  double value = 0.0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw FlagError("flag --" + name + " expects a number, got '" + s + "'");
  }
  return value;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw FlagError("flag --" + name + " expects a boolean, got '" + s + "'");
}

std::vector<std::string> Flags::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      unknown.push_back(name);
    }
  }
  return unknown;
}

}  // namespace resched
