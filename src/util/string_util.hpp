// Small string helpers shared by the I/O and reporting layers.
#pragma once

#include <string>
#include <vector>

namespace resched {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Left-pads/truncates to a fixed-width column (for text tables).
std::string PadLeft(const std::string& s, std::size_t width);
std::string PadRight(const std::string& s, std::size_t width);

/// Formats ticks (µs) as a human-readable duration, e.g. "12.34 ms".
std::string FormatTicks(std::int64_t ticks);

}  // namespace resched
