#include "util/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/io_faults.hpp"

namespace resched {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

/// Bounded retry budget for transient errno results (EINTR, and EAGAIN
/// under fault injection — these are blocking sockets, so a real kernel
/// never returns EAGAIN here). Finite so a 100%-fault spec terminates
/// with an error instead of spinning forever.
constexpr int kMaxTransientRetries = 128;

sockaddr_un MakeAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("unix socket path empty or too long (" +
                      std::to_string(path.size()) + " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

// ---------------------------------------------------------------- UnixSocket

UnixSocket::~UnixSocket() {
  if (fd_ >= 0) {
    // Best effort in a destructor: nothing useful can be done with a close
    // failure during unwinding.
    (void)::close(fd_);
    fd_ = -1;
  }
}

UnixSocket::UnixSocket(UnixSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

UnixSocket& UnixSocket::operator=(UnixSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) (void)::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

UnixSocket UnixSocket::Connect(const std::string& path) {
  const sockaddr_un addr = MakeAddress(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  UnixSocket s(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ThrowErrno("connect to " + path);
  }
  return s;
}

bool UnixSocket::SendAll(std::string_view data) {
  if (fd_ < 0) throw SocketError("SendAll on a closed socket");
  std::size_t sent = 0;
  int transient = 0;
  while (sent < data.size()) {
    const ssize_t n = io_faults::Send(fd_, data.data() + sent,
                                      data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if ((errno == EINTR || errno == EAGAIN) &&
          ++transient < kMaxTransientRetries) {
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) return false;
      ThrowErrno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool UnixSocket::RecvSome(std::string& buffer) {
  if (fd_ < 0) throw SocketError("RecvSome on a closed socket");
  char chunk[4096];
  int transient = 0;
  for (;;) {
    const ssize_t n = io_faults::Recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if ((errno == EINTR || errno == EAGAIN) &&
          ++transient < kMaxTransientRetries) {
        continue;
      }
      ThrowErrno("recv");
    }
    if (n == 0) return false;  // orderly EOF
    buffer.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
}

void UnixSocket::Close() {
  if (fd_ < 0) return;
  const int fd = std::exchange(fd_, -1);
  if (::close(fd) != 0) ThrowErrno("close");
}

// --------------------------------------------------------------- UnixListener

UnixListener::UnixListener(const std::string& path) : path_(path) {
  const sockaddr_un addr = MakeAddress(path);
  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE even though nobody is listening; remove it first. ENOENT is
  // the expected case.
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    ThrowErrno("unlink stale socket " + path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket");
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    (void)::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("bind " + path);
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    (void)::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("listen on " + path);
  }
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    (void)::unlink(path_.c_str());
  }
}

std::optional<UnixSocket> UnixListener::Accept() {
  for (;;) {
    const int fd = fd_;
    if (fd < 0) return std::nullopt;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) return UnixSocket(client);
    if (errno == EINTR) continue;
    // Close() from another thread closes the fd under us; accept then
    // reports EBADF (or ECONNABORTED/EINVAL depending on timing). All mean
    // "listener is gone", which is the orderly-shutdown signal.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) {
      return std::nullopt;
    }
    ThrowErrno("accept on " + path_);
  }
}

void UnixListener::Close() {
  if (fd_ < 0) return;
  const int fd = std::exchange(fd_, -1);
  if (::close(fd) != 0) ThrowErrno("close listener");
}

// ----------------------------------------------------------- SocketLineReader

bool SocketLineReader::ReadLine(std::string& line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);  // unterminated trailing line
      buffer_.clear();
      return true;
    }
    if (!socket_->RecvSome(buffer_)) eof_ = true;
  }
}

}  // namespace resched
