#include "util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/io_faults.hpp"

namespace resched {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

/// Bounded retry budget for transient errno results (EINTR, and EAGAIN
/// under fault injection — these are blocking sockets, so a real kernel
/// never returns EAGAIN here). Finite so a 100%-fault spec terminates
/// with an error instead of spinning forever.
constexpr int kMaxTransientRetries = 128;

sockaddr_un MakeAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("unix socket path empty or too long (" +
                      std::to_string(path.size()) + " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Numeric-IPv4-or-"localhost" resolver. Deliberately not getaddrinfo:
/// the fleet runs on loopback (tests, single-host deployments) and a
/// resolver stub keeps connect/bind deterministic and dependency-free.
sockaddr_in MakeInetAddress(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("not a numeric IPv4 address (or \"localhost\"): " +
                      host);
  }
  return addr;
}

void SetNoDelay(int fd) {
  const int one = 1;
  // Best effort: losing Nagle-off costs latency, not correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// -------------------------------------------------------------- StreamSocket

StreamSocket::~StreamSocket() {
  if (fd_ >= 0) {
    // Best effort in a destructor: nothing useful can be done with a close
    // failure during unwinding.
    (void)::close(fd_);
    fd_ = -1;
  }
}

StreamSocket::StreamSocket(StreamSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

StreamSocket& StreamSocket::operator=(StreamSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) (void)::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

StreamSocket StreamSocket::Connect(const std::string& path) {
  const sockaddr_un addr = MakeAddress(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  StreamSocket s(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ThrowErrno("connect to " + path);
  }
  return s;
}

StreamSocket StreamSocket::ConnectTcp(const std::string& host,
                                      std::uint16_t port) {
  const sockaddr_in addr = MakeInetAddress(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  StreamSocket s(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ThrowErrno("connect to " + host + ":" + std::to_string(port));
  }
  SetNoDelay(fd);
  return s;
}

bool StreamSocket::SendAll(std::string_view data) {
  if (fd_ < 0) throw SocketError("SendAll on a closed socket");
  std::size_t sent = 0;
  int transient = 0;
  while (sent < data.size()) {
    const ssize_t n = io_faults::Send(fd_, data.data() + sent,
                                      data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if ((errno == EINTR || errno == EAGAIN) &&
          ++transient < kMaxTransientRetries) {
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) return false;
      ThrowErrno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool StreamSocket::RecvSome(std::string& buffer) {
  if (fd_ < 0) throw SocketError("RecvSome on a closed socket");
  char chunk[4096];
  int transient = 0;
  for (;;) {
    const ssize_t n = io_faults::Recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if ((errno == EINTR || errno == EAGAIN) &&
          ++transient < kMaxTransientRetries) {
        continue;
      }
      ThrowErrno("recv");
    }
    if (n == 0) return false;  // orderly EOF
    buffer.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
}

void StreamSocket::Shutdown() {
  if (fd_ < 0) return;
  (void)::shutdown(fd_, SHUT_RDWR);
}

void StreamSocket::Close() {
  if (fd_ < 0) return;
  const int fd = std::exchange(fd_, -1);
  if (::close(fd) != 0) ThrowErrno("close");
}

// --------------------------------------------------------------- UnixListener

UnixListener::UnixListener(const std::string& path) : path_(path) {
  const sockaddr_un addr = MakeAddress(path);
  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE even though nobody is listening; remove it first. ENOENT is
  // the expected case.
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    ThrowErrno("unlink stale socket " + path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket");
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    (void)::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("bind " + path);
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    (void)::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("listen on " + path);
  }
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    (void)::unlink(path_.c_str());
  }
}

std::optional<StreamSocket> UnixListener::Accept() {
  for (;;) {
    const int fd = fd_;
    if (fd < 0) return std::nullopt;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) return StreamSocket(client);
    if (errno == EINTR) continue;
    // Close() from another thread closes the fd under us; accept then
    // reports EBADF (or ECONNABORTED/EINVAL depending on timing). All mean
    // "listener is gone", which is the orderly-shutdown signal.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) {
      return std::nullopt;
    }
    ThrowErrno("accept on " + path_);
  }
}

void UnixListener::Close() {
  if (fd_ < 0) return;
  const int fd = std::exchange(fd_, -1);
  // close(2) alone does not wake a sibling thread parked in accept(2);
  // shutdown(2) does for AF_UNIX listeners (accept reports EINVAL, which
  // Accept treats as the orderly-shutdown signal).
  (void)::shutdown(fd, SHUT_RDWR);
  if (::close(fd) != 0) ThrowErrno("close listener");
}

// ---------------------------------------------------------------- TcpListener

TcpListener::TcpListener(const std::string& host, std::uint16_t port)
    : host_(host), port_(port) {
  sockaddr_in addr = MakeInetAddress(host, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket");
  // Without SO_REUSEADDR a restart within TIME_WAIT of the old daemon's
  // connections fails with EADDRINUSE; harmless for the ephemeral-port
  // (port 0) case tests use.
  const int one = 1;
  if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    const int saved = errno;
    (void)::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("setsockopt SO_REUSEADDR");
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    (void)::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("bind " + host + ":" + std::to_string(port));
  }
  if (port == 0) {
    // Learn the kernel-assigned ephemeral port so callers can announce it.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      const int saved = errno;
      (void)::close(fd_);
      fd_ = -1;
      errno = saved;
      ThrowErrno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    (void)::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("listen on " + host + ":" + std::to_string(port_));
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

std::optional<StreamSocket> TcpListener::Accept() {
  for (;;) {
    const int fd = fd_;
    if (fd < 0) return std::nullopt;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      if (fd_ < 0) {
        // Close() ran while we were parked: this is (or races with) its
        // wake-up self-connection, not a client to serve.
        (void)::close(client);
        return std::nullopt;
      }
      SetNoDelay(client);
      return StreamSocket(client);
    }
    if (errno == EINTR) continue;
    // Same orderly-shutdown contract as UnixListener::Accept.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) {
      return std::nullopt;
    }
    ThrowErrno("accept on " + host_ + ":" + std::to_string(port_));
  }
}

void TcpListener::Close() {
  if (fd_ < 0) return;
  const int fd = std::exchange(fd_, -1);
  // Unlike the AF_UNIX case, neither close(2) nor shutdown(2) wakes a
  // thread parked in accept(2) on a TCP listener (observed on Linux 6.x).
  // Complete one throwaway self-connection instead: accept returns it,
  // sees fd_ already cleared, and reports the orderly shutdown.
  const int wake = ::socket(AF_INET, SOCK_STREAM, 0);
  if (wake >= 0) {
    sockaddr_in addr =
        MakeInetAddress(host_ == "0.0.0.0" ? "127.0.0.1" : host_, port_);
    (void)::connect(wake, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr));
    (void)::close(wake);
  }
  if (::close(fd) != 0) ThrowErrno("close listener");
}

// ----------------------------------------------------------- SocketLineReader

bool SocketLineReader::ReadLine(std::string& line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);  // unterminated trailing line
      buffer_.clear();
      return true;
    }
    if (!socket_->RecvSome(buffer_)) eof_ = true;
  }
}

}  // namespace resched
