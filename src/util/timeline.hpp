// Word-packed bitset timeline kernels (the ISSUE-6 hot-path library).
//
// The scheduler's feasibility scans all reduce to the same primitive: a set
// of half-open index ranges over a bounded axis (time buckets, fabric
// cells), asked either "is any index in [begin, end) occupied?" or "occupy
// [begin, end)". These kernels pack the axis into 64-bit words so one AND
// or OR touches 64 indices; the floorplan DFS clash test, the PA region
// availability prefilter and the validator overlap scan all share them.
//
// Layout: bit i of the axis lives in words[i / 64], bit position i % 64.
// Every kernel takes raw word pointers so callers can carve the storage
// from an arena or a catalog entry. None of the kernels allocate.
//
// `timeline::scalar` mirrors every kernel with a one-bit-at-a-time
// reference implementation — the oracle for the differential property test
// (tests/timeline_test.cpp). Keep the two namespaces signature-identical.
//
// Bulk word spans are routed through util/simd.hpp (runtime AVX2/NEON
// dispatch, RESCHED_SIMD override). Spans shorter than kDispatchMinWords
// keep the inline word loop: an indirect call costs more than it saves on
// the 3-word fabric masks of the floorplan DFS. Every backend is
// bit-identical (DESIGN.md §13), so the split never changes a result.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/simd.hpp"

namespace resched::timeline {

inline constexpr std::size_t kWordBits = 64;
inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Word spans at least this long go through the simd dispatch table;
/// shorter spans use the inline loop (indirect-call break-even).
inline constexpr std::size_t kDispatchMinWords = 4;

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t WordsFor(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

namespace detail {
/// Mask with bits [b % 64, 64) set — the head of a range's first word.
constexpr std::uint64_t HeadMask(std::size_t b) {
  return ~std::uint64_t{0} << (b % kWordBits);
}
/// Mask with bits [0, e % 64] set — the tail of a range's last word,
/// where `e` is the *inclusive* last bit index.
constexpr std::uint64_t TailMask(std::size_t e) {
  return ~std::uint64_t{0} >> (kWordBits - 1 - (e % kWordBits));
}
}  // namespace detail

/// Sets every bit in [begin, end).
inline void RangeSet(std::uint64_t* words, std::size_t begin,
                     std::size_t end) {
  if (begin >= end) return;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  const std::uint64_t head = detail::HeadMask(begin);
  const std::uint64_t tail = detail::TailMask(end - 1);
  if (wb == we) {
    words[wb] |= head & tail;
    return;
  }
  words[wb] |= head;
  if (we - wb - 1 >= kDispatchMinWords) {
    simd::Active().fill(words + wb + 1, ~std::uint64_t{0}, we - wb - 1);
  } else {
    for (std::size_t w = wb + 1; w < we; ++w) words[w] = ~std::uint64_t{0};
  }
  words[we] |= tail;
}

/// Clears every bit in [begin, end).
inline void RangeClear(std::uint64_t* words, std::size_t begin,
                       std::size_t end) {
  if (begin >= end) return;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  const std::uint64_t head = detail::HeadMask(begin);
  const std::uint64_t tail = detail::TailMask(end - 1);
  if (wb == we) {
    words[wb] &= ~(head & tail);
    return;
  }
  words[wb] &= ~head;
  if (we - wb - 1 >= kDispatchMinWords) {
    simd::Active().fill(words + wb + 1, 0, we - wb - 1);
  } else {
    for (std::size_t w = wb + 1; w < we; ++w) words[w] = 0;
  }
  words[we] &= ~tail;
}

/// True when any bit in [begin, end) is set. Empty ranges report false.
inline bool RangeAny(const std::uint64_t* words, std::size_t begin,
                     std::size_t end) {
  if (begin >= end) return false;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  const std::uint64_t head = detail::HeadMask(begin);
  const std::uint64_t tail = detail::TailMask(end - 1);
  if (wb == we) return (words[wb] & head & tail) != 0;
  if ((words[wb] & head) != 0) return true;
  if (we - wb - 1 >= kDispatchMinWords) {
    if (simd::Active().any_nonzero(words + wb + 1, we - wb - 1)) return true;
  } else {
    for (std::size_t w = wb + 1; w < we; ++w) {
      if (words[w] != 0) return true;
    }
  }
  return (words[we] & tail) != 0;
}

/// Sets every bit in [begin, end); returns true when any of them was
/// already set (the occupy-and-detect-clash primitive of the validator).
inline bool RangeTestAndSet(std::uint64_t* words, std::size_t begin,
                            std::size_t end) {
  if (begin >= end) return false;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  const std::uint64_t head = detail::HeadMask(begin);
  const std::uint64_t tail = detail::TailMask(end - 1);
  if (wb == we) {
    const std::uint64_t mask = head & tail;
    const bool clash = (words[wb] & mask) != 0;
    words[wb] |= mask;
    return clash;
  }
  bool clash = (words[wb] & head) != 0;
  words[wb] |= head;
  if (we - wb - 1 >= kDispatchMinWords) {
    clash |= simd::Active().any_nonzero(words + wb + 1, we - wb - 1);
    simd::Active().fill(words + wb + 1, ~std::uint64_t{0}, we - wb - 1);
  } else {
    for (std::size_t w = wb + 1; w < we; ++w) {
      clash |= words[w] != 0;
      words[w] = ~std::uint64_t{0};
    }
  }
  clash |= (words[we] & tail) != 0;
  words[we] |= tail;
  return clash;
}

/// Index of the first set bit in [begin, end), or kNpos when none.
inline std::size_t FindFirstSet(const std::uint64_t* words, std::size_t begin,
                                std::size_t end) {
  if (begin >= end) return kNpos;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  std::uint64_t v = words[wb] & detail::HeadMask(begin);
  if (wb == we) {
    v &= detail::TailMask(end - 1);
    if (v == 0) return kNpos;
    return wb * kWordBits + static_cast<std::size_t>(std::countr_zero(v));
  }
  if (v != 0) {
    return wb * kWordBits + static_cast<std::size_t>(std::countr_zero(v));
  }
  std::size_t w;
  if (we - wb - 1 >= kDispatchMinWords) {
    w = simd::Active().first_nonzero(words, wb + 1, we);
  } else {
    for (w = wb + 1; w < we && words[w] == 0; ++w) {
    }
  }
  if (w < we) {
    return w * kWordBits +
           static_cast<std::size_t>(std::countr_zero(words[w]));
  }
  v = words[we] & detail::TailMask(end - 1);
  if (v == 0) return kNpos;
  return we * kWordBits + static_cast<std::size_t>(std::countr_zero(v));
}

/// Index of the last set bit in [begin, end), or kNpos when none — the
/// maximal-jump primitive of GapIndex::FirstGap (a window containing a set
/// bit admits no gap start at or before its last set bit).
inline std::size_t FindLastSet(const std::uint64_t* words, std::size_t begin,
                               std::size_t end) {
  if (begin >= end) return kNpos;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  std::uint64_t mask = detail::TailMask(end - 1);
  for (std::size_t w = we + 1; w-- > wb;) {
    std::uint64_t v = words[w] & mask;
    if (w == wb) v &= detail::HeadMask(begin);
    if (v != 0) {
      return w * kWordBits + (kWordBits - 1) -
             static_cast<std::size_t>(std::countl_zero(v));
    }
    mask = ~std::uint64_t{0};
  }
  return kNpos;
}

/// First index i >= from with i + len <= num_bits and [i, i + len) all
/// clear, or kNpos when no such gap exists. Zero-length requests fit at
/// `from` whenever from <= num_bits. Skips straight past each blocking
/// set bit rather than sliding one position at a time.
inline std::size_t FirstFitGap(const std::uint64_t* words,
                               std::size_t num_bits, std::size_t from,
                               std::size_t len) {
  if (len == 0) return from <= num_bits ? from : kNpos;
  std::size_t i = from;
  while (i + len <= num_bits && i + len > i) {  // second clause: overflow
    const std::size_t blocker = FindFirstSet(words, i, i + len);
    if (blocker == kNpos) return i;
    i = blocker + 1;
  }
  return kNpos;
}

/// Resume cursor for repeated gap probes against a timeline whose
/// occupancy only grows (set-only mutation between probes, the PA
/// slot-search pattern). Tracks the fully-set prefix: every bit in
/// [0, head_full_bits) is set, so no gap can ever start there and probes
/// may skip it without changing any result. The invariant is monotone
/// under RangeSet — clearing bits invalidates the cursor (re-zero it).
struct GapCursor {
  std::size_t head_full_bits = 0;
};

namespace detail {
/// Advances the cursor to the current first clear bit (word-stepped, never
/// rescans below the previous position).
inline void AdvanceGapCursor(const std::uint64_t* words, std::size_t num_bits,
                             GapCursor* cursor) {
  std::size_t hfb = cursor->head_full_bits;
  if (hfb >= num_bits) return;
  std::size_t w = hfb / kWordBits;
  // Treat bits below hfb as set: they are, by the cursor invariant.
  std::uint64_t v = words[w];
  if (hfb % kWordBits != 0) {
    v |= ~std::uint64_t{0} >> (kWordBits - hfb % kWordBits);
  }
  while (~v == 0) {
    ++w;
    if (w * kWordBits >= num_bits) {
      cursor->head_full_bits = num_bits;
      return;
    }
    v = words[w];
  }
  hfb = w * kWordBits + static_cast<std::size_t>(std::countr_one(v));
  cursor->head_full_bits = hfb < num_bits ? hfb : num_bits;
}
}  // namespace detail

/// FirstFitGap with a resume cursor: bit-identical to the cursor-less
/// overload for any (from, len) as long as no bit was cleared since the
/// cursor was last reset — a set bit can never start a gap, so skipping
/// the known-full prefix cannot change the answer. Repeated probes on a
/// grow-only timeline become incremental instead of head-rescans.
inline std::size_t FirstFitGap(const std::uint64_t* words,
                               std::size_t num_bits, std::size_t from,
                               std::size_t len, GapCursor* cursor) {
  if (len == 0) return from <= num_bits ? from : kNpos;
  detail::AdvanceGapCursor(words, num_bits, cursor);
  return FirstFitGap(words, num_bits,
                     std::max(from, cursor->head_full_bits), len);
}

/// True when the two word arrays share any set bit.
inline bool AnyIntersect(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) {
  if (words >= kDispatchMinWords) {
    return simd::Active().any_intersect(a, b, words);
  }
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < words; ++w) acc |= a[w] & b[w];
  return acc != 0;
}

/// dst |= src, word-wise.
inline void OrInto(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t words) {
  if (words >= kDispatchMinWords) {
    simd::Active().or_into(dst, src, words);
    return;
  }
  for (std::size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

/// dst = a | b, word-wise (the DFS "occupancy at depth+1" update).
inline void OrImage(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t words) {
  if (words >= kDispatchMinWords) {
    simd::Active().or3(dst, a, b, words);
    return;
  }
  for (std::size_t w = 0; w < words; ++w) dst[w] = a[w] | b[w];
}

/// Popcount of the set bits in [begin, end).
inline std::size_t RangeCount(const std::uint64_t* words, std::size_t begin,
                              std::size_t end) {
  if (begin >= end) return 0;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  const std::uint64_t head = detail::HeadMask(begin);
  const std::uint64_t tail = detail::TailMask(end - 1);
  if (wb == we) {
    return static_cast<std::size_t>(std::popcount(words[wb] & head & tail));
  }
  std::size_t count = static_cast<std::size_t>(std::popcount(words[wb] & head));
  for (std::size_t w = wb + 1; w < we; ++w) {
    count += static_cast<std::size_t>(std::popcount(words[w]));
  }
  return count + static_cast<std::size_t>(std::popcount(words[we] & tail));
}

// One-bit-at-a-time reference implementations. Deliberately naive: the
// property test trusts these, so keep them obviously correct.
namespace scalar {

inline bool TestBit(const std::uint64_t* words, std::size_t i) {
  return (words[i / kWordBits] >> (i % kWordBits)) & 1u;
}

inline void SetBit(std::uint64_t* words, std::size_t i) {
  words[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

inline void ClearBit(std::uint64_t* words, std::size_t i) {
  words[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

inline void RangeSet(std::uint64_t* words, std::size_t begin,
                     std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) SetBit(words, i);
}

inline void RangeClear(std::uint64_t* words, std::size_t begin,
                       std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) ClearBit(words, i);
}

inline bool RangeAny(const std::uint64_t* words, std::size_t begin,
                     std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (TestBit(words, i)) return true;
  }
  return false;
}

inline bool RangeTestAndSet(std::uint64_t* words, std::size_t begin,
                            std::size_t end) {
  bool clash = false;
  for (std::size_t i = begin; i < end; ++i) {
    clash |= TestBit(words, i);
    SetBit(words, i);
  }
  return clash;
}

inline std::size_t FindFirstSet(const std::uint64_t* words, std::size_t begin,
                                std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (TestBit(words, i)) return i;
  }
  return kNpos;
}

inline std::size_t FindLastSet(const std::uint64_t* words, std::size_t begin,
                               std::size_t end) {
  for (std::size_t i = end; i-- > begin;) {
    if (TestBit(words, i)) return i;
  }
  return kNpos;
}

inline std::size_t RangeCount(const std::uint64_t* words, std::size_t begin,
                              std::size_t end) {
  std::size_t count = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (TestBit(words, i)) ++count;
  }
  return count;
}

inline std::size_t FirstFitGap(const std::uint64_t* words,
                               std::size_t num_bits, std::size_t from,
                               std::size_t len) {
  if (len == 0) return from <= num_bits ? from : kNpos;
  for (std::size_t i = from; i + len <= num_bits && i + len > i; ++i) {
    if (!RangeAny(words, i, i + len)) return i;
  }
  return kNpos;
}

inline bool AnyIntersect(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) {
  for (std::size_t i = 0; i < words * kWordBits; ++i) {
    if (TestBit(a, i) && TestBit(b, i)) return true;
  }
  return false;
}

inline void OrInto(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t words) {
  for (std::size_t i = 0; i < words * kWordBits; ++i) {
    if (TestBit(src, i)) SetBit(dst, i);
  }
}

}  // namespace scalar

/// Prefix-popcount gap index: a word-packed occupancy axis plus the
/// running popcount of every word prefix, maintained incrementally on
/// Set(). Count() over any range is O(1) (prefix difference + two partial
/// words), so window-emptiness probes — the `FirstControllerGap`-style
/// "does a length-L window at position p have zero occupancy?" question —
/// never rescan the axis, and FirstGap() advances past the *last* set bit
/// of each blocked window (one O(words) backward scan) instead of
/// bit-stepping.
///
/// Maintenance invariant (DESIGN.md §13): prefix_[w] equals the popcount
/// of words_[0..w) after every public call. Mutation is set-only between
/// ResizeAndClear()/ClearAll() — exactly the monotone occupancy pattern of
/// the PA slot search — which also keeps GapCursor probes valid.
class GapIndex {
 public:
  std::size_t NumBits() const { return bits_; }
  const std::uint64_t* words() const { return words_.data(); }

  /// Resizes to `bits` and clears everything (capacity persists).
  void ResizeAndClear(std::size_t bits) {
    bits_ = bits;
    words_.assign(WordsFor(bits), 0);
    prefix_.assign(WordsFor(bits) + 1, 0);
  }

  void ClearAll() {
    std::fill(words_.begin(), words_.end(), 0);
    std::fill(prefix_.begin(), prefix_.end(), 0);
  }

  /// Sets every bit in [begin, end), updating the prefix array with the
  /// per-word popcount deltas in the same pass — O(words from begin).
  void Set(std::size_t begin, std::size_t end) {
    if (begin >= end) return;
    const std::size_t wb = begin / kWordBits;
    const std::size_t we = (end - 1) / kWordBits;
    const std::uint64_t head = detail::HeadMask(begin);
    const std::uint64_t tail = detail::TailMask(end - 1);
    std::uint32_t added = 0;
    for (std::size_t w = wb; w <= we; ++w) {
      std::uint64_t mask = ~std::uint64_t{0};
      if (w == wb) mask &= head;
      if (w == we) mask &= tail;
      const std::uint64_t grown = mask & ~words_[w];
      words_[w] |= mask;
      added += static_cast<std::uint32_t>(std::popcount(grown));
      prefix_[w + 1] += added;
    }
    for (std::size_t w = we + 1; w < words_.size(); ++w) {
      prefix_[w + 1] += added;
    }
  }

  /// Number of set bits in [begin, end) — O(1) via the prefix array.
  std::size_t Count(std::size_t begin, std::size_t end) const {
    if (begin >= end) return 0;
    const std::size_t wb = begin / kWordBits;
    const std::size_t we = (end - 1) / kWordBits;
    const std::uint64_t head = detail::HeadMask(begin);
    const std::uint64_t tail = detail::TailMask(end - 1);
    if (wb == we) {
      return static_cast<std::size_t>(
          std::popcount(words_[wb] & head & tail));
    }
    return static_cast<std::size_t>(std::popcount(words_[wb] & head)) +
           (prefix_[we] - prefix_[wb + 1]) +
           static_cast<std::size_t>(std::popcount(words_[we] & tail));
  }

  bool AnySet(std::size_t begin, std::size_t end) const {
    return Count(begin, end) != 0;
  }

  /// First index i >= from with i + len <= NumBits() and [i, i + len) all
  /// clear, or kNpos. Same contract as FirstFitGap, but each blocked
  /// window is rejected in O(1) and skipped past its *last* set bit (any
  /// start at or before it would still contain it), so the scan makes
  /// O(words)-style jumps instead of per-blocker bit steps.
  std::size_t FirstGap(std::size_t from, std::size_t len) const {
    if (len == 0) return from <= bits_ ? from : kNpos;
    std::size_t i = from;
    while (i + len <= bits_ && i + len > i) {  // second clause: overflow
      if (Count(i, i + len) == 0) return i;
      const std::size_t last = FindLastSet(words_.data(), i, i + len);
      i = last + 1;
    }
    return kNpos;
  }

  /// FirstGap with a resume cursor (see GapCursor): bit-identical under
  /// set-only mutation, incremental across probes.
  std::size_t FirstGap(std::size_t from, std::size_t len,
                       GapCursor* cursor) const {
    if (len == 0) return from <= bits_ ? from : kNpos;
    detail::AdvanceGapCursor(words_.data(), bits_, cursor);
    return FirstGap(std::max(from, cursor->head_full_bits), len);
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
  /// prefix_[w] = popcount of words_[0..w); size words_.size() + 1.
  std::vector<std::uint32_t> prefix_;
};

/// Owning, resizable bit axis over the kernels — the convenience wrapper
/// the validator and PaScratch embed. Reset()/ClearAll() keep capacity.
class BitTimeline {
 public:
  std::size_t NumBits() const { return bits_; }
  std::size_t NumWords() const { return words_.size(); }
  const std::uint64_t* data() const { return words_.data(); }
  std::uint64_t* data() { return words_.data(); }

  /// Resizes to `bits` and clears everything (capacity persists).
  void ResizeAndClear(std::size_t bits) {
    bits_ = bits;
    words_.assign(WordsFor(bits), 0);
  }

  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  void Set(std::size_t begin, std::size_t end) {
    RangeSet(words_.data(), begin, end);
  }
  void Clear(std::size_t begin, std::size_t end) {
    RangeClear(words_.data(), begin, end);
  }
  bool Any(std::size_t begin, std::size_t end) const {
    return RangeAny(words_.data(), begin, end);
  }
  bool TestAndSet(std::size_t begin, std::size_t end) {
    return RangeTestAndSet(words_.data(), begin, end);
  }
  std::size_t FirstFit(std::size_t from, std::size_t len) const {
    return FirstFitGap(words_.data(), bits_, from, len);
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace resched::timeline
