// Word-packed bitset timeline kernels (the ISSUE-6 hot-path library).
//
// The scheduler's feasibility scans all reduce to the same primitive: a set
// of half-open index ranges over a bounded axis (time buckets, fabric
// cells), asked either "is any index in [begin, end) occupied?" or "occupy
// [begin, end)". These kernels pack the axis into 64-bit words so one AND
// or OR touches 64 indices; the floorplan DFS clash test, the PA region
// availability prefilter and the validator overlap scan all share them.
//
// Layout: bit i of the axis lives in words[i / 64], bit position i % 64.
// Every kernel takes raw word pointers so callers can carve the storage
// from an arena or a catalog entry. None of the kernels allocate.
//
// `timeline::scalar` mirrors every kernel with a one-bit-at-a-time
// reference implementation — the oracle for the differential property test
// (tests/timeline_test.cpp). Keep the two namespaces signature-identical.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace resched::timeline {

inline constexpr std::size_t kWordBits = 64;
inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t WordsFor(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

namespace detail {
/// Mask with bits [b % 64, 64) set — the head of a range's first word.
constexpr std::uint64_t HeadMask(std::size_t b) {
  return ~std::uint64_t{0} << (b % kWordBits);
}
/// Mask with bits [0, e % 64] set — the tail of a range's last word,
/// where `e` is the *inclusive* last bit index.
constexpr std::uint64_t TailMask(std::size_t e) {
  return ~std::uint64_t{0} >> (kWordBits - 1 - (e % kWordBits));
}
}  // namespace detail

/// Sets every bit in [begin, end).
inline void RangeSet(std::uint64_t* words, std::size_t begin,
                     std::size_t end) {
  if (begin >= end) return;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  const std::uint64_t head = detail::HeadMask(begin);
  const std::uint64_t tail = detail::TailMask(end - 1);
  if (wb == we) {
    words[wb] |= head & tail;
    return;
  }
  words[wb] |= head;
  for (std::size_t w = wb + 1; w < we; ++w) words[w] = ~std::uint64_t{0};
  words[we] |= tail;
}

/// Clears every bit in [begin, end).
inline void RangeClear(std::uint64_t* words, std::size_t begin,
                       std::size_t end) {
  if (begin >= end) return;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  const std::uint64_t head = detail::HeadMask(begin);
  const std::uint64_t tail = detail::TailMask(end - 1);
  if (wb == we) {
    words[wb] &= ~(head & tail);
    return;
  }
  words[wb] &= ~head;
  for (std::size_t w = wb + 1; w < we; ++w) words[w] = 0;
  words[we] &= ~tail;
}

/// True when any bit in [begin, end) is set. Empty ranges report false.
inline bool RangeAny(const std::uint64_t* words, std::size_t begin,
                     std::size_t end) {
  if (begin >= end) return false;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  const std::uint64_t head = detail::HeadMask(begin);
  const std::uint64_t tail = detail::TailMask(end - 1);
  if (wb == we) return (words[wb] & head & tail) != 0;
  if ((words[wb] & head) != 0) return true;
  for (std::size_t w = wb + 1; w < we; ++w) {
    if (words[w] != 0) return true;
  }
  return (words[we] & tail) != 0;
}

/// Sets every bit in [begin, end); returns true when any of them was
/// already set (the occupy-and-detect-clash primitive of the validator).
inline bool RangeTestAndSet(std::uint64_t* words, std::size_t begin,
                            std::size_t end) {
  if (begin >= end) return false;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  const std::uint64_t head = detail::HeadMask(begin);
  const std::uint64_t tail = detail::TailMask(end - 1);
  if (wb == we) {
    const std::uint64_t mask = head & tail;
    const bool clash = (words[wb] & mask) != 0;
    words[wb] |= mask;
    return clash;
  }
  bool clash = (words[wb] & head) != 0;
  words[wb] |= head;
  for (std::size_t w = wb + 1; w < we; ++w) {
    clash |= words[w] != 0;
    words[w] = ~std::uint64_t{0};
  }
  clash |= (words[we] & tail) != 0;
  words[we] |= tail;
  return clash;
}

/// Index of the first set bit in [begin, end), or kNpos when none.
inline std::size_t FindFirstSet(const std::uint64_t* words, std::size_t begin,
                                std::size_t end) {
  if (begin >= end) return kNpos;
  const std::size_t wb = begin / kWordBits;
  const std::size_t we = (end - 1) / kWordBits;
  std::uint64_t mask = detail::HeadMask(begin);
  for (std::size_t w = wb; w <= we; ++w) {
    std::uint64_t v = words[w] & mask;
    if (w == we) v &= detail::TailMask(end - 1);
    if (v != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(v));
    }
    mask = ~std::uint64_t{0};
  }
  return kNpos;
}

/// First index i >= from with i + len <= num_bits and [i, i + len) all
/// clear, or kNpos when no such gap exists. Zero-length requests fit at
/// `from` whenever from <= num_bits. Skips straight past each blocking
/// set bit rather than sliding one position at a time.
inline std::size_t FirstFitGap(const std::uint64_t* words,
                               std::size_t num_bits, std::size_t from,
                               std::size_t len) {
  if (len == 0) return from <= num_bits ? from : kNpos;
  std::size_t i = from;
  while (i + len <= num_bits && i + len > i) {  // second clause: overflow
    const std::size_t blocker = FindFirstSet(words, i, i + len);
    if (blocker == kNpos) return i;
    i = blocker + 1;
  }
  return kNpos;
}

/// True when the two word arrays share any set bit.
inline bool AnyIntersect(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) {
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < words; ++w) acc |= a[w] & b[w];
  return acc != 0;
}

/// dst |= src, word-wise.
inline void OrInto(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

/// dst = a | b, word-wise (the DFS "occupancy at depth+1" update).
inline void OrImage(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] = a[w] | b[w];
}

// One-bit-at-a-time reference implementations. Deliberately naive: the
// property test trusts these, so keep them obviously correct.
namespace scalar {

inline bool TestBit(const std::uint64_t* words, std::size_t i) {
  return (words[i / kWordBits] >> (i % kWordBits)) & 1u;
}

inline void SetBit(std::uint64_t* words, std::size_t i) {
  words[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

inline void ClearBit(std::uint64_t* words, std::size_t i) {
  words[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

inline void RangeSet(std::uint64_t* words, std::size_t begin,
                     std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) SetBit(words, i);
}

inline void RangeClear(std::uint64_t* words, std::size_t begin,
                       std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) ClearBit(words, i);
}

inline bool RangeAny(const std::uint64_t* words, std::size_t begin,
                     std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (TestBit(words, i)) return true;
  }
  return false;
}

inline bool RangeTestAndSet(std::uint64_t* words, std::size_t begin,
                            std::size_t end) {
  bool clash = false;
  for (std::size_t i = begin; i < end; ++i) {
    clash |= TestBit(words, i);
    SetBit(words, i);
  }
  return clash;
}

inline std::size_t FindFirstSet(const std::uint64_t* words, std::size_t begin,
                                std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (TestBit(words, i)) return i;
  }
  return kNpos;
}

inline std::size_t FirstFitGap(const std::uint64_t* words,
                               std::size_t num_bits, std::size_t from,
                               std::size_t len) {
  if (len == 0) return from <= num_bits ? from : kNpos;
  for (std::size_t i = from; i + len <= num_bits && i + len > i; ++i) {
    if (!RangeAny(words, i, i + len)) return i;
  }
  return kNpos;
}

inline bool AnyIntersect(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) {
  for (std::size_t i = 0; i < words * kWordBits; ++i) {
    if (TestBit(a, i) && TestBit(b, i)) return true;
  }
  return false;
}

}  // namespace scalar

/// Owning, resizable bit axis over the kernels — the convenience wrapper
/// the validator and PaScratch embed. Reset()/ClearAll() keep capacity.
class BitTimeline {
 public:
  std::size_t NumBits() const { return bits_; }
  std::size_t NumWords() const { return words_.size(); }
  const std::uint64_t* data() const { return words_.data(); }
  std::uint64_t* data() { return words_.data(); }

  /// Resizes to `bits` and clears everything (capacity persists).
  void ResizeAndClear(std::size_t bits) {
    bits_ = bits;
    words_.assign(WordsFor(bits), 0);
  }

  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  void Set(std::size_t begin, std::size_t end) {
    RangeSet(words_.data(), begin, end);
  }
  void Clear(std::size_t begin, std::size_t end) {
    RangeClear(words_.data(), begin, end);
  }
  bool Any(std::size_t begin, std::size_t end) const {
    return RangeAny(words_.data(), begin, end);
  }
  bool TestAndSet(std::size_t begin, std::size_t end) {
    return RangeTestAndSet(words_.data(), begin, end);
  }
  std::size_t FirstFit(std::size_t from, std::size_t len) const {
    return FirstFitGap(words_.data(), bits_, from, len);
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace resched::timeline
