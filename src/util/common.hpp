// Common scalar types and error-checking macros shared by every resched module.
//
// Time is modelled as signed 64-bit integer ticks. By convention one tick is a
// microsecond, but nothing in the library depends on the physical unit: every
// quantity (task execution times, reconfiguration throughput, schedule slots)
// is expressed in the same tick domain. All intervals are half-open
// [start, end) so that back-to-back slots touch without overlapping.
#pragma once

#include <cstdint>
#include <limits>
#include <source_location>
#include <stdexcept>
#include <string>

namespace resched {

/// Scheduling time in integer ticks (conventionally microseconds).
using TimeT = std::int64_t;

/// Sentinel for "unbounded" latest-finish windows.
inline constexpr TimeT kTimeInfinity = std::numeric_limits<TimeT>::max() / 4;

/// Error thrown when an input instance violates a structural precondition
/// (cycles in the task graph, missing software implementation, ...).
class InstanceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Error thrown when an internal invariant is violated; indicates a bug in
/// the library rather than in user input.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void CheckFailed(const char* kind, const char* expr,
                                     const std::string& msg,
                                     const std::source_location& loc) {
  std::string what = std::string(kind) + " failed: " + expr + " at " +
                     loc.file_name() + ":" + std::to_string(loc.line());
  if (!msg.empty()) what += " — " + msg;
  throw InternalError(what);
}
}  // namespace detail

}  // namespace resched

/// Always-on invariant check (used on non-hot paths and in validators).
#define RESCHED_CHECK(expr)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::resched::detail::CheckFailed("RESCHED_CHECK", #expr, "",             \
                                     std::source_location::current());       \
    }                                                                        \
  } while (false)

#define RESCHED_CHECK_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::resched::detail::CheckFailed("RESCHED_CHECK", #expr, (msg),          \
                                     std::source_location::current());       \
    }                                                                        \
  } while (false)
