// Common scalar types shared by every resched module. The RESCHED_CHECK /
// RESCHED_DCHECK contract macros live in util/check.hpp (re-exported here).
//
// Time is modelled as signed 64-bit integer ticks. By convention one tick is a
// microsecond, but nothing in the library depends on the physical unit: every
// quantity (task execution times, reconfiguration throughput, schedule slots)
// is expressed in the same tick domain. All intervals are half-open
// [start, end) so that back-to-back slots touch without overlapping.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace resched {

/// Scheduling time in integer ticks (conventionally microseconds).
using TimeT = std::int64_t;

/// Sentinel for "unbounded" latest-finish windows.
inline constexpr TimeT kTimeInfinity = std::numeric_limits<TimeT>::max() / 4;

/// Error thrown when an input instance violates a structural precondition
/// (cycles in the task graph, missing software implementation, ...).
class InstanceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace resched
