// Minimal self-contained JSON value model, parser and writer.
//
// Supports the full JSON grammar (objects, arrays, strings with escapes,
// numbers, booleans, null). Numbers are stored as double plus an exact
// int64 when the literal is integral — schedule times are integers and must
// round-trip exactly. Used by src/io for instance serialization; no external
// dependency is required anywhere in the library.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/common.hpp"

namespace resched {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps key order deterministic, which keeps serialized
/// instances diff-able across runs.
using JsonObject = std::map<std::string, JsonValue>;

/// Error thrown on malformed JSON input or type-mismatched access.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Limits enforced while parsing. The defaults are generous for trusted
/// on-disk files; callers parsing untrusted input (the reschedd request
/// path) should tighten them. A violated limit raises JsonError — the
/// parser never recurses past max_depth, so a hostile deeply-nested
/// document cannot overflow the stack.
struct JsonParseLimits {
  /// Maximum container nesting depth (objects + arrays).
  std::size_t max_depth = 96;
  /// Maximum document size in bytes.
  std::size_t max_bytes = 256u << 20;  // 256 MiB
  /// When set, a repeated key inside one object raises JsonError instead
  /// of silently keeping the first occurrence. Off by default for
  /// compatibility with trusted on-disk files; the reschedd request path
  /// turns it on — a duplicate key in a hostile request would otherwise
  /// make "what the server validated" and "what the server executed"
  /// diverge silently.
  bool reject_duplicate_keys = false;
};

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(std::int64_t i) : value_(i) {}
  JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}
  JsonValue(std::size_t i) : value_(static_cast<std::int64_t>(i)) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool IsNull() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool IsBool() const { return std::holds_alternative<bool>(value_); }
  bool IsInt() const { return std::holds_alternative<std::int64_t>(value_); }
  bool IsDouble() const { return std::holds_alternative<double>(value_); }
  bool IsNumber() const { return IsInt() || IsDouble(); }
  bool IsString() const { return std::holds_alternative<std::string>(value_); }
  bool IsArray() const { return std::holds_alternative<JsonArray>(value_); }
  bool IsObject() const { return std::holds_alternative<JsonObject>(value_); }

  bool AsBool() const;
  std::int64_t AsInt() const;    // accepts integral doubles
  double AsDouble() const;       // accepts ints
  const std::string& AsString() const;
  const JsonArray& AsArray() const;
  JsonArray& AsArray();
  const JsonObject& AsObject() const;
  JsonObject& AsObject();

  /// Object member access; throws JsonError when missing.
  const JsonValue& At(const std::string& key) const;
  /// True when this is an object containing key.
  bool Contains(const std::string& key) const;
  /// Returns At(key) or fallback when absent.
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key, std::string fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Serializes; indent < 0 means compact single-line output.
  std::string Dump(int indent = 2) const;

  /// Parses a complete JSON document (throws JsonError on any syntax error
  /// or trailing garbage) under the default JsonParseLimits.
  static JsonValue Parse(const std::string& text);

  /// As above with explicit limits (untrusted-input path).
  static JsonValue Parse(const std::string& text,
                         const JsonParseLimits& limits);

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.value_ == b.value_;
  }

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace resched
