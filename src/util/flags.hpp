// Minimal command-line flag parsing for the CLI tools and examples.
//
// Grammar: `--name value`, `--name=value`, bare `--name` (boolean true),
// and positional arguments. No external dependencies; unknown-flag
// detection is the caller's job via Known().
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace resched {

class FlagError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Flags {
 public:
  /// Parses argv (skipping argv[0]). Throws FlagError on malformed input
  /// (e.g. `--` with empty name).
  static Flags Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  /// Typed getters; throw FlagError when present but unparsable.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& Positional() const { return positional_; }

  /// Returns the flags that were parsed but are not in `known` — for
  /// strict CLIs that reject typos.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace resched
