// Small sharded concurrent memo map with bounded memory.
//
// Built for the floorplan-feasibility cache: many threads memoize the
// answers of a pure, expensive function (query -> verdict) and a stale or
// evicted entry is never wrong, only re-computed. That contract allows a
// much simpler structure than a general concurrent hash map:
//
//   * fixed capacity, open addressing with a short linear probe window;
//   * a full probe window evicts deterministically (the slot the incoming
//     key hashes to) instead of resizing — memoization tolerates loss;
//   * values are handed out as shared_ptr<const Value>, so a reader can
//     keep using an entry that a concurrent insert evicts;
//   * one mutex per shard; every slot access happens under its shard lock,
//     which keeps the structure trivially TSan-clean (counters are
//     relaxed atomics — they are monitoring data, not synchronization).
//     The shard lock contract is annotated, so a -Wthread-safety build
//     proves no slot is touched unlocked.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/mutex.hpp"

namespace resched {

template <typename Key, typename Value, typename Hash,
          typename KeyEqual = std::equal_to<Key>>
class ConcurrentMemoMap {
 public:
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// `capacity` is the approximate total number of cached entries; it is
  /// rounded up to a power of two per shard.
  explicit ConcurrentMemoMap(std::size_t capacity) {
    std::size_t per_shard = 1;
    while (per_shard * kShards < capacity) per_shard *= 2;
    if (per_shard < kProbeWindow) per_shard = kProbeWindow;
    per_shard_ = per_shard;
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      shard.slots.resize(per_shard);
    }
  }

  ConcurrentMemoMap(const ConcurrentMemoMap&) = delete;
  ConcurrentMemoMap& operator=(const ConcurrentMemoMap&) = delete;

  /// Returns the cached value for `key`, or nullptr on a miss.
  std::shared_ptr<const Value> Find(const Key& key) const {
    const std::uint64_t h = Mix(hash_(key));
    const Shard& shard = shards_[ShardOf(h)];
    const std::size_t mask = per_shard_ - 1;
    const std::size_t base = SlotOf(h, mask);
    MutexLock lock(shard.mu);
    for (std::size_t p = 0; p < kProbeWindow; ++p) {
      const Slot& slot = shard.slots[(base + p) & mask];
      if (slot.value && slot.hash == h && eq_(slot.key, key)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return slot.value;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  /// Inserts (or overwrites) the value for `key` and returns the stored
  /// pointer. When the probe window is full of other keys, the base slot
  /// is evicted — deterministic, and harmless for memoized pure functions.
  std::shared_ptr<const Value> Insert(const Key& key, Value value) {
    auto stored = std::make_shared<const Value>(std::move(value));
    const std::uint64_t h = Mix(hash_(key));
    Shard& shard = shards_[ShardOf(h)];
    const std::size_t mask = per_shard_ - 1;
    const std::size_t base = SlotOf(h, mask);
    MutexLock lock(shard.mu);
    std::size_t victim = base;
    for (std::size_t p = 0; p < kProbeWindow; ++p) {
      Slot& slot = shard.slots[(base + p) & mask];
      if (!slot.value) {  // free slot: plain insert
        slot.hash = h;
        slot.key = key;
        slot.value = stored;
        return stored;
      }
      if (slot.hash == h && eq_(slot.key, key)) {  // refresh in place
        slot.value = stored;
        return stored;
      }
    }
    Slot& slot = shard.slots[victim];
    slot.hash = h;
    slot.key = key;
    slot.value = stored;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return stored;
  }

  Counters Snapshot() const {
    Counters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    return c;
  }

  /// Construction-time constant, so it reads no guarded slot state (the
  /// annotation rollout surfaced the old `shards_[0].slots.size()` read
  /// as a guarded access outside the shard lock).
  std::size_t Capacity() const { return per_shard_ * kShards; }

 private:
  static constexpr std::size_t kShards = 16;  // power of two
  static constexpr std::size_t kProbeWindow = 8;

  struct Slot {
    std::uint64_t hash = 0;
    Key key{};
    std::shared_ptr<const Value> value;
  };
  struct Shard {
    mutable Mutex mu;
    std::vector<Slot> slots RESCHED_GUARDED_BY(mu);
  };

  /// Finalizer bijection so weak user hashes still spread over shards and
  /// slots (splitmix64 output stage).
  static std::uint64_t Mix(std::uint64_t h) {
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return h;
  }
  static std::size_t ShardOf(std::uint64_t h) {
    return static_cast<std::size_t>(h & (kShards - 1));
  }
  static std::size_t SlotOf(std::uint64_t h, std::size_t mask) {
    return static_cast<std::size_t>(h >> 4) & mask;
  }

  std::array<Shard, kShards> shards_;
  std::size_t per_shard_ = 0;  ///< slots per shard; fixed at construction
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  Hash hash_;
  KeyEqual eq_;
};

}  // namespace resched
