// Cooperative cancellation for long-running scheduler calls.
//
// A CancelToken combines an explicit cancellation flag (set by another
// thread, e.g. the service control plane handling a `cancel` verb) with an
// optional wall-clock deadline armed at construction. Work loops poll
// Cancelled() at natural checkpoints — the PA §V-H shrink rounds and the
// PA-R restart tickets — and unwind by throwing CancelledError from the
// top-level entry point, never from inside a worker thread.
//
// The token is shared between the requester and the worker via
// shared_ptr<CancelToken>; it is not copyable (it owns an atomic).
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

#include "util/timer.hpp"

namespace resched {

/// Thrown by scheduler entry points when their CancelToken fires.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CancelToken {
 public:
  /// No deadline; cancellable only via Cancel().
  CancelToken() : deadline_(0.0) {}
  /// Arms a wall-clock deadline; <= 0 means no deadline.
  explicit CancelToken(double deadline_seconds) : deadline_(deadline_seconds) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; idempotent and safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Marks the deadline as already elapsed. Needed for an explicit 0ms
  /// budget: Deadline cannot arm a zero-length window (a budget of 0 means
  /// "none"), and passing an epsilon instead would race the clock. Unlike
  /// Cancel() this keeps ExplicitlyCancelled() false, so the failure maps
  /// to `deadline_exceeded`, not `cancelled`.
  void ExpireDeadlineNow() {
    deadline_forced_.store(true, std::memory_order_release);
  }

  /// True once Cancel() was called or the deadline elapsed.
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_acquire) || DeadlineExpired();
  }

  /// True only for an explicit Cancel() (distinguishes a client-driven
  /// cancellation from a deadline expiry in error reporting).
  bool ExplicitlyCancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool DeadlineExpired() const {
    return deadline_forced_.load(std::memory_order_acquire) ||
           deadline_.Expired();
  }

  void ThrowIfCancelled() const {
    if (Cancelled()) {
      throw CancelledError(ExplicitlyCancelled()
                               ? std::string("operation cancelled")
                               : std::string("deadline exceeded"));
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> deadline_forced_{false};
  Deadline deadline_;
};

}  // namespace resched
