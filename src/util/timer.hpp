// Wall-clock timing helpers (header-only).
#pragma once

#include <chrono>

namespace resched {

/// Monotonic stopwatch. Started on construction; Restart() resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deadline helper for time-budgeted algorithms (PA-R, floorplanner).
class Deadline {
 public:
  /// A non-positive budget means "no deadline".
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool Expired() const {
    return budget_ > 0.0 && timer_.ElapsedSeconds() >= budget_;
  }

  double RemainingSeconds() const {
    if (budget_ <= 0.0) return 1e18;
    return budget_ - timer_.ElapsedSeconds();
  }

  double BudgetSeconds() const { return budget_; }
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  double budget_;
  WallTimer timer_;
};

}  // namespace resched
