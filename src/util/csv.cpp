#include "util/csv.hpp"

#include <cstdio>

namespace resched {

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(std::initializer_list<std::string> fields) {
  WriteRow(std::vector<std::string>(fields));
}

std::string CsvWriter::Field(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string CsvWriter::Field(std::int64_t v) { return std::to_string(v); }
std::string CsvWriter::Field(std::size_t v) { return std::to_string(v); }

std::string CsvWriter::Escape(const std::string& f) {
  const bool needs_quote =
      f.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return f;
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace resched
