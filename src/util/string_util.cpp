#include "util/string_util.hpp"

#include <cstdarg>
#include <cstdio>

namespace resched {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b &&
         (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
          s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string PadLeft(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string FormatTicks(std::int64_t ticks) {
  const double us = static_cast<double>(ticks);
  if (us < 1e3) return StrFormat("%lld us", static_cast<long long>(ticks));
  if (us < 1e6) return StrFormat("%.2f ms", us / 1e3);
  return StrFormat("%.3f s", us / 1e6);
}

}  // namespace resched
