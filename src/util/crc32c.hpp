// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
// guarding journal v2 record frames.
//
// Chosen over plain CRC32 for its strictly better Hamming-distance
// profile at the record sizes the journal writes (tens of bytes to a few
// KiB), and because it is the checksum hardware (SSE4.2 crc32 / ARMv8 CRC
// extensions) and other storage formats (iSCSI, ext4 metadata, LevelDB)
// standardize on, so a future hardware fast path drops in without a
// format change. This implementation is the portable slice-by-one table
// variant: the journal's append path is dominated by the write syscall,
// not the checksum.
#pragma once

#include <cstdint>
#include <string_view>

namespace resched {

/// CRC32C of `data`. `crc` chains partial computations: pass the previous
/// return value to extend a running checksum (starting from 0).
std::uint32_t Crc32c(std::string_view data, std::uint32_t crc = 0);

}  // namespace resched
