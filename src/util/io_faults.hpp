// Deterministic I/O fault injection for the service layer.
//
// A seeded shim over the read/write/fsync/send/recv syscalls the daemon's
// durability story depends on. When armed (via the RESCHED_IO_FAULTS
// environment variable or InstallForTest), each hooked call may — with
// configured probabilities drawn from a seeded PRNG — be truncated to a
// short write, fail with EINTR or EAGAIN, or (journal stream only) write a
// partial prefix and kill the process mid-record to emulate a power cut /
// kill -9 at an exact byte offset. Disarmed (the production default), every
// hook is a relaxed atomic load and a tail call to the real syscall.
//
// Spec grammar (comma-separated key=value):
//
//   RESCHED_IO_FAULTS="seed=7,short_write=0.3,eintr=0.2,eagain=0.1,crash_at=512"
//
//   seed=N          PRNG seed (default 0); same spec + same call sequence
//                   => same injected faults, which is what lets the chaos
//                   harness place crash points reproducibly.
//   short_write=P   probability a write/send is truncated to a nonzero
//                   random prefix (caller must loop).
//   eintr=P         probability a call fails with errno == EINTR.
//   eagain=P        probability a call fails with errno == EAGAIN.
//   crash_at=K      after K cumulative bytes have reached the journal
//                   stream, write the partial prefix up to byte K and
//                   _exit(137) — the observable effect of SIGKILL between
//                   a write() and its completion.
//
// The shim is process-global: faults are decided per call in call order,
// so multi-threaded servers see a deterministic fault *budget* rather than
// a deterministic per-call-site assignment (good enough for the chaos
// harness, which asserts invariants, not exact schedules).
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace resched {

/// Which logical stream a hooked call belongs to. crash_at counts journal
/// bytes only; the probabilistic faults apply to every stream.
enum class IoStream { kJournal, kSocket, kStdio };

struct IoFaultSpec {
  std::uint64_t seed = 0;
  double short_write = 0.0;  ///< P(write truncated to a random prefix)
  double eintr = 0.0;        ///< P(call fails with EINTR)
  double eagain = 0.0;       ///< P(call fails with EAGAIN)
  std::int64_t crash_at = -1;  ///< journal byte offset; -1 = disabled
  bool enabled = false;
};

/// Parses the RESCHED_IO_FAULTS grammar above. Throws std::runtime_error
/// on an unknown key or malformed value; an empty string parses to a
/// disabled spec.
IoFaultSpec ParseIoFaultSpec(std::string_view text);

namespace io_faults {

/// True when fault injection is armed. The disarmed check is one relaxed
/// atomic load — the only cost production pays.
bool Enabled();

/// Arms the shim programmatically (chaos bench children call this after
/// fork, before any I/O). Overrides any environment spec.
void InstallForTest(const IoFaultSpec& spec);

/// Disarms the shim and resets byte counters (test teardown).
void Reset();

/// Cumulative bytes the journal stream has written since arming (or
/// process start). The chaos harness uses this to place the next crash
/// point past the bytes already journaled.
std::int64_t JournalBytesWritten();

// Hooked syscalls. Signatures mirror POSIX; on injected failure they
// return -1 with errno set, exactly like the real call. Callers keep
// their normal errno handling and need no shim-specific logic.
ssize_t Write(IoStream stream, int fd, const void* buf, std::size_t count);
ssize_t Read(IoStream stream, int fd, void* buf, std::size_t count);
int Fsync(IoStream stream, int fd);
ssize_t Send(int fd, const void* buf, std::size_t count, int flags);
ssize_t Recv(int fd, void* buf, std::size_t count, int flags);

}  // namespace io_faults
}  // namespace resched
