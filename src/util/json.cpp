#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace resched {

bool JsonValue::AsBool() const {
  if (!IsBool()) throw JsonError("JSON value is not a bool");
  return std::get<bool>(value_);
}

std::int64_t JsonValue::AsInt() const {
  if (IsInt()) return std::get<std::int64_t>(value_);
  if (IsDouble()) {
    const double d = std::get<double>(value_);
    if (std::nearbyint(d) == d) return static_cast<std::int64_t>(d);
  }
  throw JsonError("JSON value is not an integer");
}

double JsonValue::AsDouble() const {
  if (IsInt()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (IsDouble()) return std::get<double>(value_);
  throw JsonError("JSON value is not a number");
}

const std::string& JsonValue::AsString() const {
  if (!IsString()) throw JsonError("JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::AsArray() const {
  if (!IsArray()) throw JsonError("JSON value is not an array");
  return std::get<JsonArray>(value_);
}

JsonArray& JsonValue::AsArray() {
  if (!IsArray()) throw JsonError("JSON value is not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::AsObject() const {
  if (!IsObject()) throw JsonError("JSON value is not an object");
  return std::get<JsonObject>(value_);
}

JsonObject& JsonValue::AsObject() {
  if (!IsObject()) throw JsonError("JSON value is not an object");
  return std::get<JsonObject>(value_);
}

const JsonValue& JsonValue::At(const std::string& key) const {
  const auto& obj = AsObject();
  const auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("missing JSON key: " + key);
  return it->second;
}

bool JsonValue::Contains(const std::string& key) const {
  return IsObject() && AsObject().count(key) > 0;
}

std::int64_t JsonValue::GetInt(const std::string& key,
                               std::int64_t fallback) const {
  return Contains(key) ? At(key).AsInt() : fallback;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  return Contains(key) ? At(key).AsDouble() : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 std::string fallback) const {
  return Contains(key) ? At(key).AsString() : std::move(fallback);
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  return Contains(key) ? At(key).AsBool() : fallback;
}

// ---------------------------------------------------------------- writing

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void AppendNewlineIndent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  if (IsNull()) {
    out += "null";
  } else if (IsBool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (IsInt()) {
    out += std::to_string(std::get<std::int64_t>(value_));
  } else if (IsDouble()) {
    const double d = std::get<double>(value_);
    if (!std::isfinite(d)) throw JsonError("cannot serialize non-finite number");
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
    // Keep the value a double through a round-trip: "34" would parse back
    // as an integer.
    if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
        std::string::npos) {
      out += ".0";
    }
  } else if (IsString()) {
    AppendEscaped(out, std::get<std::string>(value_));
  } else if (IsArray()) {
    const auto& arr = std::get<JsonArray>(value_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i != 0) out += ',';
      AppendNewlineIndent(out, indent, depth + 1);
      arr[i].DumpTo(out, indent, depth + 1);
    }
    AppendNewlineIndent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = std::get<JsonObject>(value_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      AppendNewlineIndent(out, indent, depth + 1);
      AppendEscaped(out, k);
      out += indent < 0 ? ":" : ": ";
      v.DumpTo(out, indent, depth + 1);
    }
    AppendNewlineIndent(out, indent, depth);
    out += '}';
  }
}

// ---------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  Parser(const std::string& text, const JsonParseLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue ParseDocument() {
    if (text_.size() > limits_.max_bytes) {
      throw JsonError("JSON document exceeds the size limit (" +
                      std::to_string(text_.size()) + " > " +
                      std::to_string(limits_.max_bytes) + " bytes)");
    }
    JsonValue v = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& msg) {
    // Report line:column (both 1-based) rather than a raw byte offset:
    // instance and fault-scenario files are hand-edited, and editors
    // navigate by line. The scan is O(n) but only runs on the error path.
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError("JSON parse error at line " + std::to_string(line) +
                    ":" + std::to_string(column) + ": " + msg);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool ConsumeLiteral(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return JsonValue(ParseString());
      case 't':
        if (!ConsumeLiteral("true")) Fail("invalid literal");
        return JsonValue(true);
      case 'f':
        if (!ConsumeLiteral("false")) Fail("invalid literal");
        return JsonValue(false);
      case 'n':
        if (!ConsumeLiteral("null")) Fail("invalid literal");
        return JsonValue(nullptr);
      default: return ParseNumber();
    }
  }

  /// RAII depth guard: ParseObject/ParseArray recurse through ParseValue,
  /// so the container nesting depth bounds the C++ stack depth. Enforcing
  /// limits_.max_depth turns a hostile "[[[[..." document into a JsonError
  /// instead of a stack overflow.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser& p) : parser_(p) {
      if (++parser_.depth_ > parser_.limits_.max_depth) {
        parser_.Fail("nesting depth exceeds the limit (" +
                     std::to_string(parser_.limits_.max_depth) + ")");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
  };

  JsonValue ParseObject() {
    const DepthGuard guard(*this);
    Expect('{');
    JsonObject obj;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      if (limits_.reject_duplicate_keys && obj.count(key) != 0) {
        Fail("duplicate object key \"" + key + "\"");
      }
      obj.emplace(std::move(key), ParseValue());
      SkipWhitespace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(obj));
      }
      Fail("expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray() {
    const DepthGuard guard(*this);
    Expect('[');
    JsonArray arr;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(ParseValue());
      SkipWhitespace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(arr));
      }
      Fail("expected ',' or ']' in array");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': AppendUnicodeEscape(out); break;
          default: Fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  unsigned ParseHex4() {
    if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else Fail("invalid hex digit in \\u escape");
    }
    return v;
  }

  void AppendUnicodeEscape(std::string& out) {
    unsigned cp = ParseHex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need a low one
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        Fail("unpaired surrogate");
      }
      pos_ += 2;
      const unsigned lo = ParseHex4();
      if (lo < 0xDC00 || lo > 0xDFFF) Fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      Fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      Fail("invalid number");
    }
    const std::string_view token(text_.data() + start, pos_ - start);
    if (integral) {
      std::int64_t iv = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), iv);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return JsonValue(iv);
      }
      // Integer overflow: fall through to double.
    }
    double dv = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), dv);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      Fail("invalid number");
    }
    return JsonValue(dv);
  }

  const std::string& text_;
  const JsonParseLimits& limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

JsonValue JsonValue::Parse(const std::string& text) {
  return Parse(text, JsonParseLimits{});
}

JsonValue JsonValue::Parse(const std::string& text,
                           const JsonParseLimits& limits) {
  return Parser(text, limits).ParseDocument();
}

}  // namespace resched
