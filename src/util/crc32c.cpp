#include "util/crc32c.hpp"

#include <array>

namespace resched {
namespace {

/// Byte-at-a-time table for the reflected Castagnoli polynomial, built
/// once at first use (constant-time thereafter; no static-init ordering
/// concerns because the table is function-local).
const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t Crc32c(std::string_view data, std::uint32_t crc) {
  const std::array<std::uint32_t, 256>& table = Table();
  crc = ~crc;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace resched
