#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace resched {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Shutdown ordering: stop_ is set under the same mutex that guards the
  // queue, so a worker can never observe stop_ without also observing every
  // task enqueued before it — queued work is drained, not dropped (workers
  // only exit on stop_ AND an empty queue). Submit() racing destruction is
  // a caller bug and trips the "Submit after shutdown" check.
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_task_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  RESCHED_CHECK_MSG(task != nullptr, "null task submitted");
  {
    MutexLock lock(mutex_);
    RESCHED_CHECK_MSG(!stop_, "Submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_task_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) cv_idle_.Wait(lock);
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_task_.Wait(lock);
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.NotifyAll();
    }
  }
}

}  // namespace resched
