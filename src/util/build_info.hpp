// Build provenance stamped at configure/compile time.
//
// Every artifact a serving session or a benchmark run leaves behind
// (journals, stats responses, bench CSV/JSON) should record exactly what
// produced it. CMake passes the git describe output, the build type and
// the sanitizer list as compile definitions on build_info.cpp only, so
// touching the git state never rebuilds more than one TU.
#pragma once

#include <string>

namespace resched {

struct BuildInfo {
  std::string version;     ///< project version (CMake PROJECT_VERSION)
  std::string git;         ///< `git describe --always --dirty`, or "unknown"
  std::string build_type;  ///< CMAKE_BUILD_TYPE, or "unspecified"
  std::string sanitizers;  ///< RESCHED_SANITIZE list, or "none"
  std::string compiler;    ///< compiler id + version
};

/// The build info of this binary (static storage, thread-safe).
const BuildInfo& GetBuildInfo();

/// One-line human-readable form:
///   "resched 1.0.0 (abc1234, Release, sanitizers: none, GNU 12.2.0)"
std::string BuildInfoLine();

}  // namespace resched
