// Tiny CSV writer used by the benchmark harness to dump table/figure data.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace resched {

/// Escapes/joins rows per RFC 4180 (quotes fields containing , " or newline).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);
  void WriteRow(std::initializer_list<std::string> fields);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string Field(double v);
  static std::string Field(std::int64_t v);
  static std::string Field(std::size_t v);

 private:
  static std::string Escape(const std::string& f);
  std::ostream& out_;
};

}  // namespace resched
