// Bump-pointer arena + allocator for the per-worker scratch state
// (DESIGN.md §10).
//
// PaScratch owns dozens of stage buffers and a pool of draft regions; each
// used to carve its storage from the global heap independently. With the
// arena they all bump-allocate from one slab chain, so a worker's whole
// working set is contiguous and warm in cache, and the steady-state
// allocation count of a restart stays zero (containers keep their
// capacity across Reset(), and the slab keeps its bytes).
//
// Lifetime rules (enforced by declaration order, not by the arena):
//   * the arena must outlive every container whose allocator points at it
//     — declare it before them in the owning class;
//   * Deallocate() reclaims only the most recent allocation (LIFO); any
//     other free is a no-op and the bytes return on Rewind();
//   * Rewind() is legal only when no live allocation remains (all
//     arena-backed containers destroyed or shrunk to capacity zero); it
//     coalesces the slab chain into one slab of the high-water size, so a
//     rebuilt working set fits without further mallocs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace resched {

class MonotonicArena {
 public:
  explicit MonotonicArena(std::size_t initial_bytes = 1 << 16)
      : initial_bytes_(initial_bytes == 0 ? 1 : initial_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  void* Allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    if (!slabs_.empty()) {
      Slab& slab = slabs_.back();
      const std::size_t aligned = AlignedOffset(slab, align);
      if (aligned + bytes <= slab.size) {
        slab.used = aligned + bytes;
        return slab.data.get() + aligned;
      }
    }
    // Geometric slab growth: the chain length stays logarithmic in the
    // high-water mark, and Rewind() collapses it back to one slab.
    std::size_t size = slabs_.empty() ? initial_bytes_ : slabs_.back().size * 2;
    const std::size_t need = bytes + align;
    if (size < need) size = need;
    slabs_.push_back(Slab{std::make_unique<std::byte[]>(size), size, 0});
    Slab& slab = slabs_.back();
    const std::size_t aligned = AlignedOffset(slab, align);
    slab.used = aligned + bytes;
    return slab.data.get() + aligned;
  }

  /// LIFO reclaim: returns the bytes iff `p` is the most recent live
  /// allocation of the current slab; otherwise a no-op (the bytes come
  /// back at the next Rewind). This makes std::vector's grow-copy-free
  /// pattern waste only the *old* buffer, never the new one.
  void Deallocate(void* p, std::size_t bytes) {
    if (bytes == 0) bytes = 1;
    if (slabs_.empty()) return;
    Slab& slab = slabs_.back();
    auto* bytes_p = static_cast<std::byte*>(p);
    if (bytes_p + bytes == slab.data.get() + slab.used) {
      slab.used -= bytes;
    }
  }

  /// Collapses the slab chain into one slab of at least the total
  /// capacity and rewinds it to empty. Caller contract: no allocation
  /// obtained from this arena may be referenced afterwards.
  void Rewind() {
    if (slabs_.size() == 1) {
      slabs_.back().used = 0;
      return;
    }
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.size;
    slabs_.clear();
    if (total != 0) {
      slabs_.push_back(Slab{std::make_unique<std::byte[]>(total), total, 0});
    }
  }

  std::size_t NumSlabs() const { return slabs_.size(); }

  std::size_t BytesUsed() const {
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.used;
    return total;
  }

  std::size_t Capacity() const {
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.size;
    return total;
  }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  /// Smallest offset >= slab.used whose *address* is align-aligned (the
  /// slab base itself is only new[]-aligned, so offsets alone don't do).
  static std::size_t AlignedOffset(const Slab& slab, std::size_t align) {
    RESCHED_DCHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                       "alignment must be a power of two");
    const auto base = reinterpret_cast<std::uintptr_t>(slab.data.get());
    const std::uintptr_t aligned =
        (base + slab.used + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
    return static_cast<std::size_t>(aligned - base);
  }

  std::size_t initial_bytes_;
  std::vector<Slab> slabs_;
};

/// Minimal allocator over MonotonicArena. Stateful: containers using it
/// must be constructed with an allocator bound to their owner's arena.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena& arena) : arena_(&arena) {}

  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T* p, std::size_t n) { arena_->Deallocate(p, n * sizeof(T)); }

  MonotonicArena* arena() const { return arena_; }

  template <class U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <class U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  MonotonicArena* arena_;
};

/// std::vector carving from an arena; construct as ArenaVec<T>(alloc).
template <class T>
using ArenaVec = std::vector<T, ArenaAllocator<T>>;

}  // namespace resched
