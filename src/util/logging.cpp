#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "util/mutex.hpp"

namespace resched {

namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("RESCHED_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& LevelSlot() {
  static std::atomic<LogLevel> level{LevelFromEnv()};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return LevelSlot().load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  LevelSlot().store(level, std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  static Mutex mutex;  // serializes the stderr sink, guards no data
  MutexLock lock(mutex);
  std::cerr << "[resched:" << LevelName(level) << "] " << message << '\n';
}

}  // namespace resched
