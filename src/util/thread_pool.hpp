// Minimal fixed-size thread pool with a blocking work queue plus a
// parallel-for helper. Used for PA-R parallel restarts and benchmark sweeps.
//
// Design notes (CP.* core guidelines): tasks are type-erased move-only
// callables; the pool joins in its destructor so lifetimes are scoped; no
// detached threads. Exceptions thrown by a task are captured and rethrown on
// Wait()/ParallelFor() in the caller's thread (first one wins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace resched {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t ThreadCount() const { return workers_.size(); }

  /// Enqueues a task. Must not be called after destruction has begun.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished; rethrows the first
  /// captured task exception, if any.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// fn must be safe to invoke concurrently for distinct i.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace resched
