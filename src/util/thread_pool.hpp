// Minimal fixed-size thread pool with a blocking work queue plus a
// parallel-for helper. Used for PA-R parallel restarts and benchmark sweeps.
//
// Design notes (CP.* core guidelines): tasks are type-erased move-only
// callables; the pool joins in its destructor so lifetimes are scoped; no
// detached threads. Exceptions thrown by a task are captured and rethrown on
// Wait()/ParallelFor() in the caller's thread (first one wins).
//
// Lock contract (compiler-checked under -Wthread-safety): every queue and
// bookkeeping member is guarded by mutex_; workers_ is written only during
// construction and joined in the destructor, so it needs no lock.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace resched {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t ThreadCount() const { return workers_.size(); }

  /// Enqueues a task. Must not be called after destruction has begun.
  void Submit(std::function<void()> task) RESCHED_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished; rethrows the first
  /// captured task exception, if any.
  void Wait() RESCHED_EXCLUDES(mutex_);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// fn must be safe to invoke concurrently for distinct i.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn)
      RESCHED_EXCLUDES(mutex_);

 private:
  void WorkerLoop() RESCHED_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< immutable after construction
  Mutex mutex_;
  CondVar cv_task_;
  CondVar cv_idle_;
  std::deque<std::function<void()>> queue_ RESCHED_GUARDED_BY(mutex_);
  std::size_t in_flight_ RESCHED_GUARDED_BY(mutex_) = 0;
  bool stop_ RESCHED_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ RESCHED_GUARDED_BY(mutex_);
};

}  // namespace resched
