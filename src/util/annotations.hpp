// Clang thread-safety analysis annotations.
//
// These macros attach lock contracts to types and functions so a Clang
// build with -Wthread-safety (the `thread-safety` CMake preset, gated in
// CI with -Werror=thread-safety-analysis) proves lock discipline at
// compile time — on every path, not just the ones a test executed. Under
// GCC (which has no capability analysis) they expand to nothing, so the
// annotated tree builds identically everywhere.
//
// Vocabulary (mirrors the Clang attribute names, RESCHED_-prefixed so the
// unannotated-mutex lint rule can tell sanctioned wrappers from strays):
//
//   RESCHED_CAPABILITY(name)     the type is a lockable capability
//   RESCHED_SCOPED_CAPABILITY    RAII type that acquires in its ctor and
//                                releases in its dtor (MutexLock)
//   RESCHED_GUARDED_BY(mu)       data member readable/writable only while
//                                mu is held
//   RESCHED_PT_GUARDED_BY(mu)    pointer member whose *pointee* is guarded
//   RESCHED_REQUIRES(mu...)      caller must hold mu before calling
//   RESCHED_ACQUIRE(mu...)       function acquires mu and does not release
//   RESCHED_RELEASE(mu...)       function releases mu
//   RESCHED_TRY_ACQUIRE(b, mu)   acquires mu iff the return value is b
//   RESCHED_EXCLUDES(mu...)      caller must NOT hold mu (deadlock guard)
//   RESCHED_ASSERT_CAPABILITY(mu) runtime assertion that mu is held
//   RESCHED_RETURN_CAPABILITY(mu) function returns a reference to mu
//   RESCHED_NO_THREAD_SAFETY_ANALYSIS  opt a definition out (last resort;
//                                every use needs a ledger entry, see
//                                DESIGN.md §11)
//
// Annotate members and private helpers, not call sites: the analysis then
// checks every caller for free. New mutexes must be resched::Mutex
// (util/mutex.hpp), never raw std::mutex — the lint's unannotated-mutex
// rule rejects strays.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define RESCHED_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RESCHED_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define RESCHED_CAPABILITY(x) RESCHED_THREAD_ANNOTATION_(capability(x))

#define RESCHED_SCOPED_CAPABILITY RESCHED_THREAD_ANNOTATION_(scoped_lockable)

#define RESCHED_GUARDED_BY(x) RESCHED_THREAD_ANNOTATION_(guarded_by(x))

#define RESCHED_PT_GUARDED_BY(x) RESCHED_THREAD_ANNOTATION_(pt_guarded_by(x))

#define RESCHED_ACQUIRE(...) \
  RESCHED_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define RESCHED_ACQUIRE_SHARED(...) \
  RESCHED_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define RESCHED_RELEASE(...) \
  RESCHED_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define RESCHED_TRY_ACQUIRE(...) \
  RESCHED_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define RESCHED_REQUIRES(...) \
  RESCHED_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define RESCHED_REQUIRES_SHARED(...) \
  RESCHED_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define RESCHED_EXCLUDES(...) \
  RESCHED_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define RESCHED_ASSERT_CAPABILITY(x) \
  RESCHED_THREAD_ANNOTATION_(assert_capability(x))

#define RESCHED_RETURN_CAPABILITY(x) \
  RESCHED_THREAD_ANNOTATION_(lock_returned(x))

#define RESCHED_NO_THREAD_SAFETY_ANALYSIS \
  RESCHED_THREAD_ANNOTATION_(no_thread_safety_analysis)
