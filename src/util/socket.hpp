// Minimal Unix-domain stream socket wrappers for the reschedd service.
//
// Deliberately tiny: blocking I/O only, SOCK_STREAM only, line-oriented
// framing left to the caller (service/transport.hpp buffers and splits).
// Every syscall return value is checked; failures surface as SocketError
// with errno context instead of being silently dropped — the
// no-unchecked-syscall-return lint rule enforces the same discipline over
// the service layer built on top of this.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace resched {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A connected Unix-domain stream socket (owns the fd; move-only).
class UnixSocket {
 public:
  UnixSocket() = default;
  explicit UnixSocket(int fd) : fd_(fd) {}
  ~UnixSocket();

  UnixSocket(UnixSocket&& other) noexcept;
  UnixSocket& operator=(UnixSocket&& other) noexcept;
  UnixSocket(const UnixSocket&) = delete;
  UnixSocket& operator=(const UnixSocket&) = delete;

  /// Connects to the listener at `path`; throws SocketError on failure.
  static UnixSocket Connect(const std::string& path);

  bool Valid() const { return fd_ >= 0; }

  /// Writes the whole buffer (SIGPIPE suppressed). Returns false when the
  /// peer is gone (EPIPE/ECONNRESET); throws SocketError on other errors.
  bool SendAll(std::string_view data);

  /// Appends up to a chunk of received bytes to `buffer`. Returns false on
  /// orderly EOF; throws SocketError on failure.
  bool RecvSome(std::string& buffer);

  /// Closes the fd (idempotent). Close errors are swallowed by the
  /// destructor but reported here.
  void Close();

 private:
  int fd_ = -1;
};

/// A bound + listening Unix-domain socket. Unlinks a stale socket file on
/// bind and removes its own on destruction.
class UnixListener {
 public:
  /// Binds and listens on `path`; throws SocketError on failure (including
  /// paths longer than sockaddr_un allows, ~107 bytes).
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Blocks for the next connection. Returns nullopt once the listener was
  /// closed (concurrently or before the call); throws SocketError on other
  /// accept failures.
  std::optional<UnixSocket> Accept();

  /// Closes the listening fd, waking a blocked Accept() with nullopt.
  void Close();

  const std::string& Path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

/// Buffered line reader over a UnixSocket: splits on '\n' (the terminator
/// is not included in `line`). Returns false on EOF with no buffered data.
class SocketLineReader {
 public:
  explicit SocketLineReader(UnixSocket& socket) : socket_(&socket) {}

  bool ReadLine(std::string& line);

 private:
  UnixSocket* socket_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace resched
