// Minimal stream socket wrappers for the reschedd service.
//
// Deliberately tiny: blocking I/O only, SOCK_STREAM only (Unix-domain and
// localhost TCP), framing left to the caller (service/transport.hpp splits
// lines; service/framing.hpp speaks length-prefixed frames over TCP).
// Every syscall return value is checked; failures surface as SocketError
// with errno context instead of being silently dropped — the
// no-unchecked-syscall-return lint rule enforces the same discipline over
// the service layer built on top of this. Send/recv route through the
// util/io_faults shim so the chaos harness covers both address families.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace resched {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A connected stream socket (owns the fd; move-only). Address-family
/// agnostic: Connect() produces a Unix-domain connection, ConnectTcp() a
/// TCP one, and accepted sockets from either listener behave identically.
class StreamSocket {
 public:
  StreamSocket() = default;
  explicit StreamSocket(int fd) : fd_(fd) {}
  ~StreamSocket();

  StreamSocket(StreamSocket&& other) noexcept;
  StreamSocket& operator=(StreamSocket&& other) noexcept;
  StreamSocket(const StreamSocket&) = delete;
  StreamSocket& operator=(const StreamSocket&) = delete;

  /// Connects to the Unix-domain listener at `path`; throws SocketError on
  /// failure.
  static StreamSocket Connect(const std::string& path);

  /// Connects over TCP (with TCP_NODELAY — the protocol is
  /// request/response, so Nagle only adds latency). `host` is a numeric
  /// IPv4 address or "localhost"; throws SocketError on failure.
  static StreamSocket ConnectTcp(const std::string& host, std::uint16_t port);

  bool Valid() const { return fd_ >= 0; }

  /// Writes the whole buffer (SIGPIPE suppressed). Returns false when the
  /// peer is gone (EPIPE/ECONNRESET); throws SocketError on other errors.
  bool SendAll(std::string_view data);

  /// Appends up to a chunk of received bytes to `buffer`. Returns false on
  /// orderly EOF; throws SocketError on failure.
  bool RecvSome(std::string& buffer);

  /// Closes the fd (idempotent). Close errors are swallowed by the
  /// destructor but reported here.
  void Close();

  /// shutdown(2) both directions without closing the fd (idempotent,
  /// best-effort). Unlike Close this is safe to call from another thread
  /// while a reader is parked in recv(2) — and it is the only reliable way
  /// to wake that reader, which then sees an orderly EOF.
  void Shutdown();

 private:
  int fd_ = -1;
};

/// Back-compat alias from before the TCP transport landed; new code should
/// say StreamSocket.
using UnixSocket = StreamSocket;

/// A bound + listening Unix-domain socket. Unlinks a stale socket file on
/// bind and removes its own on destruction.
class UnixListener {
 public:
  /// Binds and listens on `path`; throws SocketError on failure (including
  /// paths longer than sockaddr_un allows, ~107 bytes).
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Blocks for the next connection. Returns nullopt once the listener was
  /// closed (concurrently or before the call); throws SocketError on other
  /// accept failures.
  std::optional<StreamSocket> Accept();

  /// Closes the listening fd, waking a blocked Accept() with nullopt.
  void Close();

  const std::string& Path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

/// A bound + listening TCP socket. `port` 0 binds an ephemeral port; the
/// kernel-assigned number is readable through Port() (tests and the CLI
/// print it so clients can find the daemon).
class TcpListener {
 public:
  /// Binds and listens on host:port (SO_REUSEADDR set); throws SocketError
  /// on failure. `host` is a numeric IPv4 address or "localhost".
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Blocks for the next connection (TCP_NODELAY set on the accepted
  /// socket). Returns nullopt once the listener was closed; throws
  /// SocketError on other accept failures.
  std::optional<StreamSocket> Accept();

  /// Closes the listening fd, waking a blocked Accept() with nullopt.
  void Close();

  const std::string& Host() const { return host_; }
  std::uint16_t Port() const { return port_; }

 private:
  int fd_ = -1;
  std::string host_;
  std::uint16_t port_ = 0;
};

/// Buffered line reader over a StreamSocket: splits on '\n' (the
/// terminator is not included in `line`). Returns false on EOF with no
/// buffered data.
class SocketLineReader {
 public:
  explicit SocketLineReader(StreamSocket& socket) : socket_(&socket) {}

  bool ReadLine(std::string& line);

 private:
  StreamSocket* socket_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace resched
