#include "util/build_info.hpp"

namespace resched {

namespace {

#ifndef RESCHED_VERSION_STR
#define RESCHED_VERSION_STR "0.0.0"
#endif
#ifndef RESCHED_GIT_DESCRIBE
#define RESCHED_GIT_DESCRIBE "unknown"
#endif
#ifndef RESCHED_BUILD_TYPE_STR
#define RESCHED_BUILD_TYPE_STR "unspecified"
#endif
#ifndef RESCHED_SANITIZE_STR
#define RESCHED_SANITIZE_STR ""
#endif
#ifndef RESCHED_COMPILER_STR
#define RESCHED_COMPILER_STR "unknown"
#endif

BuildInfo MakeBuildInfo() {
  BuildInfo info;
  info.version = RESCHED_VERSION_STR;
  info.git = RESCHED_GIT_DESCRIBE;
  info.build_type = RESCHED_BUILD_TYPE_STR;
  info.sanitizers = RESCHED_SANITIZE_STR;
  if (info.sanitizers.empty()) info.sanitizers = "none";
  info.compiler = RESCHED_COMPILER_STR;
  return info;
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = MakeBuildInfo();
  return info;
}

std::string BuildInfoLine() {
  const BuildInfo& b = GetBuildInfo();
  return "resched " + b.version + " (" + b.git + ", " + b.build_type +
         ", sanitizers: " + b.sanitizers + ", " + b.compiler + ")";
}

}  // namespace resched
