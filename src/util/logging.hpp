// Lightweight leveled logging to stderr.
//
// The schedulers are pure functions and never log on their own; logging is
// used by the CLI-facing layers (benches, examples, floorplan retries) to
// narrate progress. Thread-safe: each message is formatted into a single
// string and written with one ostream call.
#pragma once

#include <sstream>
#include <string>

namespace resched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level (default kWarn; RESCHED_LOG env var overrides:
/// "debug" | "info" | "warn" | "error" | "off").
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace resched

#define RESCHED_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::resched::GetLogLevel())) \
    ;                                                           \
  else                                                          \
    ::resched::detail::LogLine(level)

#define RESCHED_LOG_DEBUG RESCHED_LOG(::resched::LogLevel::kDebug)
#define RESCHED_LOG_INFO RESCHED_LOG(::resched::LogLevel::kInfo)
#define RESCHED_LOG_WARN RESCHED_LOG(::resched::LogLevel::kWarn)
#define RESCHED_LOG_ERROR RESCHED_LOG(::resched::LogLevel::kError)
