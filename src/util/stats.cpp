#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace resched {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::Mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStat::StdDev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double RunningStat::Min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStat::Max() const { return n_ == 0 ? 0.0 : max_; }

double Mean(const std::vector<double>& xs) {
  RunningStat s;
  for (double x : xs) s.Add(x);
  return s.Mean();
}

double StdDev(const std::vector<double>& xs) {
  RunningStat s;
  for (double x : xs) s.Add(x);
  return s.StdDev();
}

double Percentile(std::vector<double> xs, double p) {
  RESCHED_CHECK_MSG(!xs.empty(), "Percentile of empty sample");
  RESCHED_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50.0); }

}  // namespace resched
