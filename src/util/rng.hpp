// Deterministic, splittable pseudo-random number generation.
//
// The whole library is seeded explicitly: the same (instance, options, seed)
// triple always produces the same schedule, regardless of thread count. The
// generator is xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
// which gives high-quality streams from arbitrary 64-bit seeds and supports
// cheap derivation of independent child streams for parallel restarts.
#pragma once

#include <cstdint>
#include <vector>

namespace resched {

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator so it can
/// be used with <random> distributions, but the member helpers below are
/// preferred: they are reproducible across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  std::uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle, reproducible across platforms. Accepts any
  /// random-access container (std::vector with any allocator).
  template <typename Container>
  void Shuffle(Container& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires a non-empty vector with non-negative weights, not all zero.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; child streams produced from
  /// distinct calls are statistically independent of the parent and of each
  /// other (used to give every parallel restart its own stream).
  Rng Split();

 private:
  std::uint64_t state_[4];
};

/// SplitMix64 step — also useful on its own for hashing seeds together.
std::uint64_t SplitMix64(std::uint64_t& state);

/// Hash-combines two 64-bit values (for deriving per-index seeds).
std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b);

/// Derives the seed of trial `index` within the named `stream`. Distinct
/// streams (jitter trials, fault-scenario generation, ...) stay
/// decorrelated even for equal indices, and nearby indices within one
/// stream yield statistically independent generators. This is the one
/// sanctioned way to derive per-trial seeds; ad-hoc `HashCombine(tag, i)`
/// call sites should migrate here so stream separation is auditable.
std::uint64_t DeriveSeed(std::uint64_t stream, std::uint64_t index);

/// Well-known stream tags for DeriveSeed. Any 64-bit value works; these
/// exist so independent subsystems cannot collide by accident.
inline constexpr std::uint64_t kJitterSeedStream = 0x5EED'0000'0000'0001ULL;
inline constexpr std::uint64_t kFaultSeedStream = 0x5EED'0000'0000'0002ULL;
/// PA-R restart iterations: iteration k draws its generator from
/// DeriveSeed(kParSeedStream ^ user_seed, k), making the candidate produced
/// by iteration k independent of which worker thread runs it.
inline constexpr std::uint64_t kParSeedStream = 0x5EED'0000'0000'0003ULL;

}  // namespace resched
