// Contract-check macro family shared by every resched module.
//
// Two tiers:
//
//  * RESCHED_CHECK / RESCHED_CHECK_MSG — always on, in every build type.
//    Used on API boundaries, input validation and non-hot paths. Failure
//    throws InternalError so callers (and tests) can observe the message.
//
//  * RESCHED_DCHECK / RESCHED_DCHECK_MSG — heavier internal invariants on
//    hot paths (scheduler state machines, floorplan placement). Enabled in
//    Debug builds (no NDEBUG) and whenever the build is configured with
//    -DRESCHED_CHECKED_BUILD=ON (which defines RESCHED_ENABLE_DCHECKS);
//    compiled out otherwise, with the expression left unevaluated. Failure
//    prints expression, location and message to stderr and aborts, so state
//    corruption stops the process at the point of detection instead of
//    surfacing later as a plausible-but-wrong schedule. The gtest death
//    tests latch onto the "RESCHED_DCHECK failed" stderr line.
//
// Both tiers capture the failing expression text and the source location;
// the _MSG variants add a human-readable explanation.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <source_location>
#include <stdexcept>
#include <string>

namespace resched {

/// Error thrown when an internal invariant is violated; indicates a bug in
/// the library rather than in user input.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void CheckFailed(const char* kind, const char* expr,
                                     const std::string& msg,
                                     const std::source_location& loc) {
  std::string what = std::string(kind) + " failed: " + expr + " at " +
                     loc.file_name() + ":" + std::to_string(loc.line());
  if (!msg.empty()) what += " — " + msg;
  throw InternalError(what);
}

[[noreturn]] inline void DcheckFailed(const char* expr, const std::string& msg,
                                      const std::source_location& loc) {
  std::fprintf(stderr, "RESCHED_DCHECK failed: %s at %s:%u%s%s\n", expr,
               loc.file_name(), static_cast<unsigned>(loc.line()),
               msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace resched

/// Always-on invariant check (used on non-hot paths and in validators).
#define RESCHED_CHECK(expr)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::resched::detail::CheckFailed("RESCHED_CHECK", #expr, "",             \
                                     std::source_location::current());       \
    }                                                                        \
  } while (false)

#define RESCHED_CHECK_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::resched::detail::CheckFailed("RESCHED_CHECK", #expr, (msg),          \
                                     std::source_location::current());       \
    }                                                                        \
  } while (false)

#if !defined(NDEBUG) || defined(RESCHED_ENABLE_DCHECKS)
#define RESCHED_DCHECK_IS_ON 1
#else
#define RESCHED_DCHECK_IS_ON 0
#endif

#if RESCHED_DCHECK_IS_ON

/// Debug/checked-build invariant; aborts with context on failure.
#define RESCHED_DCHECK(expr)                                                 \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::resched::detail::DcheckFailed(#expr, "",                             \
                                      std::source_location::current());      \
    }                                                                        \
  } while (false)

#define RESCHED_DCHECK_MSG(expr, msg)                                        \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::resched::detail::DcheckFailed(#expr, (msg),                          \
                                      std::source_location::current());      \
    }                                                                        \
  } while (false)

#else

// Compiled out: the expression is syntax-checked via sizeof but never
// evaluated, so DCHECK operands cannot trigger unused-variable warnings.
#define RESCHED_DCHECK(expr) \
  do {                       \
    (void)sizeof((expr));    \
  } while (false)

#define RESCHED_DCHECK_MSG(expr, msg) \
  do {                                \
    (void)sizeof((expr));             \
    (void)sizeof((msg));              \
  } while (false)

#endif  // RESCHED_DCHECK_IS_ON
