// Runtime-dispatched SIMD word kernels under util/timeline.hpp.
//
// The timeline kernels are loops over arrays of 64-bit occupancy words.
// This header provides the bulk-word primitives behind them in three
// interchangeable backends:
//
//   scalar — portable word-at-a-time loops (the fallback, always built);
//   avx2   — 256-bit AVX2 blocks (x86-64, compiled with a `target`
//            attribute so the baseline build stays generic; selected at
//            runtime only when CPUID reports AVX2);
//   neon   — 128-bit NEON blocks (aarch64, where NEON is architecturally
//            guaranteed, so support is a compile-time fact).
//
// The backend is resolved once, on the first call to Active(): the
// RESCHED_SIMD environment variable (scalar|avx2|neon) overrides the
// detector; otherwise the best supported backend wins. Requesting an
// unsupported backend aborts loudly — an explicit override that silently
// degraded would defeat the CI equivalence legs that depend on it.
//
// Contract (DESIGN.md §13): every backend computes bit-identical results
// for every kernel — these are pure bitwise/word reductions with no
// floating point and no reassociation hazards, so equality is exact, and
// tests/timeline_test.cpp differential-tests every backend reachable on
// the build machine against the timeline::scalar oracle.
//
// All raw intrinsics in the repository live in this header; the
// `no-raw-intrinsics-outside-simd` lint rule (tools/resched_lint.py)
// rejects them anywhere else.
//
// Thread safety: Active() resolution is an idempotent atomic publish and
// may race freely. SetBackend() is a test hook — call it only while no
// other thread is inside a kernel.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define RESCHED_SIMD_HAVE_X86 1
#include <immintrin.h>
#else
#define RESCHED_SIMD_HAVE_X86 0
#endif

#if defined(__aarch64__)
#define RESCHED_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#else
#define RESCHED_SIMD_HAVE_NEON 0
#endif

namespace resched::simd {

enum class Backend : std::uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// One resolved implementation of the bulk word primitives. All kernels
/// operate on arrays of 64-bit words; `n` counts words. None allocate.
struct KernelTable {
  Backend backend;
  const char* name;
  /// dst[i] |= src[i] for i in [0, n).
  void (*or_into)(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n);
  /// dst[i] = a[i] | b[i] for i in [0, n).
  void (*or3)(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, std::size_t n);
  /// True when (a[i] & b[i]) != 0 for any i in [0, n).
  bool (*any_intersect)(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n);
  /// True when any word in [0, n) is nonzero.
  bool (*any_nonzero)(const std::uint64_t* words, std::size_t n);
  /// Smallest w in [wb, we) with words[w] != 0, or we when none.
  std::size_t (*first_nonzero)(const std::uint64_t* words, std::size_t wb,
                               std::size_t we);
  /// words[i] = value for i in [0, n).
  void (*fill)(std::uint64_t* words, std::uint64_t value, std::size_t n);
};

// ---- scalar backend (always available) ------------------------------------

namespace detail {

inline void ScalarOrInto(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

inline void ScalarOr3(std::uint64_t* dst, const std::uint64_t* a,
                      const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}

inline bool ScalarAnyIntersect(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= a[i] & b[i];
  return acc != 0;
}

inline bool ScalarAnyNonzero(const std::uint64_t* words, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= words[i];
  return acc != 0;
}

inline std::size_t ScalarFirstNonzero(const std::uint64_t* words,
                                      std::size_t wb, std::size_t we) {
  for (std::size_t w = wb; w < we; ++w) {
    if (words[w] != 0) return w;
  }
  return we;
}

inline void ScalarFill(std::uint64_t* words, std::uint64_t value,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) words[i] = value;
}

inline constexpr KernelTable kScalarTable = {
    Backend::kScalar, "scalar",        &ScalarOrInto,
    &ScalarOr3,       &ScalarAnyIntersect, &ScalarAnyNonzero,
    &ScalarFirstNonzero, &ScalarFill,
};

// ---- AVX2 backend (x86, runtime-gated) ------------------------------------

#if RESCHED_SIMD_HAVE_X86

__attribute__((target("avx2"))) inline void Avx2OrInto(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) inline void Avx2Or3(std::uint64_t* dst,
                                                    const std::uint64_t* a,
                                                    const std::uint64_t* b,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

__attribute__((target("avx2"))) inline bool Avx2AnyIntersect(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  std::uint64_t acc = 0;
  for (; i < n; ++i) acc |= a[i] & b[i];
  return acc != 0;
}

__attribute__((target("avx2"))) inline bool Avx2AnyNonzero(
    const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    if (!_mm256_testz_si256(v, v)) return true;
  }
  std::uint64_t acc = 0;
  for (; i < n; ++i) acc |= words[i];
  return acc != 0;
}

__attribute__((target("avx2"))) inline std::size_t Avx2FirstNonzero(
    const std::uint64_t* words, std::size_t wb, std::size_t we) {
  std::size_t w = wb;
  for (; w + 4 <= we; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    if (!_mm256_testz_si256(v, v)) break;  // some word in this block
  }
  for (; w < we; ++w) {
    if (words[w] != 0) return w;
  }
  return we;
}

__attribute__((target("avx2"))) inline void Avx2Fill(std::uint64_t* words,
                                                     std::uint64_t value,
                                                     std::size_t n) {
  std::size_t i = 0;
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + i), v);
  }
  for (; i < n; ++i) words[i] = value;
}

inline constexpr KernelTable kAvx2Table = {
    Backend::kAvx2, "avx2",          &Avx2OrInto,
    &Avx2Or3,       &Avx2AnyIntersect, &Avx2AnyNonzero,
    &Avx2FirstNonzero, &Avx2Fill,
};

#endif  // RESCHED_SIMD_HAVE_X86

// ---- NEON backend (aarch64, architecturally guaranteed) -------------------

#if RESCHED_SIMD_HAVE_NEON

inline void NeonOrInto(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

inline void NeonOr3(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

inline bool NeonAnyIntersect(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    if ((vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0) return true;
  }
  std::uint64_t acc = 0;
  for (; i < n; ++i) acc |= a[i] & b[i];
  return acc != 0;
}

inline bool NeonAnyNonzero(const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(words + i);
    if ((vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0) return true;
  }
  std::uint64_t acc = 0;
  for (; i < n; ++i) acc |= words[i];
  return acc != 0;
}

inline std::size_t NeonFirstNonzero(const std::uint64_t* words,
                                    std::size_t wb, std::size_t we) {
  std::size_t w = wb;
  for (; w + 2 <= we; w += 2) {
    const uint64x2_t v = vld1q_u64(words + w);
    if ((vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0) break;
  }
  for (; w < we; ++w) {
    if (words[w] != 0) return w;
  }
  return we;
}

inline void NeonFill(std::uint64_t* words, std::uint64_t value,
                     std::size_t n) {
  std::size_t i = 0;
  const uint64x2_t v = vdupq_n_u64(value);
  for (; i + 2 <= n; i += 2) vst1q_u64(words + i, v);
  for (; i < n; ++i) words[i] = value;
}

inline constexpr KernelTable kNeonTable = {
    Backend::kNeon, "neon",          &NeonOrInto,
    &NeonOr3,       &NeonAnyIntersect, &NeonAnyNonzero,
    &NeonFirstNonzero, &NeonFill,
};

#endif  // RESCHED_SIMD_HAVE_NEON

}  // namespace detail

inline const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

/// Whether `b` can run on this build + machine.
inline bool Supported(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if RESCHED_SIMD_HAVE_X86
      // Note: the builtin returns a feature *mask*, not a boolean — always
      // compare against zero (truncating it to an exit code once read as
      // "unsupported" on a machine that very much has AVX2).
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
      return RESCHED_SIMD_HAVE_NEON != 0;
  }
  return false;
}

namespace detail {

inline const KernelTable* TableFor(Backend b) {
  switch (b) {
#if RESCHED_SIMD_HAVE_X86
    case Backend::kAvx2:
      return &kAvx2Table;
#endif
#if RESCHED_SIMD_HAVE_NEON
    case Backend::kNeon:
      return &kNeonTable;
#endif
    default:
      return &kScalarTable;
  }
}

inline std::atomic<const KernelTable*>& ActiveSlot() {
  static std::atomic<const KernelTable*> slot{nullptr};
  return slot;
}

/// Startup resolution: RESCHED_SIMD override first, else best supported.
inline const KernelTable* Resolve() {
  if (const char* env = std::getenv("RESCHED_SIMD");
      env != nullptr && *env != '\0') {
    Backend requested = Backend::kScalar;
    if (std::strcmp(env, "scalar") == 0) {
      requested = Backend::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = Backend::kAvx2;
    } else if (std::strcmp(env, "neon") == 0) {
      requested = Backend::kNeon;
    } else {
      std::fprintf(stderr,
                   "RESCHED_SIMD=%s: unknown backend (expected "
                   "scalar|avx2|neon)\n",
                   env);
      std::abort();
    }
    if (!Supported(requested)) {
      std::fprintf(stderr,
                   "RESCHED_SIMD=%s: backend not supported on this "
                   "machine/build\n",
                   env);
      std::abort();
    }
    return TableFor(requested);
  }
  if (Supported(Backend::kAvx2)) return TableFor(Backend::kAvx2);
  if (Supported(Backend::kNeon)) return TableFor(Backend::kNeon);
  return TableFor(Backend::kScalar);
}

}  // namespace detail

/// The resolved kernel table (startup resolution on first use).
inline const KernelTable& Active() {
  const KernelTable* t =
      detail::ActiveSlot().load(std::memory_order_acquire);
  if (t == nullptr) {
    // Racing first calls all resolve to the same inline table object, so
    // publishing twice is harmless.
    t = detail::Resolve();
    detail::ActiveSlot().store(t, std::memory_order_release);
  }
  return *t;
}

inline Backend ActiveBackend() { return Active().backend; }

/// Test hook: forces a backend for subsequent kernel calls. Aborts on an
/// unsupported backend (same policy as the env override).
inline void SetBackend(Backend b) {
  if (!Supported(b)) {
    std::fprintf(stderr, "simd::SetBackend(%s): backend not supported\n",
                 BackendName(b));
    std::abort();
  }
  detail::ActiveSlot().store(detail::TableFor(b), std::memory_order_release);
}

}  // namespace resched::simd
