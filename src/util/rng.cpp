#include "util/rng.hpp"

#include <cmath>

#include "util/common.hpp"

namespace resched {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return SplitMix64(s);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  RESCHED_CHECK_MSG(lo <= hi, "UniformInt requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(Next());
  }
  // Rejection sampling (Lemire-style threshold) to avoid modulo bias.
  const std::uint64_t threshold = (~span + 1) % span;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  RESCHED_CHECK_MSG(!weights.empty(), "WeightedIndex on empty weights");
  double total = 0.0;
  for (double w : weights) {
    RESCHED_CHECK_MSG(w >= 0.0, "negative weight");
    total += w;
  }
  RESCHED_CHECK_MSG(total > 0.0, "all weights zero");
  double x = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fall back to last index
}

std::uint64_t DeriveSeed(std::uint64_t stream, std::uint64_t index) {
  // Diffuse the stream tag before mixing in the index so that streams
  // differing in a single bit do not produce correlated per-index seeds.
  std::uint64_t s = stream;
  const std::uint64_t diffused = SplitMix64(s);
  return HashCombine(diffused, SplitMix64(s) ^ index);
}

Rng Rng::Split() {
  const std::uint64_t child_seed = HashCombine(Next(), Next());
  return Rng(child_seed);
}

}  // namespace resched
