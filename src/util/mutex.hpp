// Annotated mutex / lock / condition-variable wrappers.
//
// Thin, zero-overhead shells over the std primitives whose only job is to
// carry the thread-safety annotations from util/annotations.hpp, so a
// Clang -Wthread-safety build can prove that every access to a
// RESCHED_GUARDED_BY member happens under its lock. Raw std::mutex /
// std::condition_variable members are banned outside this header (the
// unannotated-mutex lint rule enforces it).
//
// Usage pattern:
//
//   class Account {
//    public:
//     void Deposit(int amount) RESCHED_EXCLUDES(mu_) {
//       MutexLock lock(mu_);
//       balance_ += amount;   // OK: mu_ held
//     }
//    private:
//     mutable Mutex mu_;
//     int balance_ RESCHED_GUARDED_BY(mu_) = 0;
//   };
//
// Condition waits keep the scoped lock and re-check their predicate in an
// explicit loop, so the guarded reads inside the predicate stay visible
// to the analysis:
//
//   MutexLock lock(mu_);
//   while (!closed_ && items_.empty()) cv_.Wait(lock);
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace resched {

class CondVar;
class MutexLock;

/// Annotated exclusive mutex (wraps std::mutex; same cost, same
/// semantics, plus a capability the analysis can track).
class RESCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RESCHED_ACQUIRE() { mu_.lock(); }
  void Unlock() RESCHED_RELEASE() { mu_.unlock(); }
  bool TryLock() RESCHED_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex (the annotated std::unique_lock). Always
/// holds the lock for its full scope — condition waits release/reacquire
/// internally, which the analysis models as "held throughout", exactly
/// the guarantee the caller observes.
class RESCHED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RESCHED_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RESCHED_RELEASE() {}  // lock_'s destructor unlocks

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex. No predicate overloads on
/// purpose: a lambda predicate is a separate function to the analysis and
/// loses the caller's lock set, so waits are written as explicit loops
/// over guarded state (see the header comment).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex, blocks, and reacquires before
  /// returning. Spurious wakeups happen; callers loop on their predicate.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// As Wait, but gives up after `seconds`. Returns false on timeout, true
  /// on a notify (or spurious wakeup — callers loop on their predicate
  /// either way). Used by periodic background threads (metrics writer,
  /// backend prober) so shutdown can interrupt the sleep.
  bool WaitFor(MutexLock& lock, double seconds) {
    return cv_.wait_for(lock.lock_, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace resched
