// Streaming and batch statistics used by the benchmark harness to report the
// mean/standard-deviation series shown in the paper's Figures 2-5.
#pragma once

#include <cstddef>
#include <vector>

namespace resched {

/// Welford online accumulator: numerically stable mean / variance.
class RunningStat {
 public:
  void Add(double x);

  std::size_t Count() const { return n_; }
  double Mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double StdDev() const;
  double Min() const;
  double Max() const;
  double Sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch helpers over a sample vector.
double Mean(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);
/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double Percentile(std::vector<double> xs, double p);
/// Median (50th percentile).
double Median(std::vector<double> xs);

}  // namespace resched
