#include "util/io_faults.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace resched {

namespace {

/// Armed-state flag, readable without the lock: the disarmed fast path is
/// this single load. The full spec + PRNG live behind the mutex.
std::atomic<bool> g_armed{false};

struct ShimState {
  Mutex mu;
  IoFaultSpec spec RESCHED_GUARDED_BY(mu);
  Rng rng RESCHED_GUARDED_BY(mu){0};
  std::int64_t journal_bytes RESCHED_GUARDED_BY(mu) = 0;
};

ShimState& State() {
  static ShimState* state = new ShimState;  // intentionally leaked:
  // hooked syscalls may run during static destruction (journal flush from
  // a daemon exiting), so the state must outlive every other object.
  return *state;
}

void Arm(const IoFaultSpec& spec) {
  ShimState& s = State();
  MutexLock lock(s.mu);
  s.spec = spec;
  s.rng = Rng(spec.seed);
  s.journal_bytes = 0;
  g_armed.store(spec.enabled, std::memory_order_release);
}

/// Parses RESCHED_IO_FAULTS once, on the first armed-state query.
bool EnvArmed() {
  static const bool armed = [] {
    const char* env = std::getenv("RESCHED_IO_FAULTS");
    if (env == nullptr || *env == '\0') return false;
    Arm(ParseIoFaultSpec(env));
    return true;
  }();
  return armed;
}

/// Per-call fault decision for a write-like call of `count` bytes.
struct WriteVerdict {
  int fail_errno = 0;        ///< nonzero: return -1 with this errno
  std::size_t allowed = 0;   ///< bytes the real syscall may move
  std::int64_t crash_after = -1;  ///< >=0: _exit after writing this many
};

WriteVerdict DecideWrite(IoStream stream, std::size_t count) {
  ShimState& s = State();
  MutexLock lock(s.mu);
  WriteVerdict v;
  v.allowed = count;
  if (!s.spec.enabled) return v;
  if (s.spec.eintr > 0.0 && s.rng.Bernoulli(s.spec.eintr)) {
    v.fail_errno = EINTR;
    return v;
  }
  if (s.spec.eagain > 0.0 && s.rng.Bernoulli(s.spec.eagain)) {
    v.fail_errno = EAGAIN;
    return v;
  }
  if (count > 1 && s.spec.short_write > 0.0 &&
      s.rng.Bernoulli(s.spec.short_write)) {
    // Truncate to a nonzero prefix: a zero-byte "success" would loop
    // forever in callers, which real kernels do not do for write().
    v.allowed = static_cast<std::size_t>(
        s.rng.UniformInt(1, static_cast<std::int64_t>(count) - 1));
  }
  if (stream == IoStream::kJournal && s.spec.crash_at >= 0) {
    const std::int64_t remaining = s.spec.crash_at - s.journal_bytes;
    if (remaining < static_cast<std::int64_t>(v.allowed)) {
      v.crash_after = remaining < 0 ? 0 : remaining;
      v.allowed = static_cast<std::size_t>(v.crash_after);
    }
  }
  if (stream == IoStream::kJournal) {
    s.journal_bytes += static_cast<std::int64_t>(v.allowed);
  }
  return v;
}

/// Per-call fault decision for a read-like call (EINTR/EAGAIN only: short
/// reads are already the normal contract every caller handles).
int DecideReadErrno() {
  ShimState& s = State();
  MutexLock lock(s.mu);
  if (!s.spec.enabled) return 0;
  if (s.spec.eintr > 0.0 && s.rng.Bernoulli(s.spec.eintr)) return EINTR;
  if (s.spec.eagain > 0.0 && s.rng.Bernoulli(s.spec.eagain)) return EAGAIN;
  return 0;
}

/// Emulates SIGKILL between a write() and its completion: the bytes
/// already handed to the kernel survive, nothing else does. 137 is the
/// shell's encoding of SIGKILL, which lets the harness tell an injected
/// crash from an ordinary failure.
[[noreturn]] void CrashNow() { _exit(137); }

}  // namespace

IoFaultSpec ParseIoFaultSpec(std::string_view text) {
  IoFaultSpec spec;
  if (text.empty()) return spec;
  for (const std::string& item : Split(std::string(text), ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("RESCHED_IO_FAULTS: expected key=value, got '" +
                               item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") {
        spec.seed = static_cast<std::uint64_t>(std::stoull(value));
      } else if (key == "short_write") {
        spec.short_write = std::stod(value);
      } else if (key == "eintr") {
        spec.eintr = std::stod(value);
      } else if (key == "eagain") {
        spec.eagain = std::stod(value);
      } else if (key == "crash_at") {
        spec.crash_at = static_cast<std::int64_t>(std::stoll(value));
      } else {
        throw std::runtime_error("RESCHED_IO_FAULTS: unknown key '" + key +
                                 "'");
      }
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("RESCHED_IO_FAULTS: bad value for '" + key +
                               "': '" + value + "'");
    } catch (const std::out_of_range&) {
      throw std::runtime_error("RESCHED_IO_FAULTS: value out of range for '" +
                               key + "': '" + value + "'");
    }
  }
  spec.enabled = true;
  return spec;
}

namespace io_faults {

bool Enabled() {
  if (g_armed.load(std::memory_order_acquire)) return true;
  return EnvArmed() && g_armed.load(std::memory_order_acquire);
}

void InstallForTest(const IoFaultSpec& spec) { Arm(spec); }

void Reset() {
  IoFaultSpec disabled;
  Arm(disabled);
}

std::int64_t JournalBytesWritten() {
  ShimState& s = State();
  MutexLock lock(s.mu);
  return s.journal_bytes;
}

ssize_t Write(IoStream stream, int fd, const void* buf, std::size_t count) {
  if (!Enabled()) return ::write(fd, buf, count);
  const WriteVerdict v = DecideWrite(stream, count);
  if (v.fail_errno != 0) {
    errno = v.fail_errno;
    return -1;
  }
  if (v.crash_after >= 0) {
    // Flush the surviving prefix with the *real* syscall (retrying EINTR
    // so the crash point is exact), then die as SIGKILL would.
    std::size_t done = 0;
    while (done < static_cast<std::size_t>(v.crash_after)) {
      const ssize_t n = ::write(fd, static_cast<const char*>(buf) + done,
                                static_cast<std::size_t>(v.crash_after) - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // nothing more useful to do on the way down
      }
      done += static_cast<std::size_t>(n);
    }
    CrashNow();
  }
  return ::write(fd, buf, v.allowed);
}

ssize_t Read(IoStream stream, int fd, void* buf, std::size_t count) {
  (void)stream;
  if (Enabled()) {
    const int err = DecideReadErrno();
    if (err != 0) {
      errno = err;
      return -1;
    }
  }
  return ::read(fd, buf, count);
}

int Fsync(IoStream stream, int fd) {
  (void)stream;
  if (Enabled()) {
    const int err = DecideReadErrno();  // same EINTR/EAGAIN draw
    if (err == EINTR) {
      errno = EINTR;
      return -1;
    }
  }
  return ::fsync(fd);
}

ssize_t Send(int fd, const void* buf, std::size_t count, int flags) {
  if (!Enabled()) return ::send(fd, buf, count, flags);
  const WriteVerdict v = DecideWrite(IoStream::kSocket, count);
  if (v.fail_errno != 0) {
    errno = v.fail_errno;
    return -1;
  }
  return ::send(fd, buf, v.allowed, flags);
}

ssize_t Recv(int fd, void* buf, std::size_t count, int flags) {
  if (Enabled()) {
    const int err = DecideReadErrno();
    if (err != 0) {
      errno = err;
      return -1;
    }
  }
  return ::recv(fd, buf, count, flags);
}

}  // namespace io_faults
}  // namespace resched
