#include "floorplan/floorplanner.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "util/timeline.hpp"
#include "util/timer.hpp"

namespace resched {

namespace {

/// Removes placements that strictly contain another placement of the same
/// region: the contained one can always replace the container in any
/// solution, so containers are dominated for a feasibility query.
void PruneDominated(std::vector<Rect>& placements) {
  auto contains = [](const Rect& outer, const Rect& inner) {
    return outer.col0 <= inner.col0 && outer.row0 <= inner.row0 &&
           outer.col0 + outer.width >= inner.col0 + inner.width &&
           outer.row0 + outer.height >= inner.row0 + inner.height &&
           outer.Area() > inner.Area();
  };
  std::vector<Rect> kept;
  kept.reserve(placements.size());
  for (const Rect& cand : placements) {
    bool dominated = false;
    for (const Rect& other : placements) {
      if (contains(cand, other)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(cand);
  }
  placements.swap(kept);
}

class Search {
 public:
  Search(const Fabric& fabric,
         const std::vector<const PlacementSet*>& candidates,
         const FloorplanOptions& options,
         const std::vector<std::vector<std::uint32_t>>* visit_order)
      : candidates_(candidates),
        options_(options),
        visit_order_(visit_order),
        capacity_(fabric.Capacity()),
        deadline_(options.time_budget_seconds) {
    // Minimum rectangle area (in grid cells) each region can occupy — the
    // basis of the area-capacity prune that proves infeasibility quickly
    // at high utilization. Catalog entries carry it precomputed; fall back
    // to a scan for hand-built PlacementSets (tests).
    min_area_.resize(candidates_.size());
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      std::size_t best = candidates_[i]->min_area;
      if (best == 0) {
        best = fabric.Columns() * fabric.Rows();
        for (const Rect& r : candidates_[i]->rects) {
          best = std::min(best, r.Area());
        }
      }
      min_area_[i] = best;
    }
    total_cells_ = fabric.Columns() * fabric.Rows();
    mask_words_ = timeline::WordsFor(total_cells_);
    kinds_ = capacity_.size();
  }

  /// Runs the DFS; fills `solution` (indexed like candidates_) on success.
  bool Run(std::vector<Rect>& solution, bool& budget_exhausted,
           std::size_t& nodes) {
    order_.resize(candidates_.size());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    // MRV: most constrained region (fewest placements) first. Stable, so
    // the search tree is a pure function of the candidate-list sequence
    // (the canonicalization contract of the header).
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return candidates_[a]->rects.size() <
                              candidates_[b]->rects.size();
                     });
    chosen_.assign(candidates_.size(), Rect{});
    // Occupancy image per depth: row d holds the union of the masks of
    // the first d placed rectangles, so backtracking needs no undo.
    used_stack_.assign((candidates_.size() + 1) * mask_words_, 0);

    // Suffix sums of minimum areas in search order: after placing depth d
    // regions, the rest need at least suffix_min_area_[d] free cells.
    suffix_min_area_.assign(order_.size() + 1, 0);
    for (std::size_t d = order_.size(); d-- > 0;) {
      suffix_min_area_[d] = suffix_min_area_[d + 1] + min_area_[order_[d]];
    }
    if (suffix_min_area_[0] > total_cells_) {
      budget_exhausted = false;  // proven infeasible, not a budget stop
      nodes = 0;
      return false;
    }

    // Per-kind analogue over the candidates' minimum resource footprints.
    // Each rectangle consumes at least min_res of its region (a footprint
    // always covers the requirement), and rectangles never overlap, so
    // consumption is additive per kind — a suffix that exceeds capacity
    // in any kind is a certain "no". Strictly stronger than the aggregate
    // requirement pre-check because min footprints exceed requirements.
    const bool have_min_res = HaveMinRes();
    if (have_min_res) {
      suffix_min_res_.assign((order_.size() + 1) * kinds_, 0);
      for (std::size_t d = order_.size(); d-- > 0;) {
        const ResourceVec& mr = candidates_[order_[d]]->min_res;
        for (std::size_t k = 0; k < kinds_; ++k) {
          suffix_min_res_[d * kinds_ + k] =
              suffix_min_res_[(d + 1) * kinds_ + k] + mr[k];
        }
      }
      for (std::size_t k = 0; k < kinds_; ++k) {
        if (suffix_min_res_[k] > capacity_[k]) {
          budget_exhausted = false;  // proven infeasible at the root
          nodes = 0;
          return false;
        }
      }
      consumed_stack_.assign((order_.size() + 1) * kinds_, 0);
    }

    const bool ok = Dfs(0, /*used_cells=*/0);
    budget_exhausted = budget_exhausted_;
    nodes = nodes_;
    if (ok) solution = chosen_;
    return ok;
  }

 private:
  /// Whether every candidate set carries per-rect resource footprints
  /// (catalog-built sets do; hand-built test sets may not).
  bool HaveMinRes() const {
    for (const PlacementSet* set : candidates_) {
      if (set->rect_res.size() != set->rects.size()) return false;
    }
    return !candidates_.empty();
  }

  bool Dfs(std::size_t depth, std::size_t used_cells) {
    if (depth == order_.size()) return true;
    if (budget_exhausted_) return false;
    const std::size_t region = order_[depth];
    const PlacementSet& set = *candidates_[region];
    const std::uint64_t* used = used_stack_.data() + depth * mask_words_;
    std::uint64_t* next = used_stack_.data() + (depth + 1) * mask_words_;
    const bool res_prune = !suffix_min_res_.empty();
    const std::int64_t* consumed =
        res_prune ? consumed_stack_.data() + depth * kinds_ : nullptr;
    const std::vector<std::uint32_t>* perm =
        visit_order_ ? &(*visit_order_)[region] : nullptr;
    for (std::size_t j = 0; j < set.rects.size(); ++j) {
      const std::size_t k = perm ? (*perm)[j] : j;
      const Rect& rect = set.rects[k];
      if (++nodes_ % 1024 == 0) {
        if ((options_.max_nodes != 0 && nodes_ >= options_.max_nodes) ||
            deadline_.Expired()) {
          budget_exhausted_ = true;
          return false;
        }
      }
      // Area-capacity prune: the cells this rectangle takes plus the
      // minimum possible footprint of every remaining region must fit in
      // the fabric. (Rectangles never overlap, so cell usage is additive.)
      if (used_cells + rect.Area() + suffix_min_area_[depth + 1] >
          total_cells_) {
        continue;
      }
      // Per-kind capacity prune: consumption is additive per kind (no
      // overlap), and every remaining region needs at least its min_res.
      if (res_prune) {
        const ResourceVec& rr = set.rect_res[k];
        const std::int64_t* suffix =
            suffix_min_res_.data() + (depth + 1) * kinds_;
        bool over = false;
        for (std::size_t kk = 0; kk < kinds_; ++kk) {
          if (consumed[kk] + rr[kk] + suffix[kk] > capacity_[kk]) {
            over = true;
            break;
          }
        }
        if (over) continue;
      }
      // Exact clash test: grid-aligned rectangles overlap iff they share
      // a cell, so one word-AND against the accumulated occupancy image
      // replaces the Rect::Overlaps loop over every placed region.
      const std::uint64_t* mask = set.masks.data() + k * mask_words_;
      if (timeline::AnyIntersect(mask, used, mask_words_)) continue;
      timeline::OrImage(next, used, mask, mask_words_);
      // Union-mask prune: a remaining region whose candidate-cell union
      // retains fewer free cells than its minimum footprint has no live
      // candidate left — this subtree is barren, skip it. (Sound and
      // order-preserving: only subtrees with no full assignment are cut.)
      bool barren = false;
      for (std::size_t d2 = depth + 1; d2 < order_.size() && !barren; ++d2) {
        const PlacementSet& rest = *candidates_[order_[d2]];
        if (rest.union_mask.size() != mask_words_) continue;
        std::size_t free_cells = 0;
        for (std::size_t w = 0; w < mask_words_; ++w) {
          free_cells += static_cast<std::size_t>(
              std::popcount(rest.union_mask[w] & ~next[w]));
        }
        barren = free_cells < min_area_[order_[d2]];
      }
      if (barren) continue;
      chosen_[region] = rect;
      if (res_prune) {
        const ResourceVec& rr = set.rect_res[k];
        std::int64_t* next_consumed =
            consumed_stack_.data() + (depth + 1) * kinds_;
        for (std::size_t kk = 0; kk < kinds_; ++kk) {
          next_consumed[kk] = consumed[kk] + rr[kk];
        }
      }
      if (Dfs(depth + 1, used_cells + rect.Area())) return true;
      if (budget_exhausted_) return false;
    }
    return false;
  }

  const std::vector<const PlacementSet*>& candidates_;
  const FloorplanOptions& options_;
  const std::vector<std::vector<std::uint32_t>>* visit_order_;
  ResourceVec capacity_;
  Deadline deadline_;
  std::vector<std::size_t> order_;
  std::vector<Rect> chosen_;
  std::vector<std::size_t> min_area_;
  std::vector<std::size_t> suffix_min_area_;
  std::vector<std::int64_t> suffix_min_res_;
  std::vector<std::int64_t> consumed_stack_;
  std::vector<std::uint64_t> used_stack_;
  std::size_t total_cells_ = 0;
  std::size_t mask_words_ = 0;
  std::size_t kinds_ = 0;
  std::size_t nodes_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

std::vector<std::size_t> CanonicalRegionOrder(
    const std::vector<ResourceVec>& regions) {
  std::vector<std::size_t> order(regions.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return LexicographicallyBefore(regions[a], regions[b]);
                   });
  return order;
}

std::vector<Rect> EnumeratePrunedPlacements(const Fabric& fabric,
                                            const ResourceVec& req,
                                            std::size_t max_placements) {
  std::vector<Rect> placements =
      EnumerateFeasiblePlacements(fabric, req, max_placements);
  PruneDominated(placements);
  return placements;
}

PlacementSet BuildPlacementSet(const Fabric& fabric, std::vector<Rect> rects) {
  PlacementSet set;
  const std::size_t cols = fabric.Columns();
  set.mask_words = timeline::WordsFor(cols * fabric.Rows());
  set.rects = std::move(rects);
  set.masks.assign(set.rects.size() * set.mask_words, 0);
  set.union_mask.assign(set.mask_words, 0);
  set.rect_res.reserve(set.rects.size());
  set.min_area = cols * fabric.Rows();
  set.min_res = fabric.Capacity();
  for (std::size_t k = 0; k < set.rects.size(); ++k) {
    const Rect& r = set.rects[k];
    std::uint64_t* mask = set.masks.data() + k * set.mask_words;
    for (std::size_t row = r.row0; row < r.row0 + r.height; ++row) {
      const std::size_t base = row * cols + r.col0;
      timeline::RangeSet(mask, base, base + r.width);
    }
    timeline::OrInto(set.union_mask.data(), mask, set.mask_words);
    const ResourceVec res = fabric.RectResources(r.col0, r.width, r.height);
    for (std::size_t kind = 0; kind < set.min_res.size(); ++kind) {
      set.min_res[kind] = std::min(set.min_res[kind], res[kind]);
    }
    set.rect_res.push_back(res);
    set.min_area = std::min(set.min_area, r.Area());
  }
  if (set.rects.empty()) {
    set.min_res = fabric.Model().ZeroVec();
    set.min_area = 0;
  }
  return set;
}

PlacementSet EnumeratePrunedPlacementSet(const Fabric& fabric,
                                         const ResourceVec& req,
                                         std::size_t max_placements) {
  return BuildPlacementSet(
      fabric, EnumeratePrunedPlacements(fabric, req, max_placements));
}

FloorplanResult SolveFloorplanFeasibility(
    const Fabric& fabric, const std::vector<const PlacementSet*>& candidates,
    const FloorplanOptions& options,
    const std::vector<std::vector<std::uint32_t>>* visit_order) {
  FloorplanResult result;
  Search search(fabric, candidates, options, visit_order);
  std::vector<Rect> solution;
  const bool ok =
      search.Run(solution, result.budget_exhausted, result.nodes_explored);
  result.feasible = ok;
  if (ok) result.rects = std::move(solution);
  return result;
}

FloorplanResult FindFloorplan(const FpgaDevice& device,
                              const std::vector<ResourceVec>& regions,
                              const FloorplanOptions& options) {
  WallTimer timer;
  FloorplanResult result;
  if (regions.empty()) {
    result.feasible = true;
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  const Fabric fabric(device);

  // Aggregate-capacity pre-check: cheap certain "no".
  ResourceVec total = device.Model().ZeroVec();
  for (const ResourceVec& r : regions) total += r;
  if (!total.FitsWithin(fabric.Capacity())) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  // Canonical order: the search result becomes a pure function of the
  // requirement multiset, so cached answers can be replayed bit-for-bit
  // against any permutation of the same regions.
  const std::vector<std::size_t> order = CanonicalRegionOrder(regions);

  std::vector<PlacementSet> owned;
  owned.reserve(regions.size());
  for (const std::size_t i : order) {
    PlacementSet placements = EnumeratePrunedPlacementSet(
        fabric, regions[i], options.max_placements_per_region);
    if (placements.rects.empty()) {
      result.seconds = timer.ElapsedSeconds();
      return result;  // some region fits nowhere: certain "no"
    }
    owned.push_back(std::move(placements));
  }
  std::vector<const PlacementSet*> candidates;
  candidates.reserve(owned.size());
  for (const PlacementSet& c : owned) candidates.push_back(&c);

  FloorplanResult canonical =
      SolveFloorplanFeasibility(fabric, candidates, options);
  result.feasible = canonical.feasible;
  result.budget_exhausted = canonical.budget_exhausted;
  result.nodes_explored = canonical.nodes_explored;
  if (canonical.feasible) {
    result.rects.resize(regions.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      result.rects[order[k]] = canonical.rects[k];
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

namespace {

/// Branch-and-bound minimizing total occupied cells. Reuses the candidate
/// enumeration of the feasibility search; candidates are visited smallest
/// first so the first full assignment is already good and the suffix
/// min-area bound prunes aggressively.
class CompactSearch {
 public:
  CompactSearch(std::vector<std::vector<Rect>> candidates,
                const FloorplanOptions& options)
      : candidates_(std::move(candidates)),
        options_(options),
        deadline_(options.time_budget_seconds) {
    for (auto& c : candidates_) {
      std::sort(c.begin(), c.end(), [](const Rect& a, const Rect& b) {
        return a.Area() < b.Area();
      });
    }
    order_.resize(candidates_.size());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    std::sort(order_.begin(), order_.end(), [&](std::size_t a,
                                                std::size_t b) {
      return candidates_[a].size() < candidates_[b].size();
    });
    suffix_min_area_.assign(order_.size() + 1, 0);
    for (std::size_t d = order_.size(); d-- > 0;) {
      std::size_t min_area = SIZE_MAX;
      for (const Rect& r : candidates_[order_[d]]) {
        min_area = std::min(min_area, r.Area());
      }
      suffix_min_area_[d] = suffix_min_area_[d + 1] + min_area;
    }
    chosen_.assign(candidates_.size(), Rect{});
  }

  bool Run(std::vector<Rect>& solution, std::size_t& cells,
           bool& budget_exhausted, std::size_t& nodes) {
    Dfs(0, 0);
    budget_exhausted = budget_exhausted_;
    nodes = nodes_;
    if (best_cells_ == SIZE_MAX) return false;
    solution = best_;
    cells = best_cells_;
    return true;
  }

 private:
  void Dfs(std::size_t depth, std::size_t used_cells) {
    if (depth == order_.size()) {
      if (used_cells < best_cells_) {
        best_cells_ = used_cells;
        best_ = chosen_;
      }
      return;
    }
    if (budget_exhausted_) return;
    const std::size_t region = order_[depth];
    for (const Rect& rect : candidates_[region]) {
      if (++nodes_ % 1024 == 0) {
        if ((options_.max_nodes != 0 && nodes_ >= options_.max_nodes) ||
            deadline_.Expired()) {
          budget_exhausted_ = true;
          return;
        }
      }
      const std::size_t lower =
          used_cells + rect.Area() + suffix_min_area_[depth + 1];
      if (lower >= best_cells_) {
        // Candidates are area-sorted: every later one is at least as big.
        break;
      }
      bool clash = false;
      for (std::size_t d = 0; d < depth; ++d) {
        if (rect.Overlaps(chosen_[order_[d]])) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      chosen_[region] = rect;
      Dfs(depth + 1, used_cells + rect.Area());
      if (budget_exhausted_) return;
    }
  }

  std::vector<std::vector<Rect>> candidates_;
  const FloorplanOptions& options_;
  Deadline deadline_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> suffix_min_area_;
  std::vector<Rect> chosen_;
  std::vector<Rect> best_;
  std::size_t best_cells_ = SIZE_MAX;
  std::size_t nodes_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

CompactFloorplanResult FindCompactFloorplan(
    const FpgaDevice& device, const std::vector<ResourceVec>& regions,
    const FloorplanOptions& options) {
  WallTimer timer;
  CompactFloorplanResult result;
  if (regions.empty()) {
    result.feasible = true;
    result.seconds = timer.ElapsedSeconds();
    return result;
  }
  const Fabric fabric(device);
  ResourceVec total = device.Model().ZeroVec();
  for (const ResourceVec& r : regions) total += r;
  if (!total.FitsWithin(fabric.Capacity())) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }
  std::vector<std::vector<Rect>> candidates;
  for (const ResourceVec& req : regions) {
    std::vector<Rect> placements = EnumeratePrunedPlacements(
        fabric, req, options.max_placements_per_region);
    if (placements.empty()) {
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    candidates.push_back(std::move(placements));
  }
  CompactSearch search(std::move(candidates), options);
  std::vector<Rect> solution;
  result.feasible = search.Run(solution, result.occupied_cells,
                               result.budget_exhausted,
                               result.nodes_explored);
  if (result.feasible) result.rects = std::move(solution);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

bool IsValidFloorplan(const FpgaDevice& device,
                      const std::vector<ResourceVec>& regions,
                      const std::vector<Rect>& rects) {
  if (regions.size() != rects.size()) return false;
  const Fabric fabric(device);
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const Rect& r = rects[i];
    if (r.width == 0 || r.height == 0) return false;
    if (r.col0 + r.width > fabric.Columns()) return false;
    if (r.row0 + r.height > fabric.Rows()) return false;
    if (!regions[i].FitsWithin(
            fabric.RectResources(r.col0, r.width, r.height))) {
      return false;
    }
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      if (r.Overlaps(rects[j])) return false;
    }
  }
  return true;
}

}  // namespace resched
