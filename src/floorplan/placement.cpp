#include "floorplan/placement.hpp"

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace resched {

std::string Rect::ToString() const {
  return StrFormat("[c%zu..%zu, r%zu..%zu]", col0, col0 + width - 1, row0,
                   row0 + height - 1);
}

std::vector<Rect> EnumerateFeasiblePlacements(const Fabric& fabric,
                                              const ResourceVec& req,
                                              std::size_t max_placements) {
  std::vector<Rect> out;
  const std::size_t cols = fabric.Columns();
  const std::size_t rows = fabric.Rows();

  for (std::size_t h = 1; h <= rows; ++h) {
    // For fixed height, the per-row requirement is ceil(req / h) in the
    // monotone sense: a width is feasible iff h * RowSlice >= req. Slide a
    // two-pointer window: as col0 advances the minimal feasible width is
    // non-decreasing in end position, since dropping a column never adds
    // resources.
    std::size_t end = 0;  // exclusive end column of the current window
    for (std::size_t col0 = 0; col0 < cols; ++col0) {
      if (end < col0) end = col0;
      bool feasible = false;
      while (end <= cols) {
        if (end > col0 &&
            req.FitsWithin(fabric.RectResources(col0, end - col0, h))) {
          feasible = true;
          break;
        }
        if (end == cols) break;
        ++end;
      }
      if (!feasible) break;  // no wider window will help for larger col0
      const std::size_t width = end - col0;
      // Floorplan feasibility invariants: every emitted placement must lie
      // inside the fabric and actually satisfy the requirement it was
      // enumerated for (the two-pointer window must never under-approximate).
      RESCHED_DCHECK_MSG(col0 + width <= cols,
                         "placement extends past the fabric columns");
      RESCHED_DCHECK_MSG(
          req.FitsWithin(fabric.RectResources(col0, width, h)),
          "enumerated placement does not satisfy the requirement");
      for (std::size_t row0 = 0; row0 + h <= rows; ++row0) {
        RESCHED_DCHECK_MSG(row0 + h <= rows,
                           "placement extends past the fabric rows");
        // Enumeration is memoized per requirement (FloorplanCache), so
        // this append sits off the restart hot path.
        out.push_back(  // resched-lint: allow(reserve-before-push-hot)
            Rect{col0, row0, width, h});
        if (max_placements != 0 && out.size() >= max_placements) return out;
      }
    }
  }
  return out;
}

}  // namespace resched
