#include "floorplan/fabric.hpp"

namespace resched {

Fabric::Fabric(const FpgaDevice& device)
    : model_(device.Model()),
      rows_(device.Geometry().rows),
      num_columns_(device.Geometry().NumColumns()),
      capacity_(device.Capacity()) {
  const std::size_t kinds = model_.NumKinds();
  prefix_.assign(kinds, std::vector<std::int64_t>(num_columns_ + 1, 0));
  for (std::size_t c = 0; c < num_columns_; ++c) {
    const ColumnSpec& col = device.Geometry().columns[c];
    for (std::size_t k = 0; k < kinds; ++k) {
      prefix_[k][c + 1] =
          prefix_[k][c] + (col.kind == k ? col.units_per_cell : 0);
    }
  }
}

ResourceVec Fabric::RowSlice(std::size_t col0, std::size_t width) const {
  RESCHED_CHECK_MSG(col0 + width <= num_columns_, "column range out of fabric");
  ResourceVec out(model_.NumKinds());
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = prefix_[k][col0 + width] - prefix_[k][col0];
  }
  return out;
}

ResourceVec Fabric::RectResources(std::size_t col0, std::size_t width,
                                  std::size_t height) const {
  RESCHED_CHECK_MSG(height <= rows_, "rect taller than fabric");
  ResourceVec out = RowSlice(col0, width);
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] *= static_cast<std::int64_t>(height);
  }
  return out;
}

}  // namespace resched
