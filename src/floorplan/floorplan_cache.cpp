#include "floorplan/floorplan_cache.hpp"

#include <algorithm>
#include <numeric>

#include "util/timer.hpp"

namespace resched {

namespace {

/// FNV-1a-style running hash over 64-bit lanes; the memo map applies its
/// own splitmix finalizer, so plain mixing is enough here.
std::uint64_t HashLane(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001B3ULL;
  return h;
}

std::uint64_t HashResourceVec(std::uint64_t h, const ResourceVec& r) {
  h = HashLane(h, r.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    h = HashLane(h, static_cast<std::uint64_t>(r[i]));
  }
  return h;
}

}  // namespace

std::uint64_t FloorplanOrderingModel::ReqHash(const ResourceVec& req) {
  return HashResourceVec(0xCBF29CE484222325ULL, req);
}

std::uint64_t FloorplanCache::CatalogKeyHash::operator()(
    const CatalogKey& k) const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = HashResourceVec(h, k.req);
  h = HashLane(h, k.max_placements);
  return h;
}

bool FloorplanCache::CatalogKeyEq::operator()(const CatalogKey& a,
                                              const CatalogKey& b) const {
  return a.max_placements == b.max_placements && a.req == b.req;
}

std::uint64_t FloorplanCache::VerdictKeyHash::operator()(
    const VerdictKey& k) const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = HashLane(h, k.canonical.size());
  for (const ResourceVec& r : k.canonical) h = HashResourceVec(h, r);
  h = HashLane(h, k.max_placements);
  h = HashLane(h, k.value_order);
  return h;
}

bool FloorplanCache::VerdictKeyEq::operator()(const VerdictKey& a,
                                              const VerdictKey& b) const {
  return a.max_placements == b.max_placements &&
         a.value_order == b.value_order && a.canonical == b.canonical;
}

FloorplanCache::FloorplanCache(const FpgaDevice& device,
                               std::size_t verdict_capacity,
                               std::size_t catalog_capacity)
    : fabric_(device),
      catalog_(catalog_capacity),
      verdicts_(verdict_capacity) {}

std::shared_ptr<const PlacementSet> FloorplanCache::Placements(
    const ResourceVec& req, std::size_t max_placements) {
  const CatalogKey key{req, max_placements};
  if (auto cached = catalog_.Find(key)) return cached;
  return catalog_.Insert(
      key, EnumeratePrunedPlacementSet(fabric_, req, max_placements));
}

bool FloorplanCache::Reusable(const Verdict& v,
                              const FloorplanOptions& options) {
  if (v.budget_exhausted) {
    // Only an equal-or-smaller node budget is guaranteed to exhaust too.
    // max_nodes == 0 means the recorded stop was wall-clock-triggered:
    // machine-dependent, never replayed.
    return v.max_nodes != 0 && options.max_nodes != 0 &&
           options.max_nodes <= v.max_nodes;
  }
  // Proven verdict: replay unless the query's node budget could have
  // interrupted the recorded solve before it finished.
  return options.max_nodes == 0 || options.max_nodes > v.nodes;
}

FloorplanResult FloorplanCache::Query(const std::vector<ResourceVec>& regions,
                                      const FloorplanOptions& options) {
  WallTimer timer;
  FloorplanResult result;
  if (regions.empty()) {
    result.feasible = true;
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  // Mirror FindFloorplan's cheap certain "no" before touching the memos.
  ResourceVec total = fabric_.Model().ZeroVec();
  for (const ResourceVec& r : regions) total += r;
  if (!total.FitsWithin(fabric_.Capacity())) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  const std::vector<std::size_t> order = CanonicalRegionOrder(regions);
  VerdictKey key;
  key.max_placements = options.max_placements_per_region;
  key.value_order = static_cast<std::uint8_t>(options.value_order);
  key.canonical.reserve(regions.size());
  for (const std::size_t i : order) key.canonical.push_back(regions[i]);

  if (auto cached = verdicts_.Find(key); cached && Reusable(*cached, options)) {
    result.feasible = cached->feasible;
    result.budget_exhausted = cached->budget_exhausted;
    result.nodes_explored = cached->nodes;
    if (cached->feasible) {
      result.rects.resize(regions.size());
      for (std::size_t k = 0; k < order.size(); ++k) {
        result.rects[order[k]] = cached->rects[k];
      }
    }
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  // Full solve over the memoized catalogs, in canonical order (the same
  // sequence FindFloorplan would build). The canonical list is sorted, so
  // equal requirements sit adjacent: one catalog probe (one shard lock +
  // hash) answers the whole run of duplicates — the batched-probe pass.
  std::vector<std::shared_ptr<const PlacementSet>> owned;
  owned.reserve(regions.size());
  std::vector<const PlacementSet*> candidates;
  candidates.reserve(regions.size());
  bool some_region_unplaceable = false;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const ResourceVec& req = key.canonical[k];
    if (k > 0 && req == key.canonical[k - 1]) {
      owned.push_back(owned.back());  // duplicate: reuse the last probe
    } else {
      owned.push_back(Placements(req, options.max_placements_per_region));
    }
    if (owned.back()->rects.empty()) {
      some_region_unplaceable = true;
      break;
    }
    candidates.push_back(owned.back().get());
  }

  Verdict verdict;
  verdict.max_nodes = options.max_nodes;
  if (!some_region_unplaceable) {
    // Learned value ordering: visit each region's candidates by the win
    // history of its (requirement, band) buckets, most-successful band
    // first, ties broken by enumeration order (stable sort over iota).
    std::vector<std::vector<std::uint32_t>> visit;
    const bool learned = options.value_order == FpValueOrder::kLearned;
    if (learned) {
      const std::size_t columns = fabric_.Columns();
      visit.resize(candidates.size());
      std::vector<std::uint64_t> wins;
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        const PlacementSet& set = *candidates[k];
        const std::uint64_t req_hash =
            FloorplanOrderingModel::ReqHash(key.canonical[k]);
        wins.resize(set.rects.size());
        for (std::size_t j = 0; j < set.rects.size(); ++j) {
          wins[j] = ordering_.Wins(
              req_hash,
              FloorplanOrderingModel::BandOf(set.rects[j].col0, columns));
        }
        visit[k].resize(set.rects.size());
        std::iota(visit[k].begin(), visit[k].end(), std::uint32_t{0});
        std::stable_sort(visit[k].begin(), visit[k].end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                           return wins[a] > wins[b];
                         });
      }
    }
    FloorplanResult solved = SolveFloorplanFeasibility(
        fabric_, candidates, options, learned ? &visit : nullptr);
    solve_nodes_.fetch_add(solved.nodes_explored, std::memory_order_relaxed);
    verdict.feasible = solved.feasible;
    verdict.budget_exhausted = solved.budget_exhausted;
    verdict.nodes = solved.nodes_explored;
    if (solved.feasible) {
      // Feed the ordering statistics: one win per placed region in the
      // band its rectangle landed in (recorded under every FpValueOrder —
      // see OrderingModel()).
      const std::size_t columns = fabric_.Columns();
      for (std::size_t k = 0; k < order.size(); ++k) {
        ordering_.RecordWin(
            FloorplanOrderingModel::ReqHash(key.canonical[k]),
            FloorplanOrderingModel::BandOf(solved.rects[k].col0, columns));
      }
      verdict.rects = std::move(solved.rects);
    }
  }
  // else: proven infeasible with zero search (defaults already say so).

  result.feasible = verdict.feasible;
  result.budget_exhausted = verdict.budget_exhausted;
  result.nodes_explored = verdict.nodes;
  if (verdict.feasible) {
    result.rects.resize(regions.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      result.rects[order[k]] = verdict.rects[k];
    }
  }
  // A wall-clock-triggered exhaustion is machine state, not a function of
  // the query — don't let it shadow a future, possibly-complete solve.
  if (!(verdict.budget_exhausted && verdict.max_nodes == 0)) {
    verdicts_.Insert(key, std::move(verdict));
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

FloorplanCacheStats FloorplanCache::Stats() const {
  FloorplanCacheStats s;
  const auto v = verdicts_.Snapshot();
  const auto c = catalog_.Snapshot();
  s.queries = v.hits + v.misses;
  s.hits = v.hits;
  s.misses = v.misses;
  s.evictions = v.evictions + c.evictions;
  s.catalog_hits = c.hits;
  s.catalog_misses = c.misses;
  s.solve_nodes = solve_nodes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace resched
