// Query-friendly view of an FPGA fabric for floorplanning.
//
// The fabric is a grid of heterogeneous columns x clock-region rows (see
// arch/device.hpp). Because every row of a column contributes the same
// resources, the resources of any axis-aligned rectangle are
//   height * sum_{c in [col0, col0+width)} units(c)
// which this class answers in O(#kinds) via per-kind column prefix sums.
#pragma once

#include "arch/device.hpp"

namespace resched {

class Fabric {
 public:
  explicit Fabric(const FpgaDevice& device);

  std::size_t Rows() const { return rows_; }
  std::size_t Columns() const { return num_columns_; }
  const ResourceModel& Model() const { return model_; }

  /// Resources contributed by columns [col0, col0 + width) in ONE row.
  ResourceVec RowSlice(std::size_t col0, std::size_t width) const;

  /// Resources of the rectangle spanning `width` columns and `height` rows.
  ResourceVec RectResources(std::size_t col0, std::size_t width,
                            std::size_t height) const;

  /// Whole-fabric capacity.
  const ResourceVec& Capacity() const { return capacity_; }

 private:
  // Owned copy: Fabric outlives any (possibly temporary) device it was
  // built from.
  ResourceModel model_;
  std::size_t rows_ = 0;
  std::size_t num_columns_ = 0;
  // prefix_[k][c] = units of kind k in columns [0, c)
  std::vector<std::vector<std::int64_t>> prefix_;
  ResourceVec capacity_;
};

}  // namespace resched
