// Feasible-placement enumeration — the core idea of the floorplanning
// approach of Rabozzi et al. (FCCM'15) that the paper invokes for its
// feasibility check: for every reconfigurable region, enumerate the
// axis-aligned rectangles of the fabric that satisfy its resource
// requirements, then search for a pairwise non-overlapping selection.
#pragma once

#include <string>
#include <vector>

#include "floorplan/fabric.hpp"

namespace resched {

/// Axis-aligned rectangle on the fabric grid. `col0/row0` are inclusive
/// origins; `width/height` are in columns/clock-region rows.
struct Rect {
  std::size_t col0 = 0;
  std::size_t row0 = 0;
  std::size_t width = 0;
  std::size_t height = 0;

  bool Overlaps(const Rect& o) const {
    return col0 < o.col0 + o.width && o.col0 < col0 + width &&
           row0 < o.row0 + o.height && o.row0 < row0 + height;
  }

  std::size_t Area() const { return width * height; }
  std::string ToString() const;
};

/// All *minimal* feasible placements for requirement `req`: for every
/// height h (1..rows), row origin and column origin, the narrowest
/// rectangle starting there that satisfies req (wider rectangles are
/// dominated: any solution using one can shrink it without creating
/// overlap). Results are capped at `max_placements` (0 = unlimited).
std::vector<Rect> EnumerateFeasiblePlacements(const Fabric& fabric,
                                              const ResourceVec& req,
                                              std::size_t max_placements = 0);

}  // namespace resched
