// Floorplan feasibility search (§V-H).
//
// Given the reconfigurable regions produced by the scheduler (their resource
// requirement vectors), decide whether they admit a placement of pairwise
// non-overlapping rectangles on the device fabric. The paper delegates this
// to the MILP floorplanner of [Rabozzi FCCM'15] with no objective function —
// a pure feasibility query. We answer the same query with a complete
// backtracking search over the enumerated minimal feasible placements:
// regions are ordered fewest-candidates-first (MRV) and the search prunes on
// per-kind remaining capacity. A node/time budget bounds the worst case, in
// which case the result is reported as "not found" (matching how a
// time-limited MILP behaves).
//
// Canonicalization contract: FindFloorplan internally reorders the regions
// into the canonical order of CanonicalRegionOrder() before searching and
// maps the rectangles back, so the result is a pure function of the region
// requirement *multiset* (plus the budget options). That property is what
// lets FloorplanCache serve permuted queries from one entry bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "floorplan/placement.hpp"

namespace resched {

/// Candidate visit order inside the floorplan DFS. kEnumeration walks the
/// pruned placement list in enumeration order (the historical behaviour
/// and the default). kLearned reorders each region's candidates by the
/// historical success rate of its (requirement, fabric-band) bucket as
/// collected by FloorplanCache, with a stable tie-break back to
/// enumeration order — deterministic for a single-threaded driver, but
/// cross-run stats accumulation means two concurrent runs may diverge in
/// *which* feasible floorplan they find (never in feasibility itself).
enum class FpValueOrder : std::uint8_t { kEnumeration, kLearned };

struct FloorplanOptions {
  /// Wall-clock budget for one feasibility query; <= 0 disables.
  double time_budget_seconds = 1.0;
  /// Backtracking node budget; 0 disables.
  std::size_t max_nodes = 2'000'000;
  /// Cap on enumerated placements per region (0 = unlimited).
  std::size_t max_placements_per_region = 4096;
  /// DFS candidate visit order (see FpValueOrder).
  FpValueOrder value_order = FpValueOrder::kEnumeration;
};

struct FloorplanResult {
  bool feasible = false;
  /// True when the search exhausted its node/time budget before proving
  /// either feasibility or infeasibility.
  bool budget_exhausted = false;
  /// One rectangle per region (same order as the query) when feasible.
  std::vector<Rect> rects;
  std::size_t nodes_explored = 0;
  double seconds = 0.0;
};

/// Hit/miss/eviction counters of a FloorplanCache (snapshot; see
/// floorplan/floorplan_cache.hpp). Lives here so Schedule/PaRResult can
/// embed it without pulling in the cache itself.
struct FloorplanCacheStats {
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t catalog_hits = 0;
  std::uint64_t catalog_misses = 0;
  /// DFS nodes explored by cache-miss solves (budget-bounded work the
  /// cache could not avoid) — the denominator the value-ordering ablation
  /// reports against.
  std::uint64_t solve_nodes = 0;

  double HitRate() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(queries);
  }

  /// Counter delta since an `earlier` snapshot of the same cache — how a
  /// driver attributes activity on a shared cache to one schedule.
  FloorplanCacheStats Since(const FloorplanCacheStats& earlier) const {
    FloorplanCacheStats d;
    d.queries = queries - earlier.queries;
    d.hits = hits - earlier.hits;
    d.misses = misses - earlier.misses;
    d.evictions = evictions - earlier.evictions;
    d.catalog_hits = catalog_hits - earlier.catalog_hits;
    d.catalog_misses = catalog_misses - earlier.catalog_misses;
    d.solve_nodes = solve_nodes - earlier.solve_nodes;
    return d;
  }
};

/// Searches for a feasible floorplan of `regions` on `device`'s fabric.
FloorplanResult FindFloorplan(const FpgaDevice& device,
                              const std::vector<ResourceVec>& regions,
                              const FloorplanOptions& options = {});

/// Canonical processing order of a region-requirement list: indices of
/// `regions` stably sorted by LexicographicallyBefore. Two permutations of
/// the same multiset map to the same canonical sequence.
std::vector<std::size_t> CanonicalRegionOrder(
    const std::vector<ResourceVec>& regions);

/// Candidate enumeration + dominance pruning for one requirement — the
/// unit the PlacementCatalog memoizes.
std::vector<Rect> EnumeratePrunedPlacements(const Fabric& fabric,
                                            const ResourceVec& req,
                                            std::size_t max_placements);

/// A candidate list plus the word-packed cell-occupancy mask of every
/// rectangle (bit row * Columns() + col of `masks[k * mask_words ..]` for
/// rect k). The DFS clash test is then one AND over <= mask_words words
/// instead of a Rect::Overlaps loop over all placed rectangles; grid
/// rectangles overlap iff they share a cell, so the test is exact. Masks
/// are built once per catalog entry and shared by every query.
struct PlacementSet {
  std::vector<Rect> rects;
  std::vector<std::uint64_t> masks;
  std::size_t mask_words = 0;
  /// Per-rect resource footprint (`rect_res[k]` for rects[k]) — what the
  /// rectangle actually consumes of each fabric resource kind, always
  /// componentwise >= the region requirement it was enumerated for.
  std::vector<ResourceVec> rect_res;
  /// Componentwise minimum of rect_res over all candidates: the least any
  /// placement of this region can consume per kind. Basis of the DFS
  /// per-kind capacity suffix prune.
  ResourceVec min_res;
  /// OR of all candidate masks (mask_words words): every fabric cell this
  /// region could possibly occupy. If fewer than `min_area` of those cells
  /// remain free, no candidate of this region can be placed.
  std::vector<std::uint64_t> union_mask;
  /// Minimum rectangle area over all candidates, in grid cells.
  std::size_t min_area = 0;
};

/// Computes the occupancy masks for `rects` on `fabric`.
PlacementSet BuildPlacementSet(const Fabric& fabric, std::vector<Rect> rects);

/// EnumeratePrunedPlacements + BuildPlacementSet in one call.
PlacementSet EnumeratePrunedPlacementSet(const Fabric& fabric,
                                         const ResourceVec& req,
                                         std::size_t max_placements);

/// Backtracking engine under FindFloorplan and FloorplanCache: solves the
/// pairwise non-overlap selection over externally owned per-region
/// candidate lists (one pointer per region, all non-null and non-empty,
/// with masks built on `fabric`). `result.rects` is indexed like
/// `candidates`. Deterministic: depends only on the candidate lists,
/// their order, `visit_order` and the budget options — not on wall-clock
/// time unless the time budget fires.
///
/// `visit_order`, when non-null, holds one permutation of [0, rects.size())
/// per region (indexed like `candidates`): the DFS visits region i's
/// candidates in that order instead of enumeration order. This is how
/// FpValueOrder::kLearned is injected; nullptr means enumeration order.
FloorplanResult SolveFloorplanFeasibility(
    const Fabric& fabric,
    const std::vector<const PlacementSet*>& candidates,
    const FloorplanOptions& options,
    const std::vector<std::vector<std::uint32_t>>* visit_order = nullptr);

/// Optimizing variant: among floorplans found within the budget, keeps the
/// one occupying the fewest grid cells (the compactness objective of the
/// original MILP floorplanner — less footprint leaves more static logic
/// room and shrinks partial bitstreams in practice). `feasible` is set as
/// for FindFloorplan; `budget_exhausted` means the returned plan may not
/// be the global optimum. Total-cell count of the result is reported in
/// `nodes_explored`-independent field `occupied_cells`.
struct CompactFloorplanResult : FloorplanResult {
  std::size_t occupied_cells = 0;
};
CompactFloorplanResult FindCompactFloorplan(
    const FpgaDevice& device, const std::vector<ResourceVec>& regions,
    const FloorplanOptions& options = {});

/// Checks that `rects` is a valid floorplan for `regions` (non-overlap,
/// inside the fabric, resource-sufficient). Used by the validator and tests.
bool IsValidFloorplan(const FpgaDevice& device,
                      const std::vector<ResourceVec>& regions,
                      const std::vector<Rect>& rects);

}  // namespace resched
