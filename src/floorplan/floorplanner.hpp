// Floorplan feasibility search (§V-H).
//
// Given the reconfigurable regions produced by the scheduler (their resource
// requirement vectors), decide whether they admit a placement of pairwise
// non-overlapping rectangles on the device fabric. The paper delegates this
// to the MILP floorplanner of [Rabozzi FCCM'15] with no objective function —
// a pure feasibility query. We answer the same query with a complete
// backtracking search over the enumerated minimal feasible placements:
// regions are ordered fewest-candidates-first (MRV) and the search prunes on
// per-kind remaining capacity. A node/time budget bounds the worst case, in
// which case the result is reported as "not found" (matching how a
// time-limited MILP behaves).
#pragma once

#include <optional>
#include <vector>

#include "floorplan/placement.hpp"

namespace resched {

struct FloorplanOptions {
  /// Wall-clock budget for one feasibility query; <= 0 disables.
  double time_budget_seconds = 1.0;
  /// Backtracking node budget; 0 disables.
  std::size_t max_nodes = 2'000'000;
  /// Cap on enumerated placements per region (0 = unlimited).
  std::size_t max_placements_per_region = 4096;
};

struct FloorplanResult {
  bool feasible = false;
  /// True when the search exhausted its node/time budget before proving
  /// either feasibility or infeasibility.
  bool budget_exhausted = false;
  /// One rectangle per region (same order as the query) when feasible.
  std::vector<Rect> rects;
  std::size_t nodes_explored = 0;
  double seconds = 0.0;
};

/// Searches for a feasible floorplan of `regions` on `device`'s fabric.
FloorplanResult FindFloorplan(const FpgaDevice& device,
                              const std::vector<ResourceVec>& regions,
                              const FloorplanOptions& options = {});

/// Optimizing variant: among floorplans found within the budget, keeps the
/// one occupying the fewest grid cells (the compactness objective of the
/// original MILP floorplanner — less footprint leaves more static logic
/// room and shrinks partial bitstreams in practice). `feasible` is set as
/// for FindFloorplan; `budget_exhausted` means the returned plan may not
/// be the global optimum. Total-cell count of the result is reported in
/// `nodes_explored`-independent field `occupied_cells`.
struct CompactFloorplanResult : FloorplanResult {
  std::size_t occupied_cells = 0;
};
CompactFloorplanResult FindCompactFloorplan(
    const FpgaDevice& device, const std::vector<ResourceVec>& regions,
    const FloorplanOptions& options = {});

/// Checks that `rects` is a valid floorplan for `regions` (non-overlap,
/// inside the fabric, resource-sufficient). Used by the validator and tests.
bool IsValidFloorplan(const FpgaDevice& device,
                      const std::vector<ResourceVec>& regions,
                      const std::vector<Rect>& rects);

}  // namespace resched
