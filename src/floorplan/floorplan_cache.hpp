// Memoized floorplan feasibility (the PR-4 hot-path cache).
//
// A PA-R run issues the same feasibility query many times: every restart
// whose regions happen to have the same requirement multiset, every shrink
// round revisiting a smaller variant, every PA-LS iteration perturbing an
// order without changing the regions. FindFloorplan is a pure function of
// the requirement *multiset* plus the budget options (see the
// canonicalization contract in floorplanner.hpp), so its answers memoize
// perfectly. FloorplanCache layers two memos over one Fabric:
//
//   * PlacementCatalog — per (requirement, placement-cap) pruned candidate
//     rectangles, shared across every query that mentions the requirement;
//   * verdict memo — per canonicalized requirement list, the full
//     FloorplanResult (feasible / proven-infeasible / budget-exhausted,
//     plus the rectangles in canonical order).
//
// Reuse rules keep hits bit-identical to a fresh solve:
//   * proven verdicts replay when the query's node budget could not have
//     interrupted the recorded solve (max_nodes == 0 or > recorded nodes);
//   * budget-exhausted verdicts replay only for an equal-or-smaller node
//     budget — a larger budget might find an answer, so it re-solves and
//     overwrites the entry. An entry exhausted with no node budget (the
//     wall-clock limit fired) is never replayed.
// On a hit `rects`, `feasible`, `budget_exhausted` and `nodes_explored`
// are the recorded solve's values; only `seconds` reflects the lookup.
//
// Thread safety: fully concurrent (ConcurrentMemoMap shards); intended to
// be shared by every PA-R worker.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "floorplan/floorplanner.hpp"
#include "util/memo_map.hpp"

namespace resched {

/// Success statistics behind FpValueOrder::kLearned: a lossy table of
/// atomic win counters keyed by (requirement hash, fabric column band).
/// Every feasible cache-miss solve records one win per placed region in
/// the band its rectangle landed in; the learned visit order then tries a
/// region's candidates in bands that historically hosted it, first.
///
/// Wins-count ordering is equivalent to success-*rate* ordering here: all
/// bands of one requirement share the same denominator (each feasible
/// solve records exactly one win for that requirement), so dividing by it
/// never changes the ranking. Slots collide (hash % kSlots, lossy merge);
/// a collision only perturbs the heuristic ordering, never correctness —
/// the DFS stays complete under any candidate permutation.
class FloorplanOrderingModel {
 public:
  /// Fabric columns are folded into this many bands: coarse enough that
  /// statistics accumulate quickly, fine enough to separate "left edge"
  /// from "middle" placements on the ~40-column fabrics we model.
  static constexpr std::size_t kBands = 8;
  static constexpr std::size_t kSlots = 512;

  /// Stable hash of a requirement, computed once per region and combined
  /// with each candidate's band via Slot().
  static std::uint64_t ReqHash(const ResourceVec& req);

  /// Band of a rectangle anchored at `col0` on a `columns`-wide fabric.
  static std::size_t BandOf(std::size_t col0, std::size_t columns) {
    return columns == 0 ? 0 : col0 * kBands / columns;
  }

  void RecordWin(std::uint64_t req_hash, std::size_t band) {
    wins_[Slot(req_hash, band)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t Wins(std::uint64_t req_hash, std::size_t band) const {
    return wins_[Slot(req_hash, band)].load(std::memory_order_relaxed);
  }

 private:
  static std::size_t Slot(std::uint64_t req_hash, std::size_t band) {
    return static_cast<std::size_t>(
               (req_hash * 0x9E3779B97F4A7C15ULL) ^ band) %
           kSlots;
  }

  std::array<std::atomic<std::uint64_t>, kSlots> wins_{};
};

class FloorplanCache {
 public:
  explicit FloorplanCache(const FpgaDevice& device,
                          std::size_t verdict_capacity = 4096,
                          std::size_t catalog_capacity = 1024);

  /// Answers FindFloorplan(device, regions, options) through the memos.
  FloorplanResult Query(const std::vector<ResourceVec>& regions,
                        const FloorplanOptions& options);

  /// Pruned candidate rectangles (with occupancy masks) for one
  /// requirement, memoized. Exposed for tests and for callers that
  /// enumerate without solving.
  std::shared_ptr<const PlacementSet> Placements(const ResourceVec& req,
                                                std::size_t max_placements);

  FloorplanCacheStats Stats() const;

  const Fabric& fabric() const { return fabric_; }

  /// The learned-value-ordering statistics (see FloorplanOrderingModel).
  /// Wins accumulate on every feasible cache-miss solve regardless of the
  /// query's FpValueOrder, so switching a driver to kLearned mid-run
  /// starts from real data.
  const FloorplanOrderingModel& OrderingModel() const { return ordering_; }

 private:
  struct CatalogKey {
    ResourceVec req;
    std::size_t max_placements = 0;
  };
  struct CatalogKeyHash {
    std::uint64_t operator()(const CatalogKey& k) const;
  };
  struct CatalogKeyEq {
    bool operator()(const CatalogKey& a, const CatalogKey& b) const;
  };

  struct VerdictKey {
    std::vector<ResourceVec> canonical;  ///< sorted requirement list
    std::size_t max_placements = 0;
    /// FpValueOrder of the solve. Part of the key so a learned-order
    /// verdict (whose rectangles depend on mutable statistics) never
    /// replays for an enumeration-order query or vice versa.
    std::uint8_t value_order = 0;
  };
  struct VerdictKeyHash {
    std::uint64_t operator()(const VerdictKey& k) const;
  };
  struct VerdictKeyEq {
    bool operator()(const VerdictKey& a, const VerdictKey& b) const;
  };

  struct Verdict {
    bool feasible = false;
    bool budget_exhausted = false;
    /// Rectangles in canonical order (empty unless feasible).
    std::vector<Rect> rects;
    std::size_t nodes = 0;
    /// Node budget the recorded solve ran under (0 = unlimited).
    std::size_t max_nodes = 0;
  };

  static bool Reusable(const Verdict& v, const FloorplanOptions& options);

  Fabric fabric_;
  ConcurrentMemoMap<CatalogKey, PlacementSet, CatalogKeyHash, CatalogKeyEq>
      catalog_;
  ConcurrentMemoMap<VerdictKey, Verdict, VerdictKeyHash, VerdictKeyEq>
      verdicts_;
  FloorplanOrderingModel ordering_;
  /// DFS nodes spent by cache-miss solves (FloorplanCacheStats::solve_nodes).
  std::atomic<std::uint64_t> solve_nodes_{0};
};

}  // namespace resched
