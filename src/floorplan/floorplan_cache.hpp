// Memoized floorplan feasibility (the PR-4 hot-path cache).
//
// A PA-R run issues the same feasibility query many times: every restart
// whose regions happen to have the same requirement multiset, every shrink
// round revisiting a smaller variant, every PA-LS iteration perturbing an
// order without changing the regions. FindFloorplan is a pure function of
// the requirement *multiset* plus the budget options (see the
// canonicalization contract in floorplanner.hpp), so its answers memoize
// perfectly. FloorplanCache layers two memos over one Fabric:
//
//   * PlacementCatalog — per (requirement, placement-cap) pruned candidate
//     rectangles, shared across every query that mentions the requirement;
//   * verdict memo — per canonicalized requirement list, the full
//     FloorplanResult (feasible / proven-infeasible / budget-exhausted,
//     plus the rectangles in canonical order).
//
// Reuse rules keep hits bit-identical to a fresh solve:
//   * proven verdicts replay when the query's node budget could not have
//     interrupted the recorded solve (max_nodes == 0 or > recorded nodes);
//   * budget-exhausted verdicts replay only for an equal-or-smaller node
//     budget — a larger budget might find an answer, so it re-solves and
//     overwrites the entry. An entry exhausted with no node budget (the
//     wall-clock limit fired) is never replayed.
// On a hit `rects`, `feasible`, `budget_exhausted` and `nodes_explored`
// are the recorded solve's values; only `seconds` reflects the lookup.
//
// Thread safety: fully concurrent (ConcurrentMemoMap shards); intended to
// be shared by every PA-R worker.
#pragma once

#include <memory>
#include <vector>

#include "floorplan/floorplanner.hpp"
#include "util/memo_map.hpp"

namespace resched {

class FloorplanCache {
 public:
  explicit FloorplanCache(const FpgaDevice& device,
                          std::size_t verdict_capacity = 4096,
                          std::size_t catalog_capacity = 1024);

  /// Answers FindFloorplan(device, regions, options) through the memos.
  FloorplanResult Query(const std::vector<ResourceVec>& regions,
                        const FloorplanOptions& options);

  /// Pruned candidate rectangles (with occupancy masks) for one
  /// requirement, memoized. Exposed for tests and for callers that
  /// enumerate without solving.
  std::shared_ptr<const PlacementSet> Placements(const ResourceVec& req,
                                                std::size_t max_placements);

  FloorplanCacheStats Stats() const;

  const Fabric& fabric() const { return fabric_; }

 private:
  struct CatalogKey {
    ResourceVec req;
    std::size_t max_placements = 0;
  };
  struct CatalogKeyHash {
    std::uint64_t operator()(const CatalogKey& k) const;
  };
  struct CatalogKeyEq {
    bool operator()(const CatalogKey& a, const CatalogKey& b) const;
  };

  struct VerdictKey {
    std::vector<ResourceVec> canonical;  ///< sorted requirement list
    std::size_t max_placements = 0;
  };
  struct VerdictKeyHash {
    std::uint64_t operator()(const VerdictKey& k) const;
  };
  struct VerdictKeyEq {
    bool operator()(const VerdictKey& a, const VerdictKey& b) const;
  };

  struct Verdict {
    bool feasible = false;
    bool budget_exhausted = false;
    /// Rectangles in canonical order (empty unless feasible).
    std::vector<Rect> rects;
    std::size_t nodes = 0;
    /// Node budget the recorded solve ran under (0 = unlimited).
    std::size_t max_nodes = 0;
  };

  static bool Reusable(const Verdict& v, const FloorplanOptions& options);

  Fabric fabric_;
  ConcurrentMemoMap<CatalogKey, PlacementSet, CatalogKeyHash, CatalogKeyEq>
      catalog_;
  ConcurrentMemoMap<VerdictKey, Verdict, VerdictKeyHash, VerdictKeyEq>
      verdicts_;
};

}  // namespace resched
