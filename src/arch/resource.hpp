// Reconfigurable-resource model.
//
// The paper treats the set R of FPGA resource kinds generically (CLB, BRAM,
// DSP, ...). ResourceModel names the kinds present on a device and records
// the average number of configuration-memory bits needed to reconfigure one
// unit of each kind (the bit_r of Eq. (1), derived from the per-tile frame
// counts of the target family). ResourceVec is a fixed-arity non-negative
// integer vector indexed by resource kind.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace resched {

/// Index of a resource kind within a ResourceModel.
using ResourceKind = std::size_t;

/// Maximum number of distinct resource kinds a device may expose. Real
/// reconfigurable fabrics have 3-5 (CLB/BRAM/DSP + optional URAM etc.).
inline constexpr std::size_t kMaxResourceKinds = 8;

/// Small fixed-capacity vector of per-kind quantities.
class ResourceVec {
 public:
  ResourceVec() = default;
  explicit ResourceVec(std::size_t kinds) : size_(kinds) {
    RESCHED_CHECK_MSG(kinds <= kMaxResourceKinds, "too many resource kinds");
  }
  ResourceVec(std::initializer_list<std::int64_t> values);

  std::size_t size() const { return size_; }

  std::int64_t operator[](std::size_t i) const {
    RESCHED_CHECK_MSG(i < size_, "resource kind out of range");
    return v_[i];
  }
  std::int64_t& operator[](std::size_t i) {
    RESCHED_CHECK_MSG(i < size_, "resource kind out of range");
    return v_[i];
  }

  ResourceVec& operator+=(const ResourceVec& o);
  ResourceVec& operator-=(const ResourceVec& o);
  friend ResourceVec operator+(ResourceVec a, const ResourceVec& b) {
    return a += b;
  }
  friend ResourceVec operator-(ResourceVec a, const ResourceVec& b) {
    return a -= b;
  }
  friend bool operator==(const ResourceVec& a, const ResourceVec& b);

  /// Component-wise a <= b (this fits within capacity `o`).
  bool FitsWithin(const ResourceVec& o) const;

  /// Strict total order: arity first, then components lexicographically.
  /// This is a canonicalization order for caches and dedup — NOT a
  /// capacity relation (use FitsWithin for that).
  friend bool LexicographicallyBefore(const ResourceVec& a,
                                      const ResourceVec& b);

  /// True when every component is zero.
  bool IsZero() const;

  /// Component-wise max (used to grow a region to host a new module).
  static ResourceVec Max(const ResourceVec& a, const ResourceVec& b);

  /// Sum of all components (dimension-less total, used in weight formulas).
  std::int64_t Total() const;

  /// Scales every component by `factor`, rounding down (floorplan-failure
  /// shrinking of maxRes, §V-H).
  ResourceVec ScaledDown(double factor) const;

  std::string ToString() const;

 private:
  void CheckSameArity(const ResourceVec& o) const;

  std::array<std::int64_t, kMaxResourceKinds> v_{};
  std::size_t size_ = 0;
};

/// Describes the resource kinds of a device family.
class ResourceModel {
 public:
  struct KindInfo {
    std::string name;          ///< e.g. "CLB", "BRAM", "DSP"
    double bits_per_unit = 0;  ///< configuration bits to reconfigure one unit
  };

  ResourceModel() = default;
  explicit ResourceModel(std::vector<KindInfo> kinds);

  std::size_t NumKinds() const { return kinds_.size(); }
  const KindInfo& Kind(std::size_t i) const;
  /// Index lookup by name; throws InstanceError when unknown.
  ResourceKind KindIndex(const std::string& name) const;
  bool HasKind(const std::string& name) const;

  ResourceVec ZeroVec() const { return ResourceVec(NumKinds()); }

  /// Eq. (1): total configuration-bitstream size for a requirement vector.
  double BitstreamBits(const ResourceVec& res) const;

 private:
  std::vector<KindInfo> kinds_;
};

/// The default three-kind model used throughout the paper (7-series-like).
/// bit_r values are derived from Xilinx 7-series frame geometry (see
/// device.cpp for the derivation).
ResourceModel MakeClbBramDspModel();

}  // namespace resched
