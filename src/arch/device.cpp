#include "arch/device.hpp"

#include <algorithm>
#include <cmath>

namespace resched {

FpgaDevice::FpgaDevice(std::string name, ResourceModel model,
                       FabricGeometry geometry)
    : name_(std::move(name)),
      model_(std::move(model)),
      geometry_(std::move(geometry)) {
  RESCHED_CHECK_MSG(geometry_.rows > 0, "fabric needs at least one row");
  RESCHED_CHECK_MSG(!geometry_.columns.empty(), "fabric needs columns");
  capacity_ = model_.ZeroVec();
  for (const ColumnSpec& col : geometry_.columns) {
    RESCHED_CHECK_MSG(col.kind < model_.NumKinds(),
                      "column kind outside resource model");
    RESCHED_CHECK_MSG(col.units_per_cell > 0, "column with no resources");
    capacity_[col.kind] +=
        col.units_per_cell * static_cast<std::int64_t>(geometry_.rows);
  }
}

FabricGeometry BuildInterleavedFabric(
    const ResourceModel& model, const ResourceVec& target,
    const std::vector<std::int64_t>& units_per_cell, std::size_t rows) {
  RESCHED_CHECK_MSG(target.size() == model.NumKinds(),
                    "target arity mismatch");
  RESCHED_CHECK_MSG(units_per_cell.size() == model.NumKinds(),
                    "units_per_cell arity mismatch");
  RESCHED_CHECK_MSG(rows > 0, "fabric needs at least one row");

  // Column count per kind so that count * units_per_cell * rows ~= target.
  std::vector<std::size_t> col_count(model.NumKinds());
  std::size_t total_cols = 0;
  for (std::size_t k = 0; k < model.NumKinds(); ++k) {
    RESCHED_CHECK_MSG(units_per_cell[k] > 0, "units_per_cell must be positive");
    const double per_col =
        static_cast<double>(units_per_cell[k]) * static_cast<double>(rows);
    col_count[k] = static_cast<std::size_t>(
        std::max(1.0, std::round(static_cast<double>(target[k]) / per_col)));
    total_cols += col_count[k];
  }

  // Interleave: spread the columns of each kind evenly over the die width so
  // that any sufficiently wide rectangle sees a representative resource mix,
  // as on a real device. We emit columns in order of "fractional position".
  struct Pending {
    double next_pos;
    double stride;
    ResourceKind kind;
    std::size_t remaining;
  };
  std::vector<Pending> pending;
  for (std::size_t k = 0; k < model.NumKinds(); ++k) {
    const double stride =
        static_cast<double>(total_cols) / static_cast<double>(col_count[k]);
    pending.push_back(Pending{stride / 2.0, stride, k, col_count[k]});
  }

  FabricGeometry geom;
  geom.rows = rows;
  geom.columns.reserve(total_cols);
  for (std::size_t emitted = 0; emitted < total_cols; ++emitted) {
    // Pick the kind whose next scheduled position is earliest.
    std::size_t best = pending.size();
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].remaining == 0) continue;
      if (best == pending.size() ||
          pending[i].next_pos < pending[best].next_pos) {
        best = i;
      }
    }
    RESCHED_CHECK(best < pending.size());
    geom.columns.push_back(
        ColumnSpec{pending[best].kind, units_per_cell[pending[best].kind]});
    pending[best].next_pos += pending[best].stride;
    --pending[best].remaining;
  }
  return geom;
}

}  // namespace resched
