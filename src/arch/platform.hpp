// Target platform: processor cores + partially-reconfigurable FPGA + a
// single reconfiguration controller (§III of the paper).
#pragma once

#include <cmath>
#include <string>

#include "arch/device.hpp"
#include "util/common.hpp"

namespace resched {

class Platform {
 public:
  Platform() = default;

  /// `recfreq_bits_per_sec` is the reconfiguration throughput of one
  /// controller (the paper's recFreq), e.g. 2.56e8 bits/s for a 32 MB/s
  /// PCAP flow. `num_reconfigurators` extends the paper's single-controller
  /// model (§III) to the multi-controller generalization of Redaelli et
  /// al.; the paper's setting is the default 1.
  Platform(std::string name, std::size_t num_processors, FpgaDevice device,
           double recfreq_bits_per_sec, std::size_t num_reconfigurators = 1);

  const std::string& Name() const { return name_; }
  std::size_t NumProcessors() const { return num_processors_; }
  const FpgaDevice& Device() const { return device_; }
  double RecFreqBitsPerSec() const { return recfreq_bits_per_sec_; }
  std::size_t NumReconfigurators() const { return num_reconfigurators_; }

  /// Eq. (2): reconfiguration time (in ticks = µs) for a region with the
  /// given resource requirements; rounded up so a reconfiguration never
  /// finishes earlier than physically possible.
  TimeT ReconfTicks(const ResourceVec& region_res) const {
    const double bits = device_.BitstreamBits(region_res);
    const double seconds = bits / recfreq_bits_per_sec_;
    return static_cast<TimeT>(std::ceil(seconds * 1e6));
  }

  /// Returns a copy of this platform with a different processor count
  /// (useful for sweeps).
  Platform WithProcessors(std::size_t n) const;

  /// Returns a copy with a different reconfiguration-controller count.
  Platform WithReconfigurators(std::size_t n) const;

  // ---- communication-overhead extension (paper future work) -----------
  /// Sustained PS<->PL transfer bandwidth in bytes/s used to price data
  /// movement across the hardware/software boundary. 0 (default) disables
  /// the communication model entirely.
  double HwSwBandwidthBytesPerSec() const { return hw_sw_bandwidth_; }
  Platform WithHwSwBandwidth(double bytes_per_sec) const;

  /// Time (ticks) to move `bytes` across the HW<->SW boundary; 0 when the
  /// model is disabled.
  TimeT TransferTicks(std::int64_t bytes) const {
    if (hw_sw_bandwidth_ <= 0.0 || bytes <= 0) return 0;
    return static_cast<TimeT>(
        std::ceil(static_cast<double>(bytes) / hw_sw_bandwidth_ * 1e6));
  }

 private:
  std::string name_;
  std::size_t num_processors_ = 0;
  FpgaDevice device_;
  double recfreq_bits_per_sec_ = 0.0;
  std::size_t num_reconfigurators_ = 1;
  double hw_sw_bandwidth_ = 0.0;
};

}  // namespace resched
