// FPGA device model: resource capacities plus the column-based fabric
// geometry the floorplanner needs.
//
// Modern reconfigurable fabrics (Xilinx 7-series and later) are organized as
// heterogeneous *columns* of a single resource kind, vertically divided into
// *clock regions*. Pre-UltraScale partial-reconfiguration flows require a
// reconfigurable region to span whole clock regions vertically, so the
// floorplanning grid has one row per clock region and one column per fabric
// column; a cell (column, row) contributes `units_per_cell` resources of the
// column's kind.
#pragma once

#include <string>
#include <vector>

#include "arch/resource.hpp"

namespace resched {

/// One fabric column: its resource kind and units contributed per clock
/// region (cell).
struct ColumnSpec {
  ResourceKind kind = 0;
  std::int64_t units_per_cell = 0;
};

/// Column/row layout of the reconfigurable fabric.
struct FabricGeometry {
  std::size_t rows = 0;  ///< number of clock regions
  std::vector<ColumnSpec> columns;

  std::size_t NumColumns() const { return columns.size(); }
};

/// An FPGA device: named geometry + resource model.
class FpgaDevice {
 public:
  FpgaDevice() = default;
  FpgaDevice(std::string name, ResourceModel model, FabricGeometry geometry);

  const std::string& Name() const { return name_; }
  const ResourceModel& Model() const { return model_; }
  const FabricGeometry& Geometry() const { return geometry_; }

  /// Total per-kind capacity (maxRes_r), derived from the geometry so that
  /// the scheduler's capacity checks and the floorplanner's grid can never
  /// disagree.
  const ResourceVec& Capacity() const { return capacity_; }

  /// Eq. (1): estimated partial-bitstream size in bits for a region with
  /// the given resource requirements.
  double BitstreamBits(const ResourceVec& res) const {
    return model_.BitstreamBits(res);
  }

 private:
  std::string name_;
  ResourceModel model_;
  FabricGeometry geometry_;
  ResourceVec capacity_;
};

/// Builds a synthetic fabric whose per-kind totals approximate `target`
/// (exactly when divisible): columns of each kind are interleaved evenly
/// across the die, mimicking the real 7-series column mix. Used both by the
/// device presets and by tests that need devices of arbitrary size.
///
/// `units_per_cell` gives, per kind, the resources one column contributes in
/// one clock region (e.g. 100 slice-equivalents for a CLB column, 10 BRAM,
/// 20 DSP). Totals are rounded to the nearest achievable multiple.
FabricGeometry BuildInterleavedFabric(const ResourceModel& model,
                                      const ResourceVec& target,
                                      const std::vector<std::int64_t>& units_per_cell,
                                      std::size_t rows);

}  // namespace resched
