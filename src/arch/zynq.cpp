#include "arch/zynq.hpp"

#include <algorithm>

namespace resched {

namespace {
// Units one column contributes per clock region on 7-series:
// a CLB column = 50 CLBs = 100 slice-equivalents, a BRAM column = 10
// RAMB36, a DSP column = 20 DSP48. We count "CLB" capacity in slices.
const std::vector<std::int64_t> kUnitsPerCell = {100, 10, 20};
constexpr std::size_t kClockRegions = 4;
}  // namespace

FpgaDevice MakeXc7z020() {
  const ResourceModel model = MakeClbBramDspModel();
  ResourceVec target({13300, 140, 220});
  FabricGeometry geom =
      BuildInterleavedFabric(model, target, kUnitsPerCell, kClockRegions);
  return FpgaDevice("XC7Z020", model, std::move(geom));
}

Platform MakeZedBoard(double recfreq_bits_per_sec) {
  return Platform("ZedBoard", /*num_processors=*/2, MakeXc7z020(),
                  recfreq_bits_per_sec);
}

FpgaDevice MakeScaledZynq(double scale) {
  RESCHED_CHECK_MSG(scale >= 0.05, "scale too small for a meaningful fabric");
  const ResourceModel model = MakeClbBramDspModel();
  ResourceVec target(
      {static_cast<std::int64_t>(13300 * scale),
       std::max<std::int64_t>(10, static_cast<std::int64_t>(140 * scale)),
       std::max<std::int64_t>(20, static_cast<std::int64_t>(220 * scale))});
  FabricGeometry geom =
      BuildInterleavedFabric(model, target, kUnitsPerCell, kClockRegions);
  return FpgaDevice("ScaledZynq", model, std::move(geom));
}

Platform MakeScaledPlatform(double scale, std::size_t cores,
                            double recfreq_bits_per_sec) {
  return Platform("ScaledPlatform", cores, MakeScaledZynq(scale),
                  recfreq_bits_per_sec);
}

FpgaDevice MakeXc7z010() {
  const ResourceModel model = MakeClbBramDspModel();
  FabricGeometry geom = BuildInterleavedFabric(
      model, ResourceVec({4400, 60, 80}), kUnitsPerCell, /*rows=*/2);
  return FpgaDevice("XC7Z010", model, std::move(geom));
}

Platform MakePynqZ1(double recfreq_bits_per_sec) {
  return Platform("Pynq-Z1", /*num_processors=*/2, MakeXc7z010(),
                  recfreq_bits_per_sec);
}

FpgaDevice MakeKintex7_160() {
  const ResourceModel model = MakeClbBramDspModel();
  FabricGeometry geom = BuildInterleavedFabric(
      model, ResourceVec({25350, 325, 600}), kUnitsPerCell, /*rows=*/6);
  return FpgaDevice("XC7K160T", model, std::move(geom));
}

Platform MakeKintexPlatform(std::size_t cores, double recfreq_bits_per_sec) {
  return Platform("Kintex7-host", cores, MakeKintex7_160(),
                  recfreq_bits_per_sec);
}

FpgaDevice MakeZu9eg() {
  const ResourceModel model = MakeClbBramDspModel();
  FabricGeometry geom = BuildInterleavedFabric(
      model, ResourceVec({34260, 912, 2520}), kUnitsPerCell, /*rows=*/8);
  return FpgaDevice("ZU9EG", model, std::move(geom));
}

Platform MakeZcu102(double recfreq_bits_per_sec) {
  return Platform("ZCU102", /*num_processors=*/4, MakeZu9eg(),
                  recfreq_bits_per_sec);
}

}  // namespace resched
