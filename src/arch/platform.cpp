#include "arch/platform.hpp"

namespace resched {

Platform::Platform(std::string name, std::size_t num_processors,
                   FpgaDevice device, double recfreq_bits_per_sec,
                   std::size_t num_reconfigurators)
    : name_(std::move(name)),
      num_processors_(num_processors),
      device_(std::move(device)),
      recfreq_bits_per_sec_(recfreq_bits_per_sec),
      num_reconfigurators_(num_reconfigurators) {
  RESCHED_CHECK_MSG(num_processors_ >= 1,
                    "platform needs at least one processor core");
  RESCHED_CHECK_MSG(recfreq_bits_per_sec_ > 0.0,
                    "reconfiguration throughput must be positive");
  RESCHED_CHECK_MSG(num_reconfigurators_ >= 1,
                    "platform needs at least one reconfiguration controller");
}

Platform Platform::WithProcessors(std::size_t n) const {
  Platform copy(name_, n, device_, recfreq_bits_per_sec_,
                num_reconfigurators_);
  copy.hw_sw_bandwidth_ = hw_sw_bandwidth_;
  return copy;
}

Platform Platform::WithReconfigurators(std::size_t n) const {
  Platform copy(name_, num_processors_, device_, recfreq_bits_per_sec_, n);
  copy.hw_sw_bandwidth_ = hw_sw_bandwidth_;
  return copy;
}

Platform Platform::WithHwSwBandwidth(double bytes_per_sec) const {
  RESCHED_CHECK_MSG(bytes_per_sec >= 0.0, "negative bandwidth");
  Platform copy = *this;
  copy.hw_sw_bandwidth_ = bytes_per_sec;
  return copy;
}

}  // namespace resched
