#include "arch/resource.hpp"

#include <algorithm>
#include <cmath>

#include "util/string_util.hpp"

namespace resched {

ResourceVec::ResourceVec(std::initializer_list<std::int64_t> values) {
  RESCHED_CHECK_MSG(values.size() <= kMaxResourceKinds,
                    "too many resource kinds");
  size_ = values.size();
  std::size_t i = 0;
  for (std::int64_t v : values) v_[i++] = v;
}

void ResourceVec::CheckSameArity(const ResourceVec& o) const {
  RESCHED_CHECK_MSG(size_ == o.size_, "resource vector arity mismatch");
}

ResourceVec& ResourceVec::operator+=(const ResourceVec& o) {
  CheckSameArity(o);
  for (std::size_t i = 0; i < size_; ++i) v_[i] += o.v_[i];
  return *this;
}

ResourceVec& ResourceVec::operator-=(const ResourceVec& o) {
  CheckSameArity(o);
  for (std::size_t i = 0; i < size_; ++i) v_[i] -= o.v_[i];
  return *this;
}

bool operator==(const ResourceVec& a, const ResourceVec& b) {
  if (a.size_ != b.size_) return false;
  return std::equal(a.v_.begin(), a.v_.begin() + static_cast<long>(a.size_),
                    b.v_.begin());
}

bool LexicographicallyBefore(const ResourceVec& a, const ResourceVec& b) {
  if (a.size_ != b.size_) return a.size_ < b.size_;
  for (std::size_t i = 0; i < a.size_; ++i) {
    if (a.v_[i] != b.v_[i]) return a.v_[i] < b.v_[i];
  }
  return false;
}

bool ResourceVec::FitsWithin(const ResourceVec& o) const {
  CheckSameArity(o);
  for (std::size_t i = 0; i < size_; ++i) {
    if (v_[i] > o.v_[i]) return false;
  }
  return true;
}

bool ResourceVec::IsZero() const {
  for (std::size_t i = 0; i < size_; ++i) {
    if (v_[i] != 0) return false;
  }
  return true;
}

ResourceVec ResourceVec::Max(const ResourceVec& a, const ResourceVec& b) {
  a.CheckSameArity(b);
  ResourceVec out(a.size_);
  for (std::size_t i = 0; i < a.size_; ++i) {
    out.v_[i] = std::max(a.v_[i], b.v_[i]);
  }
  return out;
}

std::int64_t ResourceVec::Total() const {
  std::int64_t t = 0;
  for (std::size_t i = 0; i < size_; ++i) t += v_[i];
  return t;
}

ResourceVec ResourceVec::ScaledDown(double factor) const {
  RESCHED_CHECK_MSG(factor >= 0.0 && factor <= 1.0,
                    "shrink factor out of [0,1]");
  ResourceVec out(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.v_[i] = static_cast<std::int64_t>(
        std::floor(static_cast<double>(v_[i]) * factor));
  }
  return out;
}

std::string ResourceVec::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < size_; ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(v_[i]);
  }
  out += ")";
  return out;
}

ResourceModel::ResourceModel(std::vector<KindInfo> kinds)
    : kinds_(std::move(kinds)) {
  RESCHED_CHECK_MSG(!kinds_.empty(), "resource model needs at least one kind");
  RESCHED_CHECK_MSG(kinds_.size() <= kMaxResourceKinds,
                    "too many resource kinds");
  for (const auto& k : kinds_) {
    RESCHED_CHECK_MSG(!k.name.empty(), "resource kind with empty name");
    RESCHED_CHECK_MSG(k.bits_per_unit >= 0.0, "negative bits_per_unit");
  }
}

const ResourceModel::KindInfo& ResourceModel::Kind(std::size_t i) const {
  RESCHED_CHECK_MSG(i < kinds_.size(), "resource kind out of range");
  return kinds_[i];
}

ResourceKind ResourceModel::KindIndex(const std::string& name) const {
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i].name == name) return i;
  }
  throw InstanceError("unknown resource kind: " + name);
}

bool ResourceModel::HasKind(const std::string& name) const {
  for (const auto& k : kinds_) {
    if (k.name == name) return true;
  }
  return false;
}

double ResourceModel::BitstreamBits(const ResourceVec& res) const {
  RESCHED_CHECK_MSG(res.size() == kinds_.size(),
                    "resource vector arity mismatch with model");
  double bits = 0.0;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    bits += static_cast<double>(res[i]) * kinds_[i].bits_per_unit;
  }
  return bits;
}

ResourceModel MakeClbBramDspModel() {
  // bit_r derivation for Xilinx 7-series (see device.cpp for the frame
  // geometry constants): one configuration frame is 101 x 32-bit words =
  // 3232 bits.
  //  - a CLB column spans 50 CLBs per clock region and takes 36 frames
  //    -> 36*3232/50  = 2327.0 bits per CLB;
  //  - a BRAM column spans 10 RAMB36 per clock region and takes 28
  //    interconnect frames -> 28*3232/10 = 9049.6 bits per RAMB36
  //    (content frames excluded: PDR flows typically preserve content);
  //  - a DSP column spans 20 DSP48 per clock region and takes 28 frames
  //    -> 28*3232/20 = 4524.8 bits per DSP48.
  return ResourceModel({{"CLB", 2327.0}, {"BRAM", 9049.6}, {"DSP", 4524.8}});
}

}  // namespace resched
