// Device and platform presets.
//
// The paper evaluates on the ZedBoard: a Zynq-7000 XC7Z020 (dual-core ARM
// Cortex-A9 + Artix-7-class fabric). MakeZedBoard() reproduces that target;
// the scaled variants are used by tests and by capacity-sensitivity
// ablations.
#pragma once

#include "arch/platform.hpp"

namespace resched {

/// XC7Z020-like fabric: ~13300 slices, 140 RAMB36, 220 DSP48, 4 clock
/// regions of programmable logic.
FpgaDevice MakeXc7z020();

/// ZedBoard: XC7Z020 + 2 ARM Cortex-A9 cores + one ICAP-class controller.
/// `recfreq_bits_per_sec` defaults to 32 MB/s (2.56e8 bits/s) — the
/// practical throughput of a Zynq-7000 PCAP/ICAP reconfiguration flow
/// without a custom DMA engine, far below the 400 MB/s port maximum;
/// reconfiguration overhead at this rate is the regime the paper's
/// resource-efficiency argument targets (pass a higher value to model an
/// optimized reconfiguration pipeline).
Platform MakeZedBoard(double recfreq_bits_per_sec = 2.56e8);

/// A device whose capacity is `scale` times the XC7Z020 in every kind
/// (scale >= 0.05). Used by capacity-pressure studies.
FpgaDevice MakeScaledZynq(double scale);

/// Platform around MakeScaledZynq with a configurable core count.
Platform MakeScaledPlatform(double scale, std::size_t cores,
                            double recfreq_bits_per_sec = 2.56e8);

// ---- further device presets -------------------------------------------

/// Pynq-Z1 / XC7Z010: roughly 2/5 of an XC7Z020 (4400 slice-equivalents
/// x4 quadrants model -> ~8800 slices... the real part has 17600 LUTs =
/// ~4400 slices; we model 4400 slices, 60 BRAM, 80 DSP over 2 clock
/// regions). Dual-core Cortex-A9 like the ZedBoard.
FpgaDevice MakeXc7z010();
Platform MakePynqZ1(double recfreq_bits_per_sec = 2.56e8);

/// Kintex-7-class midrange fabric (XC7K160T-like): ~25350 slices, 325
/// BRAM, 600 DSP over 6 clock regions — a larger PDR target for capacity
/// sweeps.
FpgaDevice MakeKintex7_160();
Platform MakeKintexPlatform(std::size_t cores = 4,
                            double recfreq_bits_per_sec = 1.024e9);

/// Zynq UltraScale+ ZU9EG-like fabric: ~34260 slice-equivalents, 912
/// BRAM, 2520 DSP over 8 clock regions, quad-core APU, and a faster
/// configuration path (PCAP ~ 128 MB/s practical).
FpgaDevice MakeZu9eg();
Platform MakeZcu102(double recfreq_bits_per_sec = 1.024e9);

}  // namespace resched
