// reschedd-router: a consistent-hash front end for a fleet of reschedd
// backends.
//
// The router speaks the same protocol as a single daemon on its front
// transport (greeting line, JSON-lines requests, responses matched by id)
// so existing clients point at it unchanged. Behind it, schedule/simulate
// requests are sharded by Digest128 of the canonical instance text onto N
// TCP backends over a weighted consistent-hash ring (router/ring.hpp):
// the same instance always lands on the same backend, which keeps that
// backend's result cache and dedup ledger authoritative for its keyspace.
//
// Failure handling layers two retry mechanisms:
//   * same-backend retries ride the resilient client's reconnect +
//     idempotent-resubmission path (safe: backends dedup by request id);
//   * when a backend stays dead, the forwarder marks it unhealthy,
//     re-routes the request to the next backend in its preference order,
//     and a probe thread keeps re-dialing the dead backend until its
//     greeting comes back.
// A request whose every candidate backend is unhealthy gets a terminal
// `unavailable` error rather than queueing forever.
//
// Caveat, documented rather than papered over: dedup ledgers are
// per-backend, so a request re-routed *after* its original backend
// executed it (crash after exec, before the response escaped) can execute
// once more on the failover backend. Deterministic requests still return
// bit-identical bodies; the consistency harness measures exactly this.
//
// Verb handling: schedule/simulate shard; cancel broadcasts to every
// healthy backend and ORs the results; stats answers inline with router
// state; shutdown drains the forward queues, then broadcasts shutdown to
// the fleet, then answers. Front EOF drains without killing backends.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "router/ring.hpp"
#include "service/admission.hpp"
#include "service/metrics_export.hpp"
#include "service/transport.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

namespace resched::router {

struct RouterBackend {
  std::string name;  ///< defaults to "host:port" when empty
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t weight = 1;
};

struct RouterOptions {
  std::vector<RouterBackend> backends;
  std::size_t vnodes_per_weight = 64;

  /// Same-backend attempts per forward (the resilient client's
  /// max_attempts); past these the request re-routes.
  std::size_t attempts_per_backend = 2;
  double backoff_initial_ms = 10.0;
  double backoff_max_ms = 200.0;
  double backoff_multiplier = 2.0;

  /// How often the probe thread re-dials unhealthy backends.
  double probe_interval_ms = 200.0;

  /// Per-backend forward-queue capacity; a full queue rejects with
  /// `overloaded` (backpressure, same contract as backend admission).
  std::size_t queue_capacity_per_backend = 256;

  /// Prometheus textfile (empty = disabled), rewritten atomically every
  /// metrics_interval_ms and once more on exit.
  std::string metrics_out_path;
  double metrics_interval_ms = 1000.0;
};

class RescheddRouter {
 public:
  /// The router serves `front` until a shutdown verb or front EOF.
  RescheddRouter(service::Transport& front, RouterOptions options);

  RescheddRouter(const RescheddRouter&) = delete;
  RescheddRouter& operator=(const RescheddRouter&) = delete;

  /// Blocks: reads request lines from the front transport, routes them,
  /// and returns once the fleet is drained (shutdown verb broadcasts
  /// shutdown to every backend first; front EOF does not).
  void Serve();

  /// Test hook: current health flag of backend `index`.
  bool BackendHealthy(std::size_t index) const;

 private:
  /// Shared state of one cancel broadcast fanned out across the forwarder
  /// queues. Cancels must ride the per-backend forwarder connections: a
  /// backend transport serves one connection at a time, so a side-channel
  /// dial would park in the backlog behind the forwarder's own persistent
  /// connection and wedge the front thread.
  struct CancelFanout {
    CancelFanout(std::string id_, std::size_t shares)
        : id(std::move(id_)), remaining(shares) {}
    std::string id;                      ///< front-facing request id
    std::atomic<std::size_t> remaining;  ///< shares still unanswered
    std::atomic<bool> any_reached{false};
    std::atomic<bool> cancelled{false};
  };

  /// One routed request in flight between the reader and a forwarder.
  struct RouteItem {
    std::string line;    ///< forwarded request line (carries an id)
    std::string id;      ///< extracted/assigned request id
    std::string tenant;  ///< for per-tenant counters only
    std::vector<std::size_t> preference;  ///< ring failover order
    std::size_t pos = 0;  ///< index into preference of the current target
    std::shared_ptr<CancelFanout> cancel;  ///< set for cancel shares only
  };

  struct BackendState {
    RouterBackend cfg;
    std::unique_ptr<service::BoundedQueue<RouteItem>> queue;
    std::atomic<bool> healthy{true};
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> rerouted{0};
    std::thread worker;
  };

  /// Returns true when `line` carried a shutdown verb (Serve then drains
  /// and stops); all other verbs are fully handled here.
  bool HandleLine(const std::string& line, std::string& shutdown_id);

  /// Routes one schedule/simulate (or unclassifiable) line to the first
  /// healthy backend in its preference order.
  void RouteLine(std::string line, std::string id, std::string tenant,
                 std::uint64_t point);

  /// Enqueues one cancel share onto every healthy backend's forward
  /// queue; the last share to complete ORs the `cancelled` results into
  /// one front response (see CancelFanout).
  void BroadcastCancel(const std::string& line, const std::string& id);

  /// Records one finished cancel share; the share that drops `remaining`
  /// to zero writes the aggregated response.
  void CancelShareDone(CancelFanout& fanout, bool reached, bool cancelled)
      RESCHED_EXCLUDES(write_mu_);

  void ForwarderLoop(std::size_t index);
  void ProbeLoop();
  void MetricsLoop();

  void WriteFront(const std::string& line) RESCHED_EXCLUDES(write_mu_);
  void CountTenantForward(const std::string& tenant)
      RESCHED_EXCLUDES(tenants_mu_);
  std::string StatsBody() RESCHED_EXCLUDES(tenants_mu_);
  std::vector<service::MetricFamily> BuildMetricFamilies()
      RESCHED_EXCLUDES(tenants_mu_);
  void WriteMetricsNow();

  /// Drains the forward queues; when `broadcast_shutdown`, also sends a
  /// shutdown verb to every backend afterwards.
  void Drain(bool broadcast_shutdown, const std::string& shutdown_id);

  service::Transport& front_;
  RouterOptions options_;  ///< backend names are normalized in the ctor
  HashRing ring_;
  std::vector<std::unique_ptr<BackendState>> backends_;
  WallTimer uptime_;

  Mutex write_mu_;  ///< serializes front WriteLine across forwarders

  Mutex tenants_mu_;
  std::map<std::string, std::uint64_t> tenant_forwarded_
      RESCHED_GUARDED_BY(tenants_mu_);

  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> unavailable_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> cancels_{0};
  std::atomic<std::uint64_t> next_assigned_id_{0};
  std::atomic<std::uint64_t> metrics_writes_{0};
  std::atomic<std::uint64_t> metrics_errors_{0};

  std::thread probe_thread_;
  std::thread metrics_thread_;
  Mutex stop_mu_;
  CondVar stop_cv_;
  bool stop_ RESCHED_GUARDED_BY(stop_mu_) = false;
};

}  // namespace resched::router
