#include "router/router.hpp"

#include <exception>
#include <utility>

#include "io/instance_hash.hpp"
#include "service/client.hpp"
#include "service/framing.hpp"
#include "service/protocol.hpp"
#include "util/json.hpp"

namespace resched::router {
namespace {

using service::ClientEndpoint;
using service::ClientOptions;
using service::ErrorBody;
using service::OkBody;
using service::RescheddClient;
using service::WithId;

JsonValue AsInt64(std::uint64_t v) {
  return JsonValue(static_cast<std::int64_t>(v));
}

}  // namespace

RescheddRouter::RescheddRouter(service::Transport& front,
                               RouterOptions options)
    : front_(front),
      options_(std::move(options)),
      ring_(
          [&] {
            std::vector<std::string> names;
            for (RouterBackend& b : options_.backends) {
              if (b.name.empty()) {
                b.name = b.host + ":" + std::to_string(b.port);
              }
              names.push_back(b.name);
            }
            return names;
          }(),
          [&] {
            std::vector<std::uint32_t> weights;
            for (const RouterBackend& b : options_.backends) {
              weights.push_back(b.weight);
            }
            return weights;
          }(),
          options_.vnodes_per_weight) {
  for (const RouterBackend& cfg : options_.backends) {
    auto state = std::make_unique<BackendState>();
    state->cfg = cfg;
    state->queue = std::make_unique<service::BoundedQueue<RouteItem>>(
        options_.queue_capacity_per_backend);
    backends_.push_back(std::move(state));
  }
}

bool RescheddRouter::BackendHealthy(std::size_t index) const {
  return backends_.at(index)->healthy.load(std::memory_order_relaxed);
}

void RescheddRouter::WriteFront(const std::string& line) {
  MutexLock lock(write_mu_);
  // resched-lint: allow(lock-held-over-blocking-call) — the front write
  // mutex exists precisely to serialize this blocking write across
  // forwarder threads; nothing else ever waits on it.
  (void)front_.WriteLine(line);
}

void RescheddRouter::CountTenantForward(const std::string& tenant) {
  MutexLock lock(tenants_mu_);
  ++tenant_forwarded_[tenant];
}

void RescheddRouter::Serve() {
  front_.SetGreeting(service::HandshakeLine());
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    backends_[i]->worker = std::thread([this, i] { ForwarderLoop(i); });
  }
  probe_thread_ = std::thread([this] { ProbeLoop(); });
  if (!options_.metrics_out_path.empty()) {
    metrics_thread_ = std::thread([this] { MetricsLoop(); });
  }

  std::string line;
  bool shutdown_requested = false;
  std::string shutdown_id;
  while (front_.ReadLine(line)) {
    if (HandleLine(line, shutdown_id)) {
      shutdown_requested = true;
      break;
    }
  }
  Drain(shutdown_requested, shutdown_id);
}

bool RescheddRouter::HandleLine(const std::string& line,
                                std::string& shutdown_id) {
  JsonValue doc;
  try {
    doc = JsonValue::Parse(line, service::RequestParseLimits());
  } catch (const std::exception& e) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    WriteFront(WithId(
        "", ErrorBody(service::kErrParse, std::string("bad json: ") +
                          e.what())));
    return false;
  }

  // Light-touch classification: the router only needs verb, id, tenant and
  // the shard key. Everything else — including malformed-but-parsable
  // requests — is validated by the owning backend, so error bodies stay
  // byte-identical to a single-daemon deployment.
  std::string verb;
  std::string id;
  std::string tenant = service::kDefaultTenant;
  if (doc.IsObject()) {
    if (doc.Contains("verb") && doc.At("verb").IsString()) {
      verb = doc.At("verb").AsString();
    }
    if (doc.Contains("id") && doc.At("id").IsString()) {
      id = doc.At("id").AsString();
    }
    if (doc.Contains("tenant") && doc.At("tenant").IsString() &&
        service::ValidTenantName(doc.At("tenant").AsString())) {
      tenant = doc.At("tenant").AsString();
    }
  }

  if (verb == "shutdown") {
    shutdown_id = id.empty() ? "x" + std::to_string(next_assigned_id_.fetch_add(
                                         1, std::memory_order_relaxed))
                             : id;
    return true;
  }
  if (verb == "stats") {
    WriteFront(WithId(id, StatsBody()));
    return false;
  }

  // Forwarded lines must carry an id: the resilient client's retry path is
  // only idempotent (and response matching only works) with one.
  std::string forwarded = line;
  if (doc.IsObject() && id.empty()) {
    id = "x" + std::to_string(
                   next_assigned_id_.fetch_add(1, std::memory_order_relaxed));
    doc.AsObject()["id"] = id;
    forwarded = doc.Dump(-1);
  }

  if (verb == "cancel") {
    BroadcastCancel(forwarded, id);
    return false;
  }

  // schedule / simulate / anything the backend should reject itself:
  // shard on the canonical instance text when present (same instance →
  // same backend → warm cache), else on the raw line.
  std::uint64_t point = 0;
  if (doc.IsObject() && doc.Contains("instance")) {
    const Digest128 d = HashCanonicalText(doc.At("instance").Dump(-1));
    point = d.hi ^ d.lo;
  } else {
    const Digest128 d = HashCanonicalText(forwarded);
    point = d.hi ^ d.lo;
  }
  RouteLine(std::move(forwarded), std::move(id), std::move(tenant), point);
  return false;
}

void RescheddRouter::RouteLine(std::string line, std::string id,
                               std::string tenant, std::uint64_t point) {
  RouteItem item;
  item.line = std::move(line);
  item.id = std::move(id);
  item.tenant = std::move(tenant);
  item.preference = ring_.Preference(point);

  for (std::size_t pos = 0; pos < item.preference.size(); ++pos) {
    BackendState& backend = *backends_[item.preference[pos]];
    if (!backend.healthy.load(std::memory_order_relaxed)) continue;
    item.pos = pos;
    const std::string item_id = item.id;
    const std::string item_tenant = item.tenant;
    switch (backend.queue->TryPush(std::move(item))) {
      case service::PushOutcome::kAccepted:
        CountTenantForward(item_tenant);
        return;
      case service::PushOutcome::kFull:
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        WriteFront(WithId(item_id,
                          ErrorBody(service::kErrOverloaded,
                                    "router forward queue is full")));
        return;
      case service::PushOutcome::kClosed:
        WriteFront(WithId(item_id, ErrorBody(service::kErrShuttingDown,
                                             "router is draining")));
        return;
    }
  }
  unavailable_.fetch_add(1, std::memory_order_relaxed);
  WriteFront(WithId(item.id,
                    ErrorBody(service::kErrUnavailable,
                              "every candidate backend is unhealthy")));
}

void RescheddRouter::BroadcastCancel(const std::string& line,
                                     const std::string& id) {
  cancels_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::size_t> healthy;
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    if (backends_[b]->healthy.load(std::memory_order_relaxed)) {
      healthy.push_back(b);
    }
  }
  if (healthy.empty()) {
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    WriteFront(WithId(id, ErrorBody(service::kErrUnavailable,
                                    "every candidate backend is unhealthy")));
    return;
  }
  const auto fanout = std::make_shared<CancelFanout>(id, healthy.size());
  for (const std::size_t b : healthy) {
    RouteItem item;
    item.line = line;
    item.id = id;
    item.cancel = fanout;
    if (backends_[b]->queue->TryPush(std::move(item)) !=
        service::PushOutcome::kAccepted) {
      // Full or draining: that share of the broadcast goes unanswered.
      CancelShareDone(*fanout, /*reached=*/false, /*cancelled=*/false);
    }
  }
}

void RescheddRouter::CancelShareDone(CancelFanout& fanout, bool reached,
                                     bool cancelled) {
  if (reached) fanout.any_reached.store(true, std::memory_order_relaxed);
  if (cancelled) fanout.cancelled.store(true, std::memory_order_relaxed);
  if (fanout.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (!fanout.any_reached.load(std::memory_order_relaxed)) {
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    WriteFront(WithId(fanout.id,
                      ErrorBody(service::kErrUnavailable,
                                "every candidate backend is unhealthy")));
    return;
  }
  JsonObject body;
  body["verb"] = "cancel";
  body["cancelled"] = fanout.cancelled.load(std::memory_order_relaxed);
  WriteFront(WithId(fanout.id, OkBody(std::move(body))));
}

void RescheddRouter::ForwarderLoop(std::size_t index) {
  BackendState& self = *backends_[index];
  ClientOptions copts;
  copts.max_attempts = options_.attempts_per_backend;
  copts.backoff_initial_ms = options_.backoff_initial_ms;
  copts.backoff_max_ms = options_.backoff_max_ms;
  copts.backoff_multiplier = options_.backoff_multiplier;
  RescheddClient client(ClientEndpoint::Tcp(self.cfg.host, self.cfg.port),
                        copts);

  RouteItem item;
  while (self.queue->Pop(item)) {
    if (item.cancel) {
      // A share of a cancel broadcast: report into the fanout instead of
      // writing a response, and never re-route (an unreachable backend
      // cannot be running the target either).
      bool reached = false;
      bool cancelled = false;
      try {
        const RescheddClient::Result result = client.Submit(item.line);
        reached = true;
        const JsonValue resp = JsonValue::Parse(result.response);
        cancelled = resp.IsObject() && resp.Contains("cancelled") &&
                    resp.At("cancelled").IsBool() &&
                    resp.At("cancelled").AsBool();
      } catch (const SocketError&) {
        self.healthy.store(false, std::memory_order_relaxed);
        self.failed.fetch_add(1, std::memory_order_relaxed);
      }
      CancelShareDone(*item.cancel, reached, cancelled);
      continue;
    }
    try {
      const RescheddClient::Result result = client.Submit(item.line);
      self.forwarded.fetch_add(1, std::memory_order_relaxed);
      WriteFront(result.response);
      continue;
    } catch (const SocketError&) {
      // The backend stayed dead through the client's own retry budget:
      // stop sending it traffic and hand the request to the next backend
      // in its preference order.
      self.healthy.store(false, std::memory_order_relaxed);
      self.failed.fetch_add(1, std::memory_order_relaxed);
    }
    bool rerouted = false;
    for (std::size_t pos = item.pos + 1;
         pos < item.preference.size() && !rerouted; ++pos) {
      BackendState& next = *backends_[item.preference[pos]];
      if (!next.healthy.load(std::memory_order_relaxed)) continue;
      RouteItem moved = item;
      moved.pos = pos;
      switch (next.queue->TryPush(std::move(moved))) {
        case service::PushOutcome::kAccepted:
          self.rerouted.fetch_add(1, std::memory_order_relaxed);
          rerouted = true;
          break;
        case service::PushOutcome::kFull:
          overloaded_.fetch_add(1, std::memory_order_relaxed);
          WriteFront(WithId(item.id,
                            ErrorBody(service::kErrOverloaded,
                                      "router forward queue is full")));
          rerouted = true;  // answered; stop searching
          break;
        case service::PushOutcome::kClosed:
          WriteFront(WithId(item.id, ErrorBody(service::kErrShuttingDown,
                                               "router is draining")));
          rerouted = true;
          break;
      }
    }
    if (!rerouted) {
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      WriteFront(WithId(item.id,
                        ErrorBody(service::kErrUnavailable,
                                  "every candidate backend is unhealthy")));
    }
  }
}

void RescheddRouter::ProbeLoop() {
  MutexLock lock(stop_mu_);
  while (!stop_) {
    // resched-lint: allow(lock-held-over-blocking-call) — WaitFor releases
    // stop_mu_ while sleeping; the probes below run with it held only
    // because nothing else contends for it (Drain takes it once, to stop).
    (void)stop_cv_.WaitFor(lock, options_.probe_interval_ms / 1000.0);
    if (stop_) return;
    for (const std::unique_ptr<BackendState>& backend : backends_) {
      if (backend->healthy.load(std::memory_order_relaxed)) continue;
      try {
        StreamSocket sock =
            StreamSocket::ConnectTcp(backend->cfg.host, backend->cfg.port);
        service::FrameReader reader(sock);
        std::string greeting;
        if (reader.Read(greeting) == service::FrameResult::kFrame) {
          backend->healthy.store(true, std::memory_order_relaxed);
        }
      } catch (const std::exception&) {
        // Still down; the next tick re-dials.
      }
    }
  }
}

std::string RescheddRouter::StatsBody() {
  JsonObject body;
  body["verb"] = "stats";
  body["router"] = true;
  body["uptime_s"] = uptime_.ElapsedSeconds();
  body["parse_errors"] = AsInt64(parse_errors_.load(std::memory_order_relaxed));
  body["unavailable"] = AsInt64(unavailable_.load(std::memory_order_relaxed));
  body["overloaded"] = AsInt64(overloaded_.load(std::memory_order_relaxed));
  body["cancels"] = AsInt64(cancels_.load(std::memory_order_relaxed));

  JsonObject backends;
  for (const std::unique_ptr<BackendState>& backend : backends_) {
    JsonObject b;
    b["host"] = backend->cfg.host;
    b["port"] = static_cast<std::int64_t>(backend->cfg.port);
    b["weight"] = static_cast<std::int64_t>(backend->cfg.weight);
    b["healthy"] = backend->healthy.load(std::memory_order_relaxed);
    b["queue_depth"] = backend->queue->Size();
    b["forwarded"] =
        AsInt64(backend->forwarded.load(std::memory_order_relaxed));
    b["failed"] = AsInt64(backend->failed.load(std::memory_order_relaxed));
    b["rerouted"] = AsInt64(backend->rerouted.load(std::memory_order_relaxed));
    backends[backend->cfg.name] = std::move(b);
  }
  body["backends"] = std::move(backends);

  JsonObject tenants;
  {
    MutexLock lock(tenants_mu_);
    for (const auto& [tenant, forwarded] : tenant_forwarded_) {
      JsonObject t;
      t["forwarded"] = AsInt64(forwarded);
      tenants[tenant] = std::move(t);
    }
  }
  body["tenants"] = std::move(tenants);
  return OkBody(std::move(body));
}

std::vector<service::MetricFamily> RescheddRouter::BuildMetricFamilies() {
  std::vector<service::MetricFamily> families;

  families.push_back(service::MetricFamily{
      "reschedd_router_up",
      "1 while the router process is serving.",
      "gauge",
      {service::MetricSample{{}, 1.0}}});

  service::MetricFamily events{
      "reschedd_router_requests_total",
      "Router-level request events by kind.",
      "counter",
      {}};
  const auto add_event = [&events](const char* kind, std::uint64_t v) {
    service::MetricSample s;
    s.labels["event"] = kind;
    s.value = static_cast<double>(v);
    events.samples.push_back(std::move(s));
  };
  add_event("parse_error", parse_errors_.load(std::memory_order_relaxed));
  add_event("unavailable", unavailable_.load(std::memory_order_relaxed));
  add_event("overloaded", overloaded_.load(std::memory_order_relaxed));
  add_event("cancel", cancels_.load(std::memory_order_relaxed));
  families.push_back(std::move(events));

  service::MetricFamily healthy{
      "reschedd_router_backend_healthy",
      "1 when the backend is in rotation, 0 while marked unhealthy.",
      "gauge",
      {}};
  service::MetricFamily depth{
      "reschedd_router_backend_queue_depth",
      "Requests waiting in the per-backend forward queue.",
      "gauge",
      {}};
  service::MetricFamily per_backend{
      "reschedd_router_backend_requests_total",
      "Per-backend forwarding outcomes.",
      "counter",
      {}};
  for (const std::unique_ptr<BackendState>& backend : backends_) {
    const std::string& name = backend->cfg.name;
    service::MetricSample h;
    h.labels["backend"] = name;
    h.value = backend->healthy.load(std::memory_order_relaxed) ? 1.0 : 0.0;
    healthy.samples.push_back(std::move(h));
    service::MetricSample d;
    d.labels["backend"] = name;
    d.value = static_cast<double>(backend->queue->Size());
    depth.samples.push_back(std::move(d));
    const auto add_outcome = [&per_backend, &name](const char* outcome,
                                                   std::uint64_t v) {
      service::MetricSample s;
      s.labels["backend"] = name;
      s.labels["outcome"] = outcome;
      s.value = static_cast<double>(v);
      per_backend.samples.push_back(std::move(s));
    };
    add_outcome("forwarded", backend->forwarded.load(std::memory_order_relaxed));
    add_outcome("failed", backend->failed.load(std::memory_order_relaxed));
    add_outcome("rerouted", backend->rerouted.load(std::memory_order_relaxed));
  }
  families.push_back(std::move(healthy));
  families.push_back(std::move(depth));
  families.push_back(std::move(per_backend));

  service::MetricFamily tenants{
      "reschedd_router_tenant_forwarded_total",
      "Requests forwarded to the fleet, by tenant.",
      "counter",
      {}};
  {
    MutexLock lock(tenants_mu_);
    for (const auto& [tenant, forwarded] : tenant_forwarded_) {
      service::MetricSample s;
      s.labels["tenant"] = tenant;
      s.value = static_cast<double>(forwarded);
      tenants.samples.push_back(std::move(s));
    }
  }
  families.push_back(std::move(tenants));
  return families;
}

void RescheddRouter::WriteMetricsNow() {
  const std::string text = service::RenderPrometheus(BuildMetricFamilies());
  std::string error;
  if (service::WriteTextfileAtomic(options_.metrics_out_path, text, &error)) {
    metrics_writes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RescheddRouter::MetricsLoop() {
  MutexLock lock(stop_mu_);
  while (!stop_) {
    // resched-lint: allow(lock-held-over-blocking-call) — same contract as
    // ProbeLoop: stop_mu_ exists only to carry the stop signal.
    (void)stop_cv_.WaitFor(lock, options_.metrics_interval_ms / 1000.0);
    if (stop_) return;
    WriteMetricsNow();
  }
}

void RescheddRouter::Drain(bool broadcast_shutdown,
                           const std::string& shutdown_id) {
  for (const std::unique_ptr<BackendState>& backend : backends_) {
    backend->queue->Close();
  }
  for (const std::unique_ptr<BackendState>& backend : backends_) {
    if (backend->worker.joinable()) backend->worker.join();
  }

  if (broadcast_shutdown) {
    // The fleet drains before the broadcast, so every forwarded request
    // was answered before its backend is told to exit.
    for (const std::unique_ptr<BackendState>& backend : backends_) {
      try {
        ClientOptions copts;
        copts.max_attempts = 1;
        RescheddClient client(
            ClientEndpoint::Tcp(backend->cfg.host, backend->cfg.port), copts);
        JsonObject req;
        req["verb"] = "shutdown";
        req["id"] = shutdown_id + "." + backend->cfg.name;
        (void)client.Submit(JsonValue(std::move(req)).Dump(-1));
      } catch (const std::exception&) {
        // Already gone — which is what shutdown wanted anyway.
      }
    }
    JsonObject body;
    body["verb"] = "shutdown";
    body["drained"] = true;
    WriteFront(WithId(shutdown_id, OkBody(std::move(body))));
  }

  {
    MutexLock lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.NotifyAll();
  if (probe_thread_.joinable()) probe_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  if (!options_.metrics_out_path.empty()) WriteMetricsNow();
}

}  // namespace resched::router
