// Weighted consistent-hash ring for the reschedd router.
//
// Each backend contributes `weight * vnodes_per_weight` virtual nodes,
// placed at Fnv1a64(name + "#" + k). A request's shard point looks up the
// first vnode clockwise; its *preference list* is the distinct-backend
// successor order from that point. Two properties make this the right
// structure for a scheduling fleet:
//
//   * Stability — adding or removing one backend only remaps the keys
//     whose successor vnode belonged to it (~1/N of the space), so the
//     per-backend dedup ledgers and result caches stay warm across
//     rebalances.
//   * Deterministic failover — the preference list is a pure function of
//     the shard point and the ring layout, so every router instance (and
//     the consistency harness) agrees on which backend is "next" when the
//     primary is down, without coordination.
//
// The ring itself is immutable and knows nothing about health; the router
// walks the preference list skipping backends it has marked unhealthy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace resched::router {

class HashRing {
 public:
  /// `names` and `weights` are parallel; weight 0 is promoted to 1 (a
  /// configured backend always owns some keyspace).
  HashRing(const std::vector<std::string>& names,
           const std::vector<std::uint32_t>& weights,
           std::size_t vnodes_per_weight = 64);

  std::size_t BackendCount() const { return backend_count_; }
  std::size_t VnodeCount() const { return nodes_.size(); }

  /// Index of the backend owning `point` (first vnode at or after it,
  /// wrapping). Requires a non-empty ring.
  std::size_t Primary(std::uint64_t point) const;

  /// All backends in successor order from `point`, each exactly once —
  /// element 0 is Primary(point), the rest is the failover order.
  std::vector<std::size_t> Preference(std::uint64_t point) const;

 private:
  struct Node {
    std::uint64_t point;
    std::uint32_t backend;
  };

  std::vector<Node> nodes_;  ///< sorted by (point, backend)
  std::size_t backend_count_ = 0;
};

}  // namespace resched::router
