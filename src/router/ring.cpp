#include "router/ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "io/instance_hash.hpp"

namespace resched::router {
namespace {

/// FNV-1a offset basis — the standard starting state for the vnode hash
/// stream (the instance digest uses different bases, so ring points and
/// shard points are independent streams).
constexpr std::uint64_t kRingBasis = 0xcbf29ce484222325ULL;

/// Avalanche finalizer (the murmur3 fmix64 constants). Raw FNV-1a mixes
/// the trailing bytes of short labels — exactly the part of a vnode label
/// that varies — into the high bits poorly, and the ring is ordered by
/// those high bits; without this step vnode points cluster by label
/// prefix and ownership shares drift far from the configured weights.
std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

HashRing::HashRing(const std::vector<std::string>& names,
                   const std::vector<std::uint32_t>& weights,
                   std::size_t vnodes_per_weight) {
  if (names.size() != weights.size()) {
    throw std::invalid_argument("HashRing: names/weights size mismatch");
  }
  backend_count_ = names.size();
  if (vnodes_per_weight == 0) vnodes_per_weight = 1;
  for (std::size_t b = 0; b < names.size(); ++b) {
    const std::uint32_t weight = weights[b] == 0 ? 1u : weights[b];
    const std::size_t vnodes = static_cast<std::size_t>(weight) *
                               vnodes_per_weight;
    for (std::size_t k = 0; k < vnodes; ++k) {
      const std::string label = names[b] + "#" + std::to_string(k);
      nodes_.push_back(Node{Mix64(Fnv1a64(label, kRingBasis)),
                            static_cast<std::uint32_t>(b)});
    }
  }
  // Point ties (hash collisions between vnodes) resolve by backend index
  // so the ring layout is a pure function of the configuration.
  std::sort(nodes_.begin(), nodes_.end(), [](const Node& a, const Node& b) {
    return a.point != b.point ? a.point < b.point : a.backend < b.backend;
  });
}

std::size_t HashRing::Primary(std::uint64_t point) const {
  if (nodes_.empty()) {
    throw std::logic_error("HashRing::Primary on an empty ring");
  }
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), point,
      [](const Node& n, std::uint64_t p) { return n.point < p; });
  return it == nodes_.end() ? nodes_.front().backend : it->backend;
}

std::vector<std::size_t> HashRing::Preference(std::uint64_t point) const {
  std::vector<std::size_t> order;
  if (nodes_.empty()) return order;
  order.reserve(backend_count_);
  std::vector<bool> seen(backend_count_, false);
  auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), point,
      [](const Node& n, std::uint64_t p) { return n.point < p; });
  if (it == nodes_.end()) it = nodes_.begin();
  for (std::size_t walked = 0;
       walked < nodes_.size() && order.size() < backend_count_; ++walked) {
    if (!seen[it->backend]) {
      seen[it->backend] = true;
      order.push_back(it->backend);
    }
    ++it;
    if (it == nodes_.end()) it = nodes_.begin();
  }
  return order;
}

}  // namespace resched::router
