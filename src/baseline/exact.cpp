#include "baseline/exact.hpp"

#include <algorithm>
#include <optional>

#include "baseline/isk_state.hpp"
#include "baseline/priority.hpp"
#include "sched/comm.hpp"
#include "util/timer.hpp"

namespace resched {

namespace {

struct Decision {
  TaskId task = kInvalidTask;
  std::size_t impl_index = 0;
  TargetKind target = TargetKind::kProcessor;
  std::size_t target_index = 0;
  isk::PlacementOutcome outcome;
};

class ExactSearch {
 public:
  ExactSearch(const Instance& instance, const ExactOptions& options)
      : instance_(instance),
        options_(options),
        tails_(ComputeTails(instance.graph)),
        deadline_(options.time_budget_seconds) {}

  ExactResult Run() {
    const std::size_t n = instance_.graph.NumTasks();
    isk::IskState root(instance_, instance_.platform.Device().Capacity());
    std::vector<Decision> current;
    std::vector<TimeT> ends(n, 0);
    std::vector<std::size_t> pending(n);
    for (std::size_t t = 0; t < n; ++t) {
      pending[t] =
          instance_.graph.Predecessors(static_cast<TaskId>(t)).size();
    }
    std::vector<bool> placed(n, false);

    truncated_ = false;
    best_obj_ = kTimeInfinity;
    Dfs(root, placed, pending, ends, current, 0, 0);

    ExactResult result;
    result.complete = !truncated_;
    result.nodes = nodes_;
    result.seconds = deadline_.ElapsedSeconds();
    result.schedule = Freeze();
    return result;
  }

 private:
  void Dfs(const isk::IskState& state, std::vector<bool>& placed,
           std::vector<std::size_t>& pending, std::vector<TimeT>& ends,
           std::vector<Decision>& current, std::size_t depth, TimeT obj) {
    const std::size_t n = instance_.graph.NumTasks();
    if (depth == n) {
      if (obj < best_obj_) {
        best_obj_ = obj;
        best_ = current;
        best_regions_ = state.Regions();
        best_reconfs_ = state.ControllerTimeline();
      }
      return;
    }
    if (truncated_) return;

    for (std::size_t ti = 0; ti < n; ++ti) {
      if (placed[ti] || pending[ti] != 0) continue;
      const auto t = static_cast<TaskId>(ti);
      const Task& task = instance_.graph.GetTask(t);

      // Domain-dependent ready times (communication extension).
      TimeT ready_hw = 0;
      TimeT ready_sw = 0;
      for (const TaskId p : instance_.graph.Predecessors(t)) {
        const Decision* pd = nullptr;
        for (const Decision& d : current) {
          if (d.task == p) {
            pd = &d;
            break;
          }
        }
        RESCHED_CHECK(pd != nullptr);
        const bool p_hw = pd->target == TargetKind::kRegion;
        ready_hw = std::max(ready_hw,
                            pd->outcome.end +
                                CommGap(instance_.platform, instance_.graph,
                                        p, t, p_hw, true));
        ready_sw = std::max(ready_sw,
                            pd->outcome.end +
                                CommGap(instance_.platform, instance_.graph,
                                        p, t, p_hw, false));
      }

      for (std::size_t i = 0; i < task.impls.size(); ++i) {
        const Implementation& impl = task.impls[i];
        std::vector<Decision> choices;
        if (impl.IsSoftware()) {
          std::vector<TimeT> seen;
          for (std::size_t core = 0; core < state.NumCores(); ++core) {
            const TimeT free = state.CoreFree(core);
            if (std::find(seen.begin(), seen.end(), free) != seen.end()) {
              continue;
            }
            seen.push_back(free);
            choices.push_back(
                Decision{t, i, TargetKind::kProcessor, core, {}});
          }
        } else {
          for (std::size_t s = 0; s < state.Regions().size(); ++s) {
            if (!impl.res.FitsWithin(state.Regions()[s].res)) continue;
            choices.push_back(Decision{t, i, TargetKind::kRegion, s, {}});
          }
          if (state.HasFreeCapacity(impl.res)) {
            choices.push_back(Decision{
                t, i, TargetKind::kRegion, state.Regions().size(), {}});
          }
        }

        for (Decision d : choices) {
          if ((options_.max_nodes != 0 && nodes_ >= options_.max_nodes) ||
              (nodes_ % 4096 == 0 && deadline_.Expired())) {
            truncated_ = true;
            return;
          }
          ++nodes_;

          isk::IskState child = state;
          if (d.target == TargetKind::kProcessor) {
            d.outcome = child.PlaceOnCore(t, impl, d.target_index, ready_sw);
          } else if (d.target_index == state.Regions().size()) {
            d.outcome = child.PlaceInNewRegion(t, impl, ready_hw);
          } else {
            d.outcome = child.PlaceInRegion(t, impl, d.target_index,
                                            ready_hw,
                                            options_.module_reuse);
          }
          const TimeT child_obj =
              std::max(obj, d.outcome.end + tails_[ti]);
          if (child_obj >= best_obj_) continue;  // admissible bound prune

          placed[ti] = true;
          for (const TaskId s : instance_.graph.Successors(t)) {
            --pending[static_cast<std::size_t>(s)];
          }
          ends[ti] = d.outcome.end;
          current.push_back(d);

          Dfs(child, placed, pending, ends, current, depth + 1, child_obj);

          current.pop_back();
          placed[ti] = false;
          for (const TaskId s : instance_.graph.Successors(t)) {
            ++pending[static_cast<std::size_t>(s)];
          }
          if (truncated_) return;
        }
      }
    }
  }

  Schedule Freeze() const {
    const std::size_t n = instance_.graph.NumTasks();
    RESCHED_CHECK_MSG(best_.size() == n, "exact search found no schedule");
    Schedule schedule;
    schedule.task_slots.resize(n);
    for (const Decision& d : best_) {
      TaskSlot& slot = schedule.task_slots[static_cast<std::size_t>(d.task)];
      slot.task = d.task;
      slot.impl_index = d.impl_index;
      slot.target = d.target;
      slot.target_index = d.target_index;
      slot.start = d.outcome.start;
      slot.end = d.outcome.end;
    }
    for (const isk::IskRegion& region : best_regions_) {
      RegionInfo info;
      info.res = region.res;
      info.reconf_time = region.reconf_time;
      info.tasks = region.tasks;
      schedule.regions.push_back(std::move(info));
    }
    schedule.reconfigurations = best_reconfs_;
    schedule.makespan = schedule.ComputeMakespan();
    schedule.algorithm = "exact";
    return schedule;
  }

  const Instance& instance_;
  const ExactOptions& options_;
  std::vector<TimeT> tails_;
  Deadline deadline_;

  TimeT best_obj_ = kTimeInfinity;
  std::vector<Decision> best_;
  std::vector<isk::IskRegion> best_regions_;
  std::vector<ReconfSlot> best_reconfs_;
  std::size_t nodes_ = 0;
  bool truncated_ = false;
};

}  // namespace

ExactResult ScheduleExact(const Instance& instance,
                          const ExactOptions& options) {
  instance.graph.Validate(instance.platform.Device());
  return ExactSearch(instance, options).Run();
}

}  // namespace resched
