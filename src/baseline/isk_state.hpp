// Incremental placement state for the IS-k baseline scheduler.
//
// IS-k builds its schedule left-to-right: once a window of k tasks is
// committed it is never revisited. The state therefore only needs the
// *frontier* of every shared resource — per-core free times, per-region
// free times and currently loaded modules, and the reconfiguration
// controller's busy timeline (kept in full because prefetched
// reconfigurations may be inserted into past gaps). The state is cheaply
// copyable, which the window branch-and-bound uses to explore alternative
// placements.
#pragma once

#include <optional>
#include <vector>

#include "sched/schedule.hpp"

namespace resched::isk {

/// A region created by IS-k.
struct IskRegion {
  ResourceVec res;
  TimeT reconf_time = 0;
  TimeT free_at = 0;             ///< end of the last task executed here
  std::int32_t loaded_module = -1;  ///< module currently configured
  std::vector<TaskId> tasks;     ///< execution order
};

/// Result of placing one task (start/end plus the induced reconfiguration,
/// if any).
struct PlacementOutcome {
  TimeT start = 0;
  TimeT end = 0;
  std::optional<ReconfSlot> reconf;
};

class IskState {
 public:
  IskState(const Instance& instance, const ResourceVec& avail_cap);

  const std::vector<IskRegion>& Regions() const { return regions_; }
  std::size_t NumCores() const { return core_free_.size(); }
  const ResourceVec& UsedCap() const { return used_cap_; }
  const std::vector<ReconfSlot>& ControllerTimeline() const {
    return controller_;
  }

  bool HasFreeCapacity(const ResourceVec& res) const;

  /// Earliest start >= `lo` of a gap of `duration` on controller `c`.
  TimeT EarliestControllerGap(std::size_t c, TimeT lo, TimeT duration) const;

  /// (controller, start) pair with the overall earliest gap across all
  /// controllers.
  std::pair<std::size_t, TimeT> BestControllerGap(TimeT lo,
                                                  TimeT duration) const;

  // ---- placement operations (mutating) ---------------------------------
  /// Runs `t` with software implementation `impl` on `core`; the task is
  /// ready (all predecessors done) at `ready`.
  PlacementOutcome PlaceOnCore(TaskId t, const Implementation& impl,
                               std::size_t core, TimeT ready);

  /// Runs `t` with hardware implementation `impl` in existing region `s`.
  /// Requires impl.res to fit the region. Handles module reuse: no
  /// reconfiguration when the region already holds impl's module.
  PlacementOutcome PlaceInRegion(TaskId t, const Implementation& impl,
                                 std::size_t s, TimeT ready,
                                 bool module_reuse);

  /// Creates a region sized for `impl` and runs `t` there. The first
  /// configuration of a region is free (§III convention), so no
  /// reconfiguration slot is emitted.
  PlacementOutcome PlaceInNewRegion(TaskId t, const Implementation& impl,
                                    TimeT ready);

  /// Pre-creates an empty region of fixed size (used by the fixed-grid
  /// baseline, which partitions the fabric up front). The region starts
  /// unconfigured: its first task needs no reconfiguration (§III initial
  /// configuration convention).
  void AddEmptyRegion(const ResourceVec& res);

  TimeT CoreFree(std::size_t core) const { return core_free_.at(core); }

 private:
  void InsertControllerSlot(const ReconfSlot& slot);

  const Instance* instance_;
  ResourceVec avail_cap_;
  ResourceVec used_cap_;
  std::vector<TimeT> core_free_;
  std::vector<IskRegion> regions_;
  std::vector<ReconfSlot> controller_;  ///< sorted by start
};

}  // namespace resched::isk
