// Fixed-grid baseline: static equal-size reconfigurable slots.
//
// Related work the paper contrasts against (e.g. Ghiasi et al. [13])
// partitions the reconfigurable fabric into regions of equal dimensions up
// front and only schedules into those slots. This baseline reproduces that
// design point so the claim "equal regions limit the solution space and
// lead to suboptimal results" (§II) can be measured: the device capacity
// is split into `num_slots` identical regions and tasks are list-scheduled
// greedily onto {cores} ∪ {slots}, picking per task the earliest-finish
// (implementation, target) pair. Slots boot unconfigured, so the first
// module loaded into each slot costs a reconfiguration too.
//
// With num_slots == 0 (auto), every slot count in [1, 8] is tried and the
// best resulting makespan wins — an optimistic upper bound on what a fixed
// grid can do.
#pragma once

#include "sched/schedule.hpp"

namespace resched {

struct FixedGridOptions {
  /// Number of equal slots; 0 = try 1..max_auto_slots, keep the best.
  std::size_t num_slots = 0;
  std::size_t max_auto_slots = 8;
  bool module_reuse = true;
  bool run_floorplan = true;
  FloorplanOptions floorplan;
};

/// Schedules with a fixed equal-size region grid. Always returns a valid
/// schedule (tasks that fit no slot run in software).
Schedule ScheduleFixedGrid(const Instance& instance,
                           const FixedGridOptions& options = {});

}  // namespace resched
