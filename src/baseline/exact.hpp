// Exact reference scheduler for tiny instances.
//
// Exhaustive depth-first search over complete scheduling sequences: at
// every step any *ready* task (all predecessors placed) may be placed next
// with any implementation on any legal target, under the same
// earliest-start placement semantics as IS-k (greedy start times,
// reconfiguration prefetched into the earliest controller gap, regions
// sized at creation). Every IS-k trajectory is one such sequence, so a
// completed search is a certified lower bound for the whole IS-k family on
// the instance — the role the full MILP of Deiana et al. plays in the
// paper's framing. PA's phase structure can in rare cases place
// reconfigurations later than "earliest gap", which is outside this model,
// so PA is not formally dominated (in practice it almost always is).
//
// Complexity is factorial; intended for n <= ~8 in differential tests.
#pragma once

#include "sched/schedule.hpp"

namespace resched {

struct ExactOptions {
  /// Node cap; 0 = unlimited. When hit, the result is the best found and
  /// `complete` is false (the bound guarantee no longer holds).
  std::size_t max_nodes = 5'000'000;
  /// Wall-clock cap; <= 0 disables.
  double time_budget_seconds = 10.0;
  bool module_reuse = true;
};

struct ExactResult {
  Schedule schedule;
  bool complete = false;  ///< search ran to exhaustion
  std::size_t nodes = 0;
  double seconds = 0.0;
};

ExactResult ScheduleExact(const Instance& instance,
                          const ExactOptions& options = {});

}  // namespace resched
