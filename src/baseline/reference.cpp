#include "baseline/reference.hpp"

#include <algorithm>
#include <limits>

#include "baseline/priority.hpp"
#include "taskgraph/timing.hpp"

namespace resched {

Schedule ScheduleAllSoftware(const Instance& instance) {
  const TaskGraph& graph = instance.graph;
  const std::size_t n = graph.NumTasks();
  const std::vector<TimeT> blevels = ComputeBottomLevels(graph);

  Schedule schedule;
  schedule.task_slots.resize(n);
  std::vector<TimeT> core_free(instance.platform.NumProcessors(), 0);
  std::vector<TimeT> end(n, 0);
  std::vector<std::size_t> pending(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    pending[t] = graph.Predecessors(static_cast<TaskId>(t)).size();
  }

  std::vector<TaskId> ready;
  for (std::size_t t = 0; t < n; ++t) {
    if (pending[t] == 0) ready.push_back(static_cast<TaskId>(t));
  }

  std::size_t done = 0;
  while (done < n) {
    RESCHED_CHECK_MSG(!ready.empty(), "no ready task (cycle?)");
    std::stable_sort(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
      return blevels[static_cast<std::size_t>(a)] >
             blevels[static_cast<std::size_t>(b)];
    });
    const TaskId t = ready.front();
    ready.erase(ready.begin());
    const auto ti = static_cast<std::size_t>(t);

    TimeT ready_time = 0;
    for (const TaskId p : graph.Predecessors(t)) {
      ready_time = std::max(ready_time, end[static_cast<std::size_t>(p)]);
    }
    const std::size_t impl_index = graph.FastestSoftwareImpl(t);
    const Implementation& impl = graph.GetImpl(t, impl_index);

    // Earliest-finish core.
    std::size_t best_core = 0;
    for (std::size_t p = 1; p < core_free.size(); ++p) {
      if (core_free[p] < core_free[best_core]) best_core = p;
    }
    const TimeT start = std::max(ready_time, core_free[best_core]);

    TaskSlot& slot = schedule.task_slots[ti];
    slot.task = t;
    slot.impl_index = impl_index;
    slot.target = TargetKind::kProcessor;
    slot.target_index = best_core;
    slot.start = start;
    slot.end = start + impl.exec_time;
    core_free[best_core] = slot.end;
    end[ti] = slot.end;

    ++done;
    for (const TaskId s : graph.Successors(t)) {
      if (--pending[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }

  schedule.makespan = schedule.ComputeMakespan();
  schedule.algorithm = "all-SW";
  return schedule;
}

TimeT WorkLowerBound(const Instance& instance) {
  const TaskGraph& graph = instance.graph;

  // Minimum total work and the smallest hardware footprint any task can
  // have (for the optimistic concurrent-region count).
  TimeT total_work = 0;
  std::int64_t min_footprint = std::numeric_limits<std::int64_t>::max();
  for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
    const Task& task = graph.GetTask(static_cast<TaskId>(t));
    TimeT best = task.impls.front().exec_time;
    for (const Implementation& impl : task.impls) {
      best = std::min(best, impl.exec_time);
      if (impl.IsHardware()) {
        min_footprint = std::min(min_footprint, impl.res.Total());
      }
    }
    total_work += best;
  }

  std::size_t sites = instance.platform.NumProcessors();
  if (min_footprint < std::numeric_limits<std::int64_t>::max() &&
      min_footprint > 0) {
    const std::int64_t cap = instance.platform.Device().Capacity().Total();
    sites += static_cast<std::size_t>(cap / min_footprint);
  }
  if (sites == 0) return total_work;
  // Ceiling division keeps the bound valid for integer slot lengths.
  return (total_work + static_cast<TimeT>(sites) - 1) /
         static_cast<TimeT>(sites);
}

TimeT CombinedLowerBound(const Instance& instance) {
  return std::max(CriticalPathLowerBound(instance),
                  WorkLowerBound(instance));
}

TimeT CriticalPathLowerBound(const Instance& instance) {
  const TaskGraph& graph = instance.graph;
  TimingContext timing(graph);
  for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
    const Task& task = graph.GetTask(static_cast<TaskId>(t));
    TimeT best = task.impls.front().exec_time;
    for (const Implementation& impl : task.impls) {
      best = std::min(best, impl.exec_time);
    }
    timing.SetExecTime(static_cast<TaskId>(t), best);
  }
  return timing.Makespan();
}

}  // namespace resched
