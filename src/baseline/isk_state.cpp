#include "baseline/isk_state.hpp"

#include <algorithm>

namespace resched::isk {

IskState::IskState(const Instance& instance, const ResourceVec& avail_cap)
    : instance_(&instance),
      avail_cap_(avail_cap),
      used_cap_(instance.platform.Device().Model().ZeroVec()),
      core_free_(instance.platform.NumProcessors(), 0) {}

bool IskState::HasFreeCapacity(const ResourceVec& res) const {
  return (used_cap_ + res).FitsWithin(avail_cap_);
}

TimeT IskState::EarliestControllerGap(std::size_t c, TimeT lo,
                                      TimeT duration) const {
  TimeT candidate = lo;
  for (const ReconfSlot& busy : controller_) {
    if (busy.controller != c) continue;
    if (busy.end <= candidate) continue;
    if (busy.start >= candidate + duration) break;  // gap before `busy` fits
    candidate = busy.end;
  }
  return candidate;
}

std::pair<std::size_t, TimeT> IskState::BestControllerGap(
    TimeT lo, TimeT duration) const {
  std::size_t best_c = 0;
  TimeT best_start = kTimeInfinity;
  for (std::size_t c = 0; c < instance_->platform.NumReconfigurators(); ++c) {
    const TimeT start = EarliestControllerGap(c, lo, duration);
    if (start < best_start) {
      best_start = start;
      best_c = c;
    }
  }
  return {best_c, best_start};
}

PlacementOutcome IskState::PlaceOnCore(TaskId t, const Implementation& impl,
                                       std::size_t core, TimeT ready) {
  RESCHED_CHECK_MSG(impl.IsSoftware(), "PlaceOnCore with HW implementation");
  RESCHED_CHECK_MSG(core < core_free_.size(), "core out of range");
  RESCHED_DCHECK_MSG(ready >= 0, "negative ready time");
  PlacementOutcome out;
  out.start = std::max(ready, core_free_[core]);
  out.end = out.start + impl.exec_time;
  core_free_[core] = out.end;
  (void)t;
  return out;
}

PlacementOutcome IskState::PlaceInRegion(TaskId t, const Implementation& impl,
                                         std::size_t s, TimeT ready,
                                         bool module_reuse) {
  RESCHED_CHECK_MSG(impl.IsHardware(), "PlaceInRegion with SW implementation");
  RESCHED_CHECK_MSG(s < regions_.size(), "region out of range");
  IskRegion& region = regions_[s];
  RESCHED_CHECK_MSG(impl.res.FitsWithin(region.res),
                    "implementation does not fit region");

  PlacementOutcome out;
  const bool reuse = module_reuse && impl.module_id >= 0 &&
                     region.loaded_module == impl.module_id;
  if (reuse) {
    out.start = std::max(ready, region.free_at);
  } else {
    // The reconfiguration may be prefetched: it can run any time after the
    // region's previous task finishes, in the earliest controller gap.
    const auto [controller, reconf_start] =
        BestControllerGap(region.free_at, region.reconf_time);
    const TimeT reconf_end = reconf_start + region.reconf_time;
    ReconfSlot slot{s, t, reconf_start, reconf_end, controller};
    InsertControllerSlot(slot);
    out.reconf = slot;
    out.start = std::max(ready, reconf_end);
  }
  out.end = out.start + impl.exec_time;
  // Region exclusivity: IS-k builds left-to-right, so a task may never start
  // before the previous task in the same region has finished.
  RESCHED_DCHECK_MSG(out.start >= region.free_at,
                     "task overlaps its region's previous task");
  region.free_at = out.end;
  region.loaded_module = impl.module_id;
  region.tasks.push_back(t);
  return out;
}

PlacementOutcome IskState::PlaceInNewRegion(TaskId t,
                                            const Implementation& impl,
                                            TimeT ready) {
  RESCHED_CHECK_MSG(impl.IsHardware(),
                    "PlaceInNewRegion with SW implementation");
  RESCHED_CHECK_MSG(HasFreeCapacity(impl.res), "no capacity for new region");
  IskRegion region;
  region.res = impl.res;
  region.reconf_time = instance_->platform.ReconfTicks(region.res);
  region.loaded_module = impl.module_id;
  region.free_at = 0;
  regions_.push_back(std::move(region));
  used_cap_ += impl.res;
  RESCHED_DCHECK_MSG(used_cap_.FitsWithin(avail_cap_),
                     "FPGA capacity invariant broken by region creation");

  PlacementOutcome out;
  out.start = ready;  // initial configuration is free (§III convention)
  out.end = out.start + impl.exec_time;
  IskRegion& created = regions_.back();
  created.free_at = out.end;
  created.tasks.push_back(t);
  return out;
}

void IskState::AddEmptyRegion(const ResourceVec& res) {
  RESCHED_CHECK_MSG(HasFreeCapacity(res), "no capacity for fixed region");
  IskRegion region;
  region.res = res;
  region.reconf_time = instance_->platform.ReconfTicks(res);
  region.loaded_module = -1;
  region.free_at = 0;
  regions_.push_back(std::move(region));
  used_cap_ += res;
}

void IskState::InsertControllerSlot(const ReconfSlot& slot) {
  RESCHED_DCHECK_MSG(slot.start >= 0 && slot.end > slot.start,
                     "degenerate reconfiguration slot");
  const auto pos = std::upper_bound(
      controller_.begin(), controller_.end(), slot,
      [](const ReconfSlot& a, const ReconfSlot& b) { return a.start < b.start; });
  controller_.insert(pos, slot);
#if RESCHED_DCHECK_IS_ON
  // Reconfigurator exclusivity: the timeline must stay sorted by start and
  // slots sharing a controller must not overlap. Checked-build only — O(n)
  // per insertion.
  TimeT prev_start = 0;
  std::vector<TimeT> busy_until(instance_->platform.NumReconfigurators(), 0);
  for (const ReconfSlot& r : controller_) {
    RESCHED_DCHECK_MSG(r.start >= prev_start,
                       "controller timeline lost start ordering");
    prev_start = r.start;
    RESCHED_DCHECK_MSG(r.controller < busy_until.size(),
                       "reconfiguration on unknown controller");
    RESCHED_DCHECK_MSG(r.start >= busy_until[r.controller],
                       "reconfigurations overlap on one controller");
    busy_until[r.controller] = r.end;
  }
#endif
}

}  // namespace resched::isk
