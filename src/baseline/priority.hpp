// List-scheduling priorities for the IS-k baseline.
#pragma once

#include <vector>

#include "taskgraph/taskgraph.hpp"

namespace resched {

/// Bottom level (b-level) per task: the longest path from the task to any
/// sink, task execution counted with its *minimum* implementation time.
/// Scheduling high-b-level tasks first is the standard list-scheduling
/// priority; IS-k consumes its ready set in this order.
std::vector<TimeT> ComputeBottomLevels(const TaskGraph& graph);

/// Tail per task: b-level minus the task's own minimum execution time, i.e.
/// the lower bound on the work that must still run after the task ends.
/// Used as the admissible look-ahead in the window search objective.
std::vector<TimeT> ComputeTails(const TaskGraph& graph);

}  // namespace resched
