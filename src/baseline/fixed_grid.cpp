#include "baseline/fixed_grid.hpp"

#include <algorithm>

#include "baseline/isk_state.hpp"
#include "baseline/priority.hpp"
#include "sched/comm.hpp"
#include "util/timer.hpp"

namespace resched {

namespace {

/// One greedy list-scheduling pass against a fixed grid of `num_slots`
/// equal regions (0 slots = software-only). Returns the schedule (without
/// floorplan).
Schedule RunFixedGrid(const Instance& instance, std::size_t num_slots,
                      bool module_reuse) {
  const TaskGraph& graph = instance.graph;
  const std::size_t n = graph.NumTasks();
  const std::vector<TimeT> blevels = ComputeBottomLevels(graph);

  // Equal split of the device capacity (floored per kind).
  const ResourceVec& cap = instance.platform.Device().Capacity();
  ResourceVec slot_res(cap.size());
  if (num_slots > 0) {
    for (std::size_t k = 0; k < cap.size(); ++k) {
      slot_res[k] = cap[k] / static_cast<std::int64_t>(num_slots);
    }
  }

  isk::IskState state(instance, cap);
  if (!slot_res.IsZero()) {
    for (std::size_t s = 0; s < num_slots; ++s) {
      state.AddEmptyRegion(slot_res);
    }
  }

  Schedule schedule;
  schedule.task_slots.resize(n);
  std::vector<TimeT> end(n, 0);
  std::vector<std::size_t> pending(n, 0);
  std::vector<TaskId> ready;
  for (std::size_t t = 0; t < n; ++t) {
    pending[t] = graph.Predecessors(static_cast<TaskId>(t)).size();
    if (pending[t] == 0) ready.push_back(static_cast<TaskId>(t));
  }

  std::size_t done = 0;
  while (done < n) {
    RESCHED_CHECK_MSG(!ready.empty(), "no ready task (cycle?)");
    std::stable_sort(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
      return blevels[static_cast<std::size_t>(a)] >
             blevels[static_cast<std::size_t>(b)];
    });
    const TaskId t = ready.front();
    ready.erase(ready.begin());
    const auto ti = static_cast<std::size_t>(t);
    const Task& task = graph.GetTask(t);

    TimeT ready_hw = 0;
    TimeT ready_sw = 0;
    for (const TaskId p : graph.Predecessors(t)) {
      const TimeT end_p = end[static_cast<std::size_t>(p)];
      const bool p_hw = schedule.task_slots[static_cast<std::size_t>(p)]
                            .target == TargetKind::kRegion;
      ready_hw = std::max(end_p + CommGap(instance.platform, graph, p, t,
                                          p_hw, true),
                          ready_hw);
      ready_sw = std::max(end_p + CommGap(instance.platform, graph, p, t,
                                          p_hw, false),
                          ready_sw);
    }

    // Earliest-finish decision across every (impl, target) pair, probed on
    // a copy of the state.
    struct Best {
      TimeT finish = kTimeInfinity;
      std::size_t impl = 0;
      bool on_fpga = false;
      std::size_t index = 0;
    } best;
    for (std::size_t i = 0; i < task.impls.size(); ++i) {
      const Implementation& impl = task.impls[i];
      if (impl.IsSoftware()) {
        for (std::size_t core = 0; core < state.NumCores(); ++core) {
          const TimeT finish =
              std::max(ready_sw, state.CoreFree(core)) + impl.exec_time;
          if (finish < best.finish) {
            best = Best{finish, i, false, core};
          }
        }
      } else {
        for (std::size_t s = 0; s < state.Regions().size(); ++s) {
          if (!impl.res.FitsWithin(state.Regions()[s].res)) continue;
          isk::IskState probe = state;
          const isk::PlacementOutcome out =
              probe.PlaceInRegion(t, impl, s, ready_hw, module_reuse);
          if (out.end < best.finish) {
            best = Best{out.end, i, true, s};
          }
        }
      }
    }
    RESCHED_CHECK_MSG(best.finish < kTimeInfinity,
                      "task has no feasible placement (missing SW impl?)");

    const Implementation& impl = task.impls[best.impl];
    isk::PlacementOutcome out;
    if (best.on_fpga) {
      out = state.PlaceInRegion(t, impl, best.index, ready_hw, module_reuse);
    } else {
      out = state.PlaceOnCore(t, impl, best.index, ready_sw);
    }

    TaskSlot& slot = schedule.task_slots[ti];
    slot.task = t;
    slot.impl_index = best.impl;
    slot.target = best.on_fpga ? TargetKind::kRegion : TargetKind::kProcessor;
    slot.target_index = best.index;
    slot.start = out.start;
    slot.end = out.end;
    end[ti] = out.end;

    ++done;
    for (const TaskId s : graph.Successors(t)) {
      if (--pending[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }

  // Keep only slots that actually host tasks (empty fixed slots would
  // inflate the capacity/floorplan checks for nothing). Region indices in
  // task slots are remapped accordingly.
  std::vector<std::size_t> remap(state.Regions().size(), SIZE_MAX);
  for (std::size_t s = 0; s < state.Regions().size(); ++s) {
    const isk::IskRegion& region = state.Regions()[s];
    if (region.tasks.empty()) continue;
    remap[s] = schedule.regions.size();
    RegionInfo info;
    info.res = region.res;
    info.reconf_time = region.reconf_time;
    info.tasks = region.tasks;
    schedule.regions.push_back(std::move(info));
  }
  for (TaskSlot& slot : schedule.task_slots) {
    if (slot.OnFpga()) slot.target_index = remap[slot.target_index];
  }
  schedule.reconfigurations = state.ControllerTimeline();
  for (ReconfSlot& r : schedule.reconfigurations) {
    r.region = remap[r.region];
  }

  schedule.makespan = schedule.ComputeMakespan();
  schedule.algorithm = "fixed-grid-" + std::to_string(num_slots);
  return schedule;
}

}  // namespace

Schedule ScheduleFixedGrid(const Instance& instance,
                           const FixedGridOptions& options) {
  instance.graph.Validate(instance.platform.Device());
  WallTimer timer;

  std::vector<std::size_t> slot_counts;
  if (options.num_slots != 0) {
    slot_counts.push_back(options.num_slots);
  } else {
    for (std::size_t s = 1; s <= options.max_auto_slots; ++s) {
      slot_counts.push_back(s);
    }
  }

  Schedule best;
  bool have_best = false;
  double floorplan_seconds = 0.0;
  for (const std::size_t slots : slot_counts) {
    Schedule candidate = RunFixedGrid(instance, slots,
                                      options.module_reuse);
    if (have_best && candidate.makespan >= best.makespan) continue;
    if (options.run_floorplan) {
      const FloorplanResult fp =
          FindFloorplan(instance.platform.Device(),
                        candidate.RegionRequirements(), options.floorplan);
      floorplan_seconds += fp.seconds;
      if (!fp.feasible) continue;  // this grid granularity does not place
      candidate.floorplan = fp.rects;
      candidate.floorplan_checked = true;
    }
    best = std::move(candidate);
    have_best = true;
  }

  if (!have_best) {
    // Degenerate fall-back: no slots at all -> all-software schedule,
    // trivially floorplannable.
    best = RunFixedGrid(instance, 0, options.module_reuse);
    best.floorplan_checked = options.run_floorplan;
  }

  best.scheduling_seconds = timer.ElapsedSeconds() - floorplan_seconds;
  best.floorplanning_seconds = floorplan_seconds;
  return best;
}

}  // namespace resched
