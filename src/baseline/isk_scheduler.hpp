// IS-k baseline scheduler — re-implementation of the iterative MILP
// approach of Deiana et al. (ReConFig 2015) that the paper compares
// against (§II, §VII).
//
// IS-k repeatedly takes the k highest-priority ready tasks and schedules
// them *optimally* given the already-committed partial schedule. The
// original uses a MILP with a solver time limit; here the per-window
// optimum is found by exhaustive branch-and-bound over
//   (task order) x (implementation) x (core | existing region | new region)
// with earliest-start semantics, admissible tail look-ahead pruning and a
// node budget that plays the role of the MILP time limit. IS-k supports
// reconfiguration prefetching (a reconfiguration is scheduled in the
// earliest controller gap after its region falls idle) and module reuse
// (no reconfiguration between consecutive same-module tasks in a region),
// matching the feature set in the paper's §VII-A.
#pragma once

#include "sched/schedule.hpp"
#include "util/common.hpp"

namespace resched {

struct IskOptions {
  /// Window size: IS-1 and IS-5 are the paper's evaluated configurations.
  std::size_t k = 1;
  /// Branch-and-bound node budget per window (the MILP time-limit analog;
  /// 0 = exhaustive).
  std::size_t node_budget = 100'000;
  /// Overall wall-clock budget; once expired the remaining windows are
  /// committed greedily. <= 0 disables.
  double time_budget_seconds = 0.0;
  /// Module reuse (supported by IS-k in the paper, unlike PA).
  bool module_reuse = true;

  /// §V-H-style feasibility loop, as for PA.
  bool run_floorplan = true;
  double shrink_factor = 0.9;
  std::size_t max_shrink_rounds = 12;
  FloorplanOptions floorplan;
  /// Memoize floorplan queries across shrink rounds (bit-identical results;
  /// off exists for benchmarking and debugging — see PaOptions).
  bool floorplan_cache = true;
};

/// Runs IS-k to completion (including the floorplan feasibility loop when
/// enabled) and returns a complete, valid schedule.
Schedule ScheduleIsk(const Instance& instance, const IskOptions& options = {});

/// One IS-k pass against a given virtually available capacity, without
/// floorplanning (used by the driver and by benchmarks).
Schedule RunIskCore(const Instance& instance, const IskOptions& options,
                    const ResourceVec& avail_cap);

}  // namespace resched
