// Reference schedules and bounds used by tests and benchmarks to sanity-
// frame the heuristics' results.
#pragma once

#include "sched/schedule.hpp"

namespace resched {

/// All-software list schedule: every task on its fastest software
/// implementation, greedily mapped (earliest-finish) onto the cores in
/// b-level priority order. Always valid; the "no FPGA" upper reference.
Schedule ScheduleAllSoftware(const Instance& instance);

/// Critical-path lower bound: CPM length with every task at its minimum
/// implementation time and unlimited resources. No valid schedule can beat
/// this.
TimeT CriticalPathLowerBound(const Instance& instance);

/// Work-conservation lower bound: total minimum work divided by the
/// maximum number of execution sites that can ever be active at once
/// (cores + the most single-smallest-footprint regions the fabric could
/// hold). Deliberately optimistic about parallelism, so it is a valid
/// bound for every scheduler; it dominates the critical-path bound on
/// wide graphs under capacity pressure.
TimeT WorkLowerBound(const Instance& instance);

/// max(CriticalPathLowerBound, WorkLowerBound).
TimeT CombinedLowerBound(const Instance& instance);

}  // namespace resched
