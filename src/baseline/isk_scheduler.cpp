#include "baseline/isk_scheduler.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "baseline/isk_state.hpp"
#include "floorplan/floorplan_cache.hpp"
#include "sched/comm.hpp"
#include "baseline/priority.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace resched {

namespace {

using isk::IskState;
using isk::PlacementOutcome;

/// One committed task placement.
struct Placed {
  TaskId task = kInvalidTask;
  std::size_t impl_index = 0;
  TargetKind target = TargetKind::kProcessor;
  std::size_t target_index = 0;
  PlacementOutcome outcome;
};

/// A window task with its precomputed ready times. With the
/// communication-overhead extension the ready time depends on the domain
/// the task will run in (incoming HW<->SW transfers), so both variants are
/// precomputed; they coincide when the comm model is off.
struct WindowTask {
  TaskId task = kInvalidTask;
  TimeT ready_hw = 0;
  TimeT ready_sw = 0;
};

/// Exhaustive (budgeted) optimizer for one IS-k window.
class WindowSolver {
 public:
  WindowSolver(const Instance& instance, const IskOptions& options,
               const std::vector<TimeT>& tails, TimeT committed_bound)
      : instance_(instance),
        options_(options),
        tails_(tails),
        committed_bound_(committed_bound) {}

  /// Finds the best joint placement of `window` starting from `state`.
  /// Returns the placements in commit order; `state` is advanced in place.
  std::vector<Placed> Solve(IskState& state,
                            const std::vector<WindowTask>& window) {
    best_obj_ = kTimeInfinity;
    best_tie_ = kTimeInfinity;
    have_best_ = false;
    nodes_ = 0;

    // Greedy dive first: guarantees an incumbent even if the node budget
    // is tiny, exactly like a MILP warm start.
    GreedyIncumbent(state, window);
    // Exact search (within budget).
    std::vector<bool> placed(window.size(), false);
    std::vector<Placed> current;
    Dfs(state, window, placed, current, committed_bound_, 0);

    RESCHED_CHECK_MSG(have_best_, "window solver found no placement");
    // Re-apply the winning decision sequence to the real state; the
    // deterministic earliest-start semantics reproduce the explored
    // outcomes exactly.
    std::vector<Placed> result = best_placements_;
    for (Placed& p : result) (void)Apply(state, p);
    return result;
  }

 private:
  /// Enumerates every legal decision for `wt` on `state`.
  template <typename Fn>
  void ForEachDecision(const IskState& state, const WindowTask& wt,
                       Fn&& fn) const {
    const Task& task = instance_.graph.GetTask(wt.task);
    for (std::size_t i = 0; i < task.impls.size(); ++i) {
      const Implementation& impl = task.impls[i];
      if (impl.IsSoftware()) {
        // Symmetric cores with equal free times are interchangeable: visit
        // one representative per distinct free time.
        std::vector<TimeT> seen_frees;
        for (std::size_t core = 0; core < state.NumCores(); ++core) {
          const TimeT free = state.CoreFree(core);
          if (std::find(seen_frees.begin(), seen_frees.end(), free) !=
              seen_frees.end()) {
            continue;
          }
          seen_frees.push_back(free);
          fn(Placed{wt.task, i, TargetKind::kProcessor, core, {}});
        }
      } else {
        for (std::size_t s = 0; s < state.Regions().size(); ++s) {
          if (!impl.res.FitsWithin(state.Regions()[s].res)) continue;
          fn(Placed{wt.task, i, TargetKind::kRegion, s, {}});
        }
        if (state.HasFreeCapacity(impl.res)) {
          // target_index == regions.size() encodes "create a new region".
          fn(Placed{wt.task, i, TargetKind::kRegion, state.Regions().size(),
                    {}});
        }
      }
    }
  }

  /// Executes a decision on `state`, filling outcome. Returns the updated
  /// objective contribution end + tail(task).
  TimeT Apply(IskState& state, Placed& p) const {
    const Implementation& impl =
        instance_.graph.GetImpl(p.task, p.impl_index);
    const TimeT ready = ReadyOf(p.task, impl.IsHardware());
    if (p.target == TargetKind::kProcessor) {
      p.outcome = state.PlaceOnCore(p.task, impl, p.target_index, ready);
    } else if (p.target_index == state.Regions().size()) {
      p.outcome = state.PlaceInNewRegion(p.task, impl, ready);
    } else {
      p.outcome = state.PlaceInRegion(p.task, impl, p.target_index, ready,
                                      options_.module_reuse);
    }
    return p.outcome.end + tails_[static_cast<std::size_t>(p.task)];
  }

  TimeT ReadyOf(TaskId t, bool hw) const {
    const auto it = ready_.find(t);
    RESCHED_CHECK_MSG(it != ready_.end(), "unknown window task");
    return hw ? it->second.first : it->second.second;
  }

  void GreedyIncumbent(const IskState& state,
                       const std::vector<WindowTask>& window) {
    IskState work = state;
    std::vector<Placed> chosen;
    TimeT obj = committed_bound_;
    ready_.clear();
    for (const WindowTask& wt : window) {
      ready_[wt.task] = {wt.ready_hw, wt.ready_sw};
    }

    for (const WindowTask& wt : window) {
      std::optional<Placed> best;
      TimeT best_contrib = kTimeInfinity;
      ForEachDecision(work, wt, [&](Placed p) {
        IskState probe = work;
        const TimeT contrib = Apply(probe, p);
        if (contrib < best_contrib) {
          best_contrib = contrib;
          best = p;
        }
      });
      RESCHED_CHECK_MSG(best.has_value(), "no legal decision for a task");
      obj = std::max(obj, Apply(work, *best));
      chosen.push_back(*best);
    }
    Offer(chosen, obj);
  }

  void Offer(const std::vector<Placed>& placements, TimeT obj) {
    TimeT tie = 0;
    for (const Placed& p : placements) tie += p.outcome.end;
    if (obj < best_obj_ || (obj == best_obj_ && tie < best_tie_)) {
      best_obj_ = obj;
      best_tie_ = tie;
      best_placements_ = placements;
      have_best_ = true;
    }
  }

  void Dfs(const IskState& state, const std::vector<WindowTask>& window,
           std::vector<bool>& placed, std::vector<Placed>& current,
           TimeT obj, std::size_t depth) {
    if (depth == window.size()) {
      Offer(current, obj);
      return;
    }
    if (options_.node_budget != 0 && nodes_ >= options_.node_budget) return;

    for (std::size_t w = 0; w < window.size(); ++w) {
      if (placed[w]) continue;
      ForEachDecision(state, window[w], [&](Placed p) {
        if (options_.node_budget != 0 && nodes_ >= options_.node_budget) {
          return;
        }
        ++nodes_;
        IskState child = state;
        const TimeT contrib = Apply(child, p);
        const TimeT child_obj = std::max(obj, contrib);
        // Prune: the objective only grows along a branch.
        if (child_obj > best_obj_ ||
            (child_obj == best_obj_ && have_best_)) {
          return;
        }
        placed[w] = true;
        current.push_back(p);
        Dfs(child, window, placed, current, child_obj, depth + 1);
        current.pop_back();
        placed[w] = false;
      });
      // With k == 1 or independent equal tasks the order loop would
      // explore symmetric permutations; for depth 0 every task must still
      // be tried as "first", but identical subtrees are cut by the bound.
    }
  }

  const Instance& instance_;
  const IskOptions& options_;
  const std::vector<TimeT>& tails_;
  TimeT committed_bound_;

  std::map<TaskId, std::pair<TimeT, TimeT>> ready_;
  TimeT best_obj_ = kTimeInfinity;
  TimeT best_tie_ = kTimeInfinity;
  bool have_best_ = false;
  std::vector<Placed> best_placements_;
  std::size_t nodes_ = 0;
};

}  // namespace

Schedule RunIskCore(const Instance& instance, const IskOptions& options,
                    const ResourceVec& avail_cap) {
  RESCHED_CHECK_MSG(options.k >= 1, "IS-k requires k >= 1");
  const TaskGraph& graph = instance.graph;
  const std::size_t n = graph.NumTasks();
  const std::vector<TimeT> tails = ComputeTails(graph);
  const std::vector<TimeT> blevels = ComputeBottomLevels(graph);
  const Deadline deadline(options.time_budget_seconds);

  IskState state(instance, avail_cap);
  std::vector<Placed> committed(n);
  std::vector<bool> scheduled(n, false);
  std::vector<std::size_t> pending_preds(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    pending_preds[t] = graph.Predecessors(static_cast<TaskId>(t)).size();
  }

  std::size_t done = 0;
  TimeT committed_bound = 0;
  while (done < n) {
    // Ready set in b-level priority order.
    std::vector<TaskId> ready;
    for (std::size_t t = 0; t < n; ++t) {
      if (!scheduled[t] && pending_preds[t] == 0) {
        ready.push_back(static_cast<TaskId>(t));
      }
    }
    RESCHED_CHECK_MSG(!ready.empty(), "no ready task (cycle?)");
    std::stable_sort(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
      return blevels[static_cast<std::size_t>(a)] >
             blevels[static_cast<std::size_t>(b)];
    });

    IskOptions window_options = options;
    if (deadline.Expired()) {
      // Budget exhausted: fall back to pure greedy for the remainder.
      window_options.node_budget = 1;
    }

    const std::size_t window_size = std::min(options.k, ready.size());
    std::vector<WindowTask> window;
    window.reserve(window_size);
    for (std::size_t w = 0; w < window_size; ++w) {
      TimeT ready_hw = 0;
      TimeT ready_sw = 0;
      for (const TaskId p : graph.Predecessors(ready[w])) {
        const Placed& pred = committed[static_cast<std::size_t>(p)];
        const bool p_hw = pred.target == TargetKind::kRegion;
        ready_hw = std::max(
            ready_hw, pred.outcome.end + CommGap(instance.platform, graph, p,
                                                 ready[w], p_hw, true));
        ready_sw = std::max(
            ready_sw, pred.outcome.end + CommGap(instance.platform, graph, p,
                                                 ready[w], p_hw, false));
      }
      window.push_back(WindowTask{ready[w], ready_hw, ready_sw});
    }

    WindowSolver solver(instance, window_options, tails, committed_bound);
    const std::vector<Placed> placements = solver.Solve(state, window);

    for (const Placed& p : placements) {
      const auto ti = static_cast<std::size_t>(p.task);
      committed[ti] = p;
      scheduled[ti] = true;
      committed_bound = std::max(committed_bound, p.outcome.end + tails[ti]);
      ++done;
      for (const TaskId s : graph.Successors(p.task)) {
        --pending_preds[static_cast<std::size_t>(s)];
      }
    }
  }

  // ---- freeze into a Schedule.
  Schedule schedule;
  schedule.task_slots.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    const Placed& p = committed[t];
    TaskSlot& slot = schedule.task_slots[t];
    slot.task = static_cast<TaskId>(t);
    slot.impl_index = p.impl_index;
    slot.target = p.target;
    slot.target_index = p.target_index;
    slot.start = p.outcome.start;
    slot.end = p.outcome.end;
  }
  for (const isk::IskRegion& region : state.Regions()) {
    RegionInfo info;
    info.res = region.res;
    info.reconf_time = region.reconf_time;
    info.tasks = region.tasks;
    schedule.regions.push_back(std::move(info));
  }
  schedule.reconfigurations = state.ControllerTimeline();
  schedule.makespan = schedule.ComputeMakespan();
  schedule.algorithm = "IS-" + std::to_string(options.k);
  return schedule;
}

Schedule ScheduleIsk(const Instance& instance, const IskOptions& options) {
  instance.graph.Validate(instance.platform.Device());

  double scheduling_seconds = 0.0;
  double floorplanning_seconds = 0.0;

  std::optional<FloorplanCache> cache;
  if (options.floorplan_cache && options.run_floorplan) {
    cache.emplace(instance.platform.Device());
  }

  ResourceVec avail_cap = instance.platform.Device().Capacity();
  Schedule schedule;
  for (std::size_t round = 0; round <= options.max_shrink_rounds; ++round) {
    const bool last_round = round == options.max_shrink_rounds;
    if (last_round) avail_cap = avail_cap.ScaledDown(0.0);

    WallTimer sched_timer;
    schedule = RunIskCore(instance, options, avail_cap);
    scheduling_seconds += sched_timer.ElapsedSeconds();
    schedule.floorplan_retries = round;

    if (!options.run_floorplan) break;

    const FloorplanResult fp =
        cache ? cache->Query(schedule.RegionRequirements(), options.floorplan)
              : FindFloorplan(instance.platform.Device(),
                              schedule.RegionRequirements(),
                              options.floorplan);
    floorplanning_seconds += fp.seconds;
    if (fp.feasible) {
      schedule.floorplan = fp.rects;
      schedule.floorplan_checked = true;
      break;
    }
    RESCHED_LOG_INFO << "IS-" << options.k
                     << ": floorplan infeasible; shrinking resources";
    avail_cap = avail_cap.ScaledDown(options.shrink_factor);
  }

  schedule.scheduling_seconds = scheduling_seconds;
  schedule.floorplanning_seconds = floorplanning_seconds;
  if (cache) schedule.floorplan_cache = cache->Stats();
  return schedule;
}

}  // namespace resched
