#include "baseline/priority.hpp"

#include <algorithm>

namespace resched {

namespace {
std::vector<TimeT> MinExecTimes(const TaskGraph& graph) {
  std::vector<TimeT> min_exec(graph.NumTasks());
  for (std::size_t t = 0; t < graph.NumTasks(); ++t) {
    const Task& task = graph.GetTask(static_cast<TaskId>(t));
    TimeT best = task.impls.front().exec_time;
    for (const Implementation& impl : task.impls) {
      best = std::min(best, impl.exec_time);
    }
    min_exec[t] = best;
  }
  return min_exec;
}
}  // namespace

std::vector<TimeT> ComputeBottomLevels(const TaskGraph& graph) {
  const std::vector<TimeT> min_exec = MinExecTimes(graph);
  const std::vector<TaskId> order = graph.TopologicalOrder();
  std::vector<TimeT> blevel(graph.NumTasks(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto t = static_cast<std::size_t>(*it);
    TimeT best_succ = 0;
    for (const TaskId s : graph.Successors(*it)) {
      best_succ = std::max(best_succ, blevel[static_cast<std::size_t>(s)]);
    }
    blevel[t] = min_exec[t] + best_succ;
  }
  return blevel;
}

std::vector<TimeT> ComputeTails(const TaskGraph& graph) {
  const std::vector<TimeT> min_exec = MinExecTimes(graph);
  std::vector<TimeT> tails = ComputeBottomLevels(graph);
  for (std::size_t t = 0; t < tails.size(); ++t) {
    tails[t] -= min_exec[t];
  }
  return tails;
}

}  // namespace resched
