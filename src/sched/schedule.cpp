#include "sched/schedule.hpp"

#include <algorithm>

namespace resched {

std::vector<ResourceVec> Schedule::RegionRequirements() const {
  std::vector<ResourceVec> out;
  out.reserve(regions.size());
  for (const RegionInfo& region : regions) out.push_back(region.res);
  return out;
}

TimeT Schedule::ComputeMakespan() const {
  TimeT m = 0;
  for (const TaskSlot& slot : task_slots) m = std::max(m, slot.end);
  return m;
}

std::size_t Schedule::NumHardwareTasks() const {
  std::size_t n = 0;
  for (const TaskSlot& slot : task_slots) {
    if (slot.OnFpga()) ++n;
  }
  return n;
}

TimeT Schedule::TotalReconfigurationTime() const {
  TimeT total = 0;
  for (const ReconfSlot& r : reconfigurations) total += r.end - r.start;
  return total;
}

}  // namespace resched
