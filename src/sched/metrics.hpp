// Schedule quality metrics beyond the makespan — the numbers a designer
// inspects to understand *why* one schedule beats another: hardware
// offload ratio, fabric/controller utilization, reconfiguration overhead,
// achieved parallelism profile and slack statistics.
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace resched {

struct ScheduleMetrics {
  TimeT makespan = 0;

  // ---- mapping ----------------------------------------------------------
  std::size_t num_tasks = 0;
  std::size_t hw_tasks = 0;
  double hw_ratio = 0.0;  ///< hw_tasks / num_tasks
  std::size_t num_regions = 0;
  /// Share of the device capacity claimed by region requirements,
  /// averaged over resource kinds (raw packing, not footprint).
  double capacity_utilization = 0.0;

  // ---- time accounting --------------------------------------------------
  TimeT total_task_time = 0;        ///< sum of task durations
  TimeT total_reconf_time = 0;      ///< controller busy time
  double reconf_overhead = 0.0;     ///< total_reconf_time / makespan
  /// Busy fraction of the cores / regions / controllers, averaged per
  /// resource class.
  double avg_core_utilization = 0.0;
  double avg_region_utilization = 0.0;
  double controller_utilization = 0.0;

  // ---- concurrency ------------------------------------------------------
  /// Time-averaged number of simultaneously running tasks
  /// (total_task_time / makespan).
  double avg_parallelism = 0.0;
  /// Maximum number of tasks running at any instant.
  std::size_t peak_parallelism = 0;

  // ---- slack ------------------------------------------------------------
  /// Mean idle time between consecutive tasks of the same region.
  double avg_region_gap = 0.0;

  std::string ToString() const;
};

ScheduleMetrics ComputeMetrics(const Instance& instance,
                               const Schedule& schedule);

}  // namespace resched
