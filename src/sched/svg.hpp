// SVG rendering of schedules: a publication-quality Gantt chart (one lane
// per core, region and the reconfiguration controller) and a floorplan
// view of the region rectangles on the fabric.
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace resched {

struct SvgOptions {
  std::size_t width_px = 960;
  std::size_t lane_height_px = 26;
  bool include_labels = true;
};

/// Gantt chart as a complete standalone SVG document.
std::string GanttSvg(const Instance& instance, const Schedule& schedule,
                     const SvgOptions& options = {});

/// Floorplan view (requires schedule.floorplan to be non-empty or the
/// schedule to have no regions).
std::string FloorplanSvg(const Instance& instance, const Schedule& schedule,
                         const SvgOptions& options = {});

}  // namespace resched
