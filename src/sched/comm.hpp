// Communication-overhead model (the paper's §VIII future-work item,
// implemented as an opt-in extension).
//
// An edge (a, b) carrying `bytes` of data costs transfer time only when it
// crosses the hardware/software boundary — producer and consumer in the
// same domain communicate through shared memory (SW->SW) or on-fabric
// buffers (HW->HW) at negligible cost, while PS<->PL movement is priced by
// the platform's HW<->SW bandwidth. The model is inactive (every gap 0)
// unless both the platform sets a bandwidth and the graph carries edge
// payloads, so the paper's original cost model is the default.
#pragma once

#include "taskgraph/taskgraph.hpp"

namespace resched {

/// Transfer gap for edge (from, to) given the domains the two endpoints
/// execute in (`*_hw` true = hardware region).
inline TimeT CommGap(const Platform& platform, const TaskGraph& graph,
                     TaskId from, TaskId to, bool from_hw, bool to_hw) {
  if (from_hw == to_hw) return 0;
  return platform.TransferTicks(graph.EdgeData(from, to));
}

}  // namespace resched
