#include "sched/metrics.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace resched {

ScheduleMetrics ComputeMetrics(const Instance& instance,
                               const Schedule& schedule) {
  ScheduleMetrics m;
  m.makespan = schedule.makespan;
  m.num_tasks = schedule.task_slots.size();
  m.hw_tasks = schedule.NumHardwareTasks();
  m.hw_ratio = m.num_tasks == 0
                   ? 0.0
                   : static_cast<double>(m.hw_tasks) /
                         static_cast<double>(m.num_tasks);
  m.num_regions = schedule.regions.size();

  // Raw capacity claim.
  const ResourceVec& cap = instance.platform.Device().Capacity();
  ResourceVec used = instance.platform.Device().Model().ZeroVec();
  for (const RegionInfo& region : schedule.regions) used += region.res;
  double claim = 0.0;
  std::size_t kinds_counted = 0;
  for (std::size_t k = 0; k < cap.size(); ++k) {
    if (cap[k] == 0) continue;
    claim += static_cast<double>(used[k]) / static_cast<double>(cap[k]);
    ++kinds_counted;
  }
  m.capacity_utilization =
      kinds_counted == 0 ? 0.0 : claim / static_cast<double>(kinds_counted);

  // Time accounting.
  for (const TaskSlot& slot : schedule.task_slots) {
    m.total_task_time += slot.end - slot.start;
  }
  m.total_reconf_time = schedule.TotalReconfigurationTime();
  const double mk = static_cast<double>(std::max<TimeT>(1, m.makespan));
  m.reconf_overhead = static_cast<double>(m.total_reconf_time) / mk;

  // Per-resource-class utilization.
  const std::size_t cores = instance.platform.NumProcessors();
  if (cores > 0) {
    TimeT core_busy = 0;
    for (const TaskSlot& slot : schedule.task_slots) {
      if (!slot.OnFpga()) core_busy += slot.end - slot.start;
    }
    m.avg_core_utilization =
        static_cast<double>(core_busy) / (mk * static_cast<double>(cores));
  }
  if (!schedule.regions.empty()) {
    TimeT region_busy = 0;
    for (const TaskSlot& slot : schedule.task_slots) {
      if (slot.OnFpga()) region_busy += slot.end - slot.start;
    }
    m.avg_region_utilization =
        static_cast<double>(region_busy) /
        (mk * static_cast<double>(schedule.regions.size()));
  }
  m.controller_utilization =
      static_cast<double>(m.total_reconf_time) /
      (mk * static_cast<double>(instance.platform.NumReconfigurators()));

  // Parallelism profile (event sweep).
  m.avg_parallelism = static_cast<double>(m.total_task_time) / mk;
  {
    std::vector<std::pair<TimeT, int>> events;
    events.reserve(2 * schedule.task_slots.size());
    for (const TaskSlot& slot : schedule.task_slots) {
      events.emplace_back(slot.start, +1);
      events.emplace_back(slot.end, -1);
    }
    std::sort(events.begin(), events.end(),
              [](const auto& a, const auto& b) {
                // Ends before starts at equal instants (half-open slots).
                return a.first < b.first ||
                       (a.first == b.first && a.second < b.second);
              });
    int running = 0;
    for (const auto& [time, delta] : events) {
      running += delta;
      m.peak_parallelism =
          std::max(m.peak_parallelism, static_cast<std::size_t>(
                                           std::max(0, running)));
    }
  }

  // Region gaps.
  {
    double gap_total = 0.0;
    std::size_t gap_count = 0;
    for (const RegionInfo& region : schedule.regions) {
      for (std::size_t i = 0; i + 1 < region.tasks.size(); ++i) {
        const TaskSlot& a =
            schedule.SlotOf(region.tasks[i]);
        const TaskSlot& b = schedule.SlotOf(region.tasks[i + 1]);
        gap_total += static_cast<double>(b.start - a.end);
        ++gap_count;
      }
    }
    m.avg_region_gap = gap_count == 0
                           ? 0.0
                           : gap_total / static_cast<double>(gap_count);
  }
  return m;
}

std::string ScheduleMetrics::ToString() const {
  return StrFormat(
      "makespan %s | HW %zu/%zu (%.0f%%) in %zu regions (%.0f%% capacity) | "
      "reconf overhead %.1f%% | util cores %.0f%% regions %.0f%% icap "
      "%.0f%% | parallelism avg %.2f peak %zu | region gap avg %s",
      FormatTicks(makespan).c_str(), hw_tasks, num_tasks, hw_ratio * 100.0,
      num_regions, capacity_utilization * 100.0, reconf_overhead * 100.0,
      avg_core_utilization * 100.0, avg_region_utilization * 100.0,
      controller_utilization * 100.0, avg_parallelism, peak_parallelism,
      FormatTicks(static_cast<TimeT>(avg_region_gap)).c_str());
}

}  // namespace resched
