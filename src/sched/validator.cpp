#include "sched/validator.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "sched/comm.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"
#include "util/timeline.hpp"

namespace resched {

namespace {

/// Bit budget of the exclusivity-proof timeline. Ticks are mapped onto at
/// most this many buckets (bucket = tick >> shift), so the proof costs a
/// bounded number of words regardless of the schedule horizon.
constexpr std::size_t kFastScanBits = 4096;

/// Occupies every slot's outward-rounded [start, end) on a shared bucketed
/// bit timeline. Returns true when that *proves* the adjacent-pair
/// interval scan would report nothing: all slots are representable
/// (non-negative start, strictly positive length) and their bucket covers
/// are pairwise disjoint — covers are supersets of the slots, so disjoint
/// covers imply disjoint slots at full tick precision. Returns false on
/// any bucket clash (real overlap or mere shared boundary bucket) or on an
/// unrepresentable slot — the caller then runs the interval scan, whose
/// messages stay byte-identical.
///
/// Why empty slots force the fallback: [3,8) and [5,5) occupy no common
/// tick, yet the sorted scan reports "end 8 > start 5". The bit proof is
/// only used where it implies the scan's verdict exactly.
template <typename SlotT>
bool ProvablyDisjoint(const std::vector<const SlotT*>& slots,
                      timeline::BitTimeline& tl) {
  if (slots.size() < 2) return true;
  TimeT horizon = 0;
  for (const SlotT* s : slots) {
    if (s->start < 0 || s->end <= s->start) return false;
    horizon = std::max(horizon, s->end);
  }
  std::size_t shift = 0;
  while ((static_cast<std::size_t>(horizon) >> shift) > kFastScanBits) {
    ++shift;
  }
  tl.ResizeAndClear((static_cast<std::size_t>(horizon) >> shift) + 1);
  for (const SlotT* s : slots) {
    const auto lo = static_cast<std::size_t>(s->start) >> shift;
    const auto hi = (static_cast<std::size_t>(s->end - 1) >> shift) + 1;
    if (tl.TestAndSet(lo, hi)) return false;
  }
  return true;
}

void CheckNoOverlap(const std::vector<const TaskSlot*>& slots,
                    const std::string& what,
                    std::vector<std::string>& violations) {
  std::vector<const TaskSlot*> sorted = slots;
  std::sort(sorted.begin(), sorted.end(),
            [](const TaskSlot* a, const TaskSlot* b) {
              return a->start < b->start;
            });
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    RESCHED_DCHECK_MSG(sorted[i]->start <= sorted[i + 1]->start,
                       "overlap scan lost its start ordering");
    if (sorted[i]->end > sorted[i + 1]->start) {
      violations.push_back(StrFormat(
          "%s: task %d [%lld,%lld) overlaps task %d [%lld,%lld)",
          what.c_str(), sorted[i]->task,
          static_cast<long long>(sorted[i]->start),
          static_cast<long long>(sorted[i]->end), sorted[i + 1]->task,
          static_cast<long long>(sorted[i + 1]->start),
          static_cast<long long>(sorted[i + 1]->end)));
    }
  }
}

}  // namespace

std::string ValidationResult::Summary() const {
  if (ok()) return "valid";
  std::string out =
      StrFormat("%zu violation(s):", violations.size());
  for (const std::string& v : violations) {
    out += "\n  - " + v;
  }
  return out;
}

ValidationResult ValidateSchedule(const Instance& instance,
                                  const Schedule& schedule,
                                  const ValidationOptions& options) {
  ValidationResult result;
  auto fail = [&result](std::string msg) {
    result.violations.push_back(std::move(msg));
  };

  const TaskGraph& graph = instance.graph;
  const Platform& platform = instance.platform;
  const std::size_t n = graph.NumTasks();

  // ---- V1: slot table shape.
  if (schedule.task_slots.size() != n) {
    fail(StrFormat("expected %zu task slots, got %zu", n,
                   schedule.task_slots.size()));
    return result;  // everything below indexes by TaskId
  }
  for (std::size_t t = 0; t < n; ++t) {
    const TaskSlot& slot = schedule.task_slots[t];
    const Task& task = graph.GetTask(static_cast<TaskId>(t));
    if (slot.task != static_cast<TaskId>(t)) {
      fail(StrFormat("slot %zu holds task %d", t, slot.task));
      continue;
    }
    if (slot.impl_index >= task.impls.size()) {
      fail(StrFormat("task %zu: impl index %zu out of range", t,
                     slot.impl_index));
      continue;
    }
    const Implementation& impl = task.impls[slot.impl_index];
    if (!options.executed && slot.end - slot.start != impl.exec_time) {
      fail(StrFormat("task %zu: slot length %lld != impl time %lld", t,
                     static_cast<long long>(slot.end - slot.start),
                     static_cast<long long>(impl.exec_time)));
    }
    if (options.executed && slot.end <= slot.start) {
      fail(StrFormat("task %zu: executed slot is empty", t));
    }
    if (slot.start < 0) {
      fail(StrFormat("task %zu starts before time 0", t));
    }
    // ---- V2: target consistency.
    if (slot.OnFpga()) {
      if (!impl.IsHardware()) {
        fail(StrFormat("task %zu runs in a region with a SW impl", t));
      } else if (slot.target_index >= schedule.regions.size()) {
        fail(StrFormat("task %zu assigned to unknown region %zu", t,
                       slot.target_index));
      } else if (!impl.res.FitsWithin(
                     schedule.regions[slot.target_index].res)) {
        fail(StrFormat("task %zu: impl needs %s > region %zu provides %s", t,
                       impl.res.ToString().c_str(), slot.target_index,
                       schedule.regions[slot.target_index].res.ToString()
                           .c_str()));
      }
    } else {
      if (!impl.IsSoftware()) {
        fail(StrFormat("task %zu runs on a core with a HW impl", t));
      }
      if (slot.target_index >= platform.NumProcessors()) {
        fail(StrFormat("task %zu assigned to unknown processor %zu", t,
                       slot.target_index));
      }
    }
  }

  // ---- V3: precedence (plus the HW<->SW transfer gap when the
  // communication-overhead extension is active; CommGap is 0 otherwise).
  for (std::size_t t = 0; t < n; ++t) {
    const TaskSlot& slot_t = schedule.task_slots[t];
    for (const TaskId s : graph.Successors(static_cast<TaskId>(t))) {
      const TaskSlot& slot_s = schedule.SlotOf(s);
      const TimeT gap =
          CommGap(platform, graph, static_cast<TaskId>(t), s,
                  slot_t.OnFpga(), slot_s.OnFpga());
      if (slot_s.start < slot_t.end + gap) {
        fail(StrFormat(
            "dependency %zu -> %d violated (%lld < %lld + comm gap %lld)", t,
            s, static_cast<long long>(slot_s.start),
            static_cast<long long>(slot_t.end), static_cast<long long>(gap)));
      }
    }
  }

  // One bucketing pass replaces the old per-target rescans of the whole
  // slot table (V4, V5 and V6 each walked all n slots per target). Bucket
  // order is schedule order, exactly what the rescans collected; slots on
  // out-of-range targets were never collected and are already reported by
  // V2. The bit timeline is the reusable exclusivity-proof scratch.
  std::vector<std::vector<const TaskSlot*>> on_core(platform.NumProcessors());
  std::vector<std::vector<const TaskSlot*>> in_region(schedule.regions.size());
  for (const TaskSlot& slot : schedule.task_slots) {
    if (slot.OnFpga()) {
      if (slot.target_index < in_region.size()) {
        in_region[slot.target_index].push_back(&slot);
      }
    } else if (slot.target_index < on_core.size()) {
      on_core[slot.target_index].push_back(&slot);
    }
  }
  timeline::BitTimeline excl_tl;

  // ---- V4: processor exclusivity.
  for (std::size_t p = 0; p < on_core.size(); ++p) {
    if (options.fast_scan && ProvablyDisjoint(on_core[p], excl_tl)) continue;
    CheckNoOverlap(on_core[p], StrFormat("processor %zu", p),
                   result.violations);
  }

  // ---- V5 + region membership consistency.
  for (std::size_t s = 0; s < schedule.regions.size(); ++s) {
    if (!(options.fast_scan && ProvablyDisjoint(in_region[s], excl_tl))) {
      CheckNoOverlap(in_region[s], StrFormat("region %zu", s),
                     result.violations);
    }

    // The region's recorded task list must match the slots assigned to it.
    std::vector<TaskId> from_slots;
    for (const TaskSlot* slot : in_region[s]) from_slots.push_back(slot->task);
    std::vector<TaskId> recorded = schedule.regions[s].tasks;
    std::sort(from_slots.begin(), from_slots.end());
    std::sort(recorded.begin(), recorded.end());
    if (from_slots != recorded) {
      fail(StrFormat("region %zu task list does not match slot assignments",
                     s));
    }
  }

  // ---- V6: reconfigurations between consecutive region tasks.
  // Pre-index reconfigurations by (region, loaded task) in list order, so
  // the per-pair lookup below is a map probe instead of a rescan of every
  // reconfiguration. Encounter order is preserved: `found` is the LAST
  // match and every extra match yields one duplicate message, exactly as
  // the linear scan produced them.
  std::map<std::pair<std::size_t, TaskId>, std::vector<const ReconfSlot*>>
      reconf_index;
  for (const ReconfSlot& r : schedule.reconfigurations) {
    reconf_index[{r.region, r.loads_task}].push_back(&r);
  }
  const ValidationOptions& opt = options;
  for (std::size_t s = 0; s < schedule.regions.size(); ++s) {
    const RegionInfo& region = schedule.regions[s];
    const TimeT expected_reconf = platform.ReconfTicks(region.res);
    if (region.reconf_time != expected_reconf) {
      fail(StrFormat("region %zu reconf time %lld != Eq.(2) value %lld", s,
                     static_cast<long long>(region.reconf_time),
                     static_cast<long long>(expected_reconf)));
    }

    std::vector<const TaskSlot*> sorted = in_region[s];
    std::sort(sorted.begin(), sorted.end(),
              [](const TaskSlot* a, const TaskSlot* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const TaskSlot* tin = sorted[i];
      const TaskSlot* tout = sorted[i + 1];
      // Guard against impl indices already reported as invalid by V1.
      if (tin->impl_index >= graph.GetTask(tin->task).impls.size() ||
          tout->impl_index >= graph.GetTask(tout->task).impls.size()) {
        continue;
      }
      const Implementation& impl_in =
          graph.GetImpl(tin->task, tin->impl_index);
      const Implementation& impl_out =
          graph.GetImpl(tout->task, tout->impl_index);
      const bool same_module = impl_in.module_id >= 0 &&
                               impl_in.module_id == impl_out.module_id;
      // Find the reconfiguration that loads tout in region s.
      const ReconfSlot* found = nullptr;
      if (const auto it = reconf_index.find({s, tout->task});
          it != reconf_index.end()) {
        for (std::size_t m = 1; m < it->second.size(); ++m) {
          fail(StrFormat("duplicate reconfiguration for task %d in region "
                         "%zu",
                         tout->task, s));
        }
        found = it->second.back();
      }
      if (found == nullptr) {
        if (!(opt.allow_module_reuse && same_module)) {
          fail(StrFormat(
              "missing reconfiguration before task %d in region %zu",
              tout->task, s));
        }
        continue;
      }
      if (found->start < tin->end) {
        fail(StrFormat("reconfiguration for task %d starts before task %d "
                       "ends",
                       tout->task, tin->task));
      }
      if (found->end > tout->start) {
        fail(StrFormat("reconfiguration for task %d ends after its start",
                       tout->task));
      }
      if (!opt.executed &&
          found->end - found->start != region.reconf_time) {
        fail(StrFormat("reconfiguration for task %d lasts %lld != region "
                       "reconf time %lld",
                       tout->task,
                       static_cast<long long>(found->end - found->start),
                       static_cast<long long>(region.reconf_time)));
      }
    }
  }

  // Every reconfiguration must correspond to a region it belongs to.
  for (const ReconfSlot& r : schedule.reconfigurations) {
    if (r.region >= schedule.regions.size()) {
      fail(StrFormat("reconfiguration references unknown region %zu",
                     r.region));
    }
  }

  // ---- V7: controller exclusivity (per controller; the paper's model
  // has exactly one). Same bucket-then-prove structure as V4/V5.
  std::vector<std::vector<const ReconfSlot*>> on_ctrl(
      platform.NumReconfigurators());
  for (const ReconfSlot& r : schedule.reconfigurations) {
    if (r.controller < on_ctrl.size()) on_ctrl[r.controller].push_back(&r);
  }
  for (std::size_t c = 0; c < on_ctrl.size(); ++c) {
    if (options.fast_scan && ProvablyDisjoint(on_ctrl[c], excl_tl)) continue;
    std::vector<const ReconfSlot*> sorted = on_ctrl[c];
    std::sort(sorted.begin(), sorted.end(),
              [](const ReconfSlot* a, const ReconfSlot* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      if (sorted[i]->end > sorted[i + 1]->start) {
        fail(StrFormat("reconfigurations overlap on controller %zu "
                       "([%lld,%lld) vs [%lld,%lld))",
                       c, static_cast<long long>(sorted[i]->start),
                       static_cast<long long>(sorted[i]->end),
                       static_cast<long long>(sorted[i + 1]->start),
                       static_cast<long long>(sorted[i + 1]->end)));
      }
    }
  }
  for (const ReconfSlot& r : schedule.reconfigurations) {
    if (r.controller >= platform.NumReconfigurators()) {
      fail(StrFormat("reconfiguration on unknown controller %zu",
                     r.controller));
    }
  }

  // ---- V8: capacity.
  {
    ResourceVec total = platform.Device().Model().ZeroVec();
    for (const RegionInfo& region : schedule.regions) total += region.res;
    if (!total.FitsWithin(platform.Device().Capacity())) {
      fail(StrFormat("summed region requirements %s exceed device capacity %s",
                     total.ToString().c_str(),
                     platform.Device().Capacity().ToString().c_str()));
    }
  }

  // ---- V9: makespan.
  if (schedule.makespan != schedule.ComputeMakespan()) {
    fail(StrFormat("recorded makespan %lld != computed %lld",
                   static_cast<long long>(schedule.makespan),
                   static_cast<long long>(schedule.ComputeMakespan())));
  }

  // ---- V11: region fault windows. Slots are half-open, so touching a
  // window boundary is legal; any true overlap is not.
  for (const RegionOutage& outage : options.outages) {
    if (outage.region >= schedule.regions.size()) continue;
    for (const TaskSlot& slot : schedule.task_slots) {
      if (!slot.OnFpga() || slot.target_index != outage.region) continue;
      if (slot.start < outage.end && outage.start < slot.end) {
        fail(StrFormat(
            "task %d [%lld,%lld) overlaps fault window [%lld,%lld) on "
            "region %zu",
            slot.task, static_cast<long long>(slot.start),
            static_cast<long long>(slot.end),
            static_cast<long long>(outage.start),
            static_cast<long long>(outage.end), outage.region));
      }
    }
    for (const ReconfSlot& r : schedule.reconfigurations) {
      if (r.region != outage.region) continue;
      if (r.start < outage.end && outage.start < r.end) {
        fail(StrFormat(
            "reconfiguration for task %d [%lld,%lld) overlaps fault window "
            "[%lld,%lld) on region %zu",
            r.loads_task, static_cast<long long>(r.start),
            static_cast<long long>(r.end),
            static_cast<long long>(outage.start),
            static_cast<long long>(outage.end), outage.region));
      }
    }
  }

  // ---- V10: floorplan.
  if (!schedule.floorplan.empty() || options.require_floorplan) {
    if (!IsValidFloorplan(platform.Device(), schedule.RegionRequirements(),
                          schedule.floorplan)) {
      fail("attached floorplan is not valid for the region set");
    }
  }

  return result;
}

}  // namespace resched
