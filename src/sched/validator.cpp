#include "sched/validator.hpp"

#include <algorithm>
#include <map>

#include "sched/comm.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace resched {

namespace {

void CheckNoOverlap(const std::vector<const TaskSlot*>& slots,
                    const std::string& what,
                    std::vector<std::string>& violations) {
  std::vector<const TaskSlot*> sorted = slots;
  std::sort(sorted.begin(), sorted.end(),
            [](const TaskSlot* a, const TaskSlot* b) {
              return a->start < b->start;
            });
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    RESCHED_DCHECK_MSG(sorted[i]->start <= sorted[i + 1]->start,
                       "overlap scan lost its start ordering");
    if (sorted[i]->end > sorted[i + 1]->start) {
      violations.push_back(StrFormat(
          "%s: task %d [%lld,%lld) overlaps task %d [%lld,%lld)",
          what.c_str(), sorted[i]->task,
          static_cast<long long>(sorted[i]->start),
          static_cast<long long>(sorted[i]->end), sorted[i + 1]->task,
          static_cast<long long>(sorted[i + 1]->start),
          static_cast<long long>(sorted[i + 1]->end)));
    }
  }
}

}  // namespace

std::string ValidationResult::Summary() const {
  if (ok()) return "valid";
  std::string out =
      StrFormat("%zu violation(s):", violations.size());
  for (const std::string& v : violations) {
    out += "\n  - " + v;
  }
  return out;
}

ValidationResult ValidateSchedule(const Instance& instance,
                                  const Schedule& schedule,
                                  const ValidationOptions& options) {
  ValidationResult result;
  auto fail = [&result](std::string msg) {
    result.violations.push_back(std::move(msg));
  };

  const TaskGraph& graph = instance.graph;
  const Platform& platform = instance.platform;
  const std::size_t n = graph.NumTasks();

  // ---- V1: slot table shape.
  if (schedule.task_slots.size() != n) {
    fail(StrFormat("expected %zu task slots, got %zu", n,
                   schedule.task_slots.size()));
    return result;  // everything below indexes by TaskId
  }
  for (std::size_t t = 0; t < n; ++t) {
    const TaskSlot& slot = schedule.task_slots[t];
    const Task& task = graph.GetTask(static_cast<TaskId>(t));
    if (slot.task != static_cast<TaskId>(t)) {
      fail(StrFormat("slot %zu holds task %d", t, slot.task));
      continue;
    }
    if (slot.impl_index >= task.impls.size()) {
      fail(StrFormat("task %zu: impl index %zu out of range", t,
                     slot.impl_index));
      continue;
    }
    const Implementation& impl = task.impls[slot.impl_index];
    if (!options.executed && slot.end - slot.start != impl.exec_time) {
      fail(StrFormat("task %zu: slot length %lld != impl time %lld", t,
                     static_cast<long long>(slot.end - slot.start),
                     static_cast<long long>(impl.exec_time)));
    }
    if (options.executed && slot.end <= slot.start) {
      fail(StrFormat("task %zu: executed slot is empty", t));
    }
    if (slot.start < 0) {
      fail(StrFormat("task %zu starts before time 0", t));
    }
    // ---- V2: target consistency.
    if (slot.OnFpga()) {
      if (!impl.IsHardware()) {
        fail(StrFormat("task %zu runs in a region with a SW impl", t));
      } else if (slot.target_index >= schedule.regions.size()) {
        fail(StrFormat("task %zu assigned to unknown region %zu", t,
                       slot.target_index));
      } else if (!impl.res.FitsWithin(
                     schedule.regions[slot.target_index].res)) {
        fail(StrFormat("task %zu: impl needs %s > region %zu provides %s", t,
                       impl.res.ToString().c_str(), slot.target_index,
                       schedule.regions[slot.target_index].res.ToString()
                           .c_str()));
      }
    } else {
      if (!impl.IsSoftware()) {
        fail(StrFormat("task %zu runs on a core with a HW impl", t));
      }
      if (slot.target_index >= platform.NumProcessors()) {
        fail(StrFormat("task %zu assigned to unknown processor %zu", t,
                       slot.target_index));
      }
    }
  }

  // ---- V3: precedence (plus the HW<->SW transfer gap when the
  // communication-overhead extension is active; CommGap is 0 otherwise).
  for (std::size_t t = 0; t < n; ++t) {
    const TaskSlot& slot_t = schedule.task_slots[t];
    for (const TaskId s : graph.Successors(static_cast<TaskId>(t))) {
      const TaskSlot& slot_s = schedule.SlotOf(s);
      const TimeT gap =
          CommGap(platform, graph, static_cast<TaskId>(t), s,
                  slot_t.OnFpga(), slot_s.OnFpga());
      if (slot_s.start < slot_t.end + gap) {
        fail(StrFormat(
            "dependency %zu -> %d violated (%lld < %lld + comm gap %lld)", t,
            s, static_cast<long long>(slot_s.start),
            static_cast<long long>(slot_t.end), static_cast<long long>(gap)));
      }
    }
  }

  // ---- V4: processor exclusivity.
  for (std::size_t p = 0; p < platform.NumProcessors(); ++p) {
    std::vector<const TaskSlot*> on_core;
    for (const TaskSlot& slot : schedule.task_slots) {
      if (!slot.OnFpga() && slot.target_index == p) on_core.push_back(&slot);
    }
    CheckNoOverlap(on_core, StrFormat("processor %zu", p), result.violations);
  }

  // ---- V5 + region membership consistency.
  for (std::size_t s = 0; s < schedule.regions.size(); ++s) {
    std::vector<const TaskSlot*> in_region;
    for (const TaskSlot& slot : schedule.task_slots) {
      if (slot.OnFpga() && slot.target_index == s) in_region.push_back(&slot);
    }
    CheckNoOverlap(in_region, StrFormat("region %zu", s), result.violations);

    // The region's recorded task list must match the slots assigned to it.
    std::vector<TaskId> from_slots;
    for (const TaskSlot* slot : in_region) from_slots.push_back(slot->task);
    std::vector<TaskId> recorded = schedule.regions[s].tasks;
    std::sort(from_slots.begin(), from_slots.end());
    std::sort(recorded.begin(), recorded.end());
    if (from_slots != recorded) {
      fail(StrFormat("region %zu task list does not match slot assignments",
                     s));
    }
  }

  // ---- V6: reconfigurations between consecutive region tasks.
  const ValidationOptions& opt = options;
  for (std::size_t s = 0; s < schedule.regions.size(); ++s) {
    const RegionInfo& region = schedule.regions[s];
    const TimeT expected_reconf = platform.ReconfTicks(region.res);
    if (region.reconf_time != expected_reconf) {
      fail(StrFormat("region %zu reconf time %lld != Eq.(2) value %lld", s,
                     static_cast<long long>(region.reconf_time),
                     static_cast<long long>(expected_reconf)));
    }

    std::vector<const TaskSlot*> in_region;
    for (const TaskSlot& slot : schedule.task_slots) {
      if (slot.OnFpga() && slot.target_index == s) in_region.push_back(&slot);
    }
    std::sort(in_region.begin(), in_region.end(),
              [](const TaskSlot* a, const TaskSlot* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 0; i + 1 < in_region.size(); ++i) {
      const TaskSlot* tin = in_region[i];
      const TaskSlot* tout = in_region[i + 1];
      // Guard against impl indices already reported as invalid by V1.
      if (tin->impl_index >= graph.GetTask(tin->task).impls.size() ||
          tout->impl_index >= graph.GetTask(tout->task).impls.size()) {
        continue;
      }
      const Implementation& impl_in =
          graph.GetImpl(tin->task, tin->impl_index);
      const Implementation& impl_out =
          graph.GetImpl(tout->task, tout->impl_index);
      const bool same_module = impl_in.module_id >= 0 &&
                               impl_in.module_id == impl_out.module_id;
      // Find the reconfiguration that loads tout in region s.
      const ReconfSlot* found = nullptr;
      for (const ReconfSlot& r : schedule.reconfigurations) {
        if (r.region == s && r.loads_task == tout->task) {
          if (found != nullptr) {
            fail(StrFormat("duplicate reconfiguration for task %d in region "
                           "%zu",
                           tout->task, s));
          }
          found = &r;
        }
      }
      if (found == nullptr) {
        if (!(opt.allow_module_reuse && same_module)) {
          fail(StrFormat(
              "missing reconfiguration before task %d in region %zu",
              tout->task, s));
        }
        continue;
      }
      if (found->start < tin->end) {
        fail(StrFormat("reconfiguration for task %d starts before task %d "
                       "ends",
                       tout->task, tin->task));
      }
      if (found->end > tout->start) {
        fail(StrFormat("reconfiguration for task %d ends after its start",
                       tout->task));
      }
      if (!opt.executed &&
          found->end - found->start != region.reconf_time) {
        fail(StrFormat("reconfiguration for task %d lasts %lld != region "
                       "reconf time %lld",
                       tout->task,
                       static_cast<long long>(found->end - found->start),
                       static_cast<long long>(region.reconf_time)));
      }
    }
  }

  // Every reconfiguration must correspond to a region it belongs to.
  for (const ReconfSlot& r : schedule.reconfigurations) {
    if (r.region >= schedule.regions.size()) {
      fail(StrFormat("reconfiguration references unknown region %zu",
                     r.region));
    }
  }

  // ---- V7: controller exclusivity (per controller; the paper's model
  // has exactly one).
  for (std::size_t c = 0; c < platform.NumReconfigurators(); ++c) {
    std::vector<const ReconfSlot*> sorted;
    for (const ReconfSlot& r : schedule.reconfigurations) {
      if (r.controller == c) sorted.push_back(&r);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const ReconfSlot* a, const ReconfSlot* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      if (sorted[i]->end > sorted[i + 1]->start) {
        fail(StrFormat("reconfigurations overlap on controller %zu "
                       "([%lld,%lld) vs [%lld,%lld))",
                       c, static_cast<long long>(sorted[i]->start),
                       static_cast<long long>(sorted[i]->end),
                       static_cast<long long>(sorted[i + 1]->start),
                       static_cast<long long>(sorted[i + 1]->end)));
      }
    }
  }
  for (const ReconfSlot& r : schedule.reconfigurations) {
    if (r.controller >= platform.NumReconfigurators()) {
      fail(StrFormat("reconfiguration on unknown controller %zu",
                     r.controller));
    }
  }

  // ---- V8: capacity.
  {
    ResourceVec total = platform.Device().Model().ZeroVec();
    for (const RegionInfo& region : schedule.regions) total += region.res;
    if (!total.FitsWithin(platform.Device().Capacity())) {
      fail(StrFormat("summed region requirements %s exceed device capacity %s",
                     total.ToString().c_str(),
                     platform.Device().Capacity().ToString().c_str()));
    }
  }

  // ---- V9: makespan.
  if (schedule.makespan != schedule.ComputeMakespan()) {
    fail(StrFormat("recorded makespan %lld != computed %lld",
                   static_cast<long long>(schedule.makespan),
                   static_cast<long long>(schedule.ComputeMakespan())));
  }

  // ---- V11: region fault windows. Slots are half-open, so touching a
  // window boundary is legal; any true overlap is not.
  for (const RegionOutage& outage : options.outages) {
    if (outage.region >= schedule.regions.size()) continue;
    for (const TaskSlot& slot : schedule.task_slots) {
      if (!slot.OnFpga() || slot.target_index != outage.region) continue;
      if (slot.start < outage.end && outage.start < slot.end) {
        fail(StrFormat(
            "task %d [%lld,%lld) overlaps fault window [%lld,%lld) on "
            "region %zu",
            slot.task, static_cast<long long>(slot.start),
            static_cast<long long>(slot.end),
            static_cast<long long>(outage.start),
            static_cast<long long>(outage.end), outage.region));
      }
    }
    for (const ReconfSlot& r : schedule.reconfigurations) {
      if (r.region != outage.region) continue;
      if (r.start < outage.end && outage.start < r.end) {
        fail(StrFormat(
            "reconfiguration for task %d [%lld,%lld) overlaps fault window "
            "[%lld,%lld) on region %zu",
            r.loads_task, static_cast<long long>(r.start),
            static_cast<long long>(r.end),
            static_cast<long long>(outage.start),
            static_cast<long long>(outage.end), outage.region));
      }
    }
  }

  // ---- V10: floorplan.
  if (!schedule.floorplan.empty() || options.require_floorplan) {
    if (!IsValidFloorplan(platform.Device(), schedule.RegionRequirements(),
                          schedule.floorplan)) {
      fail("attached floorplan is not valid for the region set");
    }
  }

  return result;
}

}  // namespace resched
