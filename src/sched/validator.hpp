// Independent schedule validator.
//
// Re-checks, from scratch and with no shared code paths with the
// schedulers, every constraint of §III:
//   V1  every task has exactly one slot, a valid implementation index, and
//       slot length equal to the implementation's execution time;
//   V2  hardware tasks sit in regions whose requirement covers their
//       implementation; software tasks sit on existing processors;
//   V3  data dependencies: succ.start >= pred.end for every DAG edge;
//   V4  processor exclusivity: slots on one core never overlap;
//   V5  region exclusivity: slots in one region never overlap;
//   V6  reconfigurations: between consecutive tasks of a region (unless
//       both use the same module and reuse is allowed) there is exactly one
//       reconfiguration slot that loads the outgoing task, starts no
//       earlier than the ingoing task's end, finishes no later than the
//       outgoing task's start, and lasts exactly the region's Eq.-(2) time;
//   V7  controller exclusivity: reconfiguration slots never overlap;
//   V8  capacity: the summed region requirements fit the device;
//   V9  makespan equals the latest task end;
//   V10 (when the schedule carries one) the floorplan is geometrically
//       valid for the region set.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace resched {

struct ValidationOptions {
  /// Accept skipped reconfigurations between consecutive same-module tasks.
  bool allow_module_reuse = true;
  /// Require a geometrically valid floorplan to be attached.
  bool require_floorplan = false;
};

struct ValidationResult {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

ValidationResult ValidateSchedule(const Instance& instance,
                                  const Schedule& schedule,
                                  const ValidationOptions& options = {});

}  // namespace resched
