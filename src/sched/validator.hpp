// Independent schedule validator.
//
// Re-checks, from scratch and with no shared code paths with the
// schedulers, every constraint of §III:
//   V1  every task has exactly one slot, a valid implementation index, and
//       slot length equal to the implementation's execution time;
//   V2  hardware tasks sit in regions whose requirement covers their
//       implementation; software tasks sit on existing processors;
//   V3  data dependencies: succ.start >= pred.end for every DAG edge;
//   V4  processor exclusivity: slots on one core never overlap;
//   V5  region exclusivity: slots in one region never overlap;
//   V6  reconfigurations: between consecutive tasks of a region (unless
//       both use the same module and reuse is allowed) there is exactly one
//       reconfiguration slot that loads the outgoing task, starts no
//       earlier than the ingoing task's end, finishes no later than the
//       outgoing task's start, and lasts exactly the region's Eq.-(2) time;
//   V7  controller exclusivity: reconfiguration slots never overlap;
//   V8  capacity: the summed region requirements fit the device;
//   V9  makespan equals the latest task end;
//   V10 (when the schedule carries one) the floorplan is geometrically
//       valid for the region set;
//   V11 (when the options carry fault windows) nothing is scheduled on a
//       region while it is faulted — see RegionOutage below.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace resched {

/// One region fault window: the region is unavailable during
/// [start, end). `end == kTimeInfinity` encodes permanent loss.
struct RegionOutage {
  std::size_t region = 0;
  TimeT start = 0;
  TimeT end = kTimeInfinity;
};

struct ValidationOptions {
  /// Accept skipped reconfigurations between consecutive same-module tasks.
  bool allow_module_reuse = true;
  /// Require a geometrically valid floorplan to be attached.
  bool require_floorplan = false;
  /// Validate an as-executed (simulated/recovered) schedule: slot lengths
  /// may deviate from nominal implementation times (jitter, overruns) and
  /// reconfiguration durations are not checked against Eq. (2). Structural
  /// constraints — targets, precedence, exclusivity, makespan — still
  /// apply, which is what makes a recovered schedule checkable at all
  /// (e.g. a migrated task must run a software implementation on a core).
  bool executed = false;
  /// Region fault windows: no task slot or reconfiguration may overlap
  /// [start, end) on the named region (V11).
  std::vector<RegionOutage> outages;
  /// Prove exclusivity (V4/V5/V7) with a word-packed bit timeline and skip
  /// the sort-and-scan when a target is provably clash-free. Violations and
  /// their messages are byte-identical either way: any bucket clash — or
  /// any slot the bit proof cannot represent (negative start,
  /// empty/backwards interval) — falls back to the full interval scan.
  /// Off exists for differential testing.
  bool fast_scan = true;
};

struct ValidationResult {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

ValidationResult ValidateSchedule(const Instance& instance,
                                  const Schedule& schedule,
                                  const ValidationOptions& options = {});

}  // namespace resched
