#include "sched/svg.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace resched {

namespace {

// Color-blind-safe categorical palette (Okabe-Ito), cycled per task.
const char* const kPalette[] = {"#0072B2", "#E69F00", "#009E73", "#CC79A7",
                                "#56B4E9", "#D55E00", "#F0E442", "#999999"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

std::string EscapeXml(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string GanttSvg(const Instance& instance, const Schedule& schedule,
                     const SvgOptions& options) {
  const std::size_t cores = instance.platform.NumProcessors();
  const std::size_t lanes = cores + schedule.regions.size() + 1;
  const std::size_t label_w = 64;
  const std::size_t chart_w = options.width_px - label_w;
  const std::size_t lane_h = options.lane_height_px;
  const std::size_t height = lanes * lane_h + 30;
  const TimeT makespan = std::max<TimeT>(schedule.makespan, 1);

  auto x_of = [&](TimeT t) {
    return static_cast<double>(label_w) +
           static_cast<double>(t) / static_cast<double>(makespan) *
               static_cast<double>(chart_w);
  };
  auto lane_of_slot = [&](const TaskSlot& slot) {
    return slot.OnFpga() ? cores + slot.target_index : slot.target_index;
  };

  std::string svg = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%zu\" "
      "height=\"%zu\" font-family=\"sans-serif\" font-size=\"11\">\n",
      options.width_px, height);

  // Lane backgrounds and labels.
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    std::string label;
    if (lane < cores) {
      label = StrFormat("cpu%zu", lane);
    } else if (lane < cores + schedule.regions.size()) {
      label = StrFormat("rr%zu", lane - cores);
    } else {
      label = "icap";
    }
    const std::size_t y = lane * lane_h;
    svg += StrFormat(
        "<rect x=\"%zu\" y=\"%zu\" width=\"%zu\" height=\"%zu\" "
        "fill=\"%s\"/>\n",
        label_w, y, chart_w, lane_h, lane % 2 == 0 ? "#f7f7f7" : "#efefef");
    svg += StrFormat(
        "<text x=\"4\" y=\"%zu\" dominant-baseline=\"middle\">%s</text>\n",
        y + lane_h / 2, label.c_str());
  }

  // Task bars.
  for (const TaskSlot& slot : schedule.task_slots) {
    const std::size_t lane = lane_of_slot(slot);
    const double x0 = x_of(slot.start);
    const double x1 = x_of(slot.end);
    const std::size_t y = lane * lane_h + 3;
    const char* color =
        kPalette[static_cast<std::size_t>(slot.task) % kPaletteSize];
    const std::string name =
        EscapeXml(instance.graph.GetTask(slot.task).name);
    svg += StrFormat(
        "<rect x=\"%.1f\" y=\"%zu\" width=\"%.1f\" height=\"%zu\" "
        "fill=\"%s\" rx=\"2\"><title>%s [%lld, %lld)</title></rect>\n",
        x0, y, std::max(1.0, x1 - x0), lane_h - 6, color, name.c_str(),
        static_cast<long long>(slot.start),
        static_cast<long long>(slot.end));
    if (options.include_labels && x1 - x0 > 24) {
      svg += StrFormat(
          "<text x=\"%.1f\" y=\"%zu\" dominant-baseline=\"middle\" "
          "fill=\"white\">%s</text>\n",
          x0 + 3, lane * lane_h + lane_h / 2, name.c_str());
    }
  }

  // Reconfiguration bars (hatched look via opacity).
  for (const ReconfSlot& r : schedule.reconfigurations) {
    const std::size_t lane = lanes - 1;
    const double x0 = x_of(r.start);
    const double x1 = x_of(r.end);
    svg += StrFormat(
        "<rect x=\"%.1f\" y=\"%zu\" width=\"%.1f\" height=\"%zu\" "
        "fill=\"#444\" opacity=\"0.8\" rx=\"2\"><title>reconf rr%zu &lt;- "
        "%s</title></rect>\n",
        x0, lane * lane_h + 3, std::max(1.0, x1 - x0), lane_h - 6, r.region,
        EscapeXml(instance.graph.GetTask(r.loads_task).name).c_str());
  }

  // Time axis.
  const std::size_t axis_y = lanes * lane_h + 14;
  svg += StrFormat(
      "<text x=\"%zu\" y=\"%zu\">0</text>"
      "<text x=\"%zu\" y=\"%zu\" text-anchor=\"end\">%s</text>\n",
      label_w, axis_y, options.width_px - 4, axis_y,
      FormatTicks(makespan).c_str());

  svg += "</svg>\n";
  return svg;
}

std::string FloorplanSvg(const Instance& instance, const Schedule& schedule,
                         const SvgOptions& options) {
  const FabricGeometry& geom = instance.platform.Device().Geometry();
  const ResourceModel& model = instance.platform.Device().Model();
  const std::size_t cols = geom.NumColumns();
  const std::size_t rows = geom.rows;
  const double cell_w =
      static_cast<double>(options.width_px - 20) / static_cast<double>(cols);
  const double cell_h = 48.0;
  const std::size_t height = static_cast<std::size_t>(
      cell_h * static_cast<double>(rows)) + 40;

  std::string svg = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%zu\" "
      "height=\"%zu\" font-family=\"sans-serif\" font-size=\"10\">\n",
      options.width_px, height);

  // Column background tinted by resource kind.
  const char* const kind_colors[] = {"#dce9f5", "#f5e9dc", "#e0f5dc",
                                     "#f0dcf5"};
  for (std::size_t c = 0; c < cols; ++c) {
    const char* color = kind_colors[geom.columns[c].kind % 4];
    svg += StrFormat(
        "<rect x=\"%.1f\" y=\"10\" width=\"%.1f\" height=\"%.1f\" "
        "fill=\"%s\" stroke=\"#ccc\" stroke-width=\"0.3\"><title>%s "
        "col %zu</title></rect>\n",
        10 + cell_w * static_cast<double>(c), cell_w,
        cell_h * static_cast<double>(rows), color,
        model.Kind(geom.columns[c].kind).name.c_str(), c);
  }

  // Region rectangles.
  for (std::size_t i = 0; i < schedule.floorplan.size(); ++i) {
    const Rect& r = schedule.floorplan[i];
    const char* color = kPalette[i % kPaletteSize];
    svg += StrFormat(
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
        "fill=\"%s\" opacity=\"0.55\" stroke=\"%s\" stroke-width=\"1.5\"/>"
        "<text x=\"%.1f\" y=\"%.1f\" font-weight=\"bold\">rr%zu</text>\n",
        10 + cell_w * static_cast<double>(r.col0),
        10 + cell_h * static_cast<double>(r.row0),
        cell_w * static_cast<double>(r.width),
        cell_h * static_cast<double>(r.height), color, color,
        12 + cell_w * static_cast<double>(r.col0),
        24 + cell_h * static_cast<double>(r.row0), i);
  }

  svg += "</svg>\n";
  return svg;
}

}  // namespace resched
