// The scheduler output model (§III): reconfigurable regions, a task ->
// (implementation, processor-or-region, time slot) mapping, and the
// reconfiguration tasks on the single controller.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "floorplan/floorplanner.hpp"
#include "taskgraph/taskgraph.hpp"

namespace resched {

/// Where a task executes.
enum class TargetKind : std::uint8_t { kProcessor, kRegion };

/// One scheduled application task.
struct TaskSlot {
  TaskId task = kInvalidTask;
  std::size_t impl_index = 0;  ///< index into the task's implementation list
  TargetKind target = TargetKind::kProcessor;
  std::size_t target_index = 0;  ///< processor id or region id
  TimeT start = 0;
  TimeT end = 0;  ///< half-open slot [start, end)

  bool OnFpga() const { return target == TargetKind::kRegion; }
};

/// One reconfigurable region with the tasks it hosts, in execution order.
struct RegionInfo {
  ResourceVec res;          ///< res_{s,r}: requirement of the region
  TimeT reconf_time = 0;    ///< Eq. (2) duration of one reconfiguration
  std::vector<TaskId> tasks;
};

/// One reconfiguration task: loads the bitstream of `loads_task`'s
/// implementation into `region` before that task may run. `controller`
/// selects the reconfiguration controller (always 0 in the paper's
/// single-controller model).
struct ReconfSlot {
  std::size_t region = 0;
  TaskId loads_task = kInvalidTask;
  TimeT start = 0;
  TimeT end = 0;
  std::size_t controller = 0;
};

/// Complete schedule plus solver metadata.
struct Schedule {
  /// Indexed by TaskId (same order as the task graph).
  std::vector<TaskSlot> task_slots;
  std::vector<RegionInfo> regions;
  /// Sorted by start time.
  std::vector<ReconfSlot> reconfigurations;
  TimeT makespan = 0;

  // ---- metadata ----
  std::string algorithm;
  double scheduling_seconds = 0.0;
  double floorplanning_seconds = 0.0;
  /// Times the scheduler restarted with shrunk resources (§V-H loop).
  std::size_t floorplan_retries = 0;
  /// One rectangle per region when a floorplan was found.
  std::vector<Rect> floorplan;
  bool floorplan_checked = false;
  /// Floorplan-cache counters accumulated while producing this schedule
  /// (all zero when the cache was disabled or never consulted).
  FloorplanCacheStats floorplan_cache;

  const TaskSlot& SlotOf(TaskId t) const {
    return task_slots.at(static_cast<std::size_t>(t));
  }

  /// Region requirement vectors in region order (floorplanner input).
  std::vector<ResourceVec> RegionRequirements() const;

  /// Recomputes the makespan from the task slots.
  TimeT ComputeMakespan() const;

  /// Count of tasks mapped to hardware.
  std::size_t NumHardwareTasks() const;

  /// Total time the reconfiguration controller is busy.
  TimeT TotalReconfigurationTime() const;
};

}  // namespace resched
